// E9 — per-run hot-path throughput (`bench_hot_path`).
//
// Measures end-to-end single-job runs/sec on the standard campaign workload
// (the same {seed, template, protocol} sweep the fault campaign executes).
// This is the number the flat-hash container overhaul targets: every run
// pays the lock-manager, waits-for, conflict-tracker, and marking hot
// paths, so the sweep's wall clock is a faithful proxy for the per-run
// engine tax.
//
// The sweep fingerprint is printed (and embedded in the JSON) so a perf
// regression can never hide a behavior change: the fingerprint must equal
// the campaign CLI's for the same options, before and after any overhaul.
//
// Usage:
//   bench_hot_path [--runs N] [--repeat R] [--baseline RUNS_PER_SEC]
//
// `--baseline` embeds a pre-change measurement (same machine, same flags)
// in BENCH_hot_path.json so the JSON records both numbers and the speedup.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/fault_plan.h"
#include "campaign/runner.h"
#include "common/arena.h"
#include "common/string_util.h"
#include "exec/world_pool.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

campaign::CampaignOptions StandardWorkload(int runs) {
  campaign::CampaignOptions options;
  options.runs = runs;
  options.base_seed = 1;
  options.jobs = 1;  // single-job: this bench isolates per-run cost
  options.num_sites = 4;
  options.num_globals = 24;
  options.num_locals = 12;
  options.shrink_failures = false;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 50;
  int repeat = 3;
  double baseline_runs_per_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (arg == flag && i + 1 < argc) return argv[++i];
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
      return nullptr;
    };
    if (const char* v = value("--runs")) runs = std::atoi(v);
    if (const char* v = value("--repeat")) repeat = std::atoi(v);
    if (const char* v = value("--baseline")) baseline_runs_per_sec = std::atof(v);
  }

  std::printf(
      "E9: per-run hot path — single-job campaign workload, %d runs x %d "
      "repeats\n\n",
      runs, repeat);

  std::vector<double> wall_ms;
  std::uint64_t fingerprint = 0;
  int runs_completed = 0;
  for (int r = 0; r < repeat; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const campaign::CampaignReport report =
        campaign::RunCampaign(StandardWorkload(runs));
    const auto end = std::chrono::steady_clock::now();
    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (r == 0) {
      fingerprint = report.CombinedFingerprint();
      runs_completed = report.runs_completed;
    } else if (report.CombinedFingerprint() != fingerprint) {
      std::fprintf(stderr, "FATAL: fingerprint drift across repeats\n");
      return 1;
    }
  }

  // Second pass with telemetry collection on: same sweep, now also paying
  // the step observer, journal profiling, and coverage accounting. The
  // fingerprint must not move (telemetry is purely observational) and the
  // throughput tax is reported so a creeping observer cost is visible.
  std::vector<double> telemetry_wall_ms;
  for (int r = 0; r < repeat; ++r) {
    campaign::CampaignOptions options = StandardWorkload(runs);
    options.collect_telemetry = true;
    const auto start = std::chrono::steady_clock::now();
    const campaign::CampaignReport report = campaign::RunCampaign(options);
    const auto end = std::chrono::steady_clock::now();
    telemetry_wall_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (report.CombinedFingerprint() != fingerprint) {
      std::fprintf(stderr,
                   "FATAL: telemetry collection changed the sweep "
                   "fingerprint\n");
      return 1;
    }
  }

  // Allocation audit for the arena-reuse path, at the granularity the
  // steady-state gate (tests/arena_test.cc) pins: one RunOne inside a
  // recycled world. After warmup the armed run must touch the system heap
  // exactly zero times; any nonzero count here is a regression (a new
  // lazily-constructed static, a cache that stopped bypassing the arena).
  std::int64_t steady_heap_allocs = -1;  // -1 = unmeasurable in this build
  std::uint64_t steady_arena_allocs = 0;
  std::uint64_t steady_arena_bytes = 0;
  if (exec::WorldPool::Enabled() && common::HeapAllocCountingEnabled()) {
    campaign::CampaignRunConfig config;
    config.seed = 1;
    config.template_name = "mixed";
    config.plan = campaign::GeneratePlan("mixed", 1, config.num_sites);
    for (int warmup = 0; warmup < 3; ++warmup) {
      exec::WorldPool::ScopedRun scope;
      (void)campaign::RunOne(config);
    }
    exec::WorldPool::ScopedRun scope;
    (void)campaign::RunOne(config);
    steady_heap_allocs = static_cast<std::int64_t>(scope.heap_allocs());
    steady_arena_allocs = scope.arena_allocs();
    steady_arena_bytes = scope.arena_bytes();
  }

  // Best-of-repeats: the least-disturbed measurement of a deterministic
  // workload is the closest to the engine's true cost.
  const double best_ms = *std::min_element(wall_ms.begin(), wall_ms.end());
  const double runs_per_sec = runs_completed / (best_ms / 1000.0);
  const double telemetry_best_ms = *std::min_element(
      telemetry_wall_ms.begin(), telemetry_wall_ms.end());
  const double telemetry_runs_per_sec =
      runs_completed / (telemetry_best_ms / 1000.0);
  const double telemetry_overhead_pct =
      runs_per_sec > 0.0
          ? (1.0 - telemetry_runs_per_sec / runs_per_sec) * 100.0
          : 0.0;
  const double speedup = baseline_runs_per_sec > 0.0
                             ? runs_per_sec / baseline_runs_per_sec
                             : 0.0;

  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  metrics::TablePrinter table({"metric", "value"});
  table.AddRow({"runs/sec (best of repeats)", FormatDouble(runs_per_sec, 1)});
  table.AddRow({"wall ms (best)", FormatDouble(best_ms, 1)});
  table.AddRow({"runs/sec with telemetry",
                FormatDouble(telemetry_runs_per_sec, 1)});
  table.AddRow({"telemetry overhead %",
                FormatDouble(telemetry_overhead_pct, 1)});
  if (baseline_runs_per_sec > 0.0) {
    table.AddRow({"baseline runs/sec", FormatDouble(baseline_runs_per_sec, 1)});
    table.AddRow({"speedup", FormatDouble(speedup, 2)});
  }
  if (steady_heap_allocs >= 0) {
    table.AddRow({"steady-state heap allocs/run",
                  std::to_string(steady_heap_allocs)});
    table.AddRow({"steady-state arena allocs/run",
                  std::to_string(steady_arena_allocs)});
    table.AddRow({"steady-state arena MB/run",
                  FormatDouble(steady_arena_bytes / (1024.0 * 1024.0), 1)});
  }
  table.AddRow({"sweep fingerprint", hex});
  std::printf("%s\n", table.ToString().c_str());

  std::ofstream out("BENCH_hot_path.json");
  out << "{\n  \"runs\": " << runs_completed
      << ",\n  \"repeat\": " << repeat
      << ",\n  \"wall_ms_best\": " << best_ms
      << ",\n  \"runs_per_sec\": " << runs_per_sec
      << ",\n  \"telemetry_runs_per_sec\": " << telemetry_runs_per_sec
      << ",\n  \"telemetry_overhead_pct\": " << telemetry_overhead_pct
      << ",\n  \"baseline_runs_per_sec\": " << baseline_runs_per_sec
      << ",\n  \"speedup_vs_baseline\": " << speedup
      << ",\n  \"steady_state_heap_allocs_per_run\": " << steady_heap_allocs
      << ",\n  \"steady_state_arena_allocs_per_run\": " << steady_arena_allocs
      << ",\n  \"steady_state_arena_bytes_per_run\": " << steady_arena_bytes
      << ",\n  \"sweep_fingerprint\": \"" << hex << "\"\n}\n";
  return 0;
}
