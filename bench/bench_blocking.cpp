// E4 — blocking under coordinator failure (paper §1: "the length of time
// these locks are held can be unbounded" because 2PC is a blocking
// protocol; O2PC's whole point is to escape that).
//
// The coordinator crashes after logging its decision with probability p and
// recovers after a fixed outage. Metrics: p99/max exclusive-lock hold and
// p99 latency of the *other* traffic.

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

harness::ExperimentConfig Config(core::CommitProtocol protocol,
                                 double crash_prob, Duration outage) {
  harness::ExperimentConfig config;
  config.label = core::CommitProtocolName(protocol);
  config.system.num_sites = 3;
  config.system.keys_per_site = 128;
  config.system.seed = 23;
  config.system.protocol.protocol = protocol;
  config.system.protocol.coordinator_crash_probability = crash_prob;
  config.system.protocol.coordinator_recovery_delay = outage;
  config.system.protocol.resend_timeout = Seconds(10);
  config.system.lock_wait_timeout = Seconds(2);  // expose the blocking
  config.workload.num_global_txns = 120;
  config.workload.num_local_txns = 120;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.zipf_theta = 0.4;
  config.workload.mean_global_interarrival = Millis(10);
  config.workload.mean_local_interarrival = Millis(5);
  config.workload.seed = 51;
  config.analyze = false;
  return config;
}

const double kCrashProbs[] = {0.0, 0.05, 0.2};
const core::CommitProtocol kProtocols[] = {
    core::CommitProtocol::kTwoPhaseCommit,
    core::CommitProtocol::kOptimistic,
};

}  // namespace

int main(int argc, char** argv) {
  const Duration outage = Millis(500);
  std::printf(
      "E4: coordinator crashes (after logging) with recovery after 500ms\n"
      "claim: 2PC participants block in prepared state for the outage; "
      "O2PC participants have already released their locks\n\n");

  metrics::TablePrinter table({"crash prob", "protocol", "p99 X-hold",
                               "max X-hold", "p99 txn latency",
                               "crashes"});
  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (double p : kCrashProbs) {
    for (core::CommitProtocol protocol : kProtocols) {
      matrix.Add(Config(protocol, p, outage));
    }
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  std::size_t next = 0;
  for (double p : kCrashProbs) {
    for (core::CommitProtocol protocol : kProtocols) {
      harness::RunResult& result = results[next++];
      result.label = StrCat(core::CommitProtocolName(protocol), " / crash ",
                            FormatDouble(p * 100, 0), "%");
      table.AddRow(
          {FormatDouble(p * 100, 0) + "%",
           core::CommitProtocolName(protocol),
           FormatDuration(static_cast<Duration>(result.p99_xlock_hold_us)),
           FormatDuration(static_cast<Duration>(result.max_xlock_hold_us)),
           FormatDuration(static_cast<Duration>(result.p99_latency_us)),
           std::to_string(result.coordinator_crashes)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: under crashes, 2PC's max lock hold jumps to the\n"
      "outage length (and conflicting traffic queues behind it); O2PC's\n"
      "hold times barely move.\n");
  harness::WriteBenchJson("blocking", results);
  return 0;
}
