// E5 — the marking protocols (paper §6): what they cost and what they buy.
//
// Same abort-heavy workload under every governance policy plus the oracle
// directory ablation. Metrics: throughput, R1 rejections, UDUM unmarks,
// restarts, and — the point of the exercise — whether the recorded history
// contains regular cycles (the §5 criterion).
//
// Reproduction findings quantified here:
//   * kNone (saga mode) violates the criterion under contention;
//   * kP2Literal (the paper's P2 exactly as stated) also does — see
//     DESIGN.md, "P2 soundness gap";
//   * kP1 / strengthened kP2 / kSimple keep the history correct, at the
//     price of rejections and restarts that grow with the abort rate.

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

harness::ExperimentConfig Config(core::GovernancePolicy policy,
                                 core::DirectoryMode directory,
                                 std::uint64_t seed) {
  harness::ExperimentConfig config;
  config.label = core::GovernancePolicyName(policy);
  config.system.num_sites = 3;
  config.system.keys_per_site = 48;
  config.system.seed = seed;
  config.system.protocol.protocol = core::CommitProtocol::kOptimistic;
  config.system.protocol.governance = policy;
  config.system.protocol.directory = directory;
  config.workload.num_global_txns = 120;
  config.workload.num_local_txns = 120;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.ops_per_subtxn = 3;
  config.workload.vote_abort_probability = 0.15;
  config.workload.zipf_theta = 0.8;
  config.workload.mean_global_interarrival = Millis(8);
  config.workload.mean_local_interarrival = Millis(4);
  config.workload.seed = seed * 13 + 3;
  config.analyze = true;
  return config;
}

constexpr int kSeeds = 3;

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E5: governance policies under an abort-heavy contended workload\n"
      "(3 sites, 48 keys z0.8, 15%% vote-aborts, 3 seeds aggregated)\n\n");

  struct Row {
    core::GovernancePolicy policy;
    core::DirectoryMode directory;
    const char* name;
  };
  const Row rows[] = {
      {core::GovernancePolicy::kNone, core::DirectoryMode::kPiggyback,
       "none (saga mode)"},
      {core::GovernancePolicy::kP2Literal, core::DirectoryMode::kPiggyback,
       "P2 literal (paper)"},
      {core::GovernancePolicy::kP1, core::DirectoryMode::kPiggyback,
       "P1"},
      {core::GovernancePolicy::kP1, core::DirectoryMode::kOracle,
       "P1 + oracle directory"},
      {core::GovernancePolicy::kP2, core::DirectoryMode::kPiggyback,
       "P2 strengthened"},
      {core::GovernancePolicy::kSimple, core::DirectoryMode::kPiggyback,
       "simple"},
  };

  metrics::TablePrinter table({"policy", "txn/s", "committed", "rejections",
                               "unmarks", "restarts", "regular cycles",
                               "correct"});
  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (const Row& row : rows) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      matrix.Add(Config(row.policy, row.directory, seed));
    }
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  std::size_t next = 0;
  for (const Row& row : rows) {
    double tps = 0;
    std::uint64_t committed = 0;
    std::uint64_t rejections = 0;
    std::uint64_t unmarks = 0;
    std::uint64_t restarts = 0;
    int cycle_runs = 0;
    bool all_correct = true;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      harness::RunResult& result = results[next++];
      result.label = StrCat(row.name, " / seed ", seed);
      tps += result.throughput_tps / kSeeds;
      committed += result.committed;
      rejections += result.r1_rejections;
      unmarks += result.udum_unmarks;
      restarts += result.restarts;
      if (result.report.has_regular_cycle) ++cycle_runs;
      all_correct = all_correct && result.report.correct;
    }
    table.AddRow({row.name, FormatDouble(tps, 1), std::to_string(committed),
                  std::to_string(rejections), std::to_string(unmarks),
                  std::to_string(restarts),
                  StrCat(cycle_runs, "/", kSeeds, " runs"),
                  all_correct ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: none/P2-literal are fastest but incorrect; P1 and\n"
      "the strengthened P2 pay rejections+restarts for a correct history;\n"
      "the oracle directory shows how much of that cost is knowledge "
      "latency.\n");
  harness::WriteBenchJson("governance", results);
  return 0;
}
