// E7 — the blocking *window* under coordinator outages, measured directly.
//
// Every coordinator crashes right after force-logging its decision
// (probability 1.0) and stays down for a swept outage. The new
// `blocked_prepared_ns` metric integrates the time each voted participant
// spends with its subtransaction's locks still held waiting for the
// DECISION:
//
//   - plain 2PC: the window tracks the outage — participants sit prepared
//     until the coordinator comes back (paper §1's unbounded blocking);
//   - 2PC + termination: DECISION-REQ to the home site's recovery agent
//     (and, if that fails, cooperative termination against the peers)
//     bounds the window at the decision timeout, independent of outage;
//   - O2PC: ~0 — locks were released when the participant locally
//     committed at its vote, so there is nothing left to block.

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

enum class Variant { kTwoPhase, kTwoPhaseTermination, kOptimistic };

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kTwoPhase:
      return "2pc";
    case Variant::kTwoPhaseTermination:
      return "2pc+term";
    case Variant::kOptimistic:
      return "o2pc";
  }
  return "?";
}

harness::ExperimentConfig Config(Variant variant, Duration outage) {
  harness::ExperimentConfig config;
  config.system.num_sites = 3;
  config.system.keys_per_site = 128;
  config.system.seed = 23;
  config.system.protocol.protocol = variant == Variant::kOptimistic
                                        ? core::CommitProtocol::kOptimistic
                                        : core::CommitProtocol::kTwoPhaseCommit;
  config.system.protocol.coordinator_crash_probability = 1.0;
  config.system.protocol.coordinator_recovery_delay = outage;
  // Keep retransmissions out of the picture: the run is outage-dominated.
  config.system.protocol.resend_timeout = Seconds(10);
  config.system.lock_wait_timeout = Seconds(2);
  if (variant == Variant::kTwoPhaseTermination) {
    config.system.protocol.decision_timeout = Millis(30);
    config.system.protocol.retry_backoff_multiplier = 2.0;
    config.system.protocol.retry_backoff_cap = Millis(120);
  }
  config.workload.num_global_txns = 80;
  config.workload.num_local_txns = 80;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.zipf_theta = 0.4;
  config.workload.mean_global_interarrival = Millis(10);
  config.workload.mean_local_interarrival = Millis(5);
  config.workload.seed = 51;
  config.analyze = false;
  config.label = StrCat(VariantName(variant), " / outage ",
                        FormatDuration(outage));
  return config;
}

const Duration kOutages[] = {Millis(50), Millis(200), Millis(800)};
const Variant kVariants[] = {Variant::kTwoPhase,
                             Variant::kTwoPhaseTermination,
                             Variant::kOptimistic};

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E7: blocking window vs coordinator outage (every decision crashes "
      "the coordinator)\n"
      "claim: 2PC's blocked-prepared time grows with the outage; the "
      "termination protocol caps it; O2PC's is ~0\n\n");

  metrics::TablePrinter table({"outage", "variant", "blocked total",
                               "blocked mean", "blocked max",
                               "decision-reqs", "ctp"});
  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (Duration outage : kOutages) {
    for (Variant variant : kVariants) {
      matrix.Add(Config(variant, outage));
    }
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  std::size_t next = 0;
  for (Duration outage : kOutages) {
    for (Variant variant : kVariants) {
      harness::RunResult& result = results[next++];
      table.AddRow(
          {FormatDuration(outage), VariantName(variant),
           FormatDuration(
               static_cast<Duration>(result.blocked_prepared_ns / 1000)),
           FormatDuration(
               static_cast<Duration>(result.mean_blocked_prepared_us)),
           FormatDuration(
               static_cast<Duration>(result.max_blocked_prepared_us)),
           std::to_string(result.decision_reqs),
           std::to_string(result.ctp_resolutions)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: plain 2PC's max blocked window equals the outage;\n"
      "2PC+termination flattens it near the decision timeout; O2PC stays\n"
      "at zero because its locks are gone by the time the coordinator "
      "dies.\n");
  harness::WriteBenchJson("blocking_window", results);
  return 0;
}
