// E2 — throughput under data contention (paper §2: early release "can
// dramatically reduce waiting due to data contention").
//
// Sweep: key-space size + skew (hotter keys => more contention) at a fixed,
// feasible offered load. Metrics: committed-transaction throughput, mean
// lock wait, mean commit latency. O2PC appears twice: ungoverned (the pure
// locking effect) and governed by P1 (the full protocol, whose marking
// overhead is only paid when transactions abort — none are injected here,
// but deadlock rollbacks under heavy contention do create marks).

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

harness::ExperimentConfig Config(core::CommitProtocol protocol,
                                 core::GovernancePolicy governance,
                                 double theta, DataKey keys) {
  harness::ExperimentConfig config;
  config.label = core::CommitProtocolName(protocol);
  config.system.num_sites = 4;
  config.system.keys_per_site = keys;
  config.system.seed = 5;
  config.system.protocol.protocol = protocol;
  config.system.protocol.governance = governance;
  config.system.network.base_latency = Millis(10);
  config.workload.num_global_txns = 200;
  config.workload.num_local_txns = 200;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.zipf_theta = theta;
  config.workload.ops_per_subtxn = 3;
  config.workload.mean_global_interarrival = Millis(8);
  config.workload.mean_local_interarrival = Millis(4);
  config.workload.seed = 31;
  config.analyze = false;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E2: throughput and lock waiting vs contention\n"
      "(4 sites, 10ms latency, 200 global + 200 local txns, "
      "~125 global txn/s offered)\n\n");

  metrics::TablePrinter table({"contention", "protocol", "txn/s",
                               "mean wait", "mean latency", "deadlocks",
                               "restarts"});
  struct Level {
    const char* name;
    DataKey keys;
    double theta;
  };
  struct Proto {
    core::CommitProtocol protocol;
    core::GovernancePolicy governance;
    const char* name;
  };
  const Proto protos[] = {
      {core::CommitProtocol::kTwoPhaseCommit, core::GovernancePolicy::kNone,
       "2PC"},
      {core::CommitProtocol::kOptimistic, core::GovernancePolicy::kNone,
       "O2PC"},
      {core::CommitProtocol::kOptimistic, core::GovernancePolicy::kP1,
       "O2PC+P1"},
  };
  const Level levels[] = {Level{"low (512 keys, uniform)", 512, 0.0},
                          Level{"medium (96 keys, z0.7)", 96, 0.7},
                          Level{"high (32 keys, z0.9)", 32, 0.9}};
  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (const Level& level : levels) {
    for (const Proto& proto : protos) {
      matrix.Add(Config(proto.protocol, proto.governance, level.theta,
                        level.keys));
    }
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  std::size_t next = 0;
  for (const Level& level : levels) {
    for (const Proto& proto : protos) {
      harness::RunResult& result = results[next++];
      result.label = StrCat(proto.name, " / ", level.name);
      table.AddRow(
          {level.name, proto.name, FormatDouble(result.throughput_tps, 1),
           FormatDuration(static_cast<Duration>(result.mean_lock_wait_us)),
           FormatDuration(static_cast<Duration>(result.mean_latency_us)),
           std::to_string(result.deadlocks),
           std::to_string(result.restarts)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: near parity at low contention; O2PC's shorter lock\n"
      "windows win as contention grows; P1's governance charges some of\n"
      "that back when rollbacks (deadlocks) create marks.\n");
  harness::WriteBenchJson("throughput", results);
  return 0;
}
