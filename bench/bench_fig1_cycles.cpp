// F1 — Figure 1 and Example 1, reproduced executably.
//
// Rebuilds the paper's regular-cycle scenarios as explicit local SGs and
// classifies each with the minimal-representation detector. The table's
// expected column is the paper's own classification: (a)-(c) are regular
// cycles; the compensation-only cycle and Example 1 are allowed.

#include <cstdio>

#include "metrics/table.h"
#include "sg/regular_cycle.h"
#include "sg/serialization_graph.h"

using namespace o2pc;

namespace {

struct Scenario {
  const char* name;
  const char* description;
  sg::SerializationGraph graph;
  bool expect_regular;
};

std::vector<Scenario> BuildScenarios() {
  std::vector<Scenario> scenarios;

  {
    Scenario s;
    s.name = "Fig1(a)";
    s.description = "CT1->T2 @S1 ; T2->CT1 @S2";
    s.graph.AddEdge(sg::CompNode(1), sg::GlobalNode(2), 1);
    s.graph.AddEdge(sg::GlobalNode(2), sg::CompNode(1), 2);
    s.expect_regular = true;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "Fig1(b)";
    s.description = "T2->CT1 @S1 ; CT1->T3 @S2 ; T3->T2 @S3";
    s.graph.AddEdge(sg::GlobalNode(2), sg::CompNode(1), 1);
    s.graph.AddEdge(sg::CompNode(1), sg::GlobalNode(3), 2);
    s.graph.AddEdge(sg::GlobalNode(3), sg::GlobalNode(2), 3);
    s.expect_regular = true;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "Fig1(c)";
    s.description = "T1->T2 @S1 ; T2->T1->CT1 @S2";
    s.graph.AddEdge(sg::GlobalNode(1), sg::GlobalNode(2), 1);
    s.graph.AddEdge(sg::GlobalNode(2), sg::GlobalNode(1), 2);
    s.graph.AddEdge(sg::GlobalNode(1), sg::CompNode(1), 2);
    s.expect_regular = true;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "CT-only";
    s.description = "CT1->CT2 @S1 ; CT2->CT1 @S2 (allowed by the criterion)";
    s.graph.AddEdge(sg::CompNode(1), sg::CompNode(2), 1);
    s.graph.AddEdge(sg::CompNode(2), sg::CompNode(1), 2);
    s.expect_regular = false;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "Example1";
    s.description =
        "CT1->T2 @S1 ; CT1->T2->CT3 @S2 ; CT3->CT1 @S3 (T2 interior)";
    s.graph.AddEdge(sg::CompNode(1), sg::GlobalNode(2), 1);
    s.graph.AddEdge(sg::CompNode(1), sg::GlobalNode(2), 2);
    s.graph.AddEdge(sg::GlobalNode(2), sg::CompNode(3), 2);
    s.graph.AddEdge(sg::CompNode(3), sg::CompNode(1), 3);
    s.expect_regular = false;
    scenarios.push_back(std::move(s));
  }

  return scenarios;
}

}  // namespace

int main() {
  std::printf(
      "F1: Figure 1 / Example 1 — regular-cycle classification\n"
      "(a cycle is *regular* iff a minimal representation includes a "
      "regular transaction)\n\n");

  metrics::TablePrinter table(
      {"scenario", "local SG segments", "cycle?", "regular?", "expected",
       "verdict"});
  bool all_ok = true;
  for (Scenario& scenario : BuildScenarios()) {
    sg::RegularCycleDetector detector(scenario.graph);
    const bool has_cycle = scenario.graph.HasCycle();
    const bool regular = detector.HasRegularCycle();
    const bool ok = regular == scenario.expect_regular;
    all_ok = all_ok && ok;
    table.AddRow({scenario.name, scenario.description,
                  has_cycle ? "yes" : "no", regular ? "REGULAR" : "allowed",
                  scenario.expect_regular ? "REGULAR" : "allowed",
                  ok ? "match" : "MISMATCH"});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Show a witness for Figure 1(a) to make the pivot semantics tangible.
  sg::SerializationGraph fig1a;
  fig1a.AddEdge(sg::CompNode(1), sg::GlobalNode(2), 1);
  fig1a.AddEdge(sg::GlobalNode(2), sg::CompNode(1), 2);
  sg::RegularCycleDetector detector(fig1a);
  if (auto witness = detector.FindWitness()) {
    std::printf("Fig1(a) witness: %s\n", witness->ToString().c_str());
  }
  return all_ok ? 0 : 1;
}
