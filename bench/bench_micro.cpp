// E7 — microbenchmarks of the building blocks (google-benchmark):
// event kernel, lock manager, conflict tracking + regular-cycle detection,
// marking-set checks.

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/flat_hash.h"
#include "common/rng.h"
#include "core/marking.h"
#include "lock/lock_manager.h"
#include "net/message.h"
#include "core/messages.h"
#include "net/payload_pool.h"
#include "sg/conflict_tracker.h"
#include "sg/regular_cycle.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace o2pc {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.Schedule(i % 97, [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

// The event-churn pattern of a protocol run (push/pop with a ~40-byte
// capture), comparing the small-buffer sim::Callback the queue actually
// stores against a std::function baseline carrying the same state.
void BM_EventQueueCallbackChurn(benchmark::State& state) {
  struct FakeDelivery {  // mirrors network delivery: this + Message
    void* self;
    net::Message message;
  };
  sim::EventQueue queue;
  for (auto _ : state) {
    FakeDelivery capture{&queue, {}};
    for (int i = 0; i < 64; ++i) {
      queue.Push(i, [capture] { benchmark::DoNotOptimize(capture.self); });
    }
    while (!queue.empty()) {
      sim::Event event = queue.Pop();
      event.fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueCallbackChurn);

void BM_StdFunctionChurnBaseline(benchmark::State& state) {
  struct FakeDelivery {
    void* self;
    net::Message message;
  };
  std::vector<std::function<void()>> events;
  events.reserve(64);
  for (auto _ : state) {
    FakeDelivery capture{&events, {}};
    for (int i = 0; i < 64; ++i) {
      events.emplace_back(
          [capture] { benchmark::DoNotOptimize(capture.self); });
    }
    for (auto& fn : events) fn();
    events.clear();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_StdFunctionChurnBaseline);

// Calendar-vs-heap A/B at the protocol's timer shape (same mix the
// cross-implementation property test in tests/sim_test.cc drives): mostly
// op costs and network hops within 200µs, a band of retransmit spikes at
// 1–20ms, and a long tail of recovery windows at 50–500ms. The classic
// hold model — pop one, push one at now+delay — measures the steady-state
// transit cost at a fixed queue population.
SimTime ProtocolDelay(Rng& rng) {
  const std::uint64_t draw = rng.Uniform(0, 9);
  if (draw < 6) return static_cast<SimTime>(rng.Uniform(0, 200));
  if (draw < 8) return static_cast<SimTime>(rng.Uniform(1000, 20000));
  return static_cast<SimTime>(rng.Uniform(50000, 500000));
}

void EventQueueHoldKernel(benchmark::State& state, bool calendar) {
  const int hold = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  queue.ForceImplementation(calendar);
  Rng rng(17);
  SimTime now = 0;
  for (int i = 0; i < hold; ++i) {
    queue.Push(ProtocolDelay(rng), [] {});
  }
  for (auto _ : state) {
    sim::Event event = queue.Pop();
    now = event.time;
    benchmark::DoNotOptimize(queue.Push(now + ProtocolDelay(rng), [] {}));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_EventQueueHoldCalendar(benchmark::State& state) {
  EventQueueHoldKernel(state, true);
}
BENCHMARK(BM_EventQueueHoldCalendar)->Arg(64)->Arg(1024)->Arg(16384);
void BM_EventQueueHoldHeapBaseline(benchmark::State& state) {
  EventQueueHoldKernel(state, false);
}
BENCHMARK(BM_EventQueueHoldHeapBaseline)->Arg(64)->Arg(1024)->Arg(16384);

// The retransmit lifecycle: arm a 1–20ms retransmit timer plus the op that
// will moot it, pop the op, cancel the timer (the ack nearly always beats
// the spike). Cancelled keys linger in the ordering structure until they
// surface, so this kernel prices both the O(1) cancel and the lazy reap.
void EventQueueCancelKernel(benchmark::State& state, bool calendar) {
  sim::EventQueue queue;
  queue.ForceImplementation(calendar);
  Rng rng(23);
  SimTime now = 0;
  for (auto _ : state) {
    const sim::EventId retransmit = queue.Push(
        now + 1000 + static_cast<SimTime>(rng.Uniform(0, 19000)), [] {});
    queue.Push(now + static_cast<SimTime>(rng.Uniform(0, 200)), [] {});
    sim::Event event = queue.Pop();
    now = event.time;
    benchmark::DoNotOptimize(queue.Cancel(retransmit));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_EventQueueRetransmitCancelCalendar(benchmark::State& state) {
  EventQueueCancelKernel(state, true);
}
BENCHMARK(BM_EventQueueRetransmitCancelCalendar);
void BM_EventQueueRetransmitCancelHeapBaseline(benchmark::State& state) {
  EventQueueCancelKernel(state, false);
}
BENCHMARK(BM_EventQueueRetransmitCancelHeapBaseline);

// Payload allocation: the thread-local freelist pool vs plain make_shared.
void BM_PayloadPoolAllocate(benchmark::State& state) {
  for (auto _ : state) {
    auto payload = net::MakePayload<core::VotePayload>();
    benchmark::DoNotOptimize(payload.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PayloadPoolAllocate);

void BM_PayloadMakeSharedBaseline(benchmark::State& state) {
  for (auto _ : state) {
    auto payload = std::make_shared<core::VotePayload>();
    benchmark::DoNotOptimize(payload.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PayloadMakeSharedBaseline);

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::Simulator sim;
  lock::LockManager locks(&sim, {});
  TxnId txn = 1;
  for (auto _ : state) {
    locks.Acquire(txn, 7, lock::LockMode::kExclusive, [](const Status&) {});
    sim.Run();
    locks.ReleaseAll(txn);
    ++txn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_LockContendedQueue(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  TxnId next = 1;
  for (auto _ : state) {
    sim::Simulator sim;
    lock::LockManager locks(&sim, {});
    const TxnId holder = next++;
    locks.Acquire(holder, 7, lock::LockMode::kExclusive, [](const Status&) {});
    sim.Run();
    for (int i = 0; i < waiters; ++i) {
      locks.Acquire(next++, 7, lock::LockMode::kExclusive,
                    [](const Status&) {});
    }
    sim.Run();
    locks.ReleaseAll(holder);  // grants cascade
    sim.Run();
    benchmark::DoNotOptimize(locks.stats().acquires);
  }
  state.SetItemsProcessed(state.iterations() * waiters);
}
BENCHMARK(BM_LockContendedQueue)->Arg(16)->Arg(128);

void BM_ConflictTrackerBuildGraph(benchmark::State& state) {
  const int accesses = static_cast<int>(state.range(0));
  Rng rng(5);
  sg::ConflictTracker tracker(0);
  for (int i = 0; i < accesses; ++i) {
    tracker.RecordAccess(
        sg::GlobalNode(static_cast<TxnId>(rng.Uniform(1, 200))),
        static_cast<DataKey>(rng.Uniform(0, 63)), rng.Bernoulli(0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.BuildGraph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * accesses);
}
BENCHMARK(BM_ConflictTrackerBuildGraph)->Arg(1000)->Arg(10000);

sg::SerializationGraph RandomGlobalSg(int txns, int sites,
                                      std::uint64_t seed) {
  Rng rng(seed);
  sg::SerializationGraph graph;
  for (int i = 0; i < txns * 3; ++i) {
    const TxnId a = static_cast<TxnId>(rng.Uniform(1, txns));
    const TxnId b = static_cast<TxnId>(rng.Uniform(1, txns));
    const SiteId site = static_cast<SiteId>(rng.Uniform(0, sites - 1));
    const bool a_ct = rng.Bernoulli(0.2);
    const bool b_ct = rng.Bernoulli(0.2);
    graph.AddEdge(a_ct ? sg::CompNode(a) : sg::GlobalNode(a),
                  b_ct ? sg::CompNode(b) : sg::GlobalNode(b), site);
  }
  return graph;
}

void BM_RegularCycleDetection(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  sg::SerializationGraph graph = RandomGlobalSg(txns, 4, 9);
  for (auto _ : state) {
    sg::RegularCycleDetector detector(graph);
    benchmark::DoNotOptimize(detector.HasRegularCycle());
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_RegularCycleDetection)->Arg(100)->Arg(500);

void BM_CompatibleCheckP1(benchmark::State& state) {
  core::TransMarks tm;
  core::SiteMarks site;
  for (TxnId ti = 1; ti <= 32; ++ti) {
    site.undone.insert(ti);
    tm.visited_sites = {0, 1, 2};
    tm.undone_seen[ti] = {0, 1, 2};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Compatible(core::GovernancePolicy::kP1, tm, site));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompatibleCheckP1);

// Lock-table churn: the queues_/held_ access pattern of a protocol run —
// lookup-or-insert on acquire, lookup on release, erase when the last lock
// goes. FlatMap (what LockManager uses) vs the std::map it replaced.
template <typename Map>
void MapChurnKernel(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<DataKey> sequence;
  sequence.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    sequence.push_back(static_cast<DataKey>(rng.Uniform(0, keys - 1)));
  }
  for (auto _ : state) {
    Map map;
    std::uint64_t sum = 0;
    for (DataKey key : sequence) {
      ++map[key];
      auto it = map.find(key);
      sum += it->second;
      if ((it->second & 7) == 0) map.erase(key);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
void BM_FlatMapChurn(benchmark::State& state) {
  MapChurnKernel<common::FlatMap<DataKey, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapChurn)->Arg(64)->Arg(1024);
void BM_StdMapChurnBaseline(benchmark::State& state) {
  MapChurnKernel<std::map<DataKey, std::uint64_t>>(state);
}
BENCHMARK(BM_StdMapChurnBaseline)->Arg(64)->Arg(1024);

// The R1 admission pattern: a small undone-mark set probed by contains()
// on every access. SmallSet (what SiteMarks uses) vs the std::set it
// replaced.
template <typename Set>
void SetProbeKernel(benchmark::State& state) {
  const int marks = static_cast<int>(state.range(0));
  Set undone;
  for (TxnId ti = 1; ti <= static_cast<TxnId>(marks); ++ti) {
    undone.insert(ti * 7);
  }
  for (auto _ : state) {
    int hits = 0;
    for (TxnId probe = 1; probe <= 256; ++probe) {
      hits += undone.contains(probe) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
void BM_SmallSetMarkProbe(benchmark::State& state) {
  SetProbeKernel<common::SmallSet<TxnId>>(state);
}
BENCHMARK(BM_SmallSetMarkProbe)->Arg(8)->Arg(64);
void BM_StdSetMarkProbeBaseline(benchmark::State& state) {
  SetProbeKernel<std::set<TxnId>>(state);
}
BENCHMARK(BM_StdSetMarkProbeBaseline)->Arg(8)->Arg(64);

void BM_WitnessGossipMerge(benchmark::State& state) {
  core::WitnessKnowledge source;
  for (TxnId ti = 1; ti <= 200; ++ti) {
    for (SiteId s = 0; s < 4; ++s) {
      source.Add(core::WitnessFact{ti, s});
    }
  }
  const core::MarkingGossip gossip = *source.Export();
  for (auto _ : state) {
    core::WitnessKnowledge sink;
    sink.Merge(gossip);
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(state.iterations() * 800);
}
BENCHMARK(BM_WitnessGossipMerge);

// The dominant call of a campaign run: gossip that the receiver has seen
// before. Exercises Merge's two-pointer subset fast path (no allocation,
// no rebuild).
void BM_WitnessGossipMergeStale(benchmark::State& state) {
  core::WitnessKnowledge sink;
  for (TxnId ti = 1; ti <= 200; ++ti) {
    for (SiteId s = 0; s < 4; ++s) {
      sink.Add(core::WitnessFact{ti, s});
    }
  }
  // Deep copy: with the shared_ptr the pointer-identity fast path would
  // skip the scan this kernel exists to measure.
  const core::MarkingGossip gossip = *sink.Export();
  for (auto _ : state) {
    sink.Merge(gossip);
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(state.iterations() * 800);
}
BENCHMARK(BM_WitnessGossipMergeStale);

// The message path proper: a shared exported snapshot merged repeatedly —
// the pointer-identity skip makes replays O(1).
void BM_WitnessGossipMergeSharedReplay(benchmark::State& state) {
  core::WitnessKnowledge source;
  core::WitnessKnowledge sink;
  for (TxnId ti = 1; ti <= 200; ++ti) {
    for (SiteId s = 0; s < 4; ++s) {
      source.Add(core::WitnessFact{ti, s});
    }
  }
  const auto gossip = source.Export();
  for (auto _ : state) {
    sink.Merge(gossip);
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(state.iterations() * 800);
}
BENCHMARK(BM_WitnessGossipMergeSharedReplay);

}  // namespace
}  // namespace o2pc

BENCHMARK_MAIN();
