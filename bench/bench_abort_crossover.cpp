// E3 — the optimistic assumption and its crossover (paper §2: "if the
// assumption is unfounded, the overhead incurred by the protocol is likely
// to outweigh its benefits").
//
// Sweep: vote-abort probability 0% -> 50%. Metrics: throughput of both
// protocols, compensation volume, O2PC/2PC throughput ratio (the crossover
// is where the ratio dips below 1).

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

harness::ExperimentConfig Config(core::CommitProtocol protocol,
                                 double abort_prob,
                                 core::GovernancePolicy governance =
                                     core::GovernancePolicy::kP1) {
  harness::ExperimentConfig config;
  config.label = core::CommitProtocolName(protocol);
  config.system.num_sites = 4;
  config.system.keys_per_site = 192;
  config.system.seed = 17;
  config.system.protocol.protocol = protocol;
  config.system.protocol.governance = governance;
  config.system.network.base_latency = Millis(10);
  config.workload.num_global_txns = 200;
  config.workload.num_local_txns = 200;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.ops_per_subtxn = 3;
  config.workload.zipf_theta = 0.5;
  config.workload.vote_abort_probability = abort_prob;
  config.workload.mean_global_interarrival = Millis(8);
  config.workload.mean_local_interarrival = Millis(4);
  config.workload.seed = 41;
  config.analyze = false;
  return config;
}

const double kAbortProbs[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5};

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E3: the optimistic assumption — throughput vs vote-abort rate\n\n");

  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (double p : kAbortProbs) {
    matrix.Add(Config(core::CommitProtocol::kTwoPhaseCommit, p));
    matrix.Add(Config(core::CommitProtocol::kOptimistic, p));
    matrix.Add(Config(core::CommitProtocol::kOptimistic, p,
                      core::GovernancePolicy::kNone));
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  metrics::TablePrinter table(
      {"abort prob", "2PC txn/s", "O2PC+P1 txn/s", "O2PC saga txn/s",
       "P1/2PC", "saga/2PC", "compensations", "R1 rejections"});
  std::size_t next = 0;
  for (double p : kAbortProbs) {
    harness::RunResult& two_pc = results[next++];
    harness::RunResult& o2pc = results[next++];
    harness::RunResult& saga = results[next++];
    const std::string prob = FormatDouble(p * 100, 0) + "%";
    two_pc.label = "2PC / " + prob;
    o2pc.label = "O2PC+P1 / " + prob;
    saga.label = "O2PC saga / " + prob;
    table.AddRow({prob,
                  FormatDouble(two_pc.throughput_tps, 1),
                  FormatDouble(o2pc.throughput_tps, 1),
                  FormatDouble(saga.throughput_tps, 1),
                  FormatDouble(o2pc.throughput_tps /
                                   std::max(0.001, two_pc.throughput_tps),
                               2),
                  FormatDouble(saga.throughput_tps /
                                   std::max(0.001, two_pc.throughput_tps),
                               2),
                  std::to_string(o2pc.compensations),
                  std::to_string(o2pc.r1_rejections)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: O2PC ahead/at parity at low abort rates; compensation\n"
      "erodes the margin as aborts grow (the saga column isolates pure\n"
      "compensation cost); with P1 the marking churn dominates at high\n"
      "abort rates — the paper's warning that the optimistic assumption\n"
      "must hold, quantified.\n");
  harness::WriteBenchJson("abort_crossover", results);
  return 0;
}
