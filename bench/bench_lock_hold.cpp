// E1 — early lock release (paper §1/§2).
//
// Claim: under distributed 2PL + 2PC, exclusive locks are held until the
// DECISION message arrives, so hold times grow with network latency (three
// message rounds); under O2PC all locks are released the moment the site
// votes, making the exclusive hold time independent of the decision round.
//
// Sweep: one-way network latency. Metric: mean/p99 exclusive-lock hold.

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

harness::ExperimentConfig Config(core::CommitProtocol protocol,
                                 Duration latency) {
  harness::ExperimentConfig config;
  config.label = core::CommitProtocolName(protocol);
  config.system.num_sites = 4;
  config.system.keys_per_site = 512;  // low contention: isolate hold time
  config.system.seed = 11;
  config.system.protocol.protocol = protocol;
  config.system.network.base_latency = latency;
  config.system.network.jitter = latency / 20;
  config.system.lock_wait_timeout = Seconds(5);
  config.workload.num_global_txns = 150;
  config.workload.num_local_txns = 0;
  config.workload.min_sites_per_txn = 2;
  config.workload.max_sites_per_txn = 2;
  config.workload.zipf_theta = 0.0;
  // Keep the multiprogramming level roughly constant across the latency
  // sweep (a transaction's lifetime is a few network rounds).
  config.workload.mean_global_interarrival = Micros(2000) + 2 * latency;
  config.workload.seed = 21;
  config.analyze = false;
  return config;
}

const Duration kLatencies[] = {Millis(1), Millis(5), Millis(10), Millis(20),
                               Millis(50)};

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E1: exclusive-lock hold time vs one-way network latency\n"
      "claim: 2PC holds X locks across the VOTE+DECISION rounds; O2PC "
      "releases at the vote\n\n");

  // The grid runs through the shared RunMatrix (--jobs N fans runs across
  // cores); results come back in submission order, so tables and JSON are
  // identical for every job count.
  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (Duration latency : kLatencies) {
    matrix.Add(Config(core::CommitProtocol::kTwoPhaseCommit, latency));
    matrix.Add(Config(core::CommitProtocol::kOptimistic, latency));
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  metrics::TablePrinter table({"latency", "2PC mean", "2PC p99", "O2PC mean",
                               "O2PC p99", "2PC/O2PC"});
  std::size_t next = 0;
  for (Duration latency : kLatencies) {
    harness::RunResult& two_pc = results[next++];
    harness::RunResult& o2pc = results[next++];
    two_pc.label = "2PC / " + FormatDuration(latency);
    o2pc.label = "O2PC / " + FormatDuration(latency);
    table.AddRow(
        {FormatDuration(latency),
         FormatDuration(static_cast<Duration>(two_pc.mean_xlock_hold_us)),
         FormatDuration(static_cast<Duration>(two_pc.p99_xlock_hold_us)),
         FormatDuration(static_cast<Duration>(o2pc.mean_xlock_hold_us)),
         FormatDuration(static_cast<Duration>(o2pc.p99_xlock_hold_us)),
         FormatDouble(two_pc.mean_xlock_hold_us /
                          std::max(1.0, o2pc.mean_xlock_hold_us),
                      2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: the 2PC/O2PC ratio grows with latency — O2PC's hold\n"
      "time stops depending on the decision round trip.\n");
  harness::WriteBenchJson("lock_hold", results);
  return 0;
}
