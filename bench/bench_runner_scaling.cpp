// E8 — parallel run-executor scaling and the determinism cross-check.
//
// Runs the same fault-campaign matrix at --jobs 1, 2, 4, 8 and reports
// wall-clock time, speedup over serial, and the sweep fingerprint of each
// configuration. The fingerprints MUST be identical — the executor's
// contract is that thread count changes only *when* a run executes, never
// *what* it computes — and the binary exits nonzero if they diverge, so the
// bench doubles as a determinism gate.
//
// Speedup depends on the machine: the emitted BENCH_runner_scaling.json
// records hardware_concurrency so a single-core container's ~1.0x is
// distinguishable from a real multi-core result.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "campaign/runner.h"
#include "common/string_util.h"
#include "exec/run_executor.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

campaign::CampaignOptions Matrix(int jobs) {
  campaign::CampaignOptions options;
  options.runs = 48;
  options.base_seed = 2026;
  options.jobs = jobs;
  options.num_sites = 4;
  options.num_globals = 24;
  options.num_locals = 12;
  options.shrink_failures = false;
  return options;
}

struct Point {
  int jobs = 1;
  double wall_ms = 0.0;
  double speedup = 1.0;
  std::uint64_t fingerprint = 0;
  int runs_completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const int hardware = exec::RunExecutor::HardwareJobs();
  const unsigned detected = exec::RunExecutor::DetectedHardwareConcurrency();
  // On a single-core (or unreported-topology) machine the speedup column
  // is meaningless — flag the result so downstream consumers don't read a
  // ~1.0x as an executor regression.
  const bool unmeasured = detected <= 1;
  std::printf(
      "E8: run-executor scaling on the fault-campaign matrix (48 runs)\n"
      "hardware threads: %d (detected: %u%s) — speedup saturates there; "
      "fingerprints must not change at all\n\n",
      hardware, detected,
      unmeasured ? ", speedup unmeasured on this machine" : "");

  std::vector<Point> points;
  for (int jobs : {1, 2, 4, 8}) {
    const auto start = std::chrono::steady_clock::now();
    const campaign::CampaignReport report =
        campaign::RunCampaign(Matrix(jobs));
    const auto end = std::chrono::steady_clock::now();
    Point point;
    point.jobs = jobs;
    point.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    point.fingerprint = report.CombinedFingerprint();
    point.runs_completed = report.runs_completed;
    point.speedup = points.empty() ? 1.0
                                   : points.front().wall_ms /
                                         std::max(0.001, point.wall_ms);
    points.push_back(point);
  }

  bool deterministic = true;
  metrics::TablePrinter table(
      {"jobs", "wall ms", "speedup", "sweep fingerprint"});
  char hex[32];
  for (const Point& point : points) {
    deterministic =
        deterministic && point.fingerprint == points.front().fingerprint &&
        point.runs_completed == points.front().runs_completed;
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(point.fingerprint));
    table.AddRow({std::to_string(point.jobs), FormatDouble(point.wall_ms, 1),
                  FormatDouble(point.speedup, 2), hex});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("determinism: %s\n",
              deterministic ? "ok (all fingerprints identical)"
                            : "VIOLATED — fingerprints differ across jobs");

  std::ofstream out("BENCH_runner_scaling.json");
  out << "{\n  \"hardware_concurrency\": " << detected
      << ",\n  \"hardware_jobs\": " << hardware
      << ",\n  \"unmeasured\": " << (unmeasured ? "true" : "false")
      << ",\n  \"campaign_runs\": " << points.front().runs_completed
      << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& point = points[i];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(point.fingerprint));
    out << (i ? "," : "") << "\n    {\"jobs\": " << point.jobs
        << ", \"wall_ms\": " << point.wall_ms
        << ", \"speedup\": " << point.speedup << ", \"fingerprint\": \""
        << hex << "\"}";
  }
  out << "\n  ]\n}\n";
  return deterministic ? 0 : 1;
}
