// E6 — the "no extra messages" claim (paper §1, §6, §7).
//
// Runs the identical workload under 2PC and O2PC and prints the per-type
// message counts. The transactions are serialized (no lock queueing, no
// restarts) and retransmission timers are disabled, so the counts are the
// pure protocol pattern: per N-site transaction, exactly N messages of
// each of the six types, *identical* under 2PC and O2PC — commit or abort.
// Compensation after an abort decision is local to each site and sends
// nothing.
//
// A third column runs O2PC with marking protocol P1 enabled: the marking
// information rides piggyback, so the message types and counts still do
// not change (only genuine R1 retries would add invoke/ack pairs; a
// serialized workload has none).

#include <cstdio>

#include "common/string_util.h"
#include "harness/run_matrix.h"
#include "metrics/table.h"

using namespace o2pc;

namespace {

constexpr int kTxns = 100;

harness::ExperimentConfig Config(core::CommitProtocol protocol,
                                 core::GovernancePolicy governance,
                                 double abort_prob) {
  harness::ExperimentConfig config;
  config.label = core::CommitProtocolName(protocol);
  config.system.num_sites = 4;
  config.system.keys_per_site = 256;
  config.system.seed = 99;
  config.system.protocol.protocol = protocol;
  config.system.protocol.governance = governance;
  config.system.protocol.resend_timeout = 0;  // lossless network
  config.workload.num_global_txns = kTxns;
  config.workload.num_local_txns = 0;
  config.workload.min_sites_per_txn = 3;
  config.workload.max_sites_per_txn = 3;
  config.workload.vote_abort_probability = abort_prob;
  config.workload.zipf_theta = 0.0;
  // Fully serialized arrivals: the counts are the protocol itself, not
  // contention artifacts.
  config.workload.mean_global_interarrival = Millis(200);
  config.workload.seed = 7;
  config.analyze = false;
  return config;
}

const double kAbortProbs[] = {0.0, 0.2};

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E6: message counts, identical serialized workload\n"
      "(100 global txns, 3 sites each => expected 300 of each type)\n"
      "claim: O2PC incurs no messages beyond the standard 2PC exchange\n\n");

  harness::RunMatrix matrix(harness::JobsFromArgs(argc, argv));
  for (double abort_prob : kAbortProbs) {
    matrix.Add(Config(core::CommitProtocol::kTwoPhaseCommit,
                      core::GovernancePolicy::kNone, abort_prob));
    matrix.Add(Config(core::CommitProtocol::kOptimistic,
                      core::GovernancePolicy::kNone, abort_prob));
    matrix.Add(Config(core::CommitProtocol::kOptimistic,
                      core::GovernancePolicy::kP1, abort_prob));
  }
  std::vector<harness::RunResult> results = matrix.RunAll();

  std::size_t next = 0;
  for (double abort_prob : kAbortProbs) {
    harness::RunResult& two_pc = results[next++];
    harness::RunResult& o2pc = results[next++];
    harness::RunResult& o2pc_p1 = results[next++];
    const std::string prob = FormatDouble(abort_prob * 100, 0) + "%";
    two_pc.label = "2PC / abort " + prob;
    o2pc.label = "O2PC / abort " + prob;
    o2pc_p1.label = "O2PC+P1 / abort " + prob;

    std::printf("vote-abort probability = %.0f%%\n", abort_prob * 100);
    metrics::TablePrinter table(
        {"message type", "2PC", "O2PC", "O2PC+P1"});
    for (int t = 0; t < net::kNumMessageTypes; ++t) {
      const auto type = static_cast<net::MessageType>(t);
      if (type == net::MessageType::kUser) continue;
      table.AddRow({net::MessageTypeName(type),
                    std::to_string(two_pc.messages_by_type[t]),
                    std::to_string(o2pc.messages_by_type[t]),
                    std::to_string(o2pc_p1.messages_by_type[t])});
    }
    table.AddRow({"TOTAL", std::to_string(two_pc.messages_total),
                  std::to_string(o2pc.messages_total),
                  std::to_string(o2pc_p1.messages_total)});
    table.AddRow({"compensations (local, 0 msgs)", "0",
                  std::to_string(o2pc.compensations),
                  std::to_string(o2pc_p1.compensations)});
    std::printf("%s\n", table.ToString().c_str());
  }
  harness::WriteBenchJson("messages", results);
  return 0;
}
