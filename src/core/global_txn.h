#ifndef O2PC_CORE_GLOBAL_TXN_H_
#define O2PC_CORE_GLOBAL_TXN_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "local/local_txn.h"

/// \file
/// Global-transaction specifications (the decomposition into per-site
/// subtransactions, §3.1) and the result type reported when the commit
/// protocol drains.

namespace o2pc::core {

/// One subtransaction T_ij: the operations global transaction T_i issues
/// against site S_j.
struct SubtxnSpec {
  SiteId site = kInvalidSite;
  std::vector<local::Operation> ops;
  /// Failure injection: this site votes ABORT at VOTE-REQ even though its
  /// operations succeeded (models local integrity violations and the
  /// autonomy-driven unilateral aborts the paper emphasizes).
  bool force_abort_vote = false;
};

/// A global transaction: a set of subtransactions at distinct sites.
struct GlobalTxnSpec {
  std::vector<SubtxnSpec> subtxns;

  std::vector<SiteId> Sites() const;
  bool Valid() const;  // at least one subtxn, sites distinct
};

/// Outcome of one *incarnation* of a global transaction.
struct GlobalResult {
  TxnId id = kInvalidTxn;
  bool committed = false;
  /// Terminal status: OK (committed), kAborted (vote/decision abort),
  /// kDeadlock, kRejected (R1 gave up), ...
  Status status;
  /// True when resubmitting the same work could succeed (deadlock victim,
  /// R1 rejection) as opposed to a genuine vote-abort.
  bool restartable = false;
  /// True iff some participant locally committed (exposed updates) during
  /// this incarnation. Aborted-and-never-exposed incarnations are
  /// observationally absent from the history (see sg::AnalyzeHistory).
  bool exposed = false;

  SimTime submit_time = 0;
  SimTime decide_time = 0;
  SimTime finish_time = 0;
  int num_sites = 0;
  int compensations = 0;
  int r1_rejections = 0;
};

using GlobalDoneCallback = std::function<void(const GlobalResult&)>;

/// Monotone transaction-id source shared by the whole system; ids double
/// as transaction ages for the youngest-victim deadlock policy.
class TxnIdAllocator {
 public:
  TxnId Next() { return next_++; }

 private:
  TxnId next_ = 1;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_GLOBAL_TXN_H_
