#include "core/marking.h"

#include "common/string_util.h"
#include "trace/trace.h"

namespace o2pc::core {

int TransMarks::UndoneCount(TxnId ti) const {
  auto it = undone_seen.find(ti);
  return it == undone_seen.end() ? 0 : static_cast<int>(it->second.size());
}

int TransMarks::LcCount(TxnId ti) const {
  auto it = lc_seen.find(ti);
  return it == lc_seen.end() ? 0 : static_cast<int>(it->second.size());
}

std::string TransMarks::ToString() const {
  std::vector<std::string> parts;
  parts.push_back(StrCat("visited=", visited()));
  for (const auto& [ti, sites] : undone_seen) {
    if (!sites.empty()) {
      parts.push_back(StrCat("ud(T", ti, ")=", sites.size()));
    }
  }
  for (const auto& [ti, sites] : lc_seen) {
    if (!sites.empty()) {
      parts.push_back(StrCat("lc(T", ti, ")=", sites.size()));
    }
  }
  return Join(parts, " ");
}

namespace {

/// P1 invariant: for every T_i, the visited sites are either *all* undone
/// w.r.t. T_i or *none* of them is. (The paper's one-way `transmarks
/// subset-of sitemarks` check is the forward half; the second loop is the
/// backward half that rejects "unmarked site first, undone site later" —
/// the case §6.2 singles out as resolvable only by aborting.)
bool CompatibleP1(const TransMarks& tm, const SiteMarks& site) {
  for (const auto& [ti, seen] : tm.undone_seen) {
    if (!seen.empty() && !site.undone.contains(ti)) return false;
  }
  for (TxnId ti : site.undone) {
    if (tm.UndoneCount(ti) < tm.visited()) return false;
  }
  return true;
}

/// The paper's P2 rule exactly as stated: locally-committed marks must be
/// all-or-nothing; undone and unmarked sites may mix freely. Unsound on
/// its own (see protocol.h, kP2Literal).
bool CompatibleP2Literal(const TransMarks& tm, const SiteMarks& site) {
  for (const auto& [ti, seen] : tm.lc_seen) {
    if (!seen.empty() && !site.locally_committed.contains(ti)) return false;
  }
  for (TxnId ti : site.locally_committed) {
    if (tm.LcCount(ti) < tm.visited()) return false;
  }
  return true;
}

/// The §6.2 "very simple protocol": all sites undone w.r.t. the same
/// transactions and locally-committed w.r.t. none.
bool CompatibleSimple(const TransMarks& tm, const SiteMarks& site) {
  if (!site.locally_committed.empty()) return false;
  for (const auto& [ti, seen] : tm.undone_seen) {
    if (!seen.empty() && !site.undone.contains(ti)) return false;
  }
  for (TxnId ti : site.undone) {
    if (tm.visited() > 0 && tm.UndoneCount(ti) != tm.visited()) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool Compatible(GovernancePolicy policy, const TransMarks& tm,
                const SiteMarks& site) {
  switch (policy) {
    case GovernancePolicy::kNone:
      return true;
    case GovernancePolicy::kP1:
      return CompatibleP1(tm, site);
    case GovernancePolicy::kP2:
      // Strengthened P2: the literal dual plus P1's undone-uniformity.
      return CompatibleP2Literal(tm, site) && CompatibleP1(tm, site);
    case GovernancePolicy::kP2Literal:
      return CompatibleP2Literal(tm, site);
    case GovernancePolicy::kSimple:
      return CompatibleSimple(tm, site);
  }
  return true;
}

void MergeMarks(const SiteMarks& site_marks, SiteId site, TransMarks& tm) {
  tm.visited_sites.push_back(site);
  for (TxnId ti : site_marks.undone) tm.undone_seen[ti].insert(site);
  for (TxnId ti : site_marks.locally_committed) tm.lc_seen[ti].insert(site);
}

void WitnessKnowledge::Add(const WitnessFact& fact) {
  // Journaled only on first-hand registration; gossiped copies (Merge)
  // trace back to an earlier Add at the witnessing vantage point.
  O2PC_TRACE(kWitness, fact.site, fact.ti);
  facts_.insert(fact);
}

void WitnessKnowledge::Merge(const MarkingGossip& gossip) {
  for (const WitnessFact& fact : gossip.witnesses) facts_.insert(fact);
  for (const auto& [ti, sites] : gossip.exec_sites) {
    exec_sites_.emplace(ti, sites);
  }
}

void WitnessKnowledge::SetExecSites(TxnId ti, std::vector<SiteId> sites) {
  exec_sites_.emplace(ti, std::move(sites));
}

const std::vector<SiteId>* WitnessKnowledge::ExecSitesOf(TxnId ti) const {
  auto it = exec_sites_.find(ti);
  return it == exec_sites_.end() ? nullptr : &it->second;
}

MarkingGossip WitnessKnowledge::Export() const {
  MarkingGossip gossip;
  gossip.witnesses.assign(facts_.begin(), facts_.end());
  gossip.exec_sites.assign(exec_sites_.begin(), exec_sites_.end());
  return gossip;
}

bool WitnessKnowledge::Covers(TxnId ti,
                              const std::vector<SiteId>& exec_sites) const {
  if (exec_sites.empty()) return false;
  for (SiteId site : exec_sites) {
    if (!facts_.contains(WitnessFact{ti, site})) return false;
  }
  return true;
}

bool WitnessKnowledge::Retired(TxnId ti) const {
  auto it = exec_sites_.find(ti);
  if (it == exec_sites_.end()) return false;
  return Covers(ti, it->second);
}

}  // namespace o2pc::core
