#include "core/marking.h"

#include <algorithm>

#include "common/string_util.h"
#include "trace/trace.h"

namespace o2pc::core {

int TransMarks::UndoneCount(TxnId ti) const {
  auto it = undone_seen.find(ti);
  return it == undone_seen.end() ? 0 : static_cast<int>(it->second.size());
}

int TransMarks::LcCount(TxnId ti) const {
  auto it = lc_seen.find(ti);
  return it == lc_seen.end() ? 0 : static_cast<int>(it->second.size());
}

std::string TransMarks::ToString() const {
  std::vector<std::string> parts;
  parts.push_back(StrCat("visited=", visited()));
  for (const auto& [ti, sites] : undone_seen) {
    if (!sites.empty()) {
      parts.push_back(StrCat("ud(T", ti, ")=", sites.size()));
    }
  }
  for (const auto& [ti, sites] : lc_seen) {
    if (!sites.empty()) {
      parts.push_back(StrCat("lc(T", ti, ")=", sites.size()));
    }
  }
  return Join(parts, " ");
}

namespace {

/// P1 invariant: for every T_i, the visited sites are either *all* undone
/// w.r.t. T_i or *none* of them is. (The paper's one-way `transmarks
/// subset-of sitemarks` check is the forward half; the second loop is the
/// backward half that rejects "unmarked site first, undone site later" —
/// the case §6.2 singles out as resolvable only by aborting.)
bool CompatibleP1(const TransMarks& tm, const SiteMarks& site) {
  for (const auto& [ti, seen] : tm.undone_seen) {
    if (!seen.empty() && !site.undone.contains(ti)) return false;
  }
  for (TxnId ti : site.undone) {
    if (tm.UndoneCount(ti) < tm.visited()) return false;
  }
  return true;
}

/// The paper's P2 rule exactly as stated: locally-committed marks must be
/// all-or-nothing; undone and unmarked sites may mix freely. Unsound on
/// its own (see protocol.h, kP2Literal).
bool CompatibleP2Literal(const TransMarks& tm, const SiteMarks& site) {
  for (const auto& [ti, seen] : tm.lc_seen) {
    if (!seen.empty() && !site.locally_committed.contains(ti)) return false;
  }
  for (TxnId ti : site.locally_committed) {
    if (tm.LcCount(ti) < tm.visited()) return false;
  }
  return true;
}

/// The §6.2 "very simple protocol": all sites undone w.r.t. the same
/// transactions and locally-committed w.r.t. none.
bool CompatibleSimple(const TransMarks& tm, const SiteMarks& site) {
  if (!site.locally_committed.empty()) return false;
  for (const auto& [ti, seen] : tm.undone_seen) {
    if (!seen.empty() && !site.undone.contains(ti)) return false;
  }
  for (TxnId ti : site.undone) {
    if (tm.visited() > 0 && tm.UndoneCount(ti) != tm.visited()) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool Compatible(GovernancePolicy policy, const TransMarks& tm,
                const SiteMarks& site) {
  switch (policy) {
    case GovernancePolicy::kNone:
      return true;
    case GovernancePolicy::kP1:
      return CompatibleP1(tm, site);
    case GovernancePolicy::kP2:
      // Strengthened P2: the literal dual plus P1's undone-uniformity.
      return CompatibleP2Literal(tm, site) && CompatibleP1(tm, site);
    case GovernancePolicy::kP2Literal:
      return CompatibleP2Literal(tm, site);
    case GovernancePolicy::kSimple:
      return CompatibleSimple(tm, site);
  }
  return true;
}

void MergeMarks(const SiteMarks& site_marks, SiteId site, TransMarks& tm) {
  tm.visited_sites.push_back(site);
  for (TxnId ti : site_marks.undone) tm.undone_seen[ti].insert(site);
  for (TxnId ti : site_marks.locally_committed) tm.lc_seen[ti].insert(site);
}

bool WitnessKnowledge::HasFact(const WitnessFact& fact) const {
  return std::binary_search(facts_.begin(), facts_.end(), fact);
}

bool WitnessKnowledge::InsertFact(const WitnessFact& fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it != facts_.end() && *it == fact) return false;
  facts_.insert(it, fact);
  export_cache_.reset();
  return true;
}

void WitnessKnowledge::Add(const WitnessFact& fact) {
  // Journaled only on first-hand registration; gossiped copies (Merge)
  // trace back to an earlier Add at the witnessing vantage point.
  O2PC_TRACE(kWitness, fact.site, fact.ti);
  InsertFact(fact);
}

void WitnessKnowledge::Merge(const MarkingGossip& gossip) {
  if (!gossip.witnesses.empty()) {
    // Export() produces sorted-unique gossip, so the overwhelmingly common
    // stale-gossip case is a single two-pointer subset walk (gossip is
    // usually the sender's *entire* fact set, so both sides have comparable
    // sizes and a sequential linear scan beats a binary search per fact).
    // The walk validates sorted-uniqueness as it goes: hand-built gossip —
    // tests — may be unsorted or carry duplicates (set_union would keep
    // them) and falls back to the per-fact path.
    bool ordered = true;
    bool subset = facts_.size() >= gossip.witnesses.size();
    const WitnessFact* prev = nullptr;
    auto mine = facts_.begin();
    for (const WitnessFact& fact : gossip.witnesses) {
      if (prev != nullptr && !(*prev < fact)) {
        ordered = false;
        break;
      }
      prev = &fact;
      if (subset) {
        while (mine != facts_.end() && *mine < fact) ++mine;
        if (mine == facts_.end() || *mine != fact) {
          subset = false;  // keep scanning: the ordering check must finish
        } else {
          ++mine;
        }
      }
    }
    if (!ordered) {
      for (const WitnessFact& fact : gossip.witnesses) InsertFact(fact);
    } else if (!subset) {
      std::vector<WitnessFact> merged;
      merged.reserve(facts_.size() + gossip.witnesses.size());
      std::set_union(facts_.begin(), facts_.end(), gossip.witnesses.begin(),
                     gossip.witnesses.end(), std::back_inserter(merged));
      facts_ = std::move(merged);
      export_cache_.reset();
    }
  }
  // Export() lists exec_sites in ascending key order, so walk both sides in
  // lockstep — stale entries (the common case) cost one comparison each and
  // only genuinely new transactions pay a sorted insert. Out-of-order
  // hand-built gossip just misses the match test and degrades to the
  // emplace below, which re-searches from scratch and never duplicates.
  auto known = exec_sites_.begin();
  for (const auto& [ti, sites] : gossip.exec_sites) {
    while (known != exec_sites_.end() && known->first < ti) ++known;
    if (known != exec_sites_.end() && known->first == ti) continue;
    known = exec_sites_.emplace(ti, sites).first;  // revalidates `known`
    ++known;
    export_cache_.reset();
  }
}

void WitnessKnowledge::Merge(
    const std::shared_ptr<const MarkingGossip>& gossip) {
  if (gossip == nullptr) return;
  // Our own live export (oracle mode merges the shared directory into
  // itself constantly) or a replay of the last-merged snapshot: nothing
  // new by construction.
  if (gossip == export_cache_ || gossip == last_merged_) return;
  Merge(*gossip);
  last_merged_ = gossip;
}

void WitnessKnowledge::SetExecSites(TxnId ti, std::vector<SiteId> sites) {
  if (exec_sites_.emplace(ti, std::move(sites)).second) {
    export_cache_.reset();
  }
}

const std::vector<SiteId>* WitnessKnowledge::ExecSitesOf(TxnId ti) const {
  auto it = exec_sites_.find(ti);
  return it == exec_sites_.end() ? nullptr : &it->second;
}

std::shared_ptr<const MarkingGossip> WitnessKnowledge::Export() const {
  if (export_cache_ == nullptr) {
    auto gossip = std::make_shared<MarkingGossip>();
    gossip->witnesses = facts_;  // already sorted ascending
    gossip->exec_sites.assign(exec_sites_.begin(), exec_sites_.end());
    export_cache_ = std::move(gossip);
  }
  return export_cache_;
}

bool WitnessKnowledge::Covers(TxnId ti,
                              const std::vector<SiteId>& exec_sites) const {
  if (exec_sites.empty()) return false;
  for (SiteId site : exec_sites) {
    if (!HasFact(WitnessFact{ti, site})) return false;
  }
  return true;
}

bool WitnessKnowledge::Retired(TxnId ti) const {
  auto it = exec_sites_.find(ti);
  if (it == exec_sites_.end()) return false;
  return Covers(ti, it->second);
}

}  // namespace o2pc::core
