#ifndef O2PC_CORE_PARTICIPANT_H_
#define O2PC_CORE_PARTICIPANT_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "common/retry_policy.h"
#include "common/types.h"
#include "core/compensation.h"
#include "core/global_txn.h"
#include "core/marking.h"
#include "core/messages.h"
#include "core/protocol.h"
#include "core/step_hook.h"
#include "local/local_db.h"
#include "metrics/stats.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "trace/trace.h"

/// \file
/// The participant role of one site: executes subtransactions (applying
/// rule R1's marking check first), answers VOTE-REQ, and processes the
/// DECISION — which, under O2PC, is where the two protocols diverge:
///
///   * 2PC   : vote commit => kPrepared, exclusive locks held until the
///             DECISION (blocking window);
///   * O2PC  : vote commit => locally-committed, **all locks released**;
///             DECISION = abort => compensating subtransaction (rules R2,
///             R3 maintain the site marks).
///
/// A site hosting a *real action* always takes the 2PC path for that
/// transaction (§2's adjustment for non-compensatable actions).

namespace o2pc::core {

class Participant {
 public:
  struct Options {
    ProtocolConfig protocol;
    /// Reserved key whose lock serializes access to the marking sets
    /// (the paper stores `sitemarks.k` in the local database, §6.2).
    DataKey marks_key = 0;
    /// Optional step-indexed instrumentation (fault injection). Points at
    /// the owner's hook slot so it can be (re)installed after construction.
    const StepHook* step_hook = nullptr;
    /// Seeds the termination timers' jitter streams (per subtransaction,
    /// derived as seed ^ hash(global id) — order-independent, replay-safe).
    std::uint64_t seed = 0;
  };

  Participant(sim::Simulator* simulator, net::Network* network,
              local::LocalDb* db, TxnIdAllocator* ids,
              WitnessKnowledge* knowledge, metrics::StatsCollector* stats,
              Options options);
  Participant(const Participant&) = delete;
  Participant& operator=(const Participant&) = delete;

  /// Network entry point for SUBTXN-INVOKE / VOTE-REQ / DECISION /
  /// TERM-REQ / TERM-RESP.
  void OnMessage(const net::Message& message);

  /// Snapshot of the transactions this site is currently undone w.r.t.
  /// (taken by local transactions at begin, for witness bookkeeping).
  common::SmallSet<TxnId> SnapshotUndone() const { return marks_.undone; }

  /// Called when a *local* transaction that began under `entry_undone`
  /// commits: registers UDUM1 witness facts and re-evaluates rule R3.
  void WitnessLocal(const common::SmallSet<TxnId>& entry_undone);

  /// Local autonomy ([BST90], paper §1): the site unilaterally aborts its
  /// subtransaction of `global_id` — allowed any time before the
  /// subtransaction terminates (i.e. before this site votes). Returns
  /// false when it is too late (already voted / locally committed) or the
  /// transaction is unknown here. A pre-vote unilateral abort surfaces to
  /// the coordinator as a failure ack or an abort vote; O2PC preserves
  /// this right, which 2PC's prepared state would forfeit.
  bool UnilateralAbort(TxnId global_id);

  /// Site crash notification: volatile subtransaction runtimes are lost
  /// (the marks survive — the paper stores sitemarks in the database).
  /// `rolled_back_globals` are the global ids whose in-flight
  /// subtransactions recovery just rolled back; they become undone marks.
  /// Later (resent) VOTE-REQ / DECISION messages for forgotten
  /// transactions are answered from the WAL: pending-prepared and
  /// pending-exposed subtransactions re-vote commit; anything else votes
  /// abort; abort decisions for pending-exposed subtransactions re-run
  /// compensation from the logged counter-operations.
  void OnCrash(const std::vector<TxnId>& rolled_back_globals);

  // --- Site recovery phase (crash restart) ------------------------------

  /// Counters of the recovery phase's WAL analysis + catch-up pass.
  struct RecoveryStats {
    /// In-doubt subtransactions (pending-exposed + pending-prepared) the
    /// analysis pass found in the WAL.
    int in_doubt = 0;
    /// In-doubt subtransactions whose abort verdict was already known to
    /// the merged witness gossip and were resolved during catch-up.
    int resolved = 0;
  };

  /// Starts the recovery phase after an outage: merges the witness-gossip
  /// `snapshots` pulled from reachable peers, re-evaluates rule R3, and
  /// resolves every in-doubt subtransaction whose verdict the merged
  /// knowledge already carries — exec_sites are learned only from abort
  /// DECISIONs, so a known execution-site set implies T_i aborted and its
  /// compensation CT_i must replay here *before* the site accepts new
  /// work (the marking catch-up that closes the crash-window SG straddle).
  /// Prepared in-doubt subtransactions with a known verdict are rolled
  /// back first so their recovery locks cannot block the catch-up CTs.
  /// `on_catchup_settled` fires once every catch-up compensation has
  /// completed (synchronously when none run).
  RecoveryStats BeginRecovery(
      const std::vector<std::shared_ptr<const MarkingGossip>>& snapshots,
      std::function<void()> on_catchup_settled);

  /// Closes the recovery phase: arms the termination protocol
  /// (DECISION-REQ / cooperative termination) for every subtransaction
  /// still in doubt. Returns the number left unresolved.
  int FinishRecovery();

  /// Exports this site's witness-gossip snapshot (for a recovering peer's
  /// marking catch-up).
  std::shared_ptr<const MarkingGossip> ExportKnowledge() const {
    return Gossip();
  }

  /// In-doubt subtransactions currently pending in the WAL (pending
  /// exposed + pending prepared) — the recovery analysis pass's input.
  int InDoubtCount() const;

  const SiteMarks& marks() const { return marks_; }
  SiteId site() const { return db_->site(); }

  /// True while any subtransaction of `txn` exists here (tests).
  bool Knows(TxnId txn) const { return subtxns_.contains(txn); }

 private:
  /// Runtime of one subtransaction (one global transaction at this site).
  struct Subtxn {
    TxnId global_id = kInvalidTxn;
    SiteId coordinator = kInvalidSite;
    /// Local identity of the current execution attempt (fresh per R1
    /// retry, so the local DBMS sees distinct transactions).
    TxnId local_id = kInvalidTxn;
    std::vector<local::Operation> ops;
    std::size_t next_op = 0;
    /// transmarks.j as received with the invoke (pre-merge).
    TransMarks invoke_marks;
    /// Start time of the global incarnation (for retirement fences).
    SimTime txn_start = 0;
    /// When rule R1 admitted this attempt (tombstones no newer than this
    /// were already evaluated by the admission fence).
    SimTime admit_time = 0;
    /// transmarks.j after merging this site's marks (returned in the ack).
    TransMarks merged_marks;
    /// The undone set observed at entry — this subtransaction "executed
    /// while the site was undone" w.r.t. exactly these transactions.
    common::SmallSet<TxnId> entry_undone;
    bool force_abort_vote = false;
    /// Attempt number of the current invoke (R1 retries bump it).
    int attempt = -1;
    bool executed = false;   // ops ran to completion (acked OK)
    bool voted = false;
    bool vote_commit = false;
    bool decided = false;
    bool decision_acked = false;
    /// Cached ack payloads for duplicate-message resends.
    std::shared_ptr<const SubtxnAckPayload> last_ack;
    std::shared_ptr<const VotePayload> last_vote;
    std::shared_ptr<const DecisionAckPayload> last_decision_ack;

    // --- Termination state (blocking resolution). ---
    /// Peer participants from the VOTE-REQ; the CTP query targets.
    std::vector<SiteId> participants;
    /// The learned outcome, cached to answer TERM-REQs from blocked peers.
    bool decision_commit = false;
    bool decision_exposed = false;
    std::vector<SiteId> decision_exec_sites;
    /// When this subtransaction entered the prepared state (kInvalid when
    /// it never did); feeds the blocked_prepared metrics.
    SimTime prepared_at = 0;
    /// Backoff schedule of the post-vote decision timer.
    common::RetryPolicy term_policy;
    /// Timer liveness guards: a pending timer event fires only while the
    /// captured sequence number still matches (reinitialization, crash
    /// recovery, and cancellation all bump it).
    std::uint64_t term_seq = 0;
    std::uint64_t prevote_seq = 0;
    sim::EventId term_event = sim::kInvalidEvent;
    sim::EventId prevote_event = sim::kInvalidEvent;
    /// Decision-timer rounds fired so far (first rounds send DECISION-REQ,
    /// later rounds run the cooperative termination protocol).
    int term_rounds = 0;
  };

  bool MarkingActive() const {
    return options_.protocol.protocol == CommitProtocol::kOptimistic &&
           options_.protocol.governance != GovernancePolicy::kNone;
  }
  bool MaintainLcMarks() const {
    return MarkingActive() &&
           (options_.protocol.governance == GovernancePolicy::kP2 ||
            options_.protocol.governance == GovernancePolicy::kP2Literal ||
            options_.protocol.governance == GovernancePolicy::kSimple);
  }

  /// Announces a protocol step to the installed StepHook (if any).
  void Step(ProtocolStep step, TxnId txn);

  void OnSubtxnInvoke(const net::Message& message);
  void OnVoteRequest(const net::Message& message);
  void OnDecision(const net::Message& message);
  /// Cooperative termination: a blocked peer asks whether this site knows
  /// (or can force) the outcome of a transaction.
  void OnTermRequest(const net::Message& message);
  void OnTermResponse(const net::Message& message);

  // --- Termination timers (blocking resolution). ---
  /// Arms the post-vote decision timer (no-op when decision_timeout == 0
  /// or the decision is already known).
  void ArmTermination(Subtxn& sub);
  /// Arms the pre-vote local-autonomy timer at execution completion.
  void ArmPrevoteTimer(Subtxn& sub);
  /// One firing of the decision timer: DECISION-REQ first, cooperative
  /// termination rounds after `decision_req_attempts`.
  void TerminationRound(Subtxn& sub);
  /// Invalidates both timers (decision learned / runtime reinitialized).
  void CancelTermination(Subtxn& sub);
  /// Records that the decision for `sub` is now known: caches the outcome
  /// for TERM-REQ peers, cancels the timers, and closes the
  /// blocked-prepared accounting window.
  void NoteDecision(Subtxn& sub, bool commit, bool exposed,
                    const std::vector<SiteId>& exec_sites);
  /// Applies a known decision to the local state (final-commit, rollback,
  /// or compensation) and acks it — shared by OnDecision, the
  /// cooperative-termination resolution path, and recovery catch-up.
  /// `on_settled` (optional) fires once the decision's local effect is
  /// durable — immediately for commits/rollbacks, at CT completion for
  /// compensations.
  void ApplyDecision(TxnId global_id, bool commit, bool exposed,
                     const std::vector<SiteId>& exec_sites,
                     std::function<void()> on_settled = nullptr);

  /// Rebuilds a minimal runtime for a transaction forgotten in a crash,
  /// from the WAL's pending records. Returns nullptr when the WAL knows
  /// nothing pending for it. When `coordinator` is kInvalidSite, the
  /// coordinator and peer set force-logged with the vote record are used.
  Subtxn* RecoverRuntime(TxnId global_id, SiteId coordinator);

  /// Starts executing `sub`'s operations (after R1 admitted it).
  void ExecuteNext(TxnId global_id);
  /// All operations done: optional end-of-subtransaction revalidation of
  /// the marking check, then ack.
  void FinishExecution(TxnId global_id);
  /// Records witnesses and sends the OK ack.
  void CompleteExecution(Subtxn& sub);
  /// The subtransaction failed locally (deadlock, semantic error):
  /// roll back (invisible exact restore), mark undone, ack.
  void FailSubtxn(TxnId global_id, const Status& status);
  void SendAck(Subtxn& sub, std::shared_ptr<const SubtxnAckPayload> payload);

  void SendVote(Subtxn& sub, bool commit, bool recovery_abort = false);
  void SendDecisionAck(Subtxn& sub, bool compensated);

  /// Adds the undone mark for `forward` (rule R2 already wrote the marking
  /// set under the CT's lock; this mirrors it into the fast structure).
  /// `exposed` = T_i locally committed somewhere (or might have —
  /// vote-abort marks pass true conservatively until the DECISION says).
  void AddUndoneMark(TxnId forward, bool exposed,
                     trace::MarkReason reason);
  /// Registers witness facts for a transaction that executed while this
  /// site was undone w.r.t. `entry_undone`, then applies rule R3.
  void Witness(const common::SmallSet<TxnId>& entry_undone);
  /// Rule R3: unmark every T_i whose UDUM1 condition now holds.
  void TryUnmark();

  /// Retires the undone mark for `ti` (rule R3), leaving a timestamped
  /// tombstone behind for the retirement fence. `self_witness` adds this
  /// site's witness fact first.
  void RetireMark(TxnId ti, bool self_witness);

  /// Marks whose UDUM1 condition holds once the arriving subtransaction is
  /// counted as a witness of this site. The paper executes R3 "as part of
  /// the transaction that enabled the transition", i.e. *before* rule R1's
  /// merge — without this, the mark of a transaction that executed at this
  /// site alone could never retire and every successor would livelock.
  std::vector<TxnId> RemovableWithSelfWitness() const;

  /// Outcome of the full R1 evaluation (R3 retirement, retirement fence,
  /// compatibility).
  struct MarkCheck {
    bool ok = true;
    /// Rejection that in-place retries cannot fix (fence tripped).
    bool fatal = false;
    /// transmarks to use for the merge: uniform-observed entries of
    /// retired marks are dropped (the transaction sits entirely in the
    /// "after CT_i" class, so the stale entry must not poison it).
    TransMarks checked;
    std::string reason;
  };

  /// Runs R3 + fence + compatible() for a subtransaction arriving with
  /// `tm` whose incarnation started at `txn_start`. Has the side effect of
  /// retiring UDUM1-complete marks. `fence_since` skips tombstones the
  /// caller already cleared (the end-of-subtransaction revalidation only
  /// fences retirements that happened after admission).
  MarkCheck EvaluateMarkCheck(const TransMarks& tm, SimTime txn_start,
                              SimTime fence_since = 0);

  /// True while T_i has a locally-committed, not-yet-compensated
  /// subtransaction at this site (exposed updates that a newcomer could
  /// still read *before* CT_i runs here).
  bool HasExposedPending(TxnId ti) const;

  std::shared_ptr<const MarkingGossip> Gossip() const {
    return knowledge_->Export();
  }

  sim::Simulator* simulator_;   // not owned
  net::Network* network_;       // not owned
  local::LocalDb* db_;          // not owned
  TxnIdAllocator* ids_;         // not owned
  WitnessKnowledge* knowledge_;  // not owned (site-local or shared oracle)
  metrics::StatsCollector* stats_;  // not owned
  Options options_;
  SiteMarks marks_;
  /// Rule R3 tombstones: T_i -> (retirement time, T_i's execution sites).
  struct Tombstone {
    SimTime retire_time = 0;
    bool exposed = true;
    std::vector<SiteId> exec_sites;
  };
  common::SmallMap<TxnId, Tombstone> retired_marks_;
  CompensationExecutor compensator_;
  std::map<TxnId, Subtxn> subtxns_;
  /// Monotonic sequence for the termination-timer liveness guards.
  std::uint64_t timer_seq_ = 0;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_PARTICIPANT_H_
