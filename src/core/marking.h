#ifndef O2PC_CORE_MARKING_H_
#define O2PC_CORE_MARKING_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/types.h"
#include "core/protocol.h"

/// \file
/// The marking machinery of §6: per-site mark sets (`sitemarks`), the
/// per-transaction accumulated view (`transmarks`), the `compatible()`
/// check of rule R1 for protocols P1 / P2 / Simple, and the UDUM1 witness
/// bookkeeping behind rule R3 (undone -> unmarked transitions).
///
/// Mark lifecycle (paper Figure 2), per (site, T_i) pair:
///
///     unmarked --vote commit--> locally-committed --decision commit-->
///     unmarked; locally-committed --decision abort--> undone (via CT_ik,
///     rule R2); unmarked --vote abort--> undone; undone --UDUM--> unmarked.
///
/// P1 only needs the `undone` marks (the paper drops the locally-committed
/// marking as redundant for P1); P2 needs both kinds.
///
/// These structures ride on every gossip-bearing message and are copied,
/// merged, and scanned on the admission path, so the sets are sorted
/// vectors (common::SmallSet / SmallMap) — same iteration order as the
/// `std::set`/`std::map` they replaced, a fraction of the copy cost.

namespace o2pc::core {

/// One (T_i, witnessing site) UDUM1 fact: "some transaction executed at
/// `site` while `site` was undone w.r.t. `ti`".
struct WitnessFact {
  TxnId ti = kInvalidTxn;
  SiteId site = kInvalidSite;

  friend auto operator<=>(const WitnessFact&, const WitnessFact&) = default;
};

/// Witness facts and related marking intelligence piggybacked on the
/// standard 2PC messages (the protocol adds no messages of its own).
struct MarkingGossip {
  /// Ascending (ti, site) order when produced by WitnessKnowledge::Export.
  std::vector<WitnessFact> witnesses;
  /// Execution-site lists of aborted transactions (learned from abort
  /// DECISIONs); lets any site evaluate UDUM1 for any transaction.
  std::vector<std::pair<TxnId, std::vector<SiteId>>> exec_sites;
};

/// The marks of one site.
struct SiteMarks {
  /// sitemarks.k of the paper: T_i in `undone` iff this site is undone
  /// w.r.t. T_i.
  common::SmallSet<TxnId> undone;
  /// Subset of `undone`: T_i exposed updates somewhere before aborting
  /// (some participant locally committed). Exposure lets the dependency
  /// escape T_i's execution sites through readers, so checks on exposed
  /// marks must be strict over *all* visited sites; unexposed marks only
  /// constrain visits to T_i's execution sites. Vote-abort marks are
  /// conservatively exposed until the DECISION clarifies.
  common::SmallSet<TxnId> exposed_undone;
  /// Sites this is locally-committed w.r.t. (maintained for P2).
  common::SmallSet<TxnId> locally_committed;
  /// Execution-site lists of aborted transactions (piggybacked on the
  /// abort DECISION), needed to evaluate UDUM1.
  common::SmallMap<TxnId, std::vector<SiteId>> exec_sites;

  bool Unmarked(TxnId ti) const {
    return !undone.contains(ti) && !locally_committed.contains(ti);
  }
};

/// transmarks.j of the paper, generalized so one structure serves P1, P2
/// and Simple: the sites visited so far (in order) and, for each observed
/// T_i, at exactly which of those sites its mark was seen. P1's invariant
/// is then "undone_seen[T_i] is empty or equals the visited set".
struct TransMarks {
  std::vector<SiteId> visited_sites;
  common::SmallMap<TxnId, common::SmallSet<SiteId>> undone_seen;
  common::SmallMap<TxnId, common::SmallSet<SiteId>> lc_seen;
  /// Sites visited while T_i was already *retired* (its UDUM1 quiescence
  /// was established before the visit). Such a visit provably follows
  /// every rollback/compensation of T_i, so the retirement fence accepts
  /// it in place of a mark observation.
  common::SmallMap<TxnId, common::SmallSet<SiteId>> retired_seen;

  int visited() const { return static_cast<int>(visited_sites.size()); }
  int UndoneCount(TxnId ti) const;
  int LcCount(TxnId ti) const;

  std::string ToString() const;
};

/// Rule R1's compatibility check. Returns true if a subtransaction of a
/// global transaction with accumulated view `tm` may execute at a site
/// whose current marks are `site`.
bool Compatible(GovernancePolicy policy, const TransMarks& tm,
                const SiteMarks& site);

/// Folds `site_marks` (the marks of site `site`) into `tm` after a
/// subtransaction was admitted there.
void MergeMarks(const SiteMarks& site_marks, SiteId site, TransMarks& tm);

/// UDUM1 witness knowledge of one vantage point (a site, or the shared
/// oracle). Answers "have all execution sites of T_i been witnessed?".
///
/// Facts live in one sorted vector. Merge — the single hottest call of a
/// campaign run, since every message's gossip lands here — runs a
/// two-pointer subset scan first (gossip is almost always stale) and only
/// reallocates when genuinely new facts arrive.
class WitnessKnowledge {
 public:
  WitnessKnowledge() = default;

  /// Registers a first-hand witness observation (gossiped facts arrive
  /// via Merge and are not re-journaled).
  void Add(const WitnessFact& fact);
  void Merge(const MarkingGossip& gossip);
  /// The message-path entry point: skips outright when `gossip` is this
  /// knowledge's own live export or the exact object merged last (Merge is
  /// idempotent and knowledge never shrinks, so replays are no-ops). The
  /// held shared_ptr keeps skipped objects alive, so pointer identity is
  /// unambiguous.
  void Merge(const std::shared_ptr<const MarkingGossip>& gossip);

  /// Records where an aborted transaction executed (from the DECISION).
  void SetExecSites(TxnId ti, std::vector<SiteId> sites);
  /// Known execution sites of `ti`, or nullptr.
  const std::vector<SiteId>* ExecSitesOf(TxnId ti) const;

  /// Exports everything known, for piggybacking. The result is cached
  /// until the next mutation, so consecutive messages share one immutable
  /// snapshot instead of each deep-copying the full fact set.
  std::shared_ptr<const MarkingGossip> Export() const;

  /// True iff a witness is known for every site in `exec_sites`
  /// (UDUM1 for T_i; `exec_sites` empty means not yet known -> false).
  bool Covers(TxnId ti, const std::vector<SiteId>& exec_sites) const;

  /// True iff T_i's execution sites are known and all witnessed — UDUM1
  /// holds globally and every site may treat T_i's marks as retired.
  bool Retired(TxnId ti) const;

  std::size_t size() const { return facts_.size(); }

 private:
  bool HasFact(const WitnessFact& fact) const;
  /// Inserts one fact in sorted position if absent; true if inserted.
  bool InsertFact(const WitnessFact& fact);

  /// Sorted ascending, unique.
  std::vector<WitnessFact> facts_;
  common::SmallMap<TxnId, std::vector<SiteId>> exec_sites_;
  /// Export() snapshot, dropped (not mutated — messages may share it) on
  /// any change to facts_/exec_sites_.
  mutable std::shared_ptr<const MarkingGossip> export_cache_;
  /// Most recently merged foreign export, for the replay fast path.
  std::shared_ptr<const MarkingGossip> last_merged_;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_MARKING_H_
