#ifndef O2PC_CORE_MARKING_H_
#define O2PC_CORE_MARKING_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/protocol.h"

/// \file
/// The marking machinery of §6: per-site mark sets (`sitemarks`), the
/// per-transaction accumulated view (`transmarks`), the `compatible()`
/// check of rule R1 for protocols P1 / P2 / Simple, and the UDUM1 witness
/// bookkeeping behind rule R3 (undone -> unmarked transitions).
///
/// Mark lifecycle (paper Figure 2), per (site, T_i) pair:
///
///     unmarked --vote commit--> locally-committed --decision commit-->
///     unmarked; locally-committed --decision abort--> undone (via CT_ik,
///     rule R2); unmarked --vote abort--> undone; undone --UDUM--> unmarked.
///
/// P1 only needs the `undone` marks (the paper drops the locally-committed
/// marking as redundant for P1); P2 needs both kinds.

namespace o2pc::core {

/// One (T_i, witnessing site) UDUM1 fact: "some transaction executed at
/// `site` while `site` was undone w.r.t. `ti`".
struct WitnessFact {
  TxnId ti = kInvalidTxn;
  SiteId site = kInvalidSite;

  friend auto operator<=>(const WitnessFact&, const WitnessFact&) = default;
};

/// Witness facts and related marking intelligence piggybacked on the
/// standard 2PC messages (the protocol adds no messages of its own).
struct MarkingGossip {
  std::vector<WitnessFact> witnesses;
  /// Execution-site lists of aborted transactions (learned from abort
  /// DECISIONs); lets any site evaluate UDUM1 for any transaction.
  std::vector<std::pair<TxnId, std::vector<SiteId>>> exec_sites;
};

/// The marks of one site.
struct SiteMarks {
  /// sitemarks.k of the paper: T_i in `undone` iff this site is undone
  /// w.r.t. T_i.
  std::set<TxnId> undone;
  /// Subset of `undone`: T_i exposed updates somewhere before aborting
  /// (some participant locally committed). Exposure lets the dependency
  /// escape T_i's execution sites through readers, so checks on exposed
  /// marks must be strict over *all* visited sites; unexposed marks only
  /// constrain visits to T_i's execution sites. Vote-abort marks are
  /// conservatively exposed until the DECISION clarifies.
  std::set<TxnId> exposed_undone;
  /// Sites this is locally-committed w.r.t. (maintained for P2).
  std::set<TxnId> locally_committed;
  /// Execution-site lists of aborted transactions (piggybacked on the
  /// abort DECISION), needed to evaluate UDUM1.
  std::map<TxnId, std::vector<SiteId>> exec_sites;

  bool Unmarked(TxnId ti) const {
    return !undone.contains(ti) && !locally_committed.contains(ti);
  }
};

/// transmarks.j of the paper, generalized so one structure serves P1, P2
/// and Simple: the sites visited so far (in order) and, for each observed
/// T_i, at exactly which of those sites its mark was seen. P1's invariant
/// is then "undone_seen[T_i] is empty or equals the visited set".
struct TransMarks {
  std::vector<SiteId> visited_sites;
  std::map<TxnId, std::set<SiteId>> undone_seen;
  std::map<TxnId, std::set<SiteId>> lc_seen;
  /// Sites visited while T_i was already *retired* (its UDUM1 quiescence
  /// was established before the visit). Such a visit provably follows
  /// every rollback/compensation of T_i, so the retirement fence accepts
  /// it in place of a mark observation.
  std::map<TxnId, std::set<SiteId>> retired_seen;

  int visited() const { return static_cast<int>(visited_sites.size()); }
  int UndoneCount(TxnId ti) const;
  int LcCount(TxnId ti) const;

  std::string ToString() const;
};

/// Rule R1's compatibility check. Returns true if a subtransaction of a
/// global transaction with accumulated view `tm` may execute at a site
/// whose current marks are `site`.
bool Compatible(GovernancePolicy policy, const TransMarks& tm,
                const SiteMarks& site);

/// Folds `site_marks` (the marks of site `site`) into `tm` after a
/// subtransaction was admitted there.
void MergeMarks(const SiteMarks& site_marks, SiteId site, TransMarks& tm);

/// UDUM1 witness knowledge of one vantage point (a site, or the shared
/// oracle). Answers "have all execution sites of T_i been witnessed?".
class WitnessKnowledge {
 public:
  WitnessKnowledge() = default;

  /// Registers a first-hand witness observation (gossiped facts arrive
  /// via Merge and are not re-journaled).
  void Add(const WitnessFact& fact);
  void Merge(const MarkingGossip& gossip);

  /// Records where an aborted transaction executed (from the DECISION).
  void SetExecSites(TxnId ti, std::vector<SiteId> sites);
  /// Known execution sites of `ti`, or nullptr.
  const std::vector<SiteId>* ExecSitesOf(TxnId ti) const;

  /// Exports everything known, for piggybacking.
  MarkingGossip Export() const;

  /// True iff a witness is known for every site in `exec_sites`
  /// (UDUM1 for T_i; `exec_sites` empty means not yet known -> false).
  bool Covers(TxnId ti, const std::vector<SiteId>& exec_sites) const;

  /// True iff T_i's execution sites are known and all witnessed — UDUM1
  /// holds globally and every site may treat T_i's marks as retired.
  bool Retired(TxnId ti) const;

  std::size_t size() const { return facts_.size(); }

 private:
  std::set<WitnessFact> facts_;
  std::map<TxnId, std::vector<SiteId>> exec_sites_;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_MARKING_H_
