#ifndef O2PC_CORE_COMPENSATION_H_
#define O2PC_CORE_COMPENSATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/global_txn.h"
#include "local/local_db.h"
#include "metrics/stats.h"
#include "sim/simulator.h"

/// \file
/// Execution of compensating subtransactions with **persistence of
/// compensation** (§3.2): once compensation is initiated it must complete;
/// a CT that loses a deadlock is retried (as a fresh local transaction)
/// until it commits. CTs run under the site's ordinary strict 2PL — they
/// are scheduled like local transactions, never 2PC'd — and release their
/// locks at their own local commit regardless of sibling CTs (§4).

namespace o2pc::core {

class CompensationExecutor {
 public:
  CompensationExecutor(sim::Simulator* simulator, local::LocalDb* db,
                       TxnIdAllocator* ids, metrics::StatsCollector* stats);
  CompensationExecutor(const CompensationExecutor&) = delete;
  CompensationExecutor& operator=(const CompensationExecutor&) = delete;

  struct Request {
    /// The forward global transaction being compensated; the CT's writes
    /// are attributed to CT_i of this id.
    TxnId forward_id = kInvalidTxn;
    /// Counter-operations in replay order (LocalDb::CompensationPlan).
    std::vector<local::Operation> plan;
    /// Delay between retry attempts after a deadlock.
    Duration retry_backoff = Millis(1);
    /// Invoked exactly once, when the CT has committed.
    std::function<void()> done;
  };

  /// Starts (and, on deadlock, restarts) the compensating subtransaction.
  /// Individual counter-operations that have become semantically moot
  /// (key already re-deleted / re-inserted by later transactions) are
  /// skipped — compensation is semantic, not physical (§3.2).
  void Run(Request request);

  std::uint64_t completed() const { return completed_; }

 private:
  struct Attempt;
  void StartAttempt(std::shared_ptr<Attempt> attempt);
  void NextOp(std::shared_ptr<Attempt> attempt);
  /// True if the site crashed since this request began — the pre-crash
  /// driver abandons itself; recovery re-initiates compensation from the
  /// WAL when the (resent) abort DECISION arrives.
  bool Superseded(const std::shared_ptr<Attempt>& attempt) const;

  sim::Simulator* simulator_;          // not owned
  local::LocalDb* db_;                 // not owned
  TxnIdAllocator* ids_;                // not owned
  metrics::StatsCollector* stats_;     // not owned
  std::uint64_t completed_ = 0;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_COMPENSATION_H_
