#ifndef O2PC_CORE_MESSAGES_H_
#define O2PC_CORE_MESSAGES_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/marking.h"
#include "local/local_txn.h"
#include "net/message.h"

/// \file
/// Concrete payloads of the commit-layer messages. These are exactly the
/// standard 2PC message vocabulary; everything the marking protocols need
/// (transmarks, witness gossip, execution-site lists) rides piggyback, per
/// the paper's "no extra messages" design goal (§6, §7).

namespace o2pc::core {

/// Coordinator -> site: run subtransaction T_jk.
struct SubtxnInvokePayload : net::Payload {
  std::vector<local::Operation> ops;
  /// The coordinator's accumulated transmarks.j, input to rule R1.
  TransMarks transmarks;
  bool force_abort_vote = false;
  /// Execution-attempt number; lets the participant tell a network resend
  /// (same attempt: re-ack) from an R1-rejection retry (new attempt:
  /// re-execute).
  int attempt = 0;
  /// Start time of this global-transaction incarnation. Used by the
  /// *retirement fence*: a transaction older than a mark's UDUM
  /// retirement may have conflict-preceded the aborted transaction before
  /// its marks even existed, so it may pass a site that retired the mark
  /// only if it observed the mark uniformly everywhere else.
  SimTime txn_start = 0;
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Site -> coordinator: subtransaction finished / was rejected / failed.
struct SubtxnAckPayload : net::Payload {
  /// OK: executed; kRejected: R1 incompatibility (retriable); other codes:
  /// the subtransaction failed and was rolled back (e.g. kDeadlock).
  Status status;
  /// Updated transmarks.j (entry marks merged in) when status is OK.
  TransMarks transmarks;
  /// Mirrors the invoke's attempt number.
  int attempt = 0;
  /// With kRejected: retrying this incarnation in place cannot succeed
  /// (e.g. it tripped a retirement fence); the coordinator should abort and
  /// let the system restart the work as a fresh incarnation.
  bool fatal = false;
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Coordinator -> site: VOTE-REQ.
struct VoteRequestPayload : net::Payload {
  /// Every participant site of this transaction. A blocked participant
  /// uses this list for the cooperative termination protocol: when the
  /// coordinator stops answering DECISION-REQs, peers are asked instead.
  std::vector<SiteId> participants;
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Site -> coordinator: VOTE.
struct VotePayload : net::Payload {
  bool commit = false;
  /// True when an abort vote comes from crash recovery (the site lost the
  /// subtransaction and its WAL vouches for nothing) rather than from
  /// business logic — retrying the transaction afresh makes sense.
  bool recovery_abort = false;
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Coordinator -> site: DECISION.
struct DecisionPayload : net::Payload {
  bool commit = false;
  /// True iff some participant locally committed (exposed updates) before
  /// this abort — i.e. at least one O2PC commit vote was received. A
  /// transaction that aborted before any exposure needs *no* undone marks:
  /// under strict 2PL its rollback is invisible, so no regular cycle can
  /// pass through it (marks would only cause spurious R1 rejections).
  bool exposed = false;
  /// Sites at which the transaction executed — the UDUM1 bookkeeping the
  /// abort case needs; the coordinator knows this anyway, so shipping it
  /// costs no extra message.
  std::vector<SiteId> exec_sites;
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Site -> coordinator: decision processed (including any compensation).
struct DecisionAckPayload : net::Payload {
  /// True if a compensating subtransaction ran at this site.
  bool compensated = false;
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Site -> coordinator home: DECISION-REQ. A participant blocked past its
/// decision timeout asks for the outcome; the home site's recovery agent
/// answers from the coordinator's force-written decision log even while
/// the coordinator itself is down (participant-driven decision recovery).
struct DecisionRequestPayload : net::Payload {
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Site -> peer site: TERM-REQ, the cooperative termination query. The
/// asker learned its peers from the VOTE-REQ participant list.
struct TermRequestPayload : net::Payload {
  std::shared_ptr<const MarkingGossip> gossip;
};

/// Peer -> asker: TERM-RESP. `known` = the peer can name the outcome —
/// either it saw the DECISION, or its own state rules commit out (it voted
/// abort, or it had not voted and unilaterally aborted, renouncing the
/// commit vote the coordinator would need). `known == false` means the
/// peer is as uncertain as the asker (voted commit, no decision).
struct TermResponsePayload : net::Payload {
  bool known = false;
  bool commit = false;
  /// Mirrors DecisionPayload: whether the transaction exposed updates and
  /// where it executed (empty when the answering peer cannot say — the
  /// asker falls back to its own VOTE-REQ participant list).
  bool exposed = false;
  std::vector<SiteId> exec_sites;
  std::shared_ptr<const MarkingGossip> gossip;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_MESSAGES_H_
