#ifndef O2PC_CORE_STEP_HOOK_H_
#define O2PC_CORE_STEP_HOOK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"

/// \file
/// Step-indexed protocol instrumentation points for deterministic fault
/// injection. The commit layer announces every protocol step it takes
/// (subtransaction admission, votes, local commits, decisions,
/// compensation starts) through an optional StepHook; the campaign
/// subsystem's FaultInjector counts occurrences of each (step, site) pair
/// and pins faults — "crash site 2 at its first local commit", "crash the
/// coordinator right after its third decision is logged" — to exact
/// protocol instants, which makes a randomized fault schedule replayable
/// from its seed.
///
/// Hooks run synchronously inside the protocol step that announced them,
/// so they must not mutate protocol state directly. The two sanctioned
/// effects are (a) scheduling work on the simulator (a zero-delay event
/// runs after the current step completes — the right way to crash a site
/// "at" a step) and (b) DistributedSystem::InjectCoordinatorCrash, which
/// only marks a flag the coordinator checks before broadcasting.

namespace o2pc::core {

/// The instrumented protocol steps, in rough protocol order.
enum class ProtocolStep : std::uint8_t {
  kSubtxnAdmit = 0,    ///< rule R1 admitted a subtransaction at a site
  kBeforeVote,         ///< VOTE-REQ accepted; vote processing starts
  kLocalCommit,        ///< O2PC early local commit (all locks released)
  kPrepare,            ///< 2PC prepared (exclusive locks retained)
  kAfterVote,          ///< the VOTE message was handed to the network
  kBeforeDecision,     ///< DECISION accepted; processing starts
  kCompensationBegin,  ///< abort decision: compensation is about to run
  kAfterDecision,      ///< the decision was fully processed and acked
  kCoordinatorDecide,  ///< the coordinator force-logged its decision
};
inline constexpr int kNumProtocolSteps =
    static_cast<int>(ProtocolStep::kCoordinatorDecide) + 1;

/// Stable machine-readable step name ("local_commit", ...) — also the
/// vocabulary of the campaign fault-plan grammar.
inline const char* ProtocolStepName(ProtocolStep step) {
  switch (step) {
    case ProtocolStep::kSubtxnAdmit:
      return "subtxn_admit";
    case ProtocolStep::kBeforeVote:
      return "before_vote";
    case ProtocolStep::kLocalCommit:
      return "local_commit";
    case ProtocolStep::kPrepare:
      return "prepare";
    case ProtocolStep::kAfterVote:
      return "after_vote";
    case ProtocolStep::kBeforeDecision:
      return "before_decision";
    case ProtocolStep::kCompensationBegin:
      return "compensation_begin";
    case ProtocolStep::kAfterDecision:
      return "after_decision";
    case ProtocolStep::kCoordinatorDecide:
      return "coordinator_decide";
  }
  return "unknown";
}

/// Inverse of ProtocolStepName. Returns false if `name` is not a step.
inline bool ParseProtocolStep(const std::string& name, ProtocolStep* step) {
  for (int i = 0; i < kNumProtocolSteps; ++i) {
    const ProtocolStep candidate = static_cast<ProtocolStep>(i);
    if (name == ProtocolStepName(candidate)) {
      *step = candidate;
      return true;
    }
  }
  return false;
}

/// What the hook learns about the announced step.
struct StepContext {
  ProtocolStep step = ProtocolStep::kSubtxnAdmit;
  /// The site taking the step (the coordinator's home for
  /// kCoordinatorDecide).
  SiteId site = kInvalidSite;
  /// The global transaction the step belongs to.
  TxnId txn = kInvalidTxn;
};

using StepHook = std::function<void(const StepContext&)>;

}  // namespace o2pc::core

#endif  // O2PC_CORE_STEP_HOOK_H_
