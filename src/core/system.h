#ifndef O2PC_CORE_SYSTEM_H_
#define O2PC_CORE_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/coordinator.h"
#include "core/global_txn.h"
#include "core/participant.h"
#include "core/protocol.h"
#include "local/local_db.h"
#include "metrics/stats.h"
#include "net/network.h"
#include "sg/correctness.h"
#include "sim/simulator.h"

/// \file
/// The top-level facade: N autonomous sites (local DBMS + participant) on a
/// simulated network, a coordinator per global transaction, automatic
/// restart of restartable failures (deadlock victims, R1 rejections), a
/// driver for background local transactions, and post-run correctness
/// analysis against the paper's criterion.
///
/// Typical use:
///
///     core::SystemOptions options;
///     options.num_sites = 3;
///     options.protocol.protocol = core::CommitProtocol::kOptimistic;
///     core::DistributedSystem system(options);
///     system.SubmitGlobal(spec, [](const core::GlobalResult& r) { ... });
///     system.Run();                       // drain the simulation
///     auto report = system.Analyze();     // §5 correctness oracle

namespace o2pc::core {

/// Reserved key holding the marking set (never collides with data keys).
inline constexpr DataKey kMarksKey = DataKey{1} << 40;

struct SystemOptions {
  int num_sites = 4;
  /// Keys 0..keys_per_site-1 are preloaded at every site.
  DataKey keys_per_site = 128;
  Value initial_value = 1000;
  /// CPU cost per applied operation at a site.
  Duration op_cost = Micros(100);
  /// Distributed-deadlock resolution: a lock wait longer than this fails
  /// the waiter with kDeadlock (the global transaction restarts).
  Duration lock_wait_timeout = Millis(300);
  ProtocolConfig protocol;
  net::NetworkOptions network;
  lock::LockManager::Options lock_options;
  std::uint64_t seed = 42;
  /// Restart budget for restartable global failures.
  int max_global_restarts = 25;
  Duration restart_backoff = Millis(3);
  /// Retry budget for local transactions that lose deadlocks.
  int max_local_retries = 50;
  Duration local_retry_backoff = Millis(1);
  /// Per-site fuzzy checkpoint period (0 disables). Checkpoints truncate
  /// each WAL below its recovery low-watermark.
  Duration checkpoint_interval = 0;
};

class DistributedSystem {
 public:
  explicit DistributedSystem(SystemOptions options);
  DistributedSystem(const DistributedSystem&) = delete;
  DistributedSystem& operator=(const DistributedSystem&) = delete;

  /// Submits a global transaction. Returns the id of its first
  /// incarnation. `done` fires once, after the final incarnation drains
  /// (restartable failures are retried internally).
  TxnId SubmitGlobal(GlobalTxnSpec spec, GlobalDoneCallback done = nullptr);

  /// Submits a background local transaction at `site`; deadlock losses are
  /// retried. `done(true)` on commit.
  void SubmitLocal(SiteId site, std::vector<local::Operation> ops,
                   std::function<void(bool)> done = nullptr);

  /// Runs the simulation until no events remain.
  void Run() { simulator_.Run(); }

  /// Crashes `site` now (volatile state lost, WAL-driven recovery runs)
  /// and keeps it unreachable for `outage`; in-flight protocols recover
  /// through the coordinators' retransmission timers. An `outage` <= 0
  /// means the site never recovers (permanent failure).
  ///
  /// Restart is a full recovery phase, not a bare reachability flip: when
  /// the outage ends the site runs WAL analysis, merges the witness-gossip
  /// snapshots of every reachable peer, and replays the compensations whose
  /// abort verdicts the merged knowledge already carries (marking
  /// catch-up). The site accepts no message until the phase completes —
  /// i.e. until `recovery_window` has elapsed *and* every catch-up
  /// compensation settled (kRecoveryEnd marks the barrier).
  ///
  /// `recrash_delay` >= 0 schedules a second crash that many microseconds
  /// after recovery begins (a crash-during-recovery double fault when it
  /// lands inside the phase); the second incarnation reuses `outage` and
  /// `recovery_window` and does not re-crash again.
  void CrashSite(SiteId site, Duration outage, Duration recovery_window = 0,
                 Duration recrash_delay = -1);

  /// Installs (or, with nullptr, clears) the step-indexed instrumentation
  /// hook, announced synchronously by participants and coordinators at
  /// each ProtocolStep. Install before submitting work; the hook slot is
  /// shared by every site, so one injector observes the whole system.
  void SetStepHook(StepHook hook) {
    user_step_hook_ = std::move(hook);
    RecomposeStepHook();
  }

  /// Installs (or clears) a passive step observer that runs *before* the
  /// step hook on every announced step. A separate slot so telemetry
  /// coverage can watch the protocol while a fault injector owns
  /// SetStepHook; with both slots empty the announced hook is null again
  /// and step announcements stay a single branch.
  void SetStepObserver(StepHook observer) {
    step_observer_ = std::move(observer);
    RecomposeStepHook();
  }

  /// Registers one outstanding timer event that must not keep the
  /// simulation alive (telemetry samplers use this; checkpoints register
  /// internally). Call before scheduling the event; the event must call
  /// NoteIdleTimerFired() first thing when it runs.
  void NoteIdleTimerScheduled() { ++pending_idle_timers_; }
  void NoteIdleTimerFired() { --pending_idle_timers_; }

  /// True while events other than registered idle-exempt timers remain —
  /// the "should I reschedule?" test for self-perpetuating timers.
  bool HasLiveWork() const {
    return simulator_.pending() > pending_idle_timers_;
  }

  /// Requests a deterministic coordinator crash for transaction `txn`: its
  /// next decision broadcast crashes instead (decision already logged) and
  /// recovers after `coordinator_recovery_delay`. Safe to call from a
  /// StepHook at kCoordinatorDecide — it only sets a flag. No-op with a
  /// warning when `txn` has no live coordinator. `outage` = 0 recovers
  /// after the configured `coordinator_recovery_delay`, > 0 overrides it,
  /// < 0 never recovers (participants terminate via DECISION-REQ / the
  /// cooperative termination protocol).
  void InjectCoordinatorCrash(TxnId txn, Duration outage = 0);

  /// Post-run: evaluates the §5 correctness criterion, atomicity of
  /// compensation, and plain serializability over the recorded history.
  sg::CorrectnessReport Analyze() const;

  /// Sum of all data values across all sites (conservation audits).
  Value TotalValue() const;

  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return network_; }
  const net::Network& network() const { return network_; }
  local::LocalDb& db(SiteId site) { return sites_.at(site)->db; }
  const local::LocalDb& db(SiteId site) const { return sites_.at(site)->db; }
  Participant& participant(SiteId site) {
    return sites_.at(site)->participant;
  }
  const Participant& participant(SiteId site) const {
    return sites_.at(site)->participant;
  }
  metrics::StatsCollector& stats() { return stats_; }
  const metrics::StatsCollector& stats() const { return stats_; }
  TxnIdAllocator& ids() { return ids_; }
  const SystemOptions& options() const { return options_; }

  std::uint64_t globals_submitted() const { return globals_submitted_; }
  std::uint64_t globals_finished() const { return globals_finished_; }

 private:
  struct SiteRuntime {
    SiteRuntime(sim::Simulator* simulator, net::Network* network,
                TxnIdAllocator* ids, WitnessKnowledge* shared_knowledge,
                metrics::StatsCollector* stats, SiteId site,
                const SystemOptions& options, const StepHook* step_hook);

    local::LocalDb db;
    /// Site-local knowledge (unused when the oracle directory is shared).
    WitnessKnowledge own_knowledge;
    Participant participant;
    /// Bumped by every CrashSite call; outstanding recovery/recrash events
    /// compare it and abandon themselves when a newer crash superseded them.
    std::uint64_t crash_seq = 0;
  };

  /// One logical global transaction across its restart incarnations.
  struct PendingGlobal {
    GlobalTxnSpec spec;
    GlobalDoneCallback done;
    int restarts = 0;
    int total_rejections = 0;
    int total_compensations = 0;
    SimTime first_submit = 0;
  };

  struct PendingLocal {
    SiteId site = kInvalidSite;
    std::vector<local::Operation> ops;
    std::function<void(bool)> done;
    int attempts = 0;
  };

  /// Join state of one recovery attempt: the barrier passes only once the
  /// recovery window elapsed AND the marking catch-up settled.
  struct RecoveryJoin {
    bool window_done = false;
    bool catchup_done = false;
    bool finished = false;
    Participant::RecoveryStats stats;
  };

  void Dispatch(SiteId site, const net::Message& message);
  /// Starts the recovery phase for `site` at the end of its outage; `seq`
  /// guards against supersession by a newer crash.
  void BeginSiteRecovery(SiteId site, std::uint64_t seq,
                         Duration recovery_window);
  /// Completes the recovery phase once both barrier halves passed.
  void TryFinishRecovery(SiteId site, std::uint64_t seq,
                         std::shared_ptr<RecoveryJoin> join);
  void ScheduleCheckpoint(SiteId site);
  /// Rebuilds the announced `step_hook_` from the user hook and the
  /// observer (null when both are empty, a plain copy when only one is
  /// set, a composing lambda when both are).
  void RecomposeStepHook();
  void LaunchGlobal(std::shared_ptr<PendingGlobal> pending, TxnId id);
  void OnGlobalDone(std::shared_ptr<PendingGlobal> pending,
                    const GlobalResult& result);
  void AttemptLocal(std::shared_ptr<PendingLocal> pending);
  /// `epoch` is the site's crash epoch at Begin; callbacks landing after a
  /// crash (which already rolled the transaction back) compare and retry
  /// instead of touching the dead transaction.
  void RunLocalOp(std::shared_ptr<PendingLocal> pending, TxnId id,
                  std::shared_ptr<common::SmallSet<TxnId>> entry_undone,
                  std::uint64_t epoch, std::size_t index);
  /// Retries `pending` as a fresh transaction (deadlock loss or crash
  /// casualty), counting against the local retry budget.
  void RescheduleLocal(std::shared_ptr<PendingLocal> pending,
                       const char* counter);

  SystemOptions options_;
  sim::Simulator simulator_;
  net::Network network_;
  Rng rng_;
  TxnIdAllocator ids_;
  metrics::StatsCollector stats_;
  /// Shared instant-knowledge directory (oracle mode).
  WitnessKnowledge oracle_knowledge_;
  /// Step-indexed instrumentation slot; participants and coordinators hold
  /// a pointer to it, so (re)installing after construction takes effect.
  /// Always the composition of `step_observer_` then `user_step_hook_`.
  StepHook step_hook_;
  StepHook user_step_hook_;
  StepHook step_observer_;
  std::vector<std::unique_ptr<SiteRuntime>> sites_;
  std::map<TxnId, std::unique_ptr<Coordinator>> coordinators_;
  /// Incarnations that aborted without exposing anything — dropped from
  /// the correctness analysis (exposed projection; see sg::AnalyzeHistory).
  std::set<TxnId> unexposed_aborted_;
  std::uint64_t globals_submitted_ = 0;
  std::uint64_t globals_finished_ = 0;
  /// Outstanding idle-exempt timer events — checkpoints plus externally
  /// registered samplers — so self-rescheduling timers do not keep the
  /// simulation (or each other) alive.
  std::size_t pending_idle_timers_ = 0;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_SYSTEM_H_
