#ifndef O2PC_CORE_COORDINATOR_H_
#define O2PC_CORE_COORDINATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/retry_policy.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/global_txn.h"
#include "core/marking.h"
#include "core/messages.h"
#include "core/protocol.h"
#include "core/step_hook.h"
#include "metrics/stats.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "storage/wal.h"

/// \file
/// The 2PC coordinator of one global transaction. The message pattern is
/// the standard one — invoke subtransactions, VOTE-REQ, collect votes,
/// log the decision, broadcast DECISION, collect acks — and is *identical*
/// for 2PC and O2PC (the difference is entirely participant-side lock
/// handling), which is the paper's compatibility claim (§7).
///
/// Subtransactions are invoked serially so that transmarks.j accumulates
/// site marks in invocation order, exactly as rule R1 prescribes.
///
/// Failure injection: with `coordinator_crash_probability` the coordinator
/// crashes right after force-logging its decision and recovers after
/// `coordinator_recovery_delay`, re-reading the decision from its log and
/// resending it — the window in which 2PC participants sit blocked in the
/// prepared state while O2PC participants have already released their
/// locks.

namespace o2pc::core {

class Coordinator {
 public:
  struct Options {
    ProtocolConfig protocol;
    SiteId home = 0;
    /// Optional step-indexed instrumentation (fault injection); announced
    /// at kCoordinatorDecide, right after the decision is force-logged.
    const StepHook* step_hook = nullptr;
  };

  Coordinator(sim::Simulator* simulator, net::Network* network,
              WitnessKnowledge* knowledge, metrics::StatsCollector* stats,
              Rng rng, Options options);
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Begins executing `spec` as global transaction `id`. `done` fires
  /// exactly once when the protocol fully drains (all decision acks in,
  /// compensations included).
  void Start(TxnId id, GlobalTxnSpec spec, GlobalDoneCallback done);

  /// Network entry point for SUBTXN-ACK / VOTE / DECISION-ACK /
  /// DECISION-REQ.
  void OnMessage(const net::Message& message);

  TxnId id() const { return id_; }
  bool finished() const { return phase_ == Phase::kDone; }

  /// Decision log (a kDecision record is force-written before broadcast).
  const storage::Wal& log() const { return log_; }

  /// Deterministic crash injection: the next decision broadcast crashes
  /// the coordinator instead (after its decision is force-logged, before
  /// any DECISION message leaves), and recovery re-reads the log and
  /// resends — the same window the probabilistic
  /// `coordinator_crash_probability` models, but pinned to an exact
  /// protocol step. `outage` = 0 recovers after the configured
  /// `coordinator_recovery_delay`; > 0 overrides that delay; < 0 means the
  /// coordinator never recovers — participants must then terminate via
  /// DECISION-REQ (the home site's recovery agent still answers from the
  /// decision log) or cooperative termination. Typically called from a
  /// StepHook at kCoordinatorDecide (see
  /// DistributedSystem::InjectCoordinatorCrash).
  void RequestCrash(Duration outage = 0) {
    crash_requested_ = true;
    requested_outage_ = outage;
  }

 private:
  enum class Phase {
    kIdle,
    kInvoking,
    kVoting,
    kCrashed,
    kBroadcasting,
    kDone,
  };

  /// Announces kCoordinatorDecide to the installed StepHook (if any).
  void AnnounceDecide();

  void InvokeCurrent();
  void OnSubtxnAck(const net::Message& message);
  /// Invoking failed terminally: decide abort without a voting phase.
  void AbortEarly(const Status& status, bool restartable);
  void StartVoting();
  void OnVote(const net::Message& message);
  /// True iff some participant exposed updates (an O2PC commit vote).
  bool Exposed() const;
  void Decide();
  void BroadcastDecision();
  void OnDecisionAck(const net::Message& message);
  /// DECISION-REQ from a blocked participant: the home site's recovery
  /// agent answers from the force-written decision log — even while the
  /// coordinator process is crashed (the *site* hosting the log is up).
  void OnDecisionRequest(const net::Message& message);
  /// Enters Phase::kCrashed; schedules recovery unless `outage` < 0.
  void CrashBeforeBroadcast(Duration outage, bool injected);
  void Finish();

  void Send(SiteId to, net::MessageType type,
            std::shared_ptr<const net::Payload> payload);
  /// Periodic retransmission of whatever the current phase is waiting for.
  void ResendTick();
  void ArmResendTimer();

  sim::Simulator* simulator_;       // not owned
  net::Network* network_;           // not owned
  WitnessKnowledge* knowledge_;     // not owned
  metrics::StatsCollector* stats_;  // not owned
  Rng rng_;
  Options options_;

  Phase phase_ = Phase::kIdle;
  TxnId id_ = kInvalidTxn;
  GlobalTxnSpec spec_;
  GlobalDoneCallback done_;
  storage::Wal log_;

  // Invocation state.
  std::size_t invoke_index_ = 0;
  int invoke_attempt_ = 0;
  int invoke_retries_ = 0;
  std::set<SiteId> invoked_sites_;
  std::set<SiteId> executed_sites_;
  TransMarks transmarks_;

  // Voting / broadcast state.
  std::map<SiteId, bool> votes_;
  bool recovery_abort_seen_ = false;
  bool crash_requested_ = false;
  bool decision_commit_ = false;
  Status abort_status_;
  bool restartable_ = false;
  std::set<SiteId> decision_acks_;
  int compensations_ = 0;
  int rejections_ = 0;

  SimTime submit_time_ = 0;
  SimTime decide_time_ = 0;

  sim::EventId resend_event_ = sim::kInvalidEvent;
  /// Backoff schedule for the per-phase retransmissions; reset at each
  /// phase transition (invoke -> voting -> broadcasting).
  common::RetryPolicy resend_policy_;
  /// Outage requested with the injected crash (see RequestCrash).
  Duration requested_outage_ = 0;
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_COORDINATOR_H_
