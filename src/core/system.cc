#include "core/system.h"

#include "common/logging.h"
#include "trace/trace.h"

namespace o2pc::core {

DistributedSystem::SiteRuntime::SiteRuntime(
    sim::Simulator* simulator, net::Network* network, TxnIdAllocator* ids,
    WitnessKnowledge* shared_knowledge, metrics::StatsCollector* stats,
    SiteId site, const SystemOptions& options, const StepHook* step_hook)
    : db(simulator,
         local::LocalDb::Options{site, options.op_cost,
                                 options.lock_wait_timeout,
                                 options.seed ^ 0x10ca1dbULL,
                                 options.lock_options}),
      participant(
          simulator, network, &db, ids,
          shared_knowledge != nullptr ? shared_knowledge : &own_knowledge,
          stats,
          Participant::Options{options.protocol, kMarksKey, step_hook,
                               options.seed ^
                                   (site * 0x9e3779b97f4a7c15ULL) ^
                                   0x7465726dULL}) {}

DistributedSystem::DistributedSystem(SystemOptions options)
    : options_(options),
      simulator_(),
      network_(&simulator_, options.network, options.seed ^ 0x6e657477ULL),
      rng_(options.seed) {
  O2PC_CHECK(options_.num_sites > 0);
  WitnessKnowledge* shared =
      options_.protocol.directory == DirectoryMode::kOracle
          ? &oracle_knowledge_
          : nullptr;
  sites_.reserve(options_.num_sites);
  for (int i = 0; i < options_.num_sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    sites_.push_back(std::make_unique<SiteRuntime>(
        &simulator_, &network_, &ids_, shared, &stats_, site, options_,
        &step_hook_));
    network_.RegisterNode(site, [this, site](const net::Message& message) {
      Dispatch(site, message);
    });
    // Preload data keys and the marking-set key.
    for (DataKey key = 0; key < options_.keys_per_site; ++key) {
      sites_.back()->db.Preload(key, options_.initial_value);
    }
    sites_.back()->db.Preload(kMarksKey, 0);
    if (options_.checkpoint_interval > 0) ScheduleCheckpoint(site);
  }
}

void DistributedSystem::ScheduleCheckpoint(SiteId site) {
  NoteIdleTimerScheduled();
  simulator_.Schedule(options_.checkpoint_interval, [this, site] {
    NoteIdleTimerFired();
    sites_.at(site)->db.Checkpoint();
    stats_.Incr("checkpoints");
    // Keep checkpointing only while *other* work remains — checkpoint
    // timers must not keep the simulation (or each other) alive.
    if (HasLiveWork()) {
      ScheduleCheckpoint(site);
    }
  });
}

void DistributedSystem::RecomposeStepHook() {
  if (!step_observer_) {
    step_hook_ = user_step_hook_;
    return;
  }
  if (!user_step_hook_) {
    step_hook_ = step_observer_;
    return;
  }
  step_hook_ = [this](const StepContext& context) {
    step_observer_(context);
    user_step_hook_(context);
  };
}

void DistributedSystem::Dispatch(SiteId site, const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kSubtxnInvoke:
    case net::MessageType::kVoteRequest:
    case net::MessageType::kDecision:
    case net::MessageType::kTermReq:
    case net::MessageType::kTermResp:
      sites_.at(site)->participant.OnMessage(message);
      return;
    case net::MessageType::kSubtxnAck:
    case net::MessageType::kVote:
    case net::MessageType::kDecisionAck:
    case net::MessageType::kDecisionReq: {
      auto it = coordinators_.find(message.txn);
      if (it == coordinators_.end()) {
        O2PC_LOG(kWarn) << "no coordinator for T" << message.txn;
        return;
      }
      it->second->OnMessage(message);
      return;
    }
    case net::MessageType::kUser:
      return;  // tests register their own nodes for user messages
  }
}

TxnId DistributedSystem::SubmitGlobal(GlobalTxnSpec spec,
                                      GlobalDoneCallback done) {
  O2PC_CHECK(spec.Valid()) << "invalid global transaction spec";
  ++globals_submitted_;
  auto pending = std::make_shared<PendingGlobal>();
  pending->spec = std::move(spec);
  pending->done = std::move(done);
  pending->first_submit = simulator_.Now();
  const TxnId id = ids_.Next();
  LaunchGlobal(std::move(pending), id);
  return id;
}

void DistributedSystem::LaunchGlobal(std::shared_ptr<PendingGlobal> pending,
                                     TxnId id) {
  const SiteId home = pending->spec.subtxns.front().site;
  Coordinator::Options coordinator_options{options_.protocol, home,
                                           &step_hook_};
  auto coordinator = std::make_unique<Coordinator>(
      &simulator_, &network_,
      // The coordinator shares its home site's witness knowledge — it is a
      // process at that site, not an extra network node.
      options_.protocol.directory == DirectoryMode::kOracle
          ? &oracle_knowledge_
          : &sites_.at(home)->own_knowledge,
      &stats_, rng_.Fork(id), coordinator_options);
  Coordinator* raw = coordinator.get();
  coordinators_[id] = std::move(coordinator);
  raw->Start(id, pending->spec,
             [this, pending](const GlobalResult& result) {
               OnGlobalDone(pending, result);
             });
}

void DistributedSystem::OnGlobalDone(std::shared_ptr<PendingGlobal> pending,
                                     const GlobalResult& result) {
  pending->total_rejections += result.r1_rejections;
  pending->total_compensations += result.compensations;
  if (!result.committed && !result.exposed) {
    unexposed_aborted_.insert(result.id);
  }
  if (!result.committed && result.restartable &&
      pending->restarts < options_.max_global_restarts) {
    ++pending->restarts;
    stats_.Incr("global_restarts");
    // Randomized backoff: deterministic per seed, but desynchronizes
    // transactions that would otherwise deadlock in lockstep forever.
    const Duration backoff =
        options_.restart_backoff * pending->restarts +
        rng_.Uniform(0, options_.restart_backoff);
    simulator_.Schedule(backoff, [this, pending] {
      const TxnId id = ids_.Next();
      O2PC_TRACE(kTxnRestart, pending->spec.subtxns.front().site, id, id);
      LaunchGlobal(pending, id);
    });
    return;
  }

  ++globals_finished_;
  stats_.Incr(result.committed ? "globals_committed" : "globals_aborted");
  metrics::GlobalTxnRecord record;
  record.id = result.id;
  record.submit_time = pending->first_submit;
  record.decide_time = result.decide_time;
  record.finish_time = result.finish_time;
  record.committed = result.committed;
  record.num_sites = result.num_sites;
  record.compensations = pending->total_compensations;
  record.r1_rejections = pending->total_rejections;
  record.restarts = pending->restarts;
  stats_.AddGlobalTxn(record);
  if (pending->done) pending->done(result);
}

void DistributedSystem::SubmitLocal(SiteId site,
                                    std::vector<local::Operation> ops,
                                    std::function<void(bool)> done) {
  auto pending = std::make_shared<PendingLocal>();
  pending->site = site;
  pending->ops = std::move(ops);
  pending->done = std::move(done);
  stats_.Incr("locals_submitted");
  AttemptLocal(std::move(pending));
}

void DistributedSystem::AttemptLocal(std::shared_ptr<PendingLocal> pending) {
  SiteRuntime& runtime = *sites_.at(pending->site);
  if (network_.NodeDown(pending->site)) {
    // The site is down (or mid-recovery): recovery must finish its marking
    // catch-up before any new work is admitted — a local transaction
    // started now could read exposed updates whose compensation is still
    // being replayed.
    RescheduleLocal(std::move(pending), "local_crash_retries");
    return;
  }
  const TxnId id = ids_.Next();
  runtime.db.Begin(id, TxnKind::kLocal);
  auto entry_undone = std::make_shared<common::SmallSet<TxnId>>(
      runtime.participant.SnapshotUndone());
  RunLocalOp(std::move(pending), id, std::move(entry_undone),
             runtime.db.epoch(), 0);
}

void DistributedSystem::RescheduleLocal(std::shared_ptr<PendingLocal> pending,
                                        const char* counter) {
  ++pending->attempts;
  stats_.Incr(counter);
  if (pending->attempts > options_.max_local_retries) {
    stats_.Incr("locals_failed");
    if (pending->done) pending->done(false);
    return;
  }
  simulator_.Schedule(options_.local_retry_backoff * pending->attempts,
                      [this, pending] { AttemptLocal(std::move(pending)); });
}

void DistributedSystem::RunLocalOp(
    std::shared_ptr<PendingLocal> pending, TxnId id,
    std::shared_ptr<common::SmallSet<TxnId>> entry_undone, std::uint64_t epoch,
    std::size_t index) {
  SiteRuntime& runtime = *sites_.at(pending->site);
  if (runtime.db.epoch() != epoch) {
    // The site crashed while this transaction was in flight; recovery
    // already rolled it back. Retry as a fresh transaction.
    RescheduleLocal(std::move(pending), "local_crash_retries");
    return;
  }
  if (index >= pending->ops.size()) {
    runtime.db.CommitLocal(id);
    runtime.participant.WitnessLocal(*entry_undone);
    stats_.Incr("locals_committed");
    if (pending->done) pending->done(true);
    return;
  }
  runtime.db.Execute(
      id, pending->ops[index],
      [this, pending, id, entry_undone, epoch, index](Result<Value> result) {
        if (sites_.at(pending->site)->db.epoch() != epoch) {
          RescheduleLocal(pending, "local_crash_retries");
          return;
        }
        if (result.ok() || result.status().IsNotFound() ||
            result.status().IsConflict()) {
          // Semantic misses (another transaction erased/inserted the key)
          // do not abort background traffic.
          RunLocalOp(pending, id, entry_undone, epoch, index + 1);
          return;
        }
        // Deadlock victim: retry as a fresh transaction.
        sites_.at(pending->site)->db.AbortLocal(id);
        RescheduleLocal(pending, "local_deadlock_retries");
      });
}

void DistributedSystem::CrashSite(SiteId site, Duration outage,
                                  Duration recovery_window,
                                  Duration recrash_delay) {
  SiteRuntime& runtime = *sites_.at(site);
  const std::uint64_t seq = ++runtime.crash_seq;
  network_.SetNodeDown(site, true);
  const std::vector<TxnId> losers = runtime.db.Crash();
  std::vector<TxnId> loser_globals;
  for (TxnId local_id : losers) {
    if (runtime.db.KindOf(local_id) == TxnKind::kGlobal) {
      loser_globals.push_back(runtime.db.GlobalIdOf(local_id));
    }
  }
  O2PC_TRACE(kSiteCrash, site, kInvalidTxn,
             static_cast<std::int64_t>(loser_globals.size()));
  runtime.participant.OnCrash(loser_globals);
  stats_.Incr("site_crashes");
  if (outage > 0) {
    simulator_.Schedule(outage, [this, site, seq, recovery_window] {
      BeginSiteRecovery(site, seq, recovery_window);
    });
    if (recrash_delay >= 0) {
      // Crash-during-recovery: a second crash lands `recrash_delay` after
      // the recovery phase begins. The second incarnation keeps the same
      // outage and recovery window but never re-crashes again.
      simulator_.Schedule(outage + recrash_delay,
                          [this, site, seq, outage, recovery_window] {
        if (sites_.at(site)->crash_seq != seq) return;  // superseded
        CrashSite(site, outage, recovery_window, /*recrash_delay=*/-1);
      });
    }
  }
}

void DistributedSystem::BeginSiteRecovery(SiteId site, std::uint64_t seq,
                                          Duration recovery_window) {
  SiteRuntime& runtime = *sites_.at(site);
  if (runtime.crash_seq != seq) return;  // a newer crash superseded this one
  // Marking catch-up input: the witness-gossip snapshots of every peer
  // still reachable right now. A peer that ran (or even just learned of)
  // CT_i during the outage carries T_i's execution-site set, which is
  // exactly the verdict the recovering site must replay before admitting
  // new work.
  std::vector<std::shared_ptr<const MarkingGossip>> snapshots;
  for (std::size_t peer = 0; peer < sites_.size(); ++peer) {
    const SiteId peer_site = static_cast<SiteId>(peer);
    if (peer_site == site || network_.NodeDown(peer_site)) continue;
    snapshots.push_back(sites_[peer]->participant.ExportKnowledge());
  }
  O2PC_TRACE(kRecoveryBegin, site, kInvalidTxn,
             runtime.participant.InDoubtCount());
  stats_.Incr("site_recoveries_started");
  auto join = std::make_shared<RecoveryJoin>();
  join->stats = runtime.participant.BeginRecovery(
      snapshots, [this, site, seq, join] {
        join->catchup_done = true;
        TryFinishRecovery(site, seq, join);
      });
  if (recovery_window > 0) {
    simulator_.Schedule(recovery_window, [this, site, seq, join] {
      join->window_done = true;
      TryFinishRecovery(site, seq, join);
    });
  } else {
    join->window_done = true;
  }
  TryFinishRecovery(site, seq, join);
}

void DistributedSystem::TryFinishRecovery(SiteId site, std::uint64_t seq,
                                          std::shared_ptr<RecoveryJoin> join) {
  SiteRuntime& runtime = *sites_.at(site);
  if (runtime.crash_seq != seq) return;  // superseded mid-recovery
  if (!join->window_done || !join->catchup_done || join->finished) return;
  join->finished = true;
  const int unresolved = runtime.participant.FinishRecovery();
  O2PC_TRACE(kRecoveryEnd, site, kInvalidTxn, join->stats.in_doubt,
             unresolved);
  O2PC_TRACE(kSiteRecover, site, kInvalidTxn);
  network_.SetNodeDown(site, false);
  stats_.Incr("site_recoveries_completed");
}

void DistributedSystem::InjectCoordinatorCrash(TxnId txn, Duration outage) {
  auto it = coordinators_.find(txn);
  if (it == coordinators_.end()) {
    O2PC_LOG(kWarn) << "no coordinator for T" << txn
                    << "; injected crash ignored";
    return;
  }
  it->second->RequestCrash(outage);
}

sg::CorrectnessReport DistributedSystem::Analyze() const {
  std::vector<const sg::ConflictTracker*> trackers;
  trackers.reserve(sites_.size());
  for (const auto& site : sites_) trackers.push_back(&site->db.tracker());
  return sg::AnalyzeHistory(trackers, unexposed_aborted_);
}

Value DistributedSystem::TotalValue() const {
  Value total = 0;
  for (const auto& site : sites_) total += site->db.table().SumValues();
  return total;
}

}  // namespace o2pc::core
