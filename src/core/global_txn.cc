#include "core/global_txn.h"

namespace o2pc::core {

std::vector<SiteId> GlobalTxnSpec::Sites() const {
  std::vector<SiteId> sites;
  sites.reserve(subtxns.size());
  for (const SubtxnSpec& sub : subtxns) sites.push_back(sub.site);
  return sites;
}

bool GlobalTxnSpec::Valid() const {
  if (subtxns.empty()) return false;
  std::set<SiteId> seen;
  for (const SubtxnSpec& sub : subtxns) {
    if (sub.ops.empty()) return false;
    if (!seen.insert(sub.site).second) return false;
  }
  return true;
}

}  // namespace o2pc::core
