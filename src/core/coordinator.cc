#include "core/coordinator.h"

#include "common/logging.h"
#include "net/payload_pool.h"
#include "trace/trace.h"

namespace o2pc::core {

Coordinator::Coordinator(sim::Simulator* simulator, net::Network* network,
                         WitnessKnowledge* knowledge,
                         metrics::StatsCollector* stats, Rng rng,
                         Options options)
    : simulator_(simulator),
      network_(network),
      knowledge_(knowledge),
      stats_(stats),
      rng_(rng),
      options_(options) {
  O2PC_CHECK(simulator != nullptr);
  O2PC_CHECK(network != nullptr);
  O2PC_CHECK(knowledge != nullptr);
}

void Coordinator::Start(TxnId id, GlobalTxnSpec spec,
                        GlobalDoneCallback done) {
  O2PC_CHECK(phase_ == Phase::kIdle) << "coordinator reuse";
  O2PC_CHECK(spec.Valid()) << "invalid global txn spec";
  phase_ = Phase::kInvoking;
  id_ = id;
  spec_ = std::move(spec);
  done_ = std::move(done);
  submit_time_ = simulator_->Now();
  O2PC_TRACE(kTxnSubmit, options_.home, id_);
  invoke_index_ = 0;
  invoke_attempt_ = 0;
  invoke_retries_ = 0;
  common::RetryPolicyConfig retry;
  retry.initial = options_.protocol.resend_timeout;
  retry.multiplier = options_.protocol.retry_backoff_multiplier;
  retry.cap = options_.protocol.retry_backoff_cap;
  // max_resends resends after the initial arm; Reset() per phase restores
  // the budget, as the old per-phase resend counter did.
  retry.budget = options_.protocol.max_resends + 1;
  retry.jitter = options_.protocol.retry_jitter;
  // Seeded off the txn id alone so the jitter stream never perturbs rng_'s
  // (crash-sampling) draws.
  resend_policy_ = common::RetryPolicy(retry, Rng(id ^ 0x7265747279ULL));
  ArmResendTimer();
  InvokeCurrent();
}

void Coordinator::Send(SiteId to, net::MessageType type,
                       std::shared_ptr<const net::Payload> payload) {
  net::Message message;
  message.from = options_.home;
  message.to = to;
  message.type = type;
  message.txn = id_;
  message.payload = std::move(payload);
  network_->Send(std::move(message));
}

void Coordinator::InvokeCurrent() {
  O2PC_CHECK(invoke_index_ < spec_.subtxns.size());
  const SubtxnSpec& sub = spec_.subtxns[invoke_index_];
  auto payload = net::MakePayload<SubtxnInvokePayload>();
  payload->ops = sub.ops;
  payload->transmarks = transmarks_;
  payload->force_abort_vote = sub.force_abort_vote;
  payload->attempt = invoke_attempt_;
  payload->txn_start = submit_time_;
  payload->gossip = knowledge_->Export();
  invoked_sites_.insert(sub.site);
  Send(sub.site, net::MessageType::kSubtxnInvoke, std::move(payload));
}

void Coordinator::OnMessage(const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kSubtxnAck:
      OnSubtxnAck(message);
      return;
    case net::MessageType::kVote:
      OnVote(message);
      return;
    case net::MessageType::kDecisionAck:
      OnDecisionAck(message);
      return;
    case net::MessageType::kDecisionReq:
      OnDecisionRequest(message);
      return;
    default:
      O2PC_LOG(kWarn) << "coordinator of T" << id_ << " ignoring "
                      << net::MessageTypeName(message.type);
  }
}

void Coordinator::OnSubtxnAck(const net::Message& message) {
  if (phase_ != Phase::kInvoking) return;  // straggler
  const auto* payload =
      static_cast<const SubtxnAckPayload*>(message.payload.get());
  const SubtxnSpec& current = spec_.subtxns[invoke_index_];
  if (message.from != current.site || payload->attempt != invoke_attempt_) {
    return;  // stale ack of an earlier site/attempt
  }
  knowledge_->Merge(payload->gossip);

  if (payload->status.ok()) {
    executed_sites_.insert(current.site);
    transmarks_ = payload->transmarks;
    ++invoke_index_;
    ++invoke_attempt_;
    invoke_retries_ = 0;
    if (invoke_index_ < spec_.subtxns.size()) {
      InvokeCurrent();
    } else {
      StartVoting();
    }
    return;
  }

  if (payload->status.IsRejected()) {
    ++rejections_;
    if (payload->fatal) {
      // In-place retries cannot succeed (retirement fence / transmarks
      // poisoned by a mark this incarnation can never shed): abort and let
      // the system restart the work as a fresh incarnation.
      AbortEarly(payload->status, /*restartable=*/true);
      return;
    }
    ++invoke_retries_;
    if (invoke_retries_ <= options_.protocol.max_subtxn_retries) {
      ++invoke_attempt_;
      const Duration backoff =
          options_.protocol.retry_backoff * invoke_retries_;
      simulator_->Schedule(backoff, [this, attempt = invoke_attempt_] {
        if (phase_ == Phase::kInvoking && invoke_attempt_ == attempt) {
          InvokeCurrent();
        }
      });
      return;
    }
    AbortEarly(payload->status, /*restartable=*/true);
    return;
  }

  // The subtransaction failed and was rolled back at the site; it did
  // execute (partially), so it counts for exec_sites.
  executed_sites_.insert(current.site);
  const bool restartable =
      payload->status.IsDeadlock() || payload->status.IsAborted();
  AbortEarly(payload->status, restartable);
}

void Coordinator::AnnounceDecide() {
  if (options_.step_hook != nullptr && *options_.step_hook) {
    (*options_.step_hook)(
        StepContext{ProtocolStep::kCoordinatorDecide, options_.home, id_});
  }
}

void Coordinator::AbortEarly(const Status& status, bool restartable) {
  decision_commit_ = false;
  abort_status_ = status;
  restartable_ = restartable;
  log_.LogDecision(id_, /*commit=*/false);
  decide_time_ = simulator_->Now();
  O2PC_TRACE(kDecide, options_.home, id_, /*commit=*/0, /*early=*/1);
  if (stats_ != nullptr) stats_->Incr("global_aborts_early");
  AnnounceDecide();
  BroadcastDecision();
}

void Coordinator::StartVoting() {
  phase_ = Phase::kVoting;
  votes_.clear();
  resend_policy_.Reset();
  // The VOTE-REQ names every participant so a later-blocked site can run
  // the cooperative termination protocol against its peers.
  std::vector<SiteId> participants;
  participants.reserve(spec_.subtxns.size());
  for (const SubtxnSpec& sub : spec_.subtxns) participants.push_back(sub.site);
  for (const SubtxnSpec& sub : spec_.subtxns) {
    auto payload = net::MakePayload<VoteRequestPayload>();
    payload->participants = participants;
    payload->gossip = knowledge_->Export();
    Send(sub.site, net::MessageType::kVoteRequest, std::move(payload));
  }
}

void Coordinator::OnVote(const net::Message& message) {
  if (phase_ != Phase::kVoting) return;
  const auto* payload = static_cast<const VotePayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  votes_[message.from] = payload->commit;
  if (payload->recovery_abort) recovery_abort_seen_ = true;
  if (votes_.size() == spec_.subtxns.size()) Decide();
}

bool Coordinator::Exposed() const {
  // Under O2PC every participant that voted commit locally committed (or,
  // with a pending real action, at least prepared — counted conservatively
  // as exposure). Under 2PC nothing is ever exposed early; an abort
  // reached before the voting phase exposed nothing either.
  if (options_.protocol.protocol != CommitProtocol::kOptimistic) {
    return false;
  }
  for (const auto& [site, commit] : votes_) {
    (void)site;
    if (commit) return true;
  }
  return false;
}

void Coordinator::Decide() {
  decision_commit_ = true;
  for (const auto& [site, commit] : votes_) {
    (void)site;
    if (!commit) decision_commit_ = false;
  }
  if (!decision_commit_) {
    abort_status_ = Status::Aborted(recovery_abort_seen_
                                        ? "participant lost state in a crash"
                                        : "a participant voted abort");
    // A crash casualty is worth retrying; a business abort is not.
    restartable_ = recovery_abort_seen_;
  }
  // Force-log the decision; it survives the crash window below.
  log_.LogDecision(id_, decision_commit_);
  decide_time_ = simulator_->Now();
  O2PC_TRACE(kDecide, options_.home, id_, decision_commit_ ? 1 : 0,
             /*early=*/0);
  if (stats_ != nullptr) {
    stats_->Incr(decision_commit_ ? "decisions_commit" : "decisions_abort");
  }
  AnnounceDecide();

  if (options_.protocol.coordinator_crash_probability > 0.0 &&
      rng_.Bernoulli(options_.protocol.coordinator_crash_probability)) {
    // Crash after logging, before broadcasting: participants learn nothing
    // until recovery. 2PC participants block in prepared state; O2PC
    // participants have already released their locks.
    CrashBeforeBroadcast(/*outage=*/0, /*injected=*/false);
    return;
  }
  BroadcastDecision();
}

void Coordinator::CrashBeforeBroadcast(Duration outage, bool injected) {
  phase_ = Phase::kCrashed;
  const bool permanent = outage < 0;
  if (outage <= 0) outage = options_.protocol.coordinator_recovery_delay;
  if (stats_ != nullptr) {
    stats_->Incr("coordinator_crashes");
    if (permanent) stats_->Incr("coordinator_crashes_permanent");
  }
  O2PC_TRACE(kCoordinatorCrash, options_.home, id_, /*a=*/0,
             /*b=*/permanent ? 1 : 0);
  // The dead process sends nothing; retire its resend chain. Recovery (if
  // any) re-arms when it broadcasts; under a permanent outage the
  // participants must help themselves (DECISION-REQ / CTP).
  if (resend_event_ != sim::kInvalidEvent) {
    simulator_->Cancel(resend_event_);
    resend_event_ = sim::kInvalidEvent;
  }
  if (permanent) {
    O2PC_LOG(kWarn) << "coordinator of T" << id_ << " crashed"
                    << (injected ? " (injected)" : "")
                    << " permanently; decision stays log-only";
    return;
  }
  O2PC_LOG(kDebug) << "coordinator of T" << id_ << " crashed"
                   << (injected ? " (injected)" : "") << "; recovery in "
                   << outage << "us";
  simulator_->Schedule(outage, [this] {
    std::optional<bool> logged = log_.DecisionFor(id_);
    O2PC_CHECK(logged.has_value());
    decision_commit_ = *logged;
    O2PC_TRACE(kCoordinatorRecover, options_.home, id_,
               decision_commit_ ? 1 : 0);
    BroadcastDecision();
  });
}

void Coordinator::BroadcastDecision() {
  if (crash_requested_) {
    // Injected crash: the decision is already force-logged, but no DECISION
    // message leaves before recovery — the exact window the probabilistic
    // crash in Decide() samples, pinned deterministically.
    crash_requested_ = false;
    CrashBeforeBroadcast(requested_outage_, /*injected=*/true);
    return;
  }
  phase_ = Phase::kBroadcasting;
  resend_policy_.Reset();
  // Re-arm when the chain was retired (crash recovery, exhausted phase):
  // in the normal flow a tick is already pending.
  if (resend_event_ == sim::kInvalidEvent) ArmResendTimer();
  decision_acks_.clear();
  std::vector<SiteId> exec_sites(executed_sites_.begin(),
                                 executed_sites_.end());
  for (SiteId site : invoked_sites_) {
    auto payload = net::MakePayload<DecisionPayload>();
    payload->commit = decision_commit_;
    payload->exposed = Exposed();
    payload->exec_sites = exec_sites;
    payload->gossip = knowledge_->Export();
    Send(site, net::MessageType::kDecision, std::move(payload));
  }
  if (invoked_sites_.empty()) Finish();
}

void Coordinator::OnDecisionRequest(const net::Message& message) {
  const auto* payload =
      static_cast<const DecisionRequestPayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  // The recovery agent consults the force-written decision log, so a
  // DECISION-REQ is answerable in kBroadcasting, kDone, *and* kCrashed —
  // the coordinator process being down does not take the home site's log
  // with it. Pre-decision phases have nothing durable to say; the asker
  // keeps retrying (and eventually escalates to cooperative termination).
  const std::optional<bool> logged = log_.DecisionFor(id_);
  if (!logged.has_value()) {
    if (stats_ != nullptr) stats_->Incr("decision_reqs_undecided");
    return;
  }
  if (stats_ != nullptr) stats_->Incr("decision_reqs_answered");
  std::vector<SiteId> exec_sites(executed_sites_.begin(),
                                 executed_sites_.end());
  auto answer = net::MakePayload<DecisionPayload>();
  answer->commit = *logged;
  answer->exposed = Exposed();
  answer->exec_sites = std::move(exec_sites);
  answer->gossip = knowledge_->Export();
  Send(message.from, net::MessageType::kDecision, std::move(answer));
}

void Coordinator::OnDecisionAck(const net::Message& message) {
  if (phase_ != Phase::kBroadcasting) return;
  const auto* payload =
      static_cast<const DecisionAckPayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  if (!decision_acks_.insert(message.from).second) return;  // duplicate
  if (payload->compensated) ++compensations_;
  if (decision_acks_.size() == invoked_sites_.size()) Finish();
}

void Coordinator::Finish() {
  phase_ = Phase::kDone;
  O2PC_TRACE(kTxnFinish, options_.home, id_, decision_commit_ ? 1 : 0,
             Exposed() ? 1 : 0);
  if (resend_event_ != sim::kInvalidEvent) {
    simulator_->Cancel(resend_event_);
    resend_event_ = sim::kInvalidEvent;
  }
  GlobalResult result;
  result.id = id_;
  result.committed = decision_commit_;
  result.exposed = Exposed();
  result.status = decision_commit_ ? Status::OK() : abort_status_;
  result.restartable = !decision_commit_ && restartable_;
  result.submit_time = submit_time_;
  result.decide_time = decide_time_;
  result.finish_time = simulator_->Now();
  result.num_sites = static_cast<int>(spec_.subtxns.size());
  result.compensations = compensations_;
  result.r1_rejections = rejections_;
  if (done_) done_(result);
}

void Coordinator::ArmResendTimer() {
  if (options_.protocol.resend_timeout <= 0) return;
  resend_event_ =
      simulator_->Schedule(resend_policy_.NextDelay(), [this] { ResendTick(); });
}

void Coordinator::ResendTick() {
  resend_event_ = sim::kInvalidEvent;
  if (phase_ == Phase::kDone) return;
  if (phase_ == Phase::kCrashed) {
    // Crashed coordinators neither send nor time out; a scheduled recovery
    // re-arms when it broadcasts. (Permanent outages cancel the chain in
    // CrashBeforeBroadcast, so this is a stale tick racing the crash.)
    return;
  }
  if (resend_policy_.Exhausted()) {
    O2PC_LOG(kWarn) << "coordinator of T" << id_
                    << " exhausted resends in phase "
                    << static_cast<int>(phase_);
    if (phase_ == Phase::kInvoking || phase_ == Phase::kVoting) {
      // AbortEarly broadcasts the abort decision, which resets the policy
      // and re-arms the (now idle) timer chain.
      AbortEarly(Status::TimedOut("participant unreachable"),
                 /*restartable=*/true);
      return;
    }
    // kBroadcasting: the decision is logged and was broadcast max_resends
    // times; whoever still has not acked is unreachable. Log-and-retire —
    // the stragglers terminate on their own via DECISION-REQ (this
    // coordinator keeps answering from its log after Finish) or via
    // cooperative termination against their peers.
    if (stats_ != nullptr) stats_->Incr("broadcasts_retired_unacked");
    Finish();
    return;
  }
  switch (phase_) {
    case Phase::kInvoking:
      InvokeCurrent();
      break;
    case Phase::kVoting: {
      std::vector<SiteId> participants;
      participants.reserve(spec_.subtxns.size());
      for (const SubtxnSpec& sub : spec_.subtxns) {
        participants.push_back(sub.site);
      }
      for (const SubtxnSpec& sub : spec_.subtxns) {
        if (votes_.contains(sub.site)) continue;
        auto payload = net::MakePayload<VoteRequestPayload>();
        payload->participants = participants;
        payload->gossip = knowledge_->Export();
        Send(sub.site, net::MessageType::kVoteRequest, std::move(payload));
      }
      break;
    }
    case Phase::kBroadcasting: {
      std::vector<SiteId> exec_sites(executed_sites_.begin(),
                                     executed_sites_.end());
      for (SiteId site : invoked_sites_) {
        if (decision_acks_.contains(site)) continue;
        auto payload = net::MakePayload<DecisionPayload>();
        payload->commit = decision_commit_;
        payload->exposed = Exposed();
        payload->exec_sites = exec_sites;
        payload->gossip = knowledge_->Export();
        Send(site, net::MessageType::kDecision, std::move(payload));
      }
      break;
    }
    case Phase::kCrashed:
    case Phase::kIdle:
    case Phase::kDone:
      break;
  }
  ArmResendTimer();
}

}  // namespace o2pc::core
