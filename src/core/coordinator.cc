#include "core/coordinator.h"

#include "common/logging.h"
#include "trace/trace.h"

namespace o2pc::core {

Coordinator::Coordinator(sim::Simulator* simulator, net::Network* network,
                         WitnessKnowledge* knowledge,
                         metrics::StatsCollector* stats, Rng rng,
                         Options options)
    : simulator_(simulator),
      network_(network),
      knowledge_(knowledge),
      stats_(stats),
      rng_(rng),
      options_(options) {
  O2PC_CHECK(simulator != nullptr);
  O2PC_CHECK(network != nullptr);
  O2PC_CHECK(knowledge != nullptr);
}

void Coordinator::Start(TxnId id, GlobalTxnSpec spec,
                        GlobalDoneCallback done) {
  O2PC_CHECK(phase_ == Phase::kIdle) << "coordinator reuse";
  O2PC_CHECK(spec.Valid()) << "invalid global txn spec";
  phase_ = Phase::kInvoking;
  id_ = id;
  spec_ = std::move(spec);
  done_ = std::move(done);
  submit_time_ = simulator_->Now();
  O2PC_TRACE(kTxnSubmit, options_.home, id_);
  invoke_index_ = 0;
  invoke_attempt_ = 0;
  invoke_retries_ = 0;
  ArmResendTimer();
  InvokeCurrent();
}

void Coordinator::Send(SiteId to, net::MessageType type,
                       std::shared_ptr<const net::Payload> payload) {
  net::Message message;
  message.from = options_.home;
  message.to = to;
  message.type = type;
  message.txn = id_;
  message.payload = std::move(payload);
  network_->Send(std::move(message));
}

void Coordinator::InvokeCurrent() {
  O2PC_CHECK(invoke_index_ < spec_.subtxns.size());
  const SubtxnSpec& sub = spec_.subtxns[invoke_index_];
  auto payload = std::make_shared<SubtxnInvokePayload>();
  payload->ops = sub.ops;
  payload->transmarks = transmarks_;
  payload->force_abort_vote = sub.force_abort_vote;
  payload->attempt = invoke_attempt_;
  payload->txn_start = submit_time_;
  payload->gossip = knowledge_->Export();
  invoked_sites_.insert(sub.site);
  Send(sub.site, net::MessageType::kSubtxnInvoke, std::move(payload));
}

void Coordinator::OnMessage(const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kSubtxnAck:
      OnSubtxnAck(message);
      return;
    case net::MessageType::kVote:
      OnVote(message);
      return;
    case net::MessageType::kDecisionAck:
      OnDecisionAck(message);
      return;
    default:
      O2PC_LOG(kWarn) << "coordinator of T" << id_ << " ignoring "
                      << net::MessageTypeName(message.type);
  }
}

void Coordinator::OnSubtxnAck(const net::Message& message) {
  if (phase_ != Phase::kInvoking) return;  // straggler
  const auto* payload =
      static_cast<const SubtxnAckPayload*>(message.payload.get());
  const SubtxnSpec& current = spec_.subtxns[invoke_index_];
  if (message.from != current.site || payload->attempt != invoke_attempt_) {
    return;  // stale ack of an earlier site/attempt
  }
  knowledge_->Merge(payload->gossip);

  if (payload->status.ok()) {
    executed_sites_.insert(current.site);
    transmarks_ = payload->transmarks;
    ++invoke_index_;
    ++invoke_attempt_;
    invoke_retries_ = 0;
    if (invoke_index_ < spec_.subtxns.size()) {
      InvokeCurrent();
    } else {
      StartVoting();
    }
    return;
  }

  if (payload->status.IsRejected()) {
    ++rejections_;
    if (payload->fatal) {
      // In-place retries cannot succeed (retirement fence / transmarks
      // poisoned by a mark this incarnation can never shed): abort and let
      // the system restart the work as a fresh incarnation.
      AbortEarly(payload->status, /*restartable=*/true);
      return;
    }
    ++invoke_retries_;
    if (invoke_retries_ <= options_.protocol.max_subtxn_retries) {
      ++invoke_attempt_;
      const Duration backoff =
          options_.protocol.retry_backoff * invoke_retries_;
      simulator_->Schedule(backoff, [this, attempt = invoke_attempt_] {
        if (phase_ == Phase::kInvoking && invoke_attempt_ == attempt) {
          InvokeCurrent();
        }
      });
      return;
    }
    AbortEarly(payload->status, /*restartable=*/true);
    return;
  }

  // The subtransaction failed and was rolled back at the site; it did
  // execute (partially), so it counts for exec_sites.
  executed_sites_.insert(current.site);
  const bool restartable =
      payload->status.IsDeadlock() || payload->status.IsAborted();
  AbortEarly(payload->status, restartable);
}

void Coordinator::AnnounceDecide() {
  if (options_.step_hook != nullptr && *options_.step_hook) {
    (*options_.step_hook)(
        StepContext{ProtocolStep::kCoordinatorDecide, options_.home, id_});
  }
}

void Coordinator::AbortEarly(const Status& status, bool restartable) {
  decision_commit_ = false;
  abort_status_ = status;
  restartable_ = restartable;
  log_.LogDecision(id_, /*commit=*/false);
  decide_time_ = simulator_->Now();
  O2PC_TRACE(kDecide, options_.home, id_, /*commit=*/0, /*early=*/1);
  if (stats_ != nullptr) stats_->Incr("global_aborts_early");
  AnnounceDecide();
  BroadcastDecision();
}

void Coordinator::StartVoting() {
  phase_ = Phase::kVoting;
  votes_.clear();
  resend_count_ = 0;
  for (const SubtxnSpec& sub : spec_.subtxns) {
    auto payload = std::make_shared<VoteRequestPayload>();
    payload->gossip = knowledge_->Export();
    Send(sub.site, net::MessageType::kVoteRequest, std::move(payload));
  }
}

void Coordinator::OnVote(const net::Message& message) {
  if (phase_ != Phase::kVoting) return;
  const auto* payload = static_cast<const VotePayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  votes_[message.from] = payload->commit;
  if (payload->recovery_abort) recovery_abort_seen_ = true;
  if (votes_.size() == spec_.subtxns.size()) Decide();
}

bool Coordinator::Exposed() const {
  // Under O2PC every participant that voted commit locally committed (or,
  // with a pending real action, at least prepared — counted conservatively
  // as exposure). Under 2PC nothing is ever exposed early; an abort
  // reached before the voting phase exposed nothing either.
  if (options_.protocol.protocol != CommitProtocol::kOptimistic) {
    return false;
  }
  for (const auto& [site, commit] : votes_) {
    (void)site;
    if (commit) return true;
  }
  return false;
}

void Coordinator::Decide() {
  decision_commit_ = true;
  for (const auto& [site, commit] : votes_) {
    (void)site;
    if (!commit) decision_commit_ = false;
  }
  if (!decision_commit_) {
    abort_status_ = Status::Aborted(recovery_abort_seen_
                                        ? "participant lost state in a crash"
                                        : "a participant voted abort");
    // A crash casualty is worth retrying; a business abort is not.
    restartable_ = recovery_abort_seen_;
  }
  // Force-log the decision; it survives the crash window below.
  log_.LogDecision(id_, decision_commit_);
  decide_time_ = simulator_->Now();
  O2PC_TRACE(kDecide, options_.home, id_, decision_commit_ ? 1 : 0,
             /*early=*/0);
  if (stats_ != nullptr) {
    stats_->Incr(decision_commit_ ? "decisions_commit" : "decisions_abort");
  }
  AnnounceDecide();

  if (options_.protocol.coordinator_crash_probability > 0.0 &&
      rng_.Bernoulli(options_.protocol.coordinator_crash_probability)) {
    // Crash after logging, before broadcasting: participants learn nothing
    // until recovery. 2PC participants block in prepared state; O2PC
    // participants have already released their locks.
    phase_ = Phase::kCrashed;
    if (stats_ != nullptr) stats_->Incr("coordinator_crashes");
    O2PC_TRACE(kCoordinatorCrash, options_.home, id_);
    O2PC_LOG(kDebug) << "coordinator of T" << id_ << " crashed; recovery in "
                     << options_.protocol.coordinator_recovery_delay << "us";
    simulator_->Schedule(options_.protocol.coordinator_recovery_delay,
                         [this] {
                           std::optional<bool> logged = log_.DecisionFor(id_);
                           O2PC_CHECK(logged.has_value());
                           decision_commit_ = *logged;
                           O2PC_TRACE(kCoordinatorRecover, options_.home, id_,
                                      decision_commit_ ? 1 : 0);
                           BroadcastDecision();
                         });
    return;
  }
  BroadcastDecision();
}

void Coordinator::BroadcastDecision() {
  if (crash_requested_) {
    // Injected crash: the decision is already force-logged, but no DECISION
    // message leaves before recovery — the exact window the probabilistic
    // crash in Decide() samples, pinned deterministically.
    crash_requested_ = false;
    phase_ = Phase::kCrashed;
    if (stats_ != nullptr) stats_->Incr("coordinator_crashes");
    O2PC_TRACE(kCoordinatorCrash, options_.home, id_);
    O2PC_LOG(kDebug) << "coordinator of T" << id_
                     << " crashed (injected); recovery in "
                     << options_.protocol.coordinator_recovery_delay << "us";
    simulator_->Schedule(options_.protocol.coordinator_recovery_delay,
                         [this] {
                           std::optional<bool> logged = log_.DecisionFor(id_);
                           O2PC_CHECK(logged.has_value());
                           decision_commit_ = *logged;
                           O2PC_TRACE(kCoordinatorRecover, options_.home, id_,
                                      decision_commit_ ? 1 : 0);
                           BroadcastDecision();
                         });
    return;
  }
  phase_ = Phase::kBroadcasting;
  resend_count_ = 0;
  decision_acks_.clear();
  std::vector<SiteId> exec_sites(executed_sites_.begin(),
                                 executed_sites_.end());
  for (SiteId site : invoked_sites_) {
    auto payload = std::make_shared<DecisionPayload>();
    payload->commit = decision_commit_;
    payload->exposed = Exposed();
    payload->exec_sites = exec_sites;
    payload->gossip = knowledge_->Export();
    Send(site, net::MessageType::kDecision, std::move(payload));
  }
  if (invoked_sites_.empty()) Finish();
}

void Coordinator::OnDecisionAck(const net::Message& message) {
  if (phase_ != Phase::kBroadcasting) return;
  const auto* payload =
      static_cast<const DecisionAckPayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  if (!decision_acks_.insert(message.from).second) return;  // duplicate
  if (payload->compensated) ++compensations_;
  if (decision_acks_.size() == invoked_sites_.size()) Finish();
}

void Coordinator::Finish() {
  phase_ = Phase::kDone;
  O2PC_TRACE(kTxnFinish, options_.home, id_, decision_commit_ ? 1 : 0,
             Exposed() ? 1 : 0);
  if (resend_event_ != sim::kInvalidEvent) {
    simulator_->Cancel(resend_event_);
    resend_event_ = sim::kInvalidEvent;
  }
  GlobalResult result;
  result.id = id_;
  result.committed = decision_commit_;
  result.exposed = Exposed();
  result.status = decision_commit_ ? Status::OK() : abort_status_;
  result.restartable = !decision_commit_ && restartable_;
  result.submit_time = submit_time_;
  result.decide_time = decide_time_;
  result.finish_time = simulator_->Now();
  result.num_sites = static_cast<int>(spec_.subtxns.size());
  result.compensations = compensations_;
  result.r1_rejections = rejections_;
  if (done_) done_(result);
}

void Coordinator::ArmResendTimer() {
  if (options_.protocol.resend_timeout <= 0) return;
  resend_event_ = simulator_->Schedule(options_.protocol.resend_timeout,
                                       [this] { ResendTick(); });
}

void Coordinator::ResendTick() {
  resend_event_ = sim::kInvalidEvent;
  if (phase_ == Phase::kDone) return;
  if (phase_ == Phase::kCrashed) {
    // Crashed coordinators neither send nor time out; recovery is already
    // scheduled.
    ArmResendTimer();
    return;
  }
  if (++resend_count_ > options_.protocol.max_resends) {
    O2PC_LOG(kWarn) << "coordinator of T" << id_
                    << " exhausted resends in phase "
                    << static_cast<int>(phase_);
    if (phase_ == Phase::kInvoking || phase_ == Phase::kVoting) {
      AbortEarly(Status::TimedOut("participant unreachable"),
                 /*restartable=*/true);
      ArmResendTimer();
      return;
    }
    Finish();
    return;
  }
  switch (phase_) {
    case Phase::kInvoking:
      InvokeCurrent();
      break;
    case Phase::kVoting:
      for (const SubtxnSpec& sub : spec_.subtxns) {
        if (votes_.contains(sub.site)) continue;
        auto payload = std::make_shared<VoteRequestPayload>();
        payload->gossip = knowledge_->Export();
        Send(sub.site, net::MessageType::kVoteRequest, std::move(payload));
      }
      break;
    case Phase::kBroadcasting: {
      std::vector<SiteId> exec_sites(executed_sites_.begin(),
                                     executed_sites_.end());
      for (SiteId site : invoked_sites_) {
        if (decision_acks_.contains(site)) continue;
        auto payload = std::make_shared<DecisionPayload>();
        payload->commit = decision_commit_;
        payload->exposed = Exposed();
        payload->exec_sites = exec_sites;
        payload->gossip = knowledge_->Export();
        Send(site, net::MessageType::kDecision, std::move(payload));
      }
      break;
    }
    case Phase::kCrashed:
    case Phase::kIdle:
    case Phase::kDone:
      break;
  }
  ArmResendTimer();
}

}  // namespace o2pc::core
