#include "core/participant.h"

#include <algorithm>

#include "common/logging.h"
#include "net/payload_pool.h"
#include "common/string_util.h"

namespace o2pc::core {

Participant::Participant(sim::Simulator* simulator, net::Network* network,
                         local::LocalDb* db, TxnIdAllocator* ids,
                         WitnessKnowledge* knowledge,
                         metrics::StatsCollector* stats, Options options)
    : simulator_(simulator),
      network_(network),
      db_(db),
      ids_(ids),
      knowledge_(knowledge),
      stats_(stats),
      options_(options),
      compensator_(simulator, db, ids, stats) {
  O2PC_CHECK(simulator != nullptr);
  O2PC_CHECK(network != nullptr);
  O2PC_CHECK(db != nullptr);
  O2PC_CHECK(knowledge != nullptr);
}

void Participant::Step(ProtocolStep step, TxnId txn) {
  if (options_.step_hook != nullptr && *options_.step_hook) {
    (*options_.step_hook)(StepContext{step, site(), txn});
  }
}

void Participant::OnMessage(const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kSubtxnInvoke:
      OnSubtxnInvoke(message);
      return;
    case net::MessageType::kVoteRequest:
      OnVoteRequest(message);
      return;
    case net::MessageType::kDecision:
      OnDecision(message);
      return;
    case net::MessageType::kTermReq:
      OnTermRequest(message);
      return;
    case net::MessageType::kTermResp:
      OnTermResponse(message);
      return;
    default:
      O2PC_LOG(kWarn) << "participant " << site() << " ignoring "
                      << net::MessageTypeName(message.type);
  }
}

void Participant::OnSubtxnInvoke(const net::Message& message) {
  const auto* payload =
      static_cast<const SubtxnInvokePayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  TryUnmark();

  auto it = subtxns_.find(message.txn);
  if (it != subtxns_.end()) {
    Subtxn& sub = it->second;
    if (payload->attempt == sub.attempt) {
      // Network resend of the attempt we are running / have answered.
      if (sub.last_ack != nullptr) SendAck(sub, sub.last_ack);
      return;
    }
    if (payload->attempt < sub.attempt) return;  // stale resend
    if (sub.voted || sub.decided) {
      // Ghost-round retransmission: a duplicated or reordered INVOKE with
      // a higher attempt landing after this subtransaction already cast a
      // binding vote (e.g. a recovery-abort stub answered a resent
      // VOTE-REQ) or learned the DECISION. Reinitializing here would wipe
      // the binding vote and re-execute a settled transaction — a peer
      // that resolved abort off the stub via CTP would then diverge from
      // a later commit vote. Re-answer from the recorded state instead.
      // The sender is the authoritative coordinator — a stub created by a
      // TERM-REQ has none, and answering it would address kInvalidSite.
      sub.coordinator = message.from;
      if (sub.decision_acked && sub.last_decision_ack != nullptr) {
        SendDecisionAck(sub, sub.last_decision_ack->compensated);
      } else if (sub.last_vote != nullptr) {
        SendVote(sub, sub.last_vote->commit, sub.last_vote->recovery_abort);
      } else if (sub.voted) {
        SendVote(sub, sub.vote_commit, /*recovery_abort=*/!sub.vote_commit);
      }
      return;
    }
    // A genuinely new attempt (retry after rejection) falls through and
    // reinitializes the runtime below.
  }

  Subtxn& sub = subtxns_[message.txn];
  sub.global_id = message.txn;
  sub.coordinator = message.from;
  sub.ops = payload->ops;
  sub.next_op = 0;
  sub.invoke_marks = payload->transmarks;
  sub.force_abort_vote = payload->force_abort_vote;
  sub.attempt = payload->attempt;
  sub.txn_start = payload->txn_start;
  sub.executed = false;
  sub.last_ack = nullptr;
  // A fresh attempt restarts the termination clocks.
  CancelTermination(sub);
  sub.term_rounds = 0;
  sub.prepared_at = 0;
  sub.local_id = ids_->Next();
  db_->Begin(sub.local_id, TxnKind::kGlobal, sub.global_id);

  if (!MarkingActive()) {
    sub.merged_marks = sub.invoke_marks;
    sub.merged_marks.visited_sites.push_back(site());
    O2PC_TRACE(kSubtxnAdmit, site(), message.txn, sub.attempt);
    Step(ProtocolStep::kSubtxnAdmit, message.txn);
    ExecuteNext(message.txn);
    return;
  }

  // Rule R1 as the first action of T_jk: read sitemarks.k under a (short)
  // shared lock, check compatibility, accumulate into transmarks.j.
  const TxnId gid = message.txn;
  const int attempt = sub.attempt;
  db_->Execute(
      sub.local_id, local::Operation{local::OpType::kRead, options_.marks_key},
      [this, gid, attempt](Result<Value> result) {
        auto sit = subtxns_.find(gid);
        if (sit == subtxns_.end() || sit->second.attempt != attempt) return;
        Subtxn& sub = sit->second;
        if (!result.ok()) {
          if (db_->TxnState(sub.local_id) == local::LocalTxnState::kActive) {
            FailSubtxn(gid, result.status());
          }
          return;
        }
        // The paper's deadlock-avoidance compromise: unlock sitemarks.k
        // right after the check (a final validation happens at the end).
        db_->lock_manager().Release(sub.local_id, options_.marks_key);
        const common::SmallSet<TxnId> entry_undone = marks_.undone;
        MarkCheck check = EvaluateMarkCheck(sub.invoke_marks, sub.txn_start);
        if (!check.ok) {
          if (stats_ != nullptr) stats_->Incr("r1_rejections");
          O2PC_TRACE(kR1Reject, site(), gid, sub.attempt,
                     check.fatal ? 1 : 0);
          O2PC_LOG(kDebug) << "site " << site() << " rejects T" << gid
                           << (check.fatal ? " (fatal): " : ": ")
                           << check.reason;
          // The rejected probe never executed: discard it without trace.
          db_->AbortLocal(sub.local_id);
          auto ack = net::MakePayload<SubtxnAckPayload>();
          ack->status = Status::Rejected(
              StrCat("R1 at site ", site(), ": ", check.reason));
          ack->attempt = sub.attempt;
          ack->fatal = check.fatal;
          ack->gossip = Gossip();
          SendAck(sub, std::move(ack));
          return;
        }
        sub.entry_undone = entry_undone;  // includes marks retired just now
        sub.admit_time = simulator_->Now();
        sub.merged_marks = check.checked;
        MergeMarks(marks_, site(), sub.merged_marks);
        // Record post-quiescence observations: this visit provably follows
        // everything of the transactions retired here, which the fence
        // accepts in place of mark observations at this site.
        for (const auto& [retired_ti, tombstone] : retired_marks_) {
          (void)tombstone;
          sub.merged_marks.retired_seen[retired_ti].insert(site());
        }
        O2PC_TRACE(kSubtxnAdmit, site(), gid, sub.attempt);
        Step(ProtocolStep::kSubtxnAdmit, gid);
        O2PC_LOG(kDebug) << "site " << site() << " admits T" << gid << " ["
                         << sub.merged_marks.ToString() << "] at "
                         << simulator_->Now();
        ExecuteNext(gid);
      });
}

void Participant::ExecuteNext(TxnId global_id) {
  Subtxn& sub = subtxns_.at(global_id);
  if (sub.next_op >= sub.ops.size()) {
    FinishExecution(global_id);
    return;
  }
  const local::Operation op = sub.ops[sub.next_op];
  const int attempt = sub.attempt;
  db_->Execute(sub.local_id, op,
               [this, global_id, attempt](Result<Value> result) {
                 auto it = subtxns_.find(global_id);
                 if (it == subtxns_.end() || it->second.attempt != attempt) {
                   return;  // stale callback of a superseded attempt
                 }
                 if (!result.ok()) {
                   // If the subtransaction is no longer active, something
                   // else (an abort decision racing a cancelled lock wait)
                   // already terminated it — nothing to do.
                   if (db_->TxnState(it->second.local_id) ==
                       local::LocalTxnState::kActive) {
                     FailSubtxn(global_id, result.status());
                   }
                   return;
                 }
                 ++it->second.next_op;
                 ExecuteNext(global_id);
               });
}

void Participant::FinishExecution(TxnId global_id) {
  Subtxn& sub = subtxns_.at(global_id);
  if (MarkingActive() && options_.protocol.revalidate_marks_at_end) {
    // Final validation of the compatibility check, as the last action of
    // the subtransaction (this lock is held until the vote, but it is the
    // last access, so the hold is short).
    const int attempt = sub.attempt;
    db_->Execute(
        sub.local_id,
        local::Operation{local::OpType::kRead, options_.marks_key},
        [this, global_id, attempt](Result<Value> result) {
          auto it = subtxns_.find(global_id);
          if (it == subtxns_.end() || it->second.attempt != attempt) return;
          Subtxn& sub = it->second;
          if (!result.ok()) {
            if (db_->TxnState(sub.local_id) ==
                local::LocalTxnState::kActive) {
              FailSubtxn(global_id, result.status());
            }
            return;
          }
          // Revalidate against the *merged* view (which includes this
          // site's entry-time observation): a mark that appeared here
          // during our execution — e.g. we were admitted before T_i's
          // rollback and our lock waits drained after it — shows up as
          // "this site is undone w.r.t. T_i but we did not see it", which
          // the backward check turns into a restart. Without this, the
          // subtransaction could sit on both sides of CT_i at different
          // sites (the straddle that builds a regular cycle).
          MarkCheck check = EvaluateMarkCheck(sub.merged_marks, sub.txn_start,
                                              /*fence_since=*/sub.admit_time);
          if (!check.ok) {
            if (stats_ != nullptr) stats_->Incr("r1_revalidation_failures");
            O2PC_TRACE(kR1Reject, site(), global_id, sub.attempt,
                       check.fatal ? 1 : 0);
            O2PC_LOG(kDebug) << "site " << site() << " revalidation fails T"
                             << global_id << (check.fatal ? " (fatal): " : ": ")
                             << check.reason;
            // Nothing was exposed (locks held throughout): discard the
            // attempt and let the coordinator retry or restart it.
            db_->AbortLocal(sub.local_id);
            auto ack = net::MakePayload<SubtxnAckPayload>();
            ack->status = Status::Rejected("R1 revalidation failed");
            ack->attempt = sub.attempt;
            ack->fatal = check.fatal;
            ack->gossip = Gossip();
            SendAck(sub, std::move(ack));
            return;
          }
          CompleteExecution(sub);
        });
    return;
  }
  CompleteExecution(sub);
}

void Participant::CompleteExecution(Subtxn& sub) {
  sub.executed = true;
  Witness(sub.entry_undone);
  auto ack = net::MakePayload<SubtxnAckPayload>();
  ack->status = Status::OK();
  ack->transmarks = sub.merged_marks;
  ack->attempt = sub.attempt;
  ack->gossip = Gossip();
  SendAck(sub, std::move(ack));
  ArmPrevoteTimer(sub);
}

void Participant::FailSubtxn(TxnId global_id, const Status& status) {
  Subtxn& sub = subtxns_.at(global_id);
  O2PC_TRACE(kSubtxnFail, site(), global_id);
  O2PC_LOG(kDebug) << "site " << site() << " subtxn of T" << global_id
                   << " failed: " << status.ToString();
  // Roll back the partial execution. The forward accesses stay in the SG
  // (aborted globals are §5 nodes); the undo itself is invisible (exact
  // restore behind the subtransaction's own locks). Per Figure 2 the site
  // still becomes undone w.r.t. the dying transaction: the mark tracks the
  // *protocol* state for admission control, conservatively — the
  // transaction may be exposed at other sites, and undone-dependence must
  // stay visible to the stratification checks regardless of what this
  // site's oracle graph records.
  db_->RollbackSubtxn(sub.local_id);
  AddUndoneMark(global_id, /*exposed=*/false,  // pre-vote: nothing exposed
                trace::MarkReason::kRollback);
  if (stats_ != nullptr) stats_->Incr("subtxn_failures");
  auto ack = net::MakePayload<SubtxnAckPayload>();
  ack->status = status;
  ack->attempt = sub.attempt;
  ack->gossip = Gossip();
  SendAck(sub, std::move(ack));
}

void Participant::SendAck(Subtxn& sub,
                          std::shared_ptr<const SubtxnAckPayload> payload) {
  sub.last_ack = payload;
  net::Message message;
  message.from = site();
  message.to = sub.coordinator;
  message.type = net::MessageType::kSubtxnAck;
  message.txn = sub.global_id;
  message.payload = std::move(payload);
  network_->Send(std::move(message));
}

bool Participant::UnilateralAbort(TxnId global_id) {
  auto it = subtxns_.find(global_id);
  if (it == subtxns_.end()) return false;
  Subtxn& sub = it->second;
  if (sub.voted || sub.local_id == kInvalidTxn) return false;
  if (!db_->HasTxn(sub.local_id)) return false;
  const local::LocalTxnState state = db_->TxnState(sub.local_id);
  if (state != local::LocalTxnState::kActive) return false;
  if (stats_ != nullptr) stats_->Incr("unilateral_aborts");
  if (sub.executed) {
    // Already acked OK: withdraw at vote time. (The vote request may
    // already be in flight; the abort vote is binding either way.)
    sub.force_abort_vote = true;
    return true;
  }
  // Mid-execution: fail the subtransaction now; in-flight op callbacks
  // are stale-guarded by the local state check.
  FailSubtxn(global_id, Status::Aborted("unilateral local abort"));
  return true;
}

void Participant::OnCrash(const std::vector<TxnId>& rolled_back_globals) {
  subtxns_.clear();
  for (TxnId gid : rolled_back_globals) {
    // Conservatively exposed; the (resent) DECISION clarifies.
    AddUndoneMark(gid, /*exposed=*/true, trace::MarkReason::kCrashRecovery);
  }
  if (stats_ != nullptr) stats_->Incr("participant_crashes");
}

int Participant::InDoubtCount() const {
  return static_cast<int>(db_->PendingExposedSubtxns().size() +
                          db_->PendingPreparedSubtxns().size());
}

Participant::RecoveryStats Participant::BeginRecovery(
    const std::vector<std::shared_ptr<const MarkingGossip>>& snapshots,
    std::function<void()> on_catchup_settled) {
  // Marking catch-up, step 1: absorb what the surviving sites learned
  // while this one was down — witness facts (rule R3 retirement) and
  // execution-site sets (known only from abort DECISIONs).
  for (const auto& snapshot : snapshots) knowledge_->Merge(snapshot);
  TryUnmark();

  RecoveryStats stats;
  // One hold for the scan itself so on_catchup_settled cannot fire while
  // catch-up decisions are still being issued; released at the end.
  auto pending = std::make_shared<int>(1);
  auto settle = [pending, cb = std::move(on_catchup_settled)] {
    if (--*pending == 0 && cb) cb();
  };
  auto catch_up = [this, &stats, &pending,
                   &settle](const local::LocalDb::PendingExposed& p) {
    ++stats.in_doubt;
    const std::vector<SiteId>* exec = knowledge_->ExecSitesOf(p.global_id);
    if (exec == nullptr) return;  // verdict unknown; FinishRecovery arms CTP
    // exec_sites enter the gossip only with an abort DECISION: the merged
    // knowledge proves T_i aborted and CT_i already ran at the listed
    // sites. Replay the abort here, now — before any new admission can
    // read the doomed exposed updates (the §14.3 straddle closure).
    Subtxn* sub = RecoverRuntime(p.global_id, kInvalidSite);
    if (sub == nullptr) return;
    NoteDecision(*sub, /*commit=*/false, /*exposed=*/true, *exec);
    ++*pending;
    ++stats.resolved;
    ApplyDecision(p.global_id, /*commit=*/false, /*exposed=*/true, *exec,
                  settle);
  };
  // Prepared survivors first: a known-abort prepared subtransaction rolls
  // back synchronously, releasing recovery locks a catch-up CT below might
  // otherwise wait on.
  for (const local::LocalDb::PendingExposed& p :
       db_->PendingPreparedSubtxns()) {
    catch_up(p);
  }
  for (const local::LocalDb::PendingExposed& p :
       db_->PendingExposedSubtxns()) {
    catch_up(p);
  }
  if (stats_ != nullptr) {
    stats_->Incr("recovery_in_doubt", static_cast<std::uint64_t>(stats.in_doubt));
    stats_->Incr("recovery_catchup_resolved",
                 static_cast<std::uint64_t>(stats.resolved));
  }
  settle();  // release the scan's own hold
  return stats;
}

int Participant::FinishRecovery() {
  // Everything the catch-up pass resolved has reached its terminal WAL
  // record by now (the recovery barrier waits for the CTs); whatever is
  // still pending is genuinely in doubt — hand it to the termination
  // protocol rather than leaving it wedged until a coordinator resend.
  int unresolved = 0;
  auto arm = [this, &unresolved](const local::LocalDb::PendingExposed& p) {
    auto it = subtxns_.find(p.global_id);
    Subtxn* sub = it != subtxns_.end()
                      ? &it->second
                      : RecoverRuntime(p.global_id, kInvalidSite);
    if (sub == nullptr || sub->decided) return;
    ++unresolved;
    // A record that predates the coordinator extension leaves no valid
    // termination target; the coordinator's resends resolve those.
    if (sub->coordinator != kInvalidSite) ArmTermination(*sub);
  };
  for (const local::LocalDb::PendingExposed& p :
       db_->PendingPreparedSubtxns()) {
    arm(p);
  }
  for (const local::LocalDb::PendingExposed& p :
       db_->PendingExposedSubtxns()) {
    arm(p);
  }
  return unresolved;
}

Participant::Subtxn* Participant::RecoverRuntime(TxnId global_id,
                                                 SiteId coordinator) {
  // Fall back on the coordinator / peer set force-logged with the vote
  // record when the caller has none (recovery-phase catch-up, where no
  // message carries the coordinator's identity).
  auto rebuild = [this, global_id, coordinator](
                     const local::LocalDb::PendingExposed& p) -> Subtxn& {
    Subtxn& sub = subtxns_[global_id];
    sub.global_id = global_id;
    sub.coordinator = coordinator != kInvalidSite ? coordinator
                                                  : p.coordinator;
    sub.local_id = p.local_id;
    if (sub.participants.empty()) sub.participants = p.participants;
    sub.executed = true;
    sub.voted = true;  // it durably voted commit
    sub.vote_commit = true;
    return sub;
  };
  for (const local::LocalDb::PendingExposed& p :
       db_->PendingExposedSubtxns()) {
    if (p.global_id != global_id) continue;
    return &rebuild(p);
  }
  for (const local::LocalDb::PendingExposed& p :
       db_->PendingPreparedSubtxns()) {
    if (p.global_id != global_id) continue;
    Subtxn& sub = rebuild(p);
    // Recovery re-holds the prepared locks: the blocked window reopens.
    sub.prepared_at = simulator_->Now();
    return &sub;
  }
  return nullptr;
}

void Participant::OnVoteRequest(const net::Message& message) {
  const auto* payload =
      static_cast<const VoteRequestPayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  TryUnmark();
  auto it = subtxns_.find(message.txn);
  if (it == subtxns_.end()) {
    // Post-crash: answer from the durable log. A pending prepared or
    // locally-committed subtransaction re-votes commit; anything the WAL
    // does not vouch for votes abort (its work was rolled back by
    // recovery).
    Subtxn* recovered = RecoverRuntime(message.txn, message.from);
    if (recovered != nullptr) {
      recovered->participants = payload->participants;
      SendVote(*recovered, /*commit=*/true);
      ArmTermination(*recovered);
      return;
    }
    Subtxn& stub = subtxns_[message.txn];
    stub.global_id = message.txn;
    stub.coordinator = message.from;
    stub.participants = payload->participants;
    stub.voted = true;
    stub.vote_commit = false;
    SendVote(stub, /*commit=*/false, /*recovery_abort=*/true);
    ArmTermination(stub);
    return;
  }
  Subtxn& sub = it->second;
  // Refresh the termination inputs: the sender is the authoritative
  // coordinator (a stub created by a TERM-REQ had none), and the
  // participant list is the CTP peer set.
  sub.coordinator = message.from;
  if (!payload->participants.empty()) {
    sub.participants = payload->participants;
  }
  if (sub.voted) {
    if (sub.last_vote != nullptr) {
      SendVote(sub, sub.last_vote->commit, sub.last_vote->recovery_abort);
    } else {
      // Voted but never sent one (a renouncement recorded by the
      // cooperative termination protocol): surface it as a recovery abort.
      SendVote(sub, sub.vote_commit, /*recovery_abort=*/!sub.vote_commit);
    }
    return;
  }
  if (!sub.executed) {
    // Withdrawn after the OK ack (pre-vote timeout exercised unilateral
    // abort): the work is rolled back, so the vote is a binding abort.
    if (db_->HasTxn(sub.local_id) &&
        db_->TxnState(sub.local_id) == local::LocalTxnState::kActive) {
      db_->RollbackSubtxn(sub.local_id);
      AddUndoneMark(message.txn, /*exposed=*/false,
                    trace::MarkReason::kRollback);
    }
    sub.voted = true;
    sub.vote_commit = false;
    if (stats_ != nullptr) stats_->Incr("votes_abort");
    SendVote(sub, false);
    return;
  }
  CancelTermination(sub);  // the VOTE-REQ arrived: stand down the pre-vote timer
  const TxnId gid = message.txn;
  const std::uint64_t epoch = db_->epoch();
  simulator_->Schedule(options_.protocol.vote_processing_delay,
                       [this, gid, epoch] {
    // A crash in the processing window wiped the runtime; the coordinator's
    // resent VOTE-REQ will be answered from the WAL instead.
    if (db_->epoch() != epoch) return;
    auto it = subtxns_.find(gid);
    if (it == subtxns_.end()) return;
    Subtxn& sub = it->second;
    if (sub.voted) return;
    sub.voted = true;
    Step(ProtocolStep::kBeforeVote, gid);
    if (sub.force_abort_vote) {
      // Unilateral local abort at vote time (autonomy / local integrity):
      // roll back now — this is the undone transition of Figure 2.
      sub.vote_commit = false;
      db_->RollbackSubtxn(sub.local_id);
      // Sibling votes are concurrent: exposure unknown until the DECISION.
      AddUndoneMark(gid, /*exposed=*/true, trace::MarkReason::kVoteAbort);
      if (stats_ != nullptr) stats_->Incr("votes_abort");
      SendVote(sub, false);
      Step(ProtocolStep::kAfterVote, gid);
      // Abort voters still await the DECISION (it settles exposure and
      // delivers exec_sites for mark retirement) — so they time out and
      // terminate like commit voters do.
      ArmTermination(sub);
      return;
    }
    sub.vote_commit = true;
    const bool optimistic =
        options_.protocol.protocol == CommitProtocol::kOptimistic;
    if (optimistic && !db_->HasRealAction(sub.local_id)) {
      // O2PC's crux: the site locally commits and releases everything.
      // The coordinator / peer set ride the force-written record so a
      // post-crash recovery can direct its termination queries.
      db_->LocallyCommit(sub.local_id, sub.coordinator, sub.participants);
      if (MaintainLcMarks()) marks_.locally_committed.insert(gid);
      Step(ProtocolStep::kLocalCommit, gid);
    } else {
      // 2PC (or a pending real action): keep exclusive locks, release
      // shared ones.
      db_->PrepareAndReleaseShared(sub.local_id, sub.coordinator,
                                   sub.participants);
      sub.prepared_at = simulator_->Now();  // blocked-window accounting
      Step(ProtocolStep::kPrepare, gid);
    }
    if (stats_ != nullptr) stats_->Incr("votes_commit");
    SendVote(sub, true);
    Step(ProtocolStep::kAfterVote, gid);
    ArmTermination(sub);
  });
}

void Participant::SendVote(Subtxn& sub, bool commit, bool recovery_abort) {
  auto payload = net::MakePayload<VotePayload>();
  payload->commit = commit;
  payload->recovery_abort = recovery_abort;
  payload->gossip = Gossip();
  sub.last_vote = payload;
  O2PC_TRACE(kVote, site(), sub.global_id, commit ? 1 : 0,
             recovery_abort ? 1 : 0);
  net::Message message;
  message.from = site();
  message.to = sub.coordinator;
  message.type = net::MessageType::kVote;
  message.txn = sub.global_id;
  message.payload = std::move(payload);
  network_->Send(std::move(message));
}

void Participant::OnDecision(const net::Message& message) {
  const auto* raw =
      static_cast<const DecisionPayload*>(message.payload.get());
  knowledge_->Merge(raw->gossip);
  TryUnmark();
  auto it = subtxns_.find(message.txn);
  if (it == subtxns_.end()) {
    // Post-crash: resolve from the durable log.
    Subtxn* recovered = RecoverRuntime(message.txn, message.from);
    if (recovered == nullptr) {
      // Nothing pending: recovery already rolled everything back. Just
      // acknowledge so the coordinator can finish.
      Subtxn& stub = subtxns_[message.txn];
      stub.global_id = message.txn;
      stub.coordinator = message.from;
      NoteDecision(stub, raw->commit, raw->exposed, raw->exec_sites);
      SendDecisionAck(stub, /*compensated=*/false);
      return;
    }
    it = subtxns_.find(message.txn);
  }
  Subtxn& sub = it->second;
  if (sub.decision_acked) {
    if (sub.last_decision_ack != nullptr) {
      SendDecisionAck(sub, sub.last_decision_ack->compensated);
    }
    return;
  }
  if (sub.decided) return;  // still processing (e.g. compensation running)
  if (sub.local_id == kInvalidTxn) {
    // Recovery stub: the WAL vouches for nothing, recovery already rolled
    // everything back — just acknowledge.
    NoteDecision(sub, raw->commit, raw->exposed, raw->exec_sites);
    SendDecisionAck(sub, /*compensated=*/false);
    return;
  }
  NoteDecision(sub, raw->commit, raw->exposed, raw->exec_sites);

  const TxnId gid = message.txn;
  const bool commit = raw->commit;
  const bool exposed = raw->exposed;
  const std::vector<SiteId> exec_sites = raw->exec_sites;
  const std::uint64_t epoch = db_->epoch();
  simulator_->Schedule(
      options_.protocol.decision_processing_delay,
      [this, gid, commit, exposed, exec_sites, epoch] {
        // A crash in the processing window wiped the runtime; the resent
        // DECISION resolves the transaction from the WAL instead.
        if (db_->epoch() != epoch) return;
        ApplyDecision(gid, commit, exposed, exec_sites);
      });
}

void Participant::ApplyDecision(TxnId gid, bool commit, bool exposed,
                                const std::vector<SiteId>& exec_sites,
                                std::function<void()> on_settled) {
  auto decision_it = subtxns_.find(gid);
  if (decision_it == subtxns_.end()) {
    if (on_settled) on_settled();
    return;
  }
  Subtxn& sub = decision_it->second;
  Step(ProtocolStep::kBeforeDecision, gid);
  if (commit) {
    db_->FinalizeCommit(sub.local_id);
    if (MaintainLcMarks()) marks_.locally_committed.erase(gid);
    SendDecisionAck(sub, /*compensated=*/false);
    Step(ProtocolStep::kAfterDecision, gid);
    if (on_settled) on_settled();
    return;
  }
  // DECISION = abort. Remember where the transaction executed —
  // rule R3 needs the execution-site list to evaluate UDUM1, and
  // other sites learn it through the gossip.
  if (stats_ != nullptr && exposed) stats_->Incr("aborts_exposed");
  if (MarkingActive() && !exec_sites.empty()) {
    marks_.exec_sites[gid] = exec_sites;
    knowledge_->SetExecSites(gid, exec_sites);
  }
  // The DECISION settles exposure: demote a conservative vote-abort
  // mark if nothing was exposed anywhere.
  if (MarkingActive() && !exposed) marks_.exposed_undone.erase(gid);
  const local::LocalTxnState state = db_->TxnState(sub.local_id);
  switch (state) {
    case local::LocalTxnState::kLocallyCommitted: {
      // The exposed case: semantic undo via a compensating
      // subtransaction. Rule R2: the CT's *last* operation updates
      // sitemarks.k (under the CT's exclusive lock).
      CompensationExecutor::Request request;
      request.forward_id = gid;
      request.plan = db_->CompensationPlan(sub.local_id);
      if (MarkingActive()) {
        request.plan.push_back(local::Operation{
            local::OpType::kWrite, options_.marks_key, 0});
      }
      request.retry_backoff =
          options_.protocol.compensation_retry_backoff;
      request.done = [this, gid, on_settled = std::move(on_settled)] {
        Subtxn& sub = subtxns_.at(gid);
        db_->MarkCompensated(sub.local_id);
        AddUndoneMark(gid, /*exposed=*/true,  // this site exposed
                      trace::MarkReason::kCompensation);
        if (MaintainLcMarks()) marks_.locally_committed.erase(gid);
        SendDecisionAck(sub, /*compensated=*/true);
        Step(ProtocolStep::kAfterDecision, gid);
        if (on_settled) on_settled();
      };
      Step(ProtocolStep::kCompensationBegin, gid);
      compensator_.Run(std::move(request));
      return;
    }
    case local::LocalTxnState::kActive:
    case local::LocalTxnState::kPrepared:
      // 2PC path (or a real-action site): locks still held, standard
      // rollback.
      db_->RollbackSubtxn(sub.local_id);
      AddUndoneMark(gid, exposed, trace::MarkReason::kDecisionRollback);
      if (MaintainLcMarks()) marks_.locally_committed.erase(gid);
      SendDecisionAck(sub, /*compensated=*/false);
      Step(ProtocolStep::kAfterDecision, gid);
      if (on_settled) on_settled();
      return;
    case local::LocalTxnState::kAborted:
      // Abort-voter or failed subtransaction: already rolled back.
      SendDecisionAck(sub, /*compensated=*/false);
      Step(ProtocolStep::kAfterDecision, gid);
      if (on_settled) on_settled();
      return;
    case local::LocalTxnState::kCommitted:
      O2PC_CHECK(false) << "abort decision for committed subtxn";
      return;
  }
}

void Participant::SendDecisionAck(Subtxn& sub, bool compensated) {
  sub.decision_acked = true;
  auto payload = net::MakePayload<DecisionAckPayload>();
  payload->compensated = compensated;
  payload->gossip = Gossip();
  sub.last_decision_ack = payload;
  net::Message message;
  message.from = site();
  message.to = sub.coordinator;
  message.type = net::MessageType::kDecisionAck;
  message.txn = sub.global_id;
  message.payload = std::move(payload);
  network_->Send(std::move(message));
}

// ---------------------------------------------------------------------------
// Termination: participant-driven decision recovery and the cooperative
// termination protocol (CTP). A voted participant that misses its DECISION
// first asks the coordinator's recovery agent (DECISION-REQ — answered from
// the force-written decision log even while the coordinator process is
// down), then escalates to its peers from the VOTE-REQ participant list. A
// peer unblocks the asker when it saw the DECISION, or when its own state
// rules commit out: an abort vote is binding, and an unprepared peer can
// renounce its (never-sent) commit vote by unilaterally aborting.
// ---------------------------------------------------------------------------

void Participant::CancelTermination(Subtxn& sub) {
  sub.term_seq = ++timer_seq_;
  sub.prevote_seq = ++timer_seq_;
  if (sub.term_event != sim::kInvalidEvent) {
    simulator_->Cancel(sub.term_event);
    sub.term_event = sim::kInvalidEvent;
  }
  if (sub.prevote_event != sim::kInvalidEvent) {
    simulator_->Cancel(sub.prevote_event);
    sub.prevote_event = sim::kInvalidEvent;
  }
}

void Participant::NoteDecision(Subtxn& sub, bool commit, bool exposed,
                               const std::vector<SiteId>& exec_sites) {
  sub.decided = true;
  sub.decision_commit = commit;
  sub.decision_exposed = exposed;
  sub.decision_exec_sites = exec_sites;
  CancelTermination(sub);
  if (sub.prepared_at > 0) {
    // The 2PC blocking window the paper's §7 argues about: time spent
    // prepared, holding exclusive locks, waiting to learn the outcome.
    const Duration blocked_us = simulator_->Now() - sub.prepared_at;
    if (stats_ != nullptr) {
      stats_->Incr("blocked_prepared_ns",
                   static_cast<std::uint64_t>(blocked_us) * 1000);
      stats_->Hist("blocked_prepared_us").Add(static_cast<double>(blocked_us));
    }
    sub.prepared_at = 0;
  }
}

void Participant::ArmPrevoteTimer(Subtxn& sub) {
  if (options_.protocol.prevote_timeout <= 0) return;
  if (sub.prevote_event != sim::kInvalidEvent) {
    simulator_->Cancel(sub.prevote_event);
  }
  const TxnId gid = sub.global_id;
  const std::uint64_t seq = ++timer_seq_;
  sub.prevote_seq = seq;
  sub.prevote_event = simulator_->Schedule(
      options_.protocol.prevote_timeout, [this, gid, seq] {
        auto it = subtxns_.find(gid);
        if (it == subtxns_.end() || it->second.prevote_seq != seq) return;
        Subtxn& sub = it->second;
        sub.prevote_event = sim::kInvalidEvent;
        if (sub.voted || sub.decided) return;
        // No VOTE-REQ in time: exercise local autonomy ([BST90]) instead
        // of holding this site's resources hostage to a dead coordinator.
        O2PC_TRACE(kDecisionTimeout, site(), gid, /*round=*/0, /*ctp=*/0);
        if (stats_ != nullptr) stats_->Incr("prevote_timeouts");
        if (!UnilateralAbort(gid)) return;
        if (sub.executed && !sub.voted) {
          // UnilateralAbort deferred to a forced abort vote, but the
          // VOTE-REQ that would collect it may never come (that is why we
          // timed out): withdraw the execution and release the locks now.
          // A late VOTE-REQ is answered with a binding abort vote.
          sub.executed = false;
          sub.force_abort_vote = false;
          FailSubtxn(gid, Status::TimedOut("no VOTE-REQ before timeout"));
        }
      });
}

void Participant::ArmTermination(Subtxn& sub) {
  if (options_.protocol.decision_timeout <= 0) return;
  if (sub.decided || sub.term_event != sim::kInvalidEvent) return;
  if (sub.term_rounds == 0) {
    common::RetryPolicyConfig retry;
    retry.initial = options_.protocol.decision_timeout;
    retry.multiplier = options_.protocol.retry_backoff_multiplier;
    retry.cap = options_.protocol.retry_backoff_cap;
    retry.budget = options_.protocol.termination_budget;
    retry.jitter = options_.protocol.retry_jitter;
    // Seeded per (site options, global id): order-independent and
    // replay-deterministic.
    sub.term_policy = common::RetryPolicy(
        retry,
        Rng(options_.seed ^ (sub.global_id * 0x9e3779b97f4a7c15ULL)));
  }
  if (sub.term_policy.Exhausted()) {
    if (stats_ != nullptr) stats_->Incr("termination_budget_exhausted");
    O2PC_LOG(kWarn) << "site " << site() << " exhausted the termination "
                    << "budget for T" << sub.global_id
                    << "; still blocked (liveness oracle will judge)";
    return;
  }
  const TxnId gid = sub.global_id;
  const std::uint64_t seq = ++timer_seq_;
  sub.term_seq = seq;
  sub.term_event =
      simulator_->Schedule(sub.term_policy.NextDelay(), [this, gid, seq] {
        auto it = subtxns_.find(gid);
        if (it == subtxns_.end() || it->second.term_seq != seq) return;
        it->second.term_event = sim::kInvalidEvent;
        TerminationRound(it->second);
      });
}

void Participant::TerminationRound(Subtxn& sub) {
  if (sub.decided) return;
  ++sub.term_rounds;
  const bool ctp = sub.term_rounds > options_.protocol.decision_req_attempts;
  O2PC_TRACE(kDecisionTimeout, site(), sub.global_id, sub.term_rounds,
             ctp ? 1 : 0);
  bool queried_peer = false;
  if (ctp) {
    for (SiteId peer : sub.participants) {
      if (peer == site()) continue;
      queried_peer = true;
      if (stats_ != nullptr) stats_->Incr("term_reqs_sent");
      auto payload = net::MakePayload<TermRequestPayload>();
      payload->gossip = Gossip();
      net::Message message;
      message.from = site();
      message.to = peer;
      message.type = net::MessageType::kTermReq;
      message.txn = sub.global_id;
      message.payload = std::move(payload);
      network_->Send(std::move(message));
    }
  }
  if (!ctp || !queried_peer) {
    // DECISION-REQ round (or a CTP round without a peer list — e.g. a
    // runtime recovered from the WAL, which lost the VOTE-REQ's list):
    // ask the coordinator home's recovery agent.
    if (stats_ != nullptr) stats_->Incr("decision_reqs_sent");
    auto payload = net::MakePayload<DecisionRequestPayload>();
    payload->gossip = Gossip();
    net::Message message;
    message.from = site();
    message.to = sub.coordinator;
    message.type = net::MessageType::kDecisionReq;
    message.txn = sub.global_id;
    message.payload = std::move(payload);
    network_->Send(std::move(message));
  }
  ArmTermination(sub);
}

void Participant::OnTermRequest(const net::Message& message) {
  const auto* payload =
      static_cast<const TermRequestPayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  TryUnmark();
  if (stats_ != nullptr) stats_->Incr("term_reqs_received");

  auto reply = net::MakePayload<TermResponsePayload>();
  auto it = subtxns_.find(message.txn);
  if (it == subtxns_.end()) {
    // Crash survivor: consult the WAL, exactly as a resent VOTE-REQ would.
    bool pending = false;
    for (const local::LocalDb::PendingExposed& p :
         db_->PendingExposedSubtxns()) {
      if (p.global_id == message.txn) pending = true;
    }
    for (const local::LocalDb::PendingExposed& p :
         db_->PendingPreparedSubtxns()) {
      if (p.global_id == message.txn) pending = true;
    }
    if (pending) {
      // A durable commit vote: this site is as uncertain as the asker.
      reply->known = false;
    } else {
      // The WAL vouches for nothing — this site never durably voted
      // commit, and by recording the renouncement now (the stub a resent
      // VOTE-REQ would also create) commit becomes impossible: abort is
      // safe to report.
      Subtxn& stub = subtxns_[message.txn];
      stub.global_id = message.txn;
      stub.voted = true;
      stub.vote_commit = false;
      reply->known = true;
      reply->commit = false;
      reply->exposed = true;  // conservative; the asker knows better
    }
  } else {
    Subtxn& sub = it->second;
    if (sub.decided) {
      reply->known = true;
      reply->commit = sub.decision_commit;
      reply->exposed = sub.decision_exposed;
      reply->exec_sites = sub.decision_exec_sites;
    } else if (sub.voted && !sub.vote_commit) {
      // Our abort vote is binding: the decision can only be abort.
      reply->known = true;
      reply->commit = false;
      reply->exposed = true;  // conservative until a real DECISION says
    } else if (!sub.voted) {
      // Unprepared: abort is safe *iff* we also renounce the commit vote
      // we might otherwise cast later — unilateral abort first, answer
      // second. When the abort is refused (e.g. the local runtime is in a
      // state only a fresh attempt can resolve), stay uncertain: a future
      // attempt could still vote commit.
      const bool renounced =
          UnilateralAbort(message.txn) || (sub.voted && !sub.vote_commit);
      if (renounced) {
        reply->known = true;
        reply->commit = false;
        reply->exposed = true;
      } else {
        reply->known = false;
      }
    } else {
      // Voted commit, no decision: same boat as the asker.
      reply->known = false;
    }
  }
  if (stats_ != nullptr && reply->known) {
    stats_->Incr("term_reqs_answered");
  }
  reply->gossip = Gossip();
  net::Message response;
  response.from = site();
  response.to = message.from;
  response.type = net::MessageType::kTermResp;
  response.txn = message.txn;
  response.payload = std::move(reply);
  network_->Send(std::move(response));
}

void Participant::OnTermResponse(const net::Message& message) {
  const auto* payload =
      static_cast<const TermResponsePayload*>(message.payload.get());
  knowledge_->Merge(payload->gossip);
  TryUnmark();
  auto it = subtxns_.find(message.txn);
  if (it == subtxns_.end()) return;
  Subtxn& sub = it->second;
  if (sub.decided || sub.decision_acked) return;  // already resolved
  if (!payload->known) {
    if (stats_ != nullptr) stats_->Incr("term_resps_uncertain");
    return;
  }
  // An abort inferred by a peer carries no execution-site list; fall back
  // to the asker's own VOTE-REQ participant list (all participants
  // executed by vote time, so the lists coincide) — without it, the abort
  // mark could never satisfy UDUM1 and would poison later admissions.
  const std::vector<SiteId>& exec_sites =
      payload->exec_sites.empty() ? sub.participants : payload->exec_sites;
  O2PC_TRACE(kTermResolve, site(), message.txn, payload->commit ? 1 : 0,
             message.from);
  if (stats_ != nullptr) stats_->Incr("ctp_resolutions");
  NoteDecision(sub, payload->commit, payload->exposed, exec_sites);
  if (sub.local_id == kInvalidTxn) {
    // Stub runtime: nothing local to finalize; ack (a live coordinator
    // would count it, a dead one ignores it).
    SendDecisionAck(sub, /*compensated=*/false);
    return;
  }
  const TxnId gid = message.txn;
  const bool commit = payload->commit;
  const bool exposed = payload->exposed;
  const std::vector<SiteId> exec = exec_sites;
  const std::uint64_t epoch = db_->epoch();
  simulator_->Schedule(options_.protocol.decision_processing_delay,
                       [this, gid, commit, exposed, exec, epoch] {
                         if (db_->epoch() != epoch) return;
                         ApplyDecision(gid, commit, exposed, exec);
                       });
}

void Participant::AddUndoneMark(TxnId forward, bool exposed,
                                trace::MarkReason reason) {
  if (!MarkingActive()) return;
  O2PC_TRACE(kMarkInsert, site(), forward,
             static_cast<std::int64_t>(reason), exposed ? 1 : 0);
  O2PC_LOG(kDebug) << "site " << site() << " marks undone wrt T" << forward
                   << (exposed ? " (exposed)" : " (unexposed)") << " at "
                   << simulator_->Now();
  marks_.undone.insert(forward);
  if (exposed) {
    marks_.exposed_undone.insert(forward);
  } else {
    marks_.exposed_undone.erase(forward);
  }
  TryUnmark();
}

void Participant::Witness(const common::SmallSet<TxnId>& entry_undone) {
  if (!MarkingActive()) return;
  for (TxnId ti : entry_undone) {
    knowledge_->Add(WitnessFact{ti, site()});
  }
  TryUnmark();
}

void Participant::WitnessLocal(const common::SmallSet<TxnId>& entry_undone) {
  Witness(entry_undone);
}

std::vector<TxnId> Participant::RemovableWithSelfWitness() const {
  std::vector<TxnId> removable;
  for (TxnId ti : marks_.undone) {
    const std::vector<SiteId>* exec = knowledge_->ExecSitesOf(ti);
    if (exec == nullptr) {
      auto it = marks_.exec_sites.find(ti);
      if (it == marks_.exec_sites.end()) continue;
      exec = &it->second;
    }
    if (exec->empty()) continue;
    bool covered = true;
    for (SiteId s : *exec) {
      if (s == site()) continue;  // this access is the witness here
      if (!knowledge_->Covers(ti, {s})) {
        covered = false;
        break;
      }
    }
    if (covered) removable.push_back(ti);
  }
  return removable;
}

void Participant::RetireMark(TxnId ti, bool self_witness) {
  if (self_witness) knowledge_->Add(WitnessFact{ti, site()});
  Tombstone tombstone;
  tombstone.retire_time = simulator_->Now();
  tombstone.exposed = marks_.exposed_undone.contains(ti);
  if (const std::vector<SiteId>* exec = knowledge_->ExecSitesOf(ti)) {
    tombstone.exec_sites = *exec;
  } else if (auto it = marks_.exec_sites.find(ti);
             it != marks_.exec_sites.end()) {
    tombstone.exec_sites = it->second;
  }
  marks_.undone.erase(ti);
  marks_.exposed_undone.erase(ti);
  marks_.exec_sites.erase(ti);
  // Journaled after the (possible) self-witness Add, so the checker's
  // witness-before-retire replay sees the UDUM1 evidence first.
  O2PC_TRACE(kMarkRetire, site(), ti, self_witness ? 1 : 0);
  O2PC_LOG(kDebug) << "site " << site() << " retires mark T" << ti << " at "
                   << simulator_->Now();
  retired_marks_.emplace(ti, std::move(tombstone));
  if (stats_ != nullptr) stats_->Incr("udum_unmarks");
}

void Participant::TryUnmark() {
  if (!MarkingActive()) return;
  std::vector<TxnId> unmarked;
  for (TxnId ti : marks_.undone) {
    const std::vector<SiteId>* exec = knowledge_->ExecSitesOf(ti);
    if (exec == nullptr) {
      auto it = marks_.exec_sites.find(ti);
      if (it == marks_.exec_sites.end()) continue;
      exec = &it->second;
    }
    if (knowledge_->Covers(ti, *exec)) unmarked.push_back(ti);
  }
  for (TxnId ti : unmarked) RetireMark(ti, /*self_witness=*/false);
}

bool Participant::HasExposedPending(TxnId ti) const {
  auto it = subtxns_.find(ti);
  if (it == subtxns_.end() || it->second.local_id == kInvalidTxn) {
    return false;
  }
  if (!db_->HasTxn(it->second.local_id)) return false;
  return db_->TxnState(it->second.local_id) ==
         local::LocalTxnState::kLocallyCommitted;
}

Participant::MarkCheck Participant::EvaluateMarkCheck(const TransMarks& tm,
                                                      SimTime txn_start,
                                                      SimTime fence_since) {
  MarkCheck result;
  result.checked = tm;
  const GovernancePolicy policy = options_.protocol.governance;

  // Rule R3, executed as part of the accessing transaction: this access is
  // itself the final witness for marks whose other execution sites are
  // already witnessed.
  for (TxnId ti : RemovableWithSelfWitness()) {
    RetireMark(ti, /*self_witness=*/true);
  }

  // Locally-committed-mark logic (the literal P2 rule; also the LC half of
  // the strengthened P2).
  if (policy == GovernancePolicy::kP2 ||
      policy == GovernancePolicy::kP2Literal) {
    if (!Compatible(GovernancePolicy::kP2Literal, result.checked, marks_)) {
      result.ok = false;
      result.reason = "LC marks incompatible";
      return result;
    }
  }
  if (policy == GovernancePolicy::kSimple &&
      !marks_.locally_committed.empty()) {
    result.ok = false;
    result.reason = "site is locally-committed w.r.t. some transaction";
    return result;
  }
  if (policy == GovernancePolicy::kNone ||
      policy == GovernancePolicy::kP2Literal) {
    return result;  // no undone-mark restrictions
  }

  // ---- Undone-mark logic: P1, the strengthened P2, and Simple. ----

  // (a) Tombstones. A mark retired by rule R3 is globally quiescent (the
  // UDUM1 witnesses imply every rollback/compensation of T_i completed),
  // so accesses here from now on can only *follow* CT_i — safe. The one
  // exception is a transaction that straddles the retirement: it may have
  // conflict-preceded T_i — or a reader of T_i's exposed updates, which is
  // just as dangerous transitively — at a site it visited before the mark
  // existed there. The *retirement fence* admits a straddler only if it
  // observed the mark at every site it visited (then all its accesses sit
  // after CT_i and the stale transmark entry is dropped); anything else
  // restarts as a fresh incarnation.
  for (const auto& [ti, tombstone] : retired_marks_) {
    (void)tombstone;
    auto seen_it = result.checked.undone_seen.find(ti);
    if (txn_start < tombstone.retire_time &&
        tombstone.retire_time > fence_since) {
      auto retired_it = result.checked.retired_seen.find(ti);
      bool covered = true;
      for (SiteId visited : result.checked.visited_sites) {
        // An unexposed transaction's dependencies cannot leave its
        // execution sites; an exposed one's can (readers carry them
        // anywhere), so every visited site needs coverage.
        if (!tombstone.exposed &&
            std::find(tombstone.exec_sites.begin(),
                      tombstone.exec_sites.end(),
                      visited) == tombstone.exec_sites.end()) {
          continue;
        }
        const bool saw_mark =
            seen_it != result.checked.undone_seen.end() &&
            seen_it->second.contains(visited);
        const bool saw_quiescent =
            retired_it != result.checked.retired_seen.end() &&
            retired_it->second.contains(visited);
        if (!saw_mark && !saw_quiescent) {
          covered = false;
          break;
        }
      }
      if (!covered) {
        result.ok = false;
        result.fatal = true;
        result.reason =
            StrCat("retirement fence: T", ti, " retired mid-flight");
        return result;
      }
    }
    // The stale entry no longer constrains this or future sites.
    if (seen_it != result.checked.undone_seen.end()) {
      result.checked.undone_seen.erase(seen_it);
    }
  }

  if (policy == GovernancePolicy::kSimple) {
    // The crude closing-remark protocol of §6.2: exact undone-set
    // equality, no refinements.
    if (!Compatible(GovernancePolicy::kSimple, result.checked, marks_)) {
      result.ok = false;
      result.reason = "undone sets differ";
    }
    return result;
  }

  // (b) Forward direction: the transaction saw T_i undone somewhere, and
  // this site carries no mark for T_i. That is dangerous only while T_i is
  // exposed-but-uncompensated *here* (the transaction could then read
  // T_i's doomed updates and later precede CT_i here). If T_i is absent,
  // still active (its held locks force any conflict to order after the
  // rollback), or long finished here, admission is safe.
  for (const auto& [ti, seen] : result.checked.undone_seen) {
    if (seen.empty() || marks_.undone.contains(ti)) continue;
    if (HasExposedPending(ti)) {
      result.ok = false;
      result.reason =
          StrCat("T", ti, " exposed here, compensation pending");
      return result;
    }
  }

  // (c) Backward direction: this site is undone w.r.t. T_i, so the
  // transaction must have seen the mark (or T_i's quiescence) at every
  // visited site that matters. For an *exposed* T_i that is every site —
  // readers of the exposed updates can carry the dependency anywhere, so
  // no site-precise relaxation is sound. For an unexposed T_i the
  // dependency cannot leave its execution sites, and only visits to those
  // need coverage. A transaction that missed a required observation can
  // never repair it in place — restart as a fresh incarnation.
  for (TxnId ti : marks_.undone) {
    if (result.checked.UndoneCount(ti) == result.checked.visited()) {
      continue;  // saw it everywhere: the paper's uniform case
    }
    const bool ti_exposed = marks_.exposed_undone.contains(ti);
    const std::vector<SiteId>* exec = knowledge_->ExecSitesOf(ti);
    if (exec == nullptr) {
      auto exec_it = marks_.exec_sites.find(ti);
      exec = exec_it == marks_.exec_sites.end() ? nullptr : &exec_it->second;
    }
    if (!ti_exposed && exec == nullptr) {
      // Unexposed mark whose DECISION has not yet delivered the execution
      // sites: retry shortly.
      result.ok = false;
      result.reason = StrCat("T", ti, " undone here, exec sites unknown");
      return result;
    }
    auto seen_it = result.checked.undone_seen.find(ti);
    auto retired_it = result.checked.retired_seen.find(ti);
    for (SiteId visited : result.checked.visited_sites) {
      if (!ti_exposed &&
          std::find(exec->begin(), exec->end(), visited) == exec->end()) {
        continue;  // unexposed: this visit cannot carry the dependency
      }
      const bool saw_mark = seen_it != result.checked.undone_seen.end() &&
                            seen_it->second.contains(visited);
      const bool saw_quiescent =
          retired_it != result.checked.retired_seen.end() &&
          retired_it->second.contains(visited);
      if (!saw_mark && !saw_quiescent) {
        result.ok = false;
        result.fatal = true;
        result.reason = StrCat("undone w.r.t. T", ti,
                               " here; visited site ", visited,
                               " without observing it");
        return result;
      }
    }
  }
  return result;
}

}  // namespace o2pc::core
