#include "core/compensation.h"

#include "common/logging.h"
#include "trace/trace.h"

namespace o2pc::core {

struct CompensationExecutor::Attempt {
  Request request;
  TxnId ct_id = kInvalidTxn;
  std::size_t next_op = 0;
  int attempt_number = 0;
  std::uint64_t epoch = 0;
};

CompensationExecutor::CompensationExecutor(sim::Simulator* simulator,
                                           local::LocalDb* db,
                                           TxnIdAllocator* ids,
                                           metrics::StatsCollector* stats)
    : simulator_(simulator), db_(db), ids_(ids), stats_(stats) {
  O2PC_CHECK(simulator != nullptr);
  O2PC_CHECK(db != nullptr);
  O2PC_CHECK(ids != nullptr);
}

void CompensationExecutor::Run(Request request) {
  auto attempt = std::make_shared<Attempt>();
  attempt->request = std::move(request);
  attempt->epoch = db_->epoch();
  O2PC_TRACE(kCompensationBegin, db_->site(), attempt->request.forward_id,
             static_cast<std::int64_t>(attempt->request.plan.size()));
  StartAttempt(std::move(attempt));
}

bool CompensationExecutor::Superseded(
    const std::shared_ptr<Attempt>& attempt) const {
  return attempt->epoch != db_->epoch();
}

void CompensationExecutor::StartAttempt(std::shared_ptr<Attempt> attempt) {
  if (Superseded(attempt)) return;
  attempt->ct_id = ids_->Next();
  attempt->next_op = 0;
  ++attempt->attempt_number;
  db_->Begin(attempt->ct_id, TxnKind::kCompensating,
             attempt->request.forward_id);
  NextOp(std::move(attempt));
}

void CompensationExecutor::NextOp(std::shared_ptr<Attempt> attempt) {
  if (Superseded(attempt)) return;
  if (attempt->next_op >= attempt->request.plan.size()) {
    db_->CommitLocal(attempt->ct_id);
    ++completed_;
    // Journaled before done(): rule R2's mark insert (fired from done)
    // must observe a completed compensation.
    O2PC_TRACE(kCompensationEnd, db_->site(), attempt->request.forward_id,
               attempt->attempt_number);
    if (stats_ != nullptr) stats_->Incr("compensations_committed");
    auto done = std::move(attempt->request.done);
    if (done) done();
    return;
  }
  const local::Operation op = attempt->request.plan[attempt->next_op];
  db_->Execute(attempt->ct_id, op, [this, attempt](Result<Value> result) {
    // A crash rolled this CT attempt back already (and recovery owns the
    // redo, from the WAL's counter-operations): abandon the stale callback.
    if (Superseded(attempt)) return;
    if (result.ok() || result.status().IsNotFound() ||
        result.status().IsConflict()) {
      // NotFound/Conflict: the counter-operation is semantically moot
      // (later transactions already re-shaped the row); skip it.
      if (!result.ok() && stats_ != nullptr) {
        stats_->Incr("compensation_ops_skipped");
      }
      ++attempt->next_op;
      NextOp(attempt);
      return;
    }
    // Deadlock (or a cancelled wait): persistence of compensation — roll
    // back this attempt and retry until the CT commits.
    O2PC_LOG(kDebug) << "CT for T" << attempt->request.forward_id
                     << " attempt " << attempt->attempt_number
                     << " failed: " << result.status().ToString();
    if (stats_ != nullptr) stats_->Incr("compensation_retries");
    O2PC_TRACE(kCompensationRetry, db_->site(), attempt->request.forward_id,
               attempt->attempt_number);
    db_->AbortLocal(attempt->ct_id);
    O2PC_CHECK(attempt->attempt_number < 10000)
        << "compensation is not converging";
    simulator_->Schedule(
        attempt->request.retry_backoff * attempt->attempt_number,
        [this, attempt] { StartAttempt(attempt); });
  });
}

}  // namespace o2pc::core
