#ifndef O2PC_CORE_PROTOCOL_H_
#define O2PC_CORE_PROTOCOL_H_

#include <cstdint>

#include "common/types.h"

/// \file
/// Protocol selection and tunables for the commit layer.

namespace o2pc::core {

/// Which commit protocol terminates global transactions.
enum class CommitProtocol : std::uint8_t {
  /// Distributed 2PL + standard 2PC: shared locks released at VOTE-REQ,
  /// exclusive locks held until the DECISION arrives (the blocking
  /// baseline).
  kTwoPhaseCommit = 0,
  /// The paper's O2PC: a commit vote locally commits the subtransaction and
  /// releases *all* locks; an abort decision triggers a compensating
  /// subtransaction. Message pattern identical to 2PC.
  kOptimistic = 1,
};

const char* CommitProtocolName(CommitProtocol protocol);

/// Which marking protocol (paper §6) governs O2PC executions. Irrelevant
/// under kTwoPhaseCommit (nothing is ever exposed early).
enum class GovernancePolicy : std::uint8_t {
  /// No restriction — the saga-style mode (§4's closing remark): semantic
  /// atomicity without the serializability-like criterion.
  kNone = 0,
  /// Protocol P1 (stratification property S1): a transaction may not mix
  /// sites that are undone w.r.t. some T_i with sites that are not.
  kP1 = 1,
  /// Protocol P2, *strengthened*: the paper's literal dual rule
  /// (locally-committed marks all-or-nothing) plus P1's undone-uniformity.
  /// The strengthening is needed because the literal rule is unsound — see
  /// kP2Literal and DESIGN.md ("P2 soundness gap").
  kP2 = 2,
  /// The "very simple protocol" of §6.2's closing remarks: all sites must
  /// be undone w.r.t. exactly the same transactions and locally-committed
  /// w.r.t. none.
  kSimple = 3,
  /// The paper's P2 exactly as stated (§6.1): either all sites
  /// locally-committed w.r.t. T_i, or all sites undone-or-unmarked.
  /// Reproduction finding: this admits regular cycles through chains where
  /// some T_j directly precedes CT_i at a site where it also precedes T_i
  /// (cycle condition C2 holds but the pair is never "active", so S2 is
  /// vacuous). Kept as an ablation; not safe for production use.
  kP2Literal = 4,
};

const char* GovernancePolicyName(GovernancePolicy policy);

/// How UDUM1 witness knowledge spreads (paper §6.2, rule R3).
enum class DirectoryMode : std::uint8_t {
  /// Witness facts ride piggyback on the standard 2PC messages — the
  /// paper's "no extra messages" requirement.
  kPiggyback = 0,
  /// Idealized instant global knowledge; an ablation upper bound.
  kOracle = 1,
};

const char* DirectoryModeName(DirectoryMode mode);

struct ProtocolConfig {
  CommitProtocol protocol = CommitProtocol::kOptimistic;
  GovernancePolicy governance = GovernancePolicy::kP1;
  DirectoryMode directory = DirectoryMode::kPiggyback;

  /// True: after a subtransaction's last operation, the R1 compatibility
  /// check is validated again (the paper's deadlock-avoidance compromise:
  /// check early with a short lock, re-validate as the last action).
  bool revalidate_marks_at_end = true;

  /// Participant-side processing cost before sending its VOTE.
  Duration vote_processing_delay = Micros(200);
  /// Participant-side processing cost of a DECISION message.
  Duration decision_processing_delay = Micros(100);

  /// R1 rejections: retry the subtransaction this many times, backing off,
  /// before giving up and aborting the global transaction.
  int max_subtxn_retries = 4;
  Duration retry_backoff = Millis(2);

  /// Resend VOTE-REQ / DECISION if unanswered for this long (lossy-network
  /// safety net; 0 disables). `resend_timeout` seeds a common::RetryPolicy
  /// as the initial delay; `max_resends` is its budget. The backoff shape
  /// below is shared by *every* retry timer in the system (coordinator
  /// resends and the participant termination timers).
  Duration resend_timeout = Millis(100);
  int max_resends = 10;
  /// Exponential growth per retry (1.0 = a fixed interval, the classic
  /// retransmission cadence; the campaign runner and benches enable 2.0).
  double retry_backoff_multiplier = 1.0;
  /// Cap on the un-jittered retry delay (raised to the initial delay when
  /// smaller; <= 0 = uncapped).
  Duration retry_backoff_cap = Millis(800);
  /// Fraction of each delay added as seeded deterministic jitter.
  double retry_jitter = 0.0;

  /// Participant-side termination (paper §7's blocking discussion): how
  /// long a voted participant waits for the DECISION before helping
  /// itself. 0 disables (the pre-termination behavior: wait forever for
  /// coordinator resends). The first `decision_req_attempts` timeouts send
  /// DECISION-REQ to the coordinator's home (its recovery agent answers
  /// from the decision log even mid-crash); later rounds escalate to the
  /// cooperative termination protocol, querying the peer participants
  /// listed in the VOTE-REQ. `termination_budget` bounds total rounds.
  Duration decision_timeout = 0;
  int decision_req_attempts = 2;
  int termination_budget = 12;
  /// Pre-vote local autonomy: a participant that executed (acked OK) but
  /// has waited this long without a VOTE-REQ unilaterally aborts its
  /// subtransaction — the right O2PC preserves and 2PC's prepared state
  /// forfeits. 0 disables.
  Duration prevote_timeout = 0;

  /// Crash injection: probability the coordinator crashes *after logging*
  /// its decision but before broadcasting it; it recovers and resends after
  /// `coordinator_recovery_delay`. (Outcome unchanged — only delayed —
  /// which isolates the blocking effect 2PC suffers.)
  double coordinator_crash_probability = 0.0;
  Duration coordinator_recovery_delay = Millis(200);

  /// Backoff between compensation attempts (persistence of compensation:
  /// a CT that deadlocks retries until it commits).
  Duration compensation_retry_backoff = Millis(1);
};

}  // namespace o2pc::core

#endif  // O2PC_CORE_PROTOCOL_H_
