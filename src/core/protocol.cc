#include "core/protocol.h"

namespace o2pc::core {

const char* CommitProtocolName(CommitProtocol protocol) {
  switch (protocol) {
    case CommitProtocol::kTwoPhaseCommit:
      return "2PC";
    case CommitProtocol::kOptimistic:
      return "O2PC";
  }
  return "?";
}

const char* GovernancePolicyName(GovernancePolicy policy) {
  switch (policy) {
    case GovernancePolicy::kNone:
      return "none";
    case GovernancePolicy::kP1:
      return "P1";
    case GovernancePolicy::kP2:
      return "P2";
    case GovernancePolicy::kSimple:
      return "simple";
    case GovernancePolicy::kP2Literal:
      return "P2-literal";
  }
  return "?";
}

const char* DirectoryModeName(DirectoryMode mode) {
  switch (mode) {
    case DirectoryMode::kPiggyback:
      return "piggyback";
    case DirectoryMode::kOracle:
      return "oracle";
  }
  return "?";
}

}  // namespace o2pc::core
