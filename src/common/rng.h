#ifndef O2PC_COMMON_RNG_H_
#define O2PC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic random-number generation for reproducible simulation runs.
/// The generator is xoshiro256**, seeded via splitmix64, with the
/// distributions the workload generators need (uniform, Bernoulli,
/// exponential inter-arrival times, and Zipf hotspots).

namespace o2pc {

/// Deterministic PRNG. Copyable; copying forks the stream.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on every platform.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Pre: lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Derives an independent generator; `label` decorrelates derived streams.
  Rng Fork(std::uint64_t label);

 private:
  std::uint64_t s_[4];
};

/// Zipf(theta) sampler over {0, 1, ..., n-1} using the Gray/Jim
/// precomputed-CDF method. theta = 0 is uniform; larger theta is more skewed.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  /// Samples an index in [0, n); indexes near 0 are the hottest.
  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace o2pc

#endif  // O2PC_COMMON_RNG_H_
