#include "common/string_util.h"

#include <cstdio>

#include "common/types.h"

namespace o2pc {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatDuration(std::int64_t micros) {
  if (micros < 1000) return StrCat(micros, "us");
  if (micros < 1000 * 1000) {
    return StrCat(FormatDouble(static_cast<double>(micros) / 1000.0, 2), "ms");
  }
  return StrCat(FormatDouble(static_cast<double>(micros) / 1e6, 3), "s");
}

const char* TxnKindName(TxnKind kind) {
  switch (kind) {
    case TxnKind::kLocal:
      return "L";
    case TxnKind::kGlobal:
      return "T";
    case TxnKind::kCompensating:
      return "CT";
  }
  return "?";
}

std::string TxnLabel(TxnKind kind, TxnId id) {
  return StrCat(TxnKindName(kind), id);
}

}  // namespace o2pc
