#ifndef O2PC_COMMON_STRING_UTIL_H_
#define O2PC_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

/// \file
/// Small string helpers used by metrics tables and log/test output.

namespace o2pc {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);
  return out.str();
}

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Formats a simulated-time duration in human units ("12.3ms", "4.5s").
std::string FormatDuration(std::int64_t micros);

}  // namespace o2pc

#endif  // O2PC_COMMON_STRING_UTIL_H_
