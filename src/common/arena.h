#ifndef O2PC_COMMON_ARENA_H_
#define O2PC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Monotonic run arena: the allocator behind world reuse (DESIGN §16).
///
/// A campaign run performs ~150k heap allocations (~19 MB): trace events,
/// WAL records, rb-tree nodes in the post-run oracles, payload control
/// blocks, journal strings. Measured on the standard workload, the
/// malloc/free round trips — not world *construction*, which costs ~6 µs —
/// dominate the per-run engine tax, and under `--jobs N` they all contend
/// on the process allocator.
///
/// The arena turns that churn into pointer bumps. Each run-executor worker
/// leases one `MonotonicArena` for its lifetime (`exec::WorldPool`); while
/// a run is **armed** (`ScopedRunArena`), every `operator new` in the
/// process is served by bumping the worker's arena, and every matching
/// `operator delete` of arena-owned memory is a no-op. Between runs the
/// worker *rewinds* its arena — the whole previous world vanishes in O(1)
/// and the next run recycles the same cache-warm pages.
///
/// Ownership discipline (the reset contract):
///  * Everything allocated while armed dies, at the latest, when the owning
///    worker next rewinds. Run results may be *read* by the coordinator
///    thread until then (the campaign's wave barrier guarantees the order);
///    anything that must outlive the wave is deep-copied while disarmed.
///  * State that genuinely persists across runs on a worker thread — the
///    payload pool's freelists, the arena lease itself — must bypass the
///    arena (raw malloc), or it would dangle after a rewind.
///  * Function-local statics must not be first-constructed while armed.
///    `WarmProcessStatics()` pre-touches the known lazily-initialized
///    process state before the first arming.
///
/// All arenas carve their reservation out of one contiguous virtual-memory
/// super-region, so the `operator delete` ownership test is two compares —
/// from any thread, at any time (including after rewind: ownership is by
/// reservation, not by live offset). Under AddressSanitizer the global
/// override is compiled out entirely (keeping redzones and quarantine);
/// `O2PC_RUN_ARENA=off` disables arming at runtime. With the arena
/// disabled, `ScopedRunArena` is inert and runs allocate from the real
/// heap — byte-identical behavior, just slower.

#if defined(__SANITIZE_ADDRESS__)
#define O2PC_ARENA_GLOBAL_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define O2PC_ARENA_GLOBAL_NEW 0
#endif
#endif
#ifndef O2PC_ARENA_GLOBAL_NEW
#define O2PC_ARENA_GLOBAL_NEW 1
#endif

namespace o2pc::common {

/// Bump allocator over a contiguous reservation. Not thread-safe: each
/// arena is owned by exactly one thread at a time (the pool hands leases
/// across threads with proper synchronization).
class MonotonicArena {
 public:
  /// Bytes this arena can serve before falling back to the heap.
  std::size_t capacity() const { return capacity_; }
  /// Bytes bumped since the last Rewind().
  std::size_t bytes_used() const { return offset_; }
  /// Max bytes_used() ever observed at Rewind() — the steady-state
  /// footprint of one run.
  std::size_t high_water() const { return high_water_; }

  /// Bump-allocates `bytes` aligned to `align`; nullptr when full (the
  /// caller falls back to the heap — correctness never depends on fit).
  void* TryAllocate(std::size_t bytes, std::size_t align);

  /// O(1) reset: the next run reuses the same pages. With
  /// O2PC_ARENA_POISON=1 the used range is scribbled (0xCD) first, so any
  /// cross-run dangling pointer turns into loud nondeterminism instead of
  /// silent luck.
  void Rewind();

  /// True if `p` points into this arena's reservation (live or rewound).
  bool Owns(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < base_ + capacity_;
  }

  /// Pool-internal: points this arena at its slice of the super-region.
  void AdoptReservation(char* base, std::size_t capacity) {
    base_ = base;
    capacity_ = capacity;
  }

 private:
  char* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t offset_ = 0;
  std::size_t high_water_ = 0;
};

/// True when the global-new arena path is compiled in, the super-region
/// reservation succeeded, and O2PC_RUN_ARENA is not "off"/"0". First call
/// also pre-touches process statics (WarmProcessStatics).
bool RunArenaEnabled();

/// Pre-constructs the known lazily-initialized process-wide state (logger,
/// locale plumbing) so nothing static is first-allocated inside an armed
/// run. Idempotent; RunArenaEnabled() calls it.
void WarmProcessStatics();

/// The calling thread's pooled arena lease (acquired on first use, rewound
/// on re-acquisition, returned to the pool at thread exit). Nullptr when
/// the arena machinery is disabled or the pool is exhausted.
MonotonicArena* ThreadRunArena();

/// Arms `arena` as the calling thread's run arena for the scope's
/// lifetime: every global allocation on this thread bumps it. Passing
/// nullptr (or a disabled build) makes the scope inert.
class ScopedRunArena {
 public:
  explicit ScopedRunArena(MonotonicArena* arena);
  ~ScopedRunArena();
  ScopedRunArena(const ScopedRunArena&) = delete;
  ScopedRunArena& operator=(const ScopedRunArena&) = delete;

  bool armed() const { return arena_ != nullptr; }

 private:
  MonotonicArena* arena_ = nullptr;
  MonotonicArena* previous_ = nullptr;
};

/// This thread's count of operator-new calls served by the *system heap*
/// (malloc) — armed misses plus every unarmed allocation. The steady-state
/// allocation gate pins the delta of this counter across a recycled run
/// at zero. Only meaningful in builds with the global override
/// (HeapAllocCountingEnabled()).
std::uint64_t ThreadHeapAllocs();

/// This thread's count of allocations served by an armed arena.
std::uint64_t ThreadArenaAllocs();

/// True when operator new/delete are the counting/arena-aware overrides
/// (false under AddressSanitizer builds).
bool HeapAllocCountingEnabled();

/// Arena-bypassing system-heap allocation, counted in ThreadHeapAllocs().
/// For caches that must survive across run rewinds on a worker thread
/// (e.g. the payload pool's freelists): memory from here is never
/// reclaimed by a rewind, and a steady-state refill still shows up in the
/// allocation gate.
void* BypassMalloc(std::size_t bytes);
void BypassFree(void* p) noexcept;

}  // namespace o2pc::common

#endif  // O2PC_COMMON_ARENA_H_
