#ifndef O2PC_COMMON_RESULT_H_
#define O2PC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

/// \file
/// `Result<T>`: a value or a non-OK Status, in the spirit of
/// `arrow::Result` / `absl::StatusOr`.

namespace o2pc {

template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): by design, like
                   // absl::StatusOr, so `return value;` works.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the held value, or `fallback` when this result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace o2pc

#endif  // O2PC_COMMON_RESULT_H_
