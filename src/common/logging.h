#ifndef O2PC_COMMON_LOGGING_H_
#define O2PC_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

/// \file
/// Minimal leveled logging. Benchmarks run with logging off; tests can
/// install a capture sink. A terse macro interface keeps call sites readable:
///
///   O2PC_LOG(kInfo) << "site " << site << " voted " << vote;
///
/// Every message reaches the sink as a structured LogRecord (level, source
/// file, line, text), so custom sinks can filter or format on the call
/// site instead of re-parsing a prefix out of the text.
///
/// `O2PC_CHECK(cond)` aborts the process on violated invariants (there are
/// no exceptions in this codebase).

namespace o2pc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Short upper-case name ("TRACE", "WARN", ...).
const char* LogLevelName(LogLevel level);

/// One log statement, delivered to the sink with its call site intact.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  /// Source basename (no directories) and line of the O2PC_LOG statement.
  const char* file = "";
  int line = 0;
  std::string message;
};

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  /// Process-wide logger instance.
  static Logger& Global();

  /// Minimum level that is emitted. Defaults to kWarn.
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore the
  /// default.
  void set_sink(Sink sink);

  bool Enabled(LogLevel level) const { return level >= level_; }
  void Write(const LogRecord& record);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Stream-style single-message builder used by O2PC_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

namespace log_internal {
/// Aborts the process after printing `expr` and the accumulated message.
class CheckFailure {
 public:
  CheckFailure(const char* expr, const char* file, int line);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};
}  // namespace log_internal

}  // namespace o2pc

#define O2PC_LOG(level)                                                  \
  if (!::o2pc::Logger::Global().Enabled(::o2pc::LogLevel::level)) {      \
  } else                                                                 \
    ::o2pc::LogMessage(::o2pc::LogLevel::level, __FILE__, __LINE__)      \
        .stream()

#define O2PC_CHECK(cond)                                               \
  if (cond) {                                                          \
  } else                                                               \
    ::o2pc::log_internal::CheckFailure(#cond, __FILE__, __LINE__)      \
        .stream()

#endif  // O2PC_COMMON_LOGGING_H_
