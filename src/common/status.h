#ifndef O2PC_COMMON_STATUS_H_
#define O2PC_COMMON_STATUS_H_

#include <string>
#include <utility>

/// \file
/// Exception-free error handling, in the style of RocksDB/Arrow `Status`.
/// Every fallible operation returns a `Status` (or a `Result<T>`, see
/// result.h); callers test with `ok()` or dispatch on `code()`.

namespace o2pc {

enum class StatusCode : int {
  kOk = 0,
  /// The transaction was aborted (voluntarily, by vote, or by decision).
  kAborted = 1,
  /// The transaction was chosen as a deadlock victim.
  kDeadlock = 2,
  /// A marking-protocol compatibility check (rule R1) rejected the
  /// subtransaction; the caller may retry later.
  kRejected = 3,
  /// A referenced key / transaction / site does not exist.
  kNotFound = 4,
  kInvalidArgument = 5,
  /// The target site or link is currently down or partitioned away.
  kUnavailable = 6,
  /// A uniqueness or state conflict (e.g. inserting an existing key).
  kConflict = 7,
  /// A wait exceeded its bound.
  kTimedOut = 8,
  /// An internal invariant failed. Always a bug.
  kInternal = 9,
};

/// Human-readable name of a StatusCode, e.g. "Aborted".
const char* StatusCodeName(StatusCode code);

/// Value-type carrying a StatusCode plus an optional context message.
class Status {
 public:
  /// Builds an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Rejected(std::string msg = "") {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsRejected() const { return code_ == StatusCode::kRejected; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace o2pc

#endif  // O2PC_COMMON_STATUS_H_
