#ifndef O2PC_COMMON_TYPES_H_
#define O2PC_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

/// \file
/// Fundamental identifier and value types shared by every o2pc library.
///
/// The simulated distributed database is made of *sites* (autonomous local
/// DBMSs) holding *data items* addressed by a key. Transactions are globally
/// identified by a TxnId; a subtransaction of global transaction `T_i` running
/// at site `k` shares `T_i`'s TxnId (the pair (TxnId, SiteId) names the
/// subtransaction, as in the paper's `T_ik`).

namespace o2pc {

/// Identifier of a (global, local, or compensating) transaction.
/// `kInvalidTxn` (0) never names a real transaction.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

/// Identifier of a site (one autonomous local DBMS).
using SiteId = std::uint32_t;
inline constexpr SiteId kInvalidSite = std::numeric_limits<SiteId>::max();

/// Key of a data item within one site's database.
using DataKey = std::uint64_t;

/// Value stored under a DataKey. Semantic (restricted-model) operations are
/// arithmetic, so values are signed integers.
using Value = std::int64_t;

/// Simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;
/// Simulated duration, in microseconds.
using Duration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Convenience literals for building durations.
constexpr Duration Micros(std::int64_t n) { return n; }
constexpr Duration Millis(std::int64_t n) { return n * 1000; }
constexpr Duration Seconds(std::int64_t n) { return n * 1000 * 1000; }

/// Classifies a transaction node as the paper's theory does: local
/// transactions `L`, regular global transactions `T`, and compensating
/// transactions `CT` (a global CT is the blend of per-site compensation
/// steps and rollbacks).
enum class TxnKind : std::uint8_t {
  kLocal = 0,
  kGlobal = 1,
  kCompensating = 2,
};

/// Human-readable name of a TxnKind ("L", "T", "CT").
const char* TxnKindName(TxnKind kind);

/// Renders a transaction for logs and test failure messages, e.g. "T7",
/// "CT7", "L12".
std::string TxnLabel(TxnKind kind, TxnId id);

}  // namespace o2pc

#endif  // O2PC_COMMON_TYPES_H_
