#include "common/retry_policy.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace o2pc::common {

RetryPolicy::RetryPolicy(RetryPolicyConfig config, Rng rng)
    : config_(config), rng_(std::move(rng)) {
  if (config_.initial <= 0) config_.initial = 1;
  if (config_.multiplier < 1.0) config_.multiplier = 1.0;
}

Duration RetryPolicy::NextDelay() {
  O2PC_CHECK(!Exhausted()) << "RetryPolicy asked past its budget";
  double delay = static_cast<double>(config_.initial) *
                 std::pow(config_.multiplier, attempt_);
  const Duration cap = config_.cap > 0
                           ? std::max(config_.cap, config_.initial)
                           : kSimTimeMax / 4;  // overflow guard, uncapped
  if (delay > static_cast<double>(cap)) delay = static_cast<double>(cap);
  Duration result = static_cast<Duration>(delay);
  if (config_.jitter > 0.0) {
    const double span = config_.jitter * delay;
    result += static_cast<Duration>(span * rng_.NextDouble());
  }
  ++attempt_;
  return std::max<Duration>(result, 1);
}

bool RetryPolicy::Exhausted() const {
  return config_.budget > 0 && attempt_ >= config_.budget;
}

}  // namespace o2pc::common
