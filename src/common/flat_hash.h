#ifndef O2PC_COMMON_FLAT_HASH_H_
#define O2PC_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

/// \file
/// Flat, cache-friendly containers for the per-run hot path.
///
/// The simulator's inner loops (lock queues, waits-for adjacency, conflict
/// chains, marking sets) are keyed by small integers (`TxnId`, `DataKey`)
/// and live for one run. Tree containers pay a pointer chase and an
/// allocation per node; these replacements keep everything in two vectors:
///
///  * `FlatMap<K, V>` / `FlatSet<K>` — open-addressing hash table over a
///    power-of-two slot index, with the entries themselves stored in a
///    dense *insertion-ordered* array. Iteration visits live entries in
///    insertion order — a deterministic order that is a pure function of
///    the operation sequence, never of hash seeds or rehash timing — which
///    is what keeps campaign fingerprints byte-identical across runs and
///    `--jobs` values. Erase tombstones the entry (no moves, so other
///    iterators/references survive); rehash compacts, preserving order.
///  * `SmallSet<T>` / `SmallMap<K, V>` — sorted-vector set/map for the
///    tiny per-transaction sets (held keys, site marks, witness facts).
///    Iteration is *sorted*, exactly like the `std::set`/`std::map` they
///    replace, so every order-sensitive consumer (release loops, DFS
///    successor order, gossip export) behaves identically.
///
/// Keys hash through a splitmix64 finalizer, so adversarially-dense key
/// ranges (sequential TxnIds) still probe uniformly.

namespace o2pc::common {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
inline std::uint64_t HashU64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace internal {

inline constexpr std::uint32_t kEmptySlot = 0xffffffffu;
inline constexpr std::uint32_t kTombstoneSlot = 0xfffffffeu;

/// Shared open-addressing core: maps hashed keys to indices into the
/// derived container's dense entry array. `Derived` supplies
/// `KeyAt(index)` and `EntryCount()`.
template <typename Derived, typename K>
class FlatCore {
 public:
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

 protected:
  /// Probes for `key`. Returns the entry index or kEmptySlot.
  std::uint32_t FindIndex(const K& key) const {
    if (slots_.empty()) return kEmptySlot;
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = HashU64(static_cast<std::uint64_t>(key)) & mask;
    while (true) {
      const std::uint32_t slot = slots_[pos];
      if (slot == kEmptySlot) return kEmptySlot;
      if (slot != kTombstoneSlot &&
          static_cast<const Derived*>(this)->KeyAt(slot) == key) {
        return slot;
      }
      pos = (pos + 1) & mask;
    }
  }

  /// Claims a slot for a new entry index `index` holding `key`.
  /// Pre: `key` is not present; capacity was ensured.
  void InsertSlot(const K& key, std::uint32_t index) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = HashU64(static_cast<std::uint64_t>(key)) & mask;
    while (slots_[pos] != kEmptySlot && slots_[pos] != kTombstoneSlot) {
      pos = (pos + 1) & mask;
    }
    slots_[pos] = index;
    ++live_;
  }

  /// Tombstones `key`'s slot. Pre: present.
  void EraseSlot(const K& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = HashU64(static_cast<std::uint64_t>(key)) & mask;
    while (true) {
      const std::uint32_t slot = slots_[pos];
      if (slot != kEmptySlot && slot != kTombstoneSlot &&
          static_cast<const Derived*>(this)->KeyAt(slot) == key) {
        slots_[pos] = kTombstoneSlot;
        --live_;
        return;
      }
      pos = (pos + 1) & mask;
    }
  }

  /// True when the dense entry array (live + dead) is about to outgrow the
  /// slot table's load budget, i.e. the derived container must compact +
  /// rehash before appending.
  bool NeedsRehash() const {
    const std::size_t entries =
        static_cast<const Derived*>(this)->EntryCount();
    return slots_.empty() || (entries + 1) * 4 >= slots_.size() * 3;
  }

  /// Rebuilds the slot table for `new_entry_count` entries; the derived
  /// container re-inserts via InsertSlot afterwards.
  void ResetSlots(std::size_t new_entry_count) {
    std::size_t capacity = 16;
    while (capacity * 3 < (new_entry_count + 1) * 4) capacity *= 2;
    // One growth step of headroom so back-to-back inserts don't rehash.
    capacity *= 2;
    slots_.assign(capacity, kEmptySlot);
    live_ = 0;
  }

  void ClearSlots() {
    slots_.clear();
    live_ = 0;
  }

 private:
  std::vector<std::uint32_t> slots_;
  std::size_t live_ = 0;
};

/// Iterator over a dense entry array with a parallel liveness vector.
template <typename Entry, bool kConst>
class DenseIterator {
  using Vec = std::conditional_t<kConst, const std::vector<Entry>,
                                 std::vector<Entry>>;
  using Ref = std::conditional_t<kConst, const Entry&, Entry&>;
  using Ptr = std::conditional_t<kConst, const Entry*, Entry*>;

 public:
  using iterator_category = std::forward_iterator_tag;
  using value_type = Entry;
  using difference_type = std::ptrdiff_t;
  using pointer = Ptr;
  using reference = Ref;

  DenseIterator(Vec* entries, const std::vector<std::uint8_t>* dead,
                std::size_t index)
      : entries_(entries), dead_(dead), index_(index) {
    SkipDead();
  }

  Ref operator*() const { return (*entries_)[index_]; }
  Ptr operator->() const { return &(*entries_)[index_]; }

  DenseIterator& operator++() {
    ++index_;
    SkipDead();
    return *this;
  }

  bool operator==(const DenseIterator& other) const {
    return index_ == other.index_;
  }
  bool operator!=(const DenseIterator& other) const {
    return index_ != other.index_;
  }

  std::size_t index() const { return index_; }

 private:
  void SkipDead() {
    while (index_ < entries_->size() && (*dead_)[index_] != 0) ++index_;
  }

  Vec* entries_;
  const std::vector<std::uint8_t>* dead_;
  std::size_t index_;
};

}  // namespace internal

/// Open-addressing hash map for integer keys with deterministic
/// (insertion-ordered) iteration. See the file comment for the contract.
template <typename K, typename V>
class FlatMap : public internal::FlatCore<FlatMap<K, V>, K> {
  using Core = internal::FlatCore<FlatMap<K, V>, K>;
  friend Core;

 public:
  using Entry = std::pair<K, V>;
  using iterator = internal::DenseIterator<Entry, false>;
  using const_iterator = internal::DenseIterator<Entry, true>;

  FlatMap() = default;

  iterator begin() { return iterator(&entries_, &dead_, 0); }
  iterator end() { return iterator(&entries_, &dead_, entries_.size()); }
  const_iterator begin() const {
    return const_iterator(&entries_, &dead_, 0);
  }
  const_iterator end() const {
    return const_iterator(&entries_, &dead_, entries_.size());
  }

  iterator find(const K& key) {
    const std::uint32_t index = Core::FindIndex(key);
    return index == internal::kEmptySlot ? end()
                                         : iterator(&entries_, &dead_, index);
  }
  const_iterator find(const K& key) const {
    const std::uint32_t index = Core::FindIndex(key);
    return index == internal::kEmptySlot
               ? end()
               : const_iterator(&entries_, &dead_, index);
  }

  bool contains(const K& key) const {
    return Core::FindIndex(key) != internal::kEmptySlot;
  }

  V& operator[](const K& key) {
    const std::uint32_t index = Core::FindIndex(key);
    if (index != internal::kEmptySlot) return entries_[index].second;
    return Append(key, V())->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const std::uint32_t index = Core::FindIndex(key);
    if (index != internal::kEmptySlot) {
      return {iterator(&entries_, &dead_, index), false};
    }
    return {Append(key, V(std::forward<Args>(args)...)), true};
  }

  std::pair<iterator, bool> insert(Entry entry) {
    const std::uint32_t index = Core::FindIndex(entry.first);
    if (index != internal::kEmptySlot) {
      return {iterator(&entries_, &dead_, index), false};
    }
    return {Append(entry.first, std::move(entry.second)), true};
  }

  std::size_t erase(const K& key) {
    const std::uint32_t index = Core::FindIndex(key);
    if (index == internal::kEmptySlot) return 0;
    Core::EraseSlot(key);
    dead_[index] = 1;
    entries_[index].second = V();  // release the value's resources now
    return 1;
  }

  void erase(const_iterator it) { erase(it->first); }
  void erase(iterator it) { erase(it->first); }

  void clear() {
    entries_.clear();
    dead_.clear();
    Core::ClearSlots();
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    dead_.reserve(n);
  }

 private:
  const K& KeyAt(std::uint32_t index) const { return entries_[index].first; }
  std::size_t EntryCount() const { return entries_.size(); }

  iterator Append(const K& key, V value) {
    if (Core::NeedsRehash()) Compact();
    entries_.emplace_back(key, std::move(value));
    dead_.push_back(0);
    Core::InsertSlot(key, static_cast<std::uint32_t>(entries_.size() - 1));
    return iterator(&entries_, &dead_, entries_.size() - 1);
  }

  /// Drops dead entries (preserving insertion order) and rebuilds slots.
  void Compact() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (dead_[i] != 0) continue;
      if (out != i) entries_[out] = std::move(entries_[i]);
      ++out;
    }
    entries_.resize(out);
    dead_.assign(out, 0);
    Core::ResetSlots(out);
    for (std::size_t i = 0; i < out; ++i) {
      Core::InsertSlot(entries_[i].first, static_cast<std::uint32_t>(i));
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint8_t> dead_;
};

/// Open-addressing hash set for integer keys with deterministic
/// (insertion-ordered) iteration.
template <typename K>
class FlatSet : public internal::FlatCore<FlatSet<K>, K> {
  using Core = internal::FlatCore<FlatSet<K>, K>;
  friend Core;

 public:
  using iterator = internal::DenseIterator<K, true>;
  using const_iterator = iterator;

  FlatSet() = default;

  iterator begin() const { return iterator(&entries_, &dead_, 0); }
  iterator end() const { return iterator(&entries_, &dead_, entries_.size()); }

  bool contains(const K& key) const {
    return Core::FindIndex(key) != internal::kEmptySlot;
  }
  std::size_t count(const K& key) const { return contains(key) ? 1 : 0; }

  std::pair<iterator, bool> insert(const K& key) {
    const std::uint32_t index = Core::FindIndex(key);
    if (index != internal::kEmptySlot) {
      return {iterator(&entries_, &dead_, index), false};
    }
    if (Core::NeedsRehash()) Compact();
    entries_.push_back(key);
    dead_.push_back(0);
    Core::InsertSlot(key, static_cast<std::uint32_t>(entries_.size() - 1));
    return {iterator(&entries_, &dead_, entries_.size() - 1), true};
  }

  std::size_t erase(const K& key) {
    const std::uint32_t index = Core::FindIndex(key);
    if (index == internal::kEmptySlot) return 0;
    Core::EraseSlot(key);
    dead_[index] = 1;
    return 1;
  }

  void clear() {
    entries_.clear();
    dead_.clear();
    Core::ClearSlots();
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    dead_.reserve(n);
  }

 private:
  const K& KeyAt(std::uint32_t index) const { return entries_[index]; }
  std::size_t EntryCount() const { return entries_.size(); }

  void Compact() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (dead_[i] != 0) continue;
      if (out != i) entries_[out] = entries_[i];
      ++out;
    }
    entries_.resize(out);
    dead_.assign(out, 0);
    Core::ResetSlots(out);
    for (std::size_t i = 0; i < out; ++i) {
      Core::InsertSlot(entries_[i], static_cast<std::uint32_t>(i));
    }
  }

  std::vector<K> entries_;
  std::vector<std::uint8_t> dead_;
};

/// Sorted-vector set for tiny element counts (per-transaction held keys,
/// per-site mark sets — typically < 32 elements). Iteration is sorted,
/// matching the `std::set` it replaces element-for-element, so every
/// order-sensitive consumer is unaffected by the swap.
template <typename T>
class SmallSet {
 public:
  using iterator = typename std::vector<T>::const_iterator;
  using const_iterator = iterator;

  SmallSet() = default;
  template <typename It>
  SmallSet(It first, It last) : items_(first, last) {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }
  SmallSet(std::initializer_list<T> init)
      : SmallSet(init.begin(), init.end()) {}

  iterator begin() const { return items_.begin(); }
  iterator end() const { return items_.end(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  bool contains(const T& value) const {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    return it != items_.end() && *it == value;
  }
  std::size_t count(const T& value) const { return contains(value) ? 1 : 0; }

  std::pair<iterator, bool> insert(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it != items_.end() && *it == value) return {it, false};
    it = items_.insert(it, value);
    return {it, true};
  }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  std::size_t erase(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it == items_.end() || !(*it == value)) return 0;
    items_.erase(it);
    return 1;
  }

  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  friend bool operator==(const SmallSet& a, const SmallSet& b) {
    return a.items_ == b.items_;
  }

 private:
  std::vector<T> items_;
};

/// Sorted-vector map, the companion of SmallSet for tiny key counts.
/// Iteration is sorted by key, matching `std::map`.
template <typename K, typename V>
class SmallMap {
 public:
  using Entry = std::pair<K, V>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  SmallMap() = default;

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  iterator find(const K& key) {
    auto it = LowerBound(key);
    return (it != items_.end() && it->first == key) ? it : items_.end();
  }
  const_iterator find(const K& key) const {
    auto it = LowerBound(key);
    return (it != items_.end() && it->first == key) ? it : items_.end();
  }
  bool contains(const K& key) const { return find(key) != items_.end(); }

  V& operator[](const K& key) {
    auto it = LowerBound(key);
    if (it == items_.end() || it->first != key) {
      it = items_.insert(it, Entry(key, V()));
    }
    return it->second;
  }

  template <typename VV>
  std::pair<iterator, bool> emplace(const K& key, VV&& value) {
    auto it = LowerBound(key);
    if (it != items_.end() && it->first == key) return {it, false};
    it = items_.insert(it, Entry(key, std::forward<VV>(value)));
    return {it, true};
  }

  std::size_t erase(const K& key) {
    auto it = LowerBound(key);
    if (it == items_.end() || it->first != key) return 0;
    items_.erase(it);
    return 1;
  }
  iterator erase(const_iterator it) { return items_.erase(it); }

  void clear() { items_.clear(); }

 private:
  iterator LowerBound(const K& key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Entry& entry, const K& k) { return entry.first < k; });
  }
  const_iterator LowerBound(const K& key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Entry& entry, const K& k) { return entry.first < k; });
  }

  std::vector<Entry> items_;
};

}  // namespace o2pc::common

#endif  // O2PC_COMMON_FLAT_HASH_H_
