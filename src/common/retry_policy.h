#ifndef O2PC_COMMON_RETRY_POLICY_H_
#define O2PC_COMMON_RETRY_POLICY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

/// \file
/// Shared retry-timer shaping for every periodic resend in the system: the
/// coordinator's DECISION/VOTE-REQ/INVOKE resends and the participant's
/// termination timers (DECISION-REQ, cooperative termination rounds). One
/// policy object owns one exponential-backoff schedule:
///
///     delay(n) = min(initial * multiplier^n, cap) + jitter_n
///
/// where `jitter_n` is drawn from a seeded Rng in
/// [0, jitter * delay(n)), so two runs with the same seed produce
/// byte-identical schedules — a requirement for the fault campaign's
/// `--replay` determinism. A retry *budget* bounds the number of delays the
/// policy hands out; when it is exhausted the caller stops retrying and
/// falls back to its terminal behavior (abort early, log-and-retire, or
/// lean on cooperative termination).

namespace o2pc::common {

/// Shape of one backoff schedule. The effective cap is never below
/// `initial` (a cap that undercuts the first delay would make the schedule
/// *shrink*, which no caller wants).
struct RetryPolicyConfig {
  /// First delay; also the fixed period when multiplier <= 1.
  Duration initial = Millis(100);
  /// Growth factor applied per attempt.
  double multiplier = 1.0;
  /// Upper bound on the un-jittered delay; <= 0 = uncapped. An explicit
  /// cap below `initial` is raised to `initial`.
  Duration cap = 0;
  /// Number of delays handed out before Exhausted(); <= 0 = unlimited.
  int budget = 0;
  /// Fraction of each delay added as uniform random jitter in
  /// [0, jitter * delay). 0 disables jitter (and the Rng is never drawn).
  double jitter = 0.0;
};

class RetryPolicy {
 public:
  /// Default: a never-exhausting fixed 100ms schedule (placeholder for
  /// value-semantics containers; real users pass a config + seeded Rng).
  RetryPolicy() : RetryPolicy(RetryPolicyConfig{}, Rng(0)) {}
  RetryPolicy(RetryPolicyConfig config, Rng rng);

  /// The next delay in the schedule; advances the attempt counter (and the
  /// jitter stream). Callers must not ask once Exhausted().
  Duration NextDelay();

  /// True once `budget` delays have been handed out (never with an
  /// unlimited budget).
  bool Exhausted() const;

  /// Delays handed out since construction / the last Reset().
  int attempt() const { return attempt_; }

  /// Restarts the schedule (the jitter stream keeps advancing, so a reset
  /// policy still diverges deterministically from a fresh one).
  void Reset() { attempt_ = 0; }

 private:
  RetryPolicyConfig config_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace o2pc::common

#endif  // O2PC_COMMON_RETRY_POLICY_H_
