#include "common/status.h"

namespace o2pc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kRejected:
      return "Rejected";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace o2pc
