#include "common/rng.h"

#include <cmath>

namespace o2pc {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::Uniform(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = Next();
  while (r >= limit) r = Next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork(std::uint64_t label) {
  return Rng(Next() ^ (label * 0x9e3779b97f4a7c15ULL));
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  cdf_.resize(n_);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint64_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search the first cdf entry >= u.
  std::uint64_t lo = 0;
  std::uint64_t hi = n_ - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace o2pc
