#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace o2pc {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger::Logger() = default;

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // never destroyed; trivially safe
  return *logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::Write(LogLevel level, const std::string& message) {
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep the prefix short: basename only.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() {
  Logger::Global().Write(level_, stream_.str());
}

namespace log_internal {

CheckFailure::CheckFailure(const char* expr, const char* file, int line) {
  stream_ << "CHECK failed: " << expr << " at " << file << ":" << line << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace log_internal
}  // namespace o2pc
