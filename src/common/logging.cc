#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace o2pc {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger() = default;

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // never destroyed; trivially safe
  return *logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::Write(const LogRecord& record) {
  if (sink_) {
    sink_(record);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(record.level),
               record.file, record.line, record.message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {
  // Keep the record short: basename only.
  for (const char* p = file; *p; ++p) {
    if (*p == '/') file_ = p + 1;
  }
}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.message = stream_.str();
  Logger::Global().Write(record);
}

namespace log_internal {

CheckFailure::CheckFailure(const char* expr, const char* file, int line) {
  stream_ << "CHECK failed: " << expr << " at " << file << ":" << line << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace log_internal
}  // namespace o2pc
