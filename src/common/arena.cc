#include "common/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <locale>
#include <new>
#include <sstream>
#include <string>

#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define O2PC_ARENA_HAVE_MMAP 1
#else
#define O2PC_ARENA_HAVE_MMAP 0
#endif

namespace o2pc::common {

namespace {

/// One contiguous virtual reservation holds every arena, so the
/// operator-delete ownership test is two compares against constinit
/// atomics — valid from any thread at any point of process lifetime
/// (including static destruction: the region is never unmapped).
constexpr std::size_t kSuperReserve = std::size_t{1} << 36;  // 64 GB virtual
constexpr std::size_t kArenaCapacity = std::size_t{1} << 30;  // 1 GB each
constexpr int kMaxArenas = 64;

constinit std::atomic<char*> g_super_base{nullptr};
constinit std::atomic<char*> g_super_end{nullptr};

/// The arena objects themselves live in static storage (never destroyed):
/// a rewound-but-reachable arena must stay valid for ownership checks and
/// no-op frees issued after its leasing thread exited.
constinit MonotonicArena g_arenas[kMaxArenas];
constinit std::atomic_flag g_pool_lock = ATOMIC_FLAG_INIT;
constinit int g_free_list[kMaxArenas] = {};
constinit int g_free_count = 0;
constinit int g_arenas_created = 0;

/// The calling thread's armed arena (null = allocate from the heap).
thread_local constinit MonotonicArena* t_current = nullptr;

struct ThreadCounters {
  std::uint64_t heap_allocs = 0;
  std::uint64_t arena_allocs = 0;
};
thread_local constinit ThreadCounters t_counters;

bool SuperReserveInit() {
#if O2PC_ARENA_HAVE_MMAP
  char* expected = nullptr;
  if (g_super_base.load(std::memory_order_acquire) != nullptr) return true;
  void* mem = ::mmap(nullptr, kSuperReserve, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) return false;
  char* base = static_cast<char*>(mem);
  if (!g_super_base.compare_exchange_strong(expected, base,
                                            std::memory_order_acq_rel)) {
    ::munmap(mem, kSuperReserve);  // lost the race; the winner's stands
    return true;
  }
  g_super_end.store(base + kSuperReserve, std::memory_order_release);
  return true;
#else
  return false;
#endif
}

class PoolLockGuard {
 public:
  PoolLockGuard() {
    while (g_pool_lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~PoolLockGuard() { g_pool_lock.clear(std::memory_order_release); }
};

MonotonicArena* PoolAcquire() {
  if (!RunArenaEnabled()) return nullptr;
  PoolLockGuard guard;
  if (g_free_count > 0) return &g_arenas[g_free_list[--g_free_count]];
  if (g_arenas_created >= kMaxArenas) return nullptr;
  char* base = g_super_base.load(std::memory_order_acquire);
  MonotonicArena* arena = &g_arenas[g_arenas_created];
  arena->AdoptReservation(
      base + static_cast<std::size_t>(g_arenas_created) * kArenaCapacity,
      kArenaCapacity);
  ++g_arenas_created;
  return arena;
}

void PoolRelease(MonotonicArena* arena) {
  PoolLockGuard guard;
  g_free_list[g_free_count++] = static_cast<int>(arena - g_arenas);
}

/// Returns the lease to the pool when its thread exits. The arena's pages
/// stay mapped and registered: late frees of its memory remain no-ops.
struct ArenaLease {
  MonotonicArena* arena = nullptr;
  ~ArenaLease() {
    if (arena != nullptr) PoolRelease(arena);
  }
};
thread_local constinit ArenaLease t_lease;

bool ArenaPoisonEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("O2PC_ARENA_POISON");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

}  // namespace

void* MonotonicArena::TryAllocate(std::size_t bytes, std::size_t align) {
  std::size_t offset = (offset_ + (align - 1)) & ~(align - 1);
  if (bytes > capacity_ || offset > capacity_ - bytes) return nullptr;
  offset_ = offset + bytes;
  return base_ + offset;
}

void MonotonicArena::Rewind() {
  if (offset_ > high_water_) high_water_ = offset_;
  if (ArenaPoisonEnabled() && offset_ > 0) {
    std::memset(base_, 0xCD, offset_);
  }
  offset_ = 0;
}

void WarmProcessStatics() {
  // Anything a run lazily constructs on first use must exist before the
  // first armed run, or its allocation would land in an arena and dangle
  // after the rewind. The known offenders: the logger singleton, locale
  // plumbing behind ostringstream formatting, and error categories.
  Logger::Global();
  (void)std::locale::classic();
  std::ostringstream warm;
  warm << 42 << ' ' << 3.5 << ' ' << std::hex << 255u;
  (void)std::to_string(123456789);
  (void)ArenaPoisonEnabled();
}

bool RunArenaEnabled() {
  static const bool enabled = [] {
#if !O2PC_ARENA_GLOBAL_NEW
    return false;
#else
    const char* env = std::getenv("O2PC_RUN_ARENA");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
      return false;
    }
    if (!SuperReserveInit()) return false;
    WarmProcessStatics();
    return true;
#endif
  }();
  return enabled;
}

MonotonicArena* ThreadRunArena() {
  if (t_lease.arena == nullptr) t_lease.arena = PoolAcquire();
  return t_lease.arena;
}

ScopedRunArena::ScopedRunArena(MonotonicArena* arena) : arena_(arena) {
  if (arena_ == nullptr) return;
  previous_ = t_current;
  t_current = arena_;
}

ScopedRunArena::~ScopedRunArena() {
  if (arena_ == nullptr) return;
  t_current = previous_;
}

std::uint64_t ThreadHeapAllocs() { return t_counters.heap_allocs; }
std::uint64_t ThreadArenaAllocs() { return t_counters.arena_allocs; }

bool HeapAllocCountingEnabled() { return O2PC_ARENA_GLOBAL_NEW != 0; }

void* BypassMalloc(std::size_t bytes) {
  ++t_counters.heap_allocs;
  return std::malloc(bytes);
}

void BypassFree(void* p) noexcept { std::free(p); }

namespace arena_detail {

inline void* AllocateRaw(std::size_t bytes, std::size_t align) {
  if (MonotonicArena* arena = t_current) {
    if (void* p = arena->TryAllocate(bytes, align)) {
      ++t_counters.arena_allocs;
      return p;
    }
  }
  ++t_counters.heap_allocs;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    return std::aligned_alloc(align, (bytes + align - 1) & ~(align - 1));
  }
  return std::malloc(bytes);
}

inline bool ArenaOwned(const void* p) {
  const char* base = g_super_base.load(std::memory_order_acquire);
  if (base == nullptr) return false;
  const char* c = static_cast<const char*>(p);
  return c >= base && c < g_super_end.load(std::memory_order_acquire);
}

inline void DeallocateRaw(void* p) {
  if (p == nullptr || ArenaOwned(p)) return;
  std::free(p);
}

}  // namespace arena_detail

}  // namespace o2pc::common

#if O2PC_ARENA_GLOBAL_NEW

// Global replacement of the allocation functions. Linked into any binary
// that references the arena API (arena.cc also defines MonotonicArena, so
// using ScopedRunArena / WorldPool pulls this object file in). Disarmed
// threads pay one thread-local null check per allocation.

namespace detail = o2pc::common::arena_detail;

void* operator new(std::size_t n) {
  void* p = detail::AllocateRaw(n, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return detail::AllocateRaw(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return detail::AllocateRaw(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t align) {
  void* p = detail::AllocateRaw(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return operator new(n, align);
}
void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return detail::AllocateRaw(n, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return detail::AllocateRaw(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { detail::DeallocateRaw(p); }
void operator delete[](void* p) noexcept { detail::DeallocateRaw(p); }
void operator delete(void* p, std::size_t) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  detail::DeallocateRaw(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  detail::DeallocateRaw(p);
}

#endif  // O2PC_ARENA_GLOBAL_NEW
