#ifndef O2PC_TRACE_CHECKER_H_
#define O2PC_TRACE_CHECKER_H_

#include <string>
#include <vector>

#include "trace/trace.h"

/// \file
/// Post-hoc protocol-invariant checking over a recorded trace — a second,
/// independent oracle next to the §5 serialization-graph analysis. The
/// checker replays the event journal and asserts the *ordering* claims the
/// paper rests on:
///
///  I1  O2PC early release: a locally-committed subtransaction holds no
///      lock past its local commit (every granted lock of that local
///      transaction is released by the kLocalCommit instant).
///  I2  2PC blocking: a *prepared* subtransaction releases no exclusive
///      lock before its site has received the DECISION for its global
///      transaction.
///  I3  Atomic compensation: every subtransaction that locally committed
///      and whose global transaction was decided abort gets **exactly
///      one** completed compensation at that site; a commit decision gets
///      none.
///  I4  Rule R2 ordering: a compensation-reason undone mark appears only
///      at/after the corresponding compensation's completion.
///  I5  Rule R3 ordering: a mark for T_i is retired only after at least
///      one UDUM1 witness fact for T_i has been registered.
///  I6  Compensation persistence: every initiated compensation either
///      completes or is superseded by a site crash (no silent drop).
///  I7  Recovery isolation: a crashed site processes no message between
///      its kSiteCrash and the kRecoveryEnd that closes its recovery
///      phase (WAL analysis + in-doubt resolution + marking catch-up).
///
/// Violations carry the offending event's index so tests (and humans) can
/// jump straight to the spot in the exported JSONL.

namespace o2pc::trace {

struct TraceViolation {
  /// Index into the checked event vector (size() when the violation is an
  /// absence, e.g. a missing compensation).
  std::size_t event_index = 0;
  /// Which invariant failed ("I1".."I7").
  std::string invariant;
  std::string message;

  std::string ToString() const;
};

struct CheckReport {
  std::vector<TraceViolation> violations;
  /// Replay statistics (sanity that the checker actually saw protocol
  /// traffic; a trivially empty trace passes vacuously).
  std::size_t events_checked = 0;
  std::size_t local_commits = 0;
  std::size_t prepares = 0;
  std::size_t compensations = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Replays `events` (in recorded order) and checks invariants I1–I7.
CheckReport CheckTrace(const std::vector<TraceEvent>& events);

}  // namespace o2pc::trace

#endif  // O2PC_TRACE_CHECKER_H_
