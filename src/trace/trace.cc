#include "trace/trace.h"

#include "common/logging.h"

namespace o2pc::trace {

namespace {
/// The active recorder of the *current thread*. Each simulation run is
/// confined to one thread, but the run executor (src/exec/) drives many
/// isolated runs on different threads concurrently — so the slot is
/// thread-local, never shared.
thread_local TraceRecorder* g_active = nullptr;
}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kTxnSubmit:
      return "txn_submit";
    case EventType::kTxnRestart:
      return "txn_restart";
    case EventType::kTxnFinish:
      return "txn_finish";
    case EventType::kMsgSend:
      return "msg_send";
    case EventType::kMsgRecv:
      return "msg_recv";
    case EventType::kMsgDrop:
      return "msg_drop";
    case EventType::kLockWait:
      return "lock_wait";
    case EventType::kLockAcquire:
      return "lock_acquire";
    case EventType::kLockRelease:
      return "lock_release";
    case EventType::kSubtxnAdmit:
      return "subtxn_admit";
    case EventType::kR1Reject:
      return "r1_reject";
    case EventType::kSubtxnFail:
      return "subtxn_fail";
    case EventType::kLocalCommit:
      return "local_commit";
    case EventType::kPrepare:
      return "prepare";
    case EventType::kFinalCommit:
      return "final_commit";
    case EventType::kRollback:
      return "rollback";
    case EventType::kVote:
      return "vote";
    case EventType::kDecide:
      return "decide";
    case EventType::kCompensationBegin:
      return "compensation_begin";
    case EventType::kCompensationRetry:
      return "compensation_retry";
    case EventType::kCompensationEnd:
      return "compensation_end";
    case EventType::kMarkInsert:
      return "mark_insert";
    case EventType::kMarkRetire:
      return "mark_retire";
    case EventType::kWitness:
      return "witness";
    case EventType::kCoordinatorCrash:
      return "coordinator_crash";
    case EventType::kCoordinatorRecover:
      return "coordinator_recover";
    case EventType::kSiteCrash:
      return "site_crash";
    case EventType::kSiteRecover:
      return "site_recover";
    case EventType::kDecisionTimeout:
      return "decision_timeout";
    case EventType::kTermResolve:
      return "term_resolve";
    case EventType::kRecoveryBegin:
      return "recovery_begin";
    case EventType::kRecoveryEnd:
      return "recovery_end";
  }
  return "?";
}

const char* MarkReasonName(MarkReason reason) {
  switch (reason) {
    case MarkReason::kRollback:
      return "rollback";
    case MarkReason::kVoteAbort:
      return "vote_abort";
    case MarkReason::kCompensation:
      return "compensation";
    case MarkReason::kDecisionRollback:
      return "decision_rollback";
    case MarkReason::kCrashRecovery:
      return "crash_recovery";
  }
  return "?";
}

void TraceRecorder::Record(EventType type, SiteId site, TxnId txn,
                           std::int64_t a, std::int64_t b) {
  TraceEvent event;
  event.time = simulator_ != nullptr ? simulator_->Now() : 0;
  event.type = type;
  event.site = site;
  event.txn = txn;
  event.a = a;
  event.b = b;
  events_.push_back(event);
  // Debug mirror: at kTrace verbosity every recorded event also hits the
  // log, giving a live interleaved view without a separate export step.
  O2PC_LOG(kTrace) << "trace " << EventTypeName(type) << " t=" << event.time
                   << " site="
                   << (site == kInvalidSite ? std::int64_t{-1}
                                            : static_cast<std::int64_t>(site))
                   << " txn=" << txn << " a=" << a << " b=" << b;
}

std::vector<TraceEvent> TraceRecorder::EventsOfType(EventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

TraceRecorder* ActiveRecorder() { return g_active; }

ScopedTrace::ScopedTrace(TraceRecorder* recorder,
                         const sim::Simulator* simulator)
    : previous_(g_active) {
  O2PC_CHECK(recorder != nullptr);
  recorder->BindSimulator(simulator);
  g_active = recorder;
}

ScopedTrace::~ScopedTrace() { g_active = previous_; }

}  // namespace o2pc::trace
