#include "trace/export.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace o2pc::trace {

namespace {

/// Message-type names matching net::MessageTypeName. Kept as a local table
/// so the trace library (which net itself links against for its emit
/// points) does not depend back on net.
const char* MsgName(std::int64_t type) {
  switch (type) {
    case 0:
      return "SUBTXN-INVOKE";
    case 1:
      return "SUBTXN-ACK";
    case 2:
      return "VOTE-REQ";
    case 3:
      return "VOTE";
    case 4:
      return "DECISION";
    case 5:
      return "DECISION-ACK";
    case 6:
      return "USER";
  }
  return "?";
}

bool IsMsgEvent(EventType type) {
  return type == EventType::kMsgSend || type == EventType::kMsgRecv ||
         type == EventType::kMsgDrop;
}

std::int64_t SiteField(SiteId site) {
  return site == kInvalidSite ? -1 : static_cast<std::int64_t>(site);
}

/// Human-oriented display name for the Chrome timeline: message events get
/// their protocol message name ("VOTE-REQ send"), the rest the event name.
std::string DisplayName(const TraceEvent& event) {
  switch (event.type) {
    case EventType::kMsgSend:
      return StrCat(MsgName(event.a), " send");
    case EventType::kMsgRecv:
      return StrCat(MsgName(event.a), " recv");
    case EventType::kMsgDrop:
      return StrCat(MsgName(event.a), " drop");
    case EventType::kMarkInsert:
      return StrCat("mark_insert (",
                    MarkReasonName(static_cast<MarkReason>(event.a)), ")");
    default:
      return EventTypeName(event.type);
  }
}

}  // namespace

void AppendJsonLine(const TraceEvent& event, std::string* out) {
  char buf[24];
  const auto append_int = [&](std::int64_t value) {
    const auto end = std::to_chars(buf, buf + sizeof(buf), value).ptr;
    out->append(buf, end);
  };
  const auto append_uint = [&](std::uint64_t value) {
    const auto end = std::to_chars(buf, buf + sizeof(buf), value).ptr;
    out->append(buf, end);
  };
  out->append("{\"t\":");
  append_int(event.time);
  out->append(",\"type\":\"");
  out->append(EventTypeName(event.type));
  out->append("\",\"site\":");
  append_int(SiteField(event.site));
  out->append(",\"txn\":");
  append_uint(event.txn);
  out->append(",\"a\":");
  append_int(event.a);
  out->append(",\"b\":");
  append_int(event.b);
  if (IsMsgEvent(event.type)) {
    out->append(",\"msg\":\"");
    out->append(MsgName(event.a));
    out->push_back('"');
  } else if (event.type == EventType::kMarkInsert) {
    out->append(",\"reason\":\"");
    out->append(MarkReasonName(static_cast<MarkReason>(event.a)));
    out->push_back('"');
  }
  out->push_back('}');
}

std::string ToJsonLine(const TraceEvent& event) {
  std::string out;
  AppendJsonLine(event, &out);
  return out;
}

std::string ExportJsonlString(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& event : events) {
    AppendJsonLine(event, &out);
    out.push_back('\n');
  }
  return out;
}

void ExportJsonl(const std::vector<TraceEvent>& events, std::ostream& out) {
  out << ExportJsonlString(events);
}

void ExportChromeTrace(const std::vector<TraceEvent>& events,
                       std::ostream& out) {
  // Track layout: pid 1 = the simulated system; tid = site + 1 (tid 0 is
  // the "system" track for site-less events, e.g. a coordinator-side event
  // recorded with kInvalidSite).
  SiteId max_site = 0;
  for (const TraceEvent& event : events) {
    if (event.site != kInvalidSite && event.site > max_site) {
      max_site = event.site;
    }
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& object) {
    if (!first) out << ",";
    first = false;
    out << "\n" << object;
  };
  // Thread-name metadata labels each site's track.
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"system\"}}");
  for (SiteId site = 0; site <= max_site; ++site) {
    emit(StrCat("{\"ph\":\"M\",\"pid\":1,\"tid\":", site + 1,
                ",\"name\":\"thread_name\",\"args\":{\"name\":\"site ", site,
                "\"}}"));
  }
  for (const TraceEvent& event : events) {
    const std::int64_t tid =
        event.site == kInvalidSite ? 0 : static_cast<std::int64_t>(event.site) + 1;
    std::ostringstream object;
    object << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":" << event.time << ",\"name\":\""
           << DisplayName(event)
           << "\",\"cat\":\"o2pc\",\"args\":{\"txn\":" << event.txn
           << ",\"a\":" << event.a << ",\"b\":" << event.b << "}}";
    emit(object.str());
  }
  out << "\n]}\n";
}

namespace {

bool WriteFileWith(const std::vector<TraceEvent>& events,
                   const std::string& path,
                   void (*exporter)(const std::vector<TraceEvent>&,
                                    std::ostream&)) {
  std::ofstream out(path);
  if (!out) {
    O2PC_LOG(kError) << "cannot open trace output file '" << path << "'";
    return false;
  }
  exporter(events, out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

bool WriteJsonlFile(const std::vector<TraceEvent>& events,
                    const std::string& path) {
  return WriteFileWith(events, path, &ExportJsonl);
}

bool WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                          const std::string& path) {
  return WriteFileWith(events, path, &ExportChromeTrace);
}

}  // namespace o2pc::trace
