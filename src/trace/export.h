#ifndef O2PC_TRACE_EXPORT_H_
#define O2PC_TRACE_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.h"

/// \file
/// Trace exporters.
///
///  * JSONL: one self-describing JSON object per line — grep/jq-friendly,
///    stable field names, suited to regression diffs and scripted analysis.
///  * Chrome trace: the `chrome://tracing` / Perfetto JSON object format
///    with one track (tid) per site, so a run's per-site event timelines
///    can be browsed visually. Timestamps are simulated microseconds,
///    which is exactly the `ts` unit the format expects.

namespace o2pc::trace {

/// One event as a single-line JSON object:
/// {"t":1234,"type":"lock_release","site":0,"txn":7,"a":3,"b":1}
std::string ToJsonLine(const TraceEvent& event);

/// ToJsonLine appended to `*out` (no trailing newline). The journal hot
/// path: integer formatting via std::to_chars into one growing buffer —
/// no ostringstream, no locale machinery, no per-line string.
void AppendJsonLine(const TraceEvent& event, std::string* out);

/// Whole-journal JSONL as one string (one line per event,
/// newline-terminated). Byte-identical to ExportJsonl's stream output;
/// this is what the campaign runner fingerprints per run.
std::string ExportJsonlString(const std::vector<TraceEvent>& events);

/// Whole-journal JSONL (one ToJsonLine per event, newline-terminated).
void ExportJsonl(const std::vector<TraceEvent>& events, std::ostream& out);

/// Chrome trace-event JSON: {"traceEvents":[...]}. Every event becomes an
/// instant event on its site's track; site kInvalidSite (system-level
/// events) lands on a dedicated "system" track. Thread-name metadata
/// labels the tracks.
void ExportChromeTrace(const std::vector<TraceEvent>& events,
                       std::ostream& out);

/// Convenience: export to a file. Returns false (and logs) on I/O failure.
bool WriteJsonlFile(const std::vector<TraceEvent>& events,
                    const std::string& path);
bool WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                          const std::string& path);

}  // namespace o2pc::trace

#endif  // O2PC_TRACE_EXPORT_H_
