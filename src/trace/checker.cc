#include "trace/checker.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace o2pc::trace {

namespace {

/// net::MessageType::kDecision — mirrored locally so the trace library does
/// not depend on net (which links against trace for its emit points).
constexpr std::int64_t kDecisionMsg = 4;
constexpr std::int64_t kExclusiveMode = 1;  // lock::LockMode::kExclusive

/// (site, transaction-id) — the unit most replay state is keyed by. The
/// txn component is a *local* id for lock-plane state and a *global* id
/// for commit-plane state; the two planes never share a map.
using SiteTxn = std::pair<SiteId, TxnId>;

struct Replay {
  /// Locks currently held, per (site, local txn): key -> mode.
  std::map<SiteTxn, std::map<std::int64_t, std::int64_t>> held;
  /// 2PC-prepared locals: (site, local txn) -> global txn.
  std::map<SiteTxn, TxnId> prepared;
  /// DECISION messages received, per (site, global txn).
  std::set<SiteTxn> decisions_received;
  /// Coordinator decision outcome per global txn (true = commit).
  std::map<TxnId, bool> decide_commit;
  /// Locally-committed subtxns: (site, global txn) -> kLocalCommit index.
  std::map<SiteTxn, std::size_t> local_commits;
  /// Completed compensations per (site, global txn).
  std::map<SiteTxn, std::size_t> comp_ends;
  /// Initiated-but-unfinished compensations: (site, global) -> begin index.
  std::map<SiteTxn, std::size_t> open_comps;
  /// Transactions with at least one registered UDUM1 witness fact.
  std::set<TxnId> witnessed;
  /// Sites that crashed and have not yet completed recovery (kRecoveryEnd).
  std::set<SiteId> down;
};

void Violate(CheckReport& report, std::size_t index, const char* invariant,
             std::string message) {
  report.violations.push_back(
      TraceViolation{index, invariant, std::move(message)});
}

/// Drops the volatile lock-plane state of a crashed site: its lock tables
/// are rebuilt empty on recovery, so no kLockRelease events will ever
/// close the pre-crash holds. Prepared-state is durable and is kept — the
/// survivors' recovery locks are journaled as fresh kLockAcquire events,
/// so I2 keeps watching them until the DECISION lands.
void ForgetSite(Replay& replay, SiteId site) {
  auto erase_site = [site](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      it = it->first.first == site ? map.erase(it) : std::next(it);
    }
  };
  erase_site(replay.held);
  // A crash supersedes any in-flight compensation attempt at the site
  // (its epoch check abandons the attempt); recovery re-initiates, so the
  // open entry is closed rather than flagged by I6.
  erase_site(replay.open_comps);
}

}  // namespace

std::string TraceViolation::ToString() const {
  return StrCat("[", invariant, "] event #", event_index, ": ", message);
}

std::string CheckReport::Summary() const {
  return StrCat(violations.size(), " violation(s) over ", events_checked,
                " events (", local_commits, " local commits, ", prepares,
                " prepares, ", compensations, " compensations)");
}

CheckReport CheckTrace(const std::vector<TraceEvent>& events) {
  CheckReport report;
  report.events_checked = events.size();
  Replay replay;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.type) {
      case EventType::kLockAcquire:
        // An upgrade re-grant overwrites the mode in place.
        replay.held[{e.site, e.txn}][e.a] = e.b;
        break;

      case EventType::kLockRelease: {
        const SiteTxn local{e.site, e.txn};
        // I2: a prepared participant may not give up an exclusive lock
        // before its site has heard the DECISION.
        auto pit = replay.prepared.find(local);
        if (pit != replay.prepared.end() && e.b == kExclusiveMode &&
            !replay.decisions_received.contains({e.site, pit->second})) {
          Violate(report, i, "I2",
                  StrCat("site ", e.site, " released exclusive lock on key ",
                         e.a, " while local txn ", e.txn,
                         " was prepared for global txn ", pit->second,
                         " with no DECISION received yet"));
        }
        auto hit = replay.held.find(local);
        if (hit != replay.held.end()) {
          hit->second.erase(e.a);
          if (hit->second.empty()) replay.held.erase(hit);
        }
        break;
      }

      case EventType::kLocalCommit: {
        ++report.local_commits;
        // I1: O2PC's early release means *zero* locks survive the local
        // commit instant (releases are journaled just before this event).
        const SiteTxn local{e.site, e.a};
        auto hit = replay.held.find(local);
        if (hit != replay.held.end() && !hit->second.empty()) {
          Violate(report, i, "I1",
                  StrCat("site ", e.site, " locally committed global txn ",
                         e.txn, " (local ", e.a, ") while still holding ",
                         hit->second.size(), " lock(s)"));
        }
        replay.held.erase(local);
        replay.local_commits.emplace(SiteTxn{e.site, e.txn}, i);
        break;
      }

      case EventType::kPrepare:
        ++report.prepares;
        replay.prepared[{e.site, e.a}] = e.txn;
        break;

      case EventType::kFinalCommit:
      case EventType::kRollback:
        // Terminal verbs end the prepared window; their own lock releases
        // were already checked as they streamed past.
        replay.prepared.erase({e.site, e.a});
        break;

      case EventType::kMsgRecv:
        // I7: a crashed site processes no message before its recovery
        // phase completes (the network holds it down through WAL analysis
        // and marking catch-up).
        if (replay.down.contains(e.site)) {
          Violate(report, i, "I7",
                  StrCat("site ", e.site, " received a message (type ", e.a,
                         ") while down — before recovery completed"));
        }
        if (e.a == kDecisionMsg) {
          replay.decisions_received.insert({e.site, e.txn});
        }
        break;

      // A cooperative-termination resolution is a decision for I2's
      // purposes: the blocked participant may now release prepared locks.
      case EventType::kTermResolve:
        replay.decisions_received.insert({e.site, e.txn});
        break;

      case EventType::kDecide:
        replay.decide_commit[e.txn] = e.a != 0;
        break;

      case EventType::kCompensationBegin:
        ++report.compensations;
        replay.open_comps.emplace(SiteTxn{e.site, e.txn}, i);
        break;

      case EventType::kCompensationEnd: {
        const SiteTxn st{e.site, e.txn};
        replay.open_comps.erase(st);
        const std::size_t count = ++replay.comp_ends[st];
        if (count > 1) {
          Violate(report, i, "I3",
                  StrCat("site ", e.site, " completed compensation for txn ",
                         e.txn, " ", count, " times"));
        }
        if (!replay.local_commits.contains(st)) {
          Violate(report, i, "I3",
                  StrCat("site ", e.site, " completed a compensation for txn ",
                         e.txn, " that never locally committed there"));
        }
        break;
      }

      case EventType::kMarkInsert:
        // I4: rule R2 — the compensation-completion mark may not precede
        // the compensation it reports.
        if (static_cast<MarkReason>(e.a) == MarkReason::kCompensation &&
            !replay.comp_ends.contains({e.site, e.txn})) {
          Violate(report, i, "I4",
                  StrCat("site ", e.site, " inserted an R2 (compensation) ",
                         "mark for txn ", e.txn,
                         " before any compensation completed there"));
        }
        break;

      case EventType::kMarkRetire:
        // I5: rule R3 — retirement requires UDUM1 evidence; at minimum
        // some witness fact for T_i must have been registered first.
        if (!replay.witnessed.contains(e.txn)) {
          Violate(report, i, "I5",
                  StrCat("site ", e.site, " retired the mark for txn ", e.txn,
                         " with no UDUM1 witness registered anywhere"));
        }
        break;

      case EventType::kWitness:
        replay.witnessed.insert(e.txn);
        break;

      case EventType::kSiteCrash:
        ForgetSite(replay, e.site);
        replay.down.insert(e.site);
        break;

      case EventType::kRecoveryEnd:
        replay.down.erase(e.site);
        break;

      default:
        break;
    }
  }

  // I3, absence half: pair every locally-committed subtransaction with its
  // coordinator's decision.
  for (const auto& [st, index] : replay.local_commits) {
    auto dit = replay.decide_commit.find(st.second);
    if (dit == replay.decide_commit.end()) continue;  // never decided
    const std::size_t ends =
        replay.comp_ends.contains(st) ? replay.comp_ends.at(st) : 0;
    if (!dit->second && ends == 0) {
      Violate(report, events.size(), "I3",
              StrCat("site ", st.first, " locally committed txn ", st.second,
                     " (event #", index, "), the decision was abort, but no ",
                     "compensation ever completed there"));
    } else if (dit->second && ends != 0) {
      Violate(report, events.size(), "I3",
              StrCat("site ", st.first, " compensated txn ", st.second,
                     " although the decision was commit"));
    }
  }

  // I6: no compensation may be left dangling (crash supersession already
  // closed the legitimate cases).
  for (const auto& [st, index] : replay.open_comps) {
    Violate(report, index, "I6",
            StrCat("site ", st.first, " initiated a compensation for txn ",
                   st.second, " that neither completed nor was superseded ",
                   "by a crash"));
  }

  return report;
}

}  // namespace o2pc::trace
