#ifndef O2PC_TRACE_TRACE_H_
#define O2PC_TRACE_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

/// \file
/// Protocol event tracing. A `TraceRecorder` captures typed, timestamped
/// protocol events — transaction lifecycle, every message send/receive,
/// lock acquire/wait/release, local commits, compensations, and the §6
/// marking transitions (R1 rejections, R2 mark inserts, R3 unmarks) — so a
/// run's *ordering* claims (the heart of the paper) become inspectable and
/// post-hoc checkable (see trace/checker.h) instead of only aggregated.
///
/// Emit points throughout the protocol layers use the `O2PC_TRACE` macro,
/// which costs a single global-pointer load and branch when no recorder is
/// installed, and compiles away entirely under `O2PC_TRACE_DISABLED`
/// (CMake option `O2PC_DISABLE_TRACING`). Installation is scoped:
///
///     trace::TraceRecorder recorder;
///     core::DistributedSystem system(options);
///     {
///       trace::ScopedTrace scope(&recorder, &system.simulator());
///       system.Run();
///     }
///     trace::ExportChromeTrace(recorder.events(), out);
///
/// Each simulation run is single-threaded, and the active-recorder slot is
/// thread-local — parallel runs (src/exec/) each install their own recorder
/// on their own worker thread with no synchronization; events are stamped
/// with the bound simulator's Now().

namespace o2pc::trace {

/// The protocol event taxonomy. `a` / `b` in TraceEvent carry the
/// per-type arguments documented next to each enumerator.
enum class EventType : std::uint8_t {
  // --- Global transaction lifecycle (coordinator / system). ---
  kTxnSubmit = 0,   ///< coordinator Start. site=home.
  kTxnRestart,      ///< restartable failure relaunched. a=new incarnation id.
  kTxnFinish,       ///< protocol drained. a=committed(0/1), b=exposed(0/1).

  // --- Message plane (network). ---
  kMsgSend,  ///< a=net::MessageType, b=destination site. site=sender.
  kMsgRecv,  ///< a=net::MessageType, b=sender site. site=receiver.
  kMsgDrop,  ///< a=net::MessageType, b=destination site. site=sender.

  // --- Lock plane (per-site lock manager; txn = *local* txn id). ---
  kLockWait,     ///< request queued. a=key, b=mode (lock::LockMode).
  kLockAcquire,  ///< lock granted (immediately or after a wait). a=key, b=mode.
  kLockRelease,  ///< lock released. a=key, b=mode held.

  // --- Subtransaction execution (participant; txn = global id). ---
  kSubtxnAdmit,  ///< R1 admitted the subtransaction. a=attempt.
  kR1Reject,     ///< rule R1 rejected it. a=attempt, b=fatal(0/1).
  kSubtxnFail,   ///< execution failed (deadlock / semantic); rolled back.

  // --- Commit plane (local DB verbs; txn = global id, a = local id). ---
  kLocalCommit,  ///< O2PC early local commit: all locks released now.
  kPrepare,      ///< 2PC prepared: exclusive locks held until DECISION.
  kFinalCommit,  ///< DECISION=commit applied at the site.
  kRollback,     ///< lock-holding rollback (abort vote / 2PC abort).

  // --- Votes and decisions. ---
  kVote,    ///< participant votes. a=commit(0/1), b=recovery_abort(0/1).
  kDecide,  ///< coordinator force-logs its decision. a=commit(0/1),
            ///< b=1 when decided early (before the voting phase).

  // --- Compensation (rules of §3.2; txn = forward global id). ---
  kCompensationBegin,  ///< CT initiated. a=plan length.
  kCompensationRetry,  ///< CT attempt lost a deadlock; retrying. a=attempt.
  kCompensationEnd,    ///< CT committed (exactly once per initiation).

  // --- Marking (§6; txn = T_i the mark refers to). ---
  kMarkInsert,  ///< site marked undone w.r.t. T_i. a=MarkReason,
                ///< b=exposed(0/1).
  kMarkRetire,  ///< rule R3 retired the mark (UDUM1 held). a=self_witness.
  kWitness,     ///< UDUM1 witness fact registered. site=witnessing site.

  // --- Failure injection. ---
  kCoordinatorCrash,    ///< crash after logging, before broadcasting.
                        ///< b=1 when the outage is permanent (no recovery).
  kCoordinatorRecover,  ///< recovery re-read the decision. a=commit(0/1).
  kSiteCrash,           ///< site lost volatile state. a=#rolled-back locals.
  kSiteRecover,         ///< site reachable again.

  // --- Termination protocol (blocking resolution). ---
  kDecisionTimeout,  ///< participant termination timer fired. a=round
                     ///< (0 = the pre-vote timeout), b=1 when the round
                     ///< escalated to cooperative termination.
  kTermResolve,      ///< decision learned via TERM-RESP, not a DECISION.
                     ///< a=commit(0/1), b=answering site.

  // --- Site recovery phase (crash restart). ---
  kRecoveryBegin,  ///< outage over; WAL analysis + marking catch-up start.
                   ///< a=#in-doubt subtxns found by the analysis pass.
  kRecoveryEnd,    ///< recovery barrier passed; the site accepts work
                   ///< again. a=#in-doubt found, b=#still unresolved
                   ///< (handed to the termination protocol).
};
inline constexpr int kNumEventTypes =
    static_cast<int>(EventType::kRecoveryEnd) + 1;

/// Stable machine-readable name ("lock_release", "mark_insert", ...).
const char* EventTypeName(EventType type);

/// Why an undone mark was inserted (the `a` argument of kMarkInsert).
enum class MarkReason : std::uint8_t {
  kRollback = 0,      ///< pre-vote failure rollback (invisible undo)
  kVoteAbort = 1,     ///< unilateral abort at vote time
  kCompensation = 2,  ///< rule R2: the CT's completion marked the site
  kDecisionRollback = 3,  ///< DECISION=abort rollback with locks held
  kCrashRecovery = 4,     ///< crash recovery rolled the subtxn back
};

const char* MarkReasonName(MarkReason reason);

/// One recorded protocol event. `a` and `b` are per-type arguments (see
/// EventType); keeping them as plain integers keeps recording allocation-
/// free on the hot path.
struct TraceEvent {
  SimTime time = 0;
  EventType type = EventType::kTxnSubmit;
  SiteId site = kInvalidSite;
  TxnId txn = kInvalidTxn;
  std::int64_t a = 0;
  std::int64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// An append-only journal of TraceEvents, stamped with the bound
/// simulator's clock. Install via ScopedTrace; emit via O2PC_TRACE.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Binds the clock used to stamp events (done by ScopedTrace).
  void BindSimulator(const sim::Simulator* simulator) {
    simulator_ = simulator;
  }

  void Record(EventType type, SiteId site, TxnId txn, std::int64_t a = 0,
              std::int64_t b = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// World-reuse reset contract (DESIGN §16): drop every recorded event,
  /// retaining the journal buffer's capacity, and unbind the clock (the
  /// next run's ScopedTrace rebinds its own simulator).
  void ResetForRun() {
    events_.clear();
    simulator_ = nullptr;
  }

  /// Events of one type, in order (convenience for tests/checkers).
  std::vector<TraceEvent> EventsOfType(EventType type) const;

 private:
  const sim::Simulator* simulator_ = nullptr;  // not owned
  std::vector<TraceEvent> events_;
};

/// The calling thread's active recorder, or nullptr (tracing off). The
/// slot is thread-local: concurrent runs on different threads trace into
/// different recorders without synchronization.
TraceRecorder* ActiveRecorder();

/// RAII installer: binds `recorder` to `simulator` and makes it the active
/// recorder for its scope *on the installing thread*. Nesting replaces
/// (and restores) the previous recorder.
class ScopedTrace {
 public:
  ScopedTrace(TraceRecorder* recorder, const sim::Simulator* simulator);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace o2pc::trace

/// Emit hook. Arguments: (EventType enumerator name, site, txn[, a[, b]]).
/// Zero-cost when no recorder is installed; removed entirely when
/// O2PC_TRACE_DISABLED is defined.
#ifndef O2PC_TRACE_DISABLED
#define O2PC_TRACE(type, ...)                                         \
  do {                                                                \
    if (::o2pc::trace::TraceRecorder* o2pc_trace_rec =                \
            ::o2pc::trace::ActiveRecorder()) {                        \
      o2pc_trace_rec->Record(::o2pc::trace::EventType::type,          \
                             __VA_ARGS__);                            \
    }                                                                 \
  } while (0)
#else
#define O2PC_TRACE(type, ...) \
  do {                        \
  } while (0)
#endif

#endif  // O2PC_TRACE_TRACE_H_
