#include "storage/table.h"

#include "common/string_util.h"

namespace o2pc::storage {

Result<Cell> Table::Get(DataKey key) const {
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    return Status::NotFound(StrCat("key ", key));
  }
  return it->second;
}

bool Table::Contains(DataKey key) const { return cells_.contains(key); }

void Table::Put(DataKey key, Value value, WriterTag writer) {
  Cell& cell = cells_[key];
  cell.value = value;
  cell.writer = writer;
  cell.version = next_version_++;
}

Status Table::Insert(DataKey key, Value value, WriterTag writer) {
  if (cells_.contains(key)) {
    return Status::Conflict(StrCat("key ", key, " exists"));
  }
  Put(key, value, writer);
  return Status::OK();
}

Status Table::Erase(DataKey key, WriterTag writer) {
  (void)writer;  // erase leaves no cell to tag; the WAL records the writer
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    return Status::NotFound(StrCat("key ", key));
  }
  cells_.erase(it);
  return Status::OK();
}

void Table::Restore(DataKey key, const std::optional<Cell>& before) {
  if (before.has_value()) {
    cells_[key] = *before;
  } else {
    cells_.erase(key);
  }
}

Value Table::SumValues() const {
  Value sum = 0;
  for (const auto& [key, cell] : cells_) sum += cell.value;
  return sum;
}

}  // namespace o2pc::storage
