#ifndef O2PC_STORAGE_TABLE_H_
#define O2PC_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

/// \file
/// One site's primary data store: a key/value table whose cells remember
/// which transaction last wrote them. The writer tag is what lets the
/// serialization-graph layer compute reads-from relationships — in
/// particular whether some T_j read from both T_i and CT_i, the situation
/// "atomicity of compensation" (paper §4, Theorem 2) must exclude.

namespace o2pc::storage {

/// Identity of the transaction (as an SG node) that produced a value.
struct WriterTag {
  TxnId id = kInvalidTxn;       // kInvalidTxn = initial database state
  TxnKind kind = TxnKind::kLocal;

  friend bool operator==(const WriterTag&, const WriterTag&) = default;
};

/// A stored cell.
struct Cell {
  Value value = 0;
  WriterTag writer;
  /// Monotone per-key version, bumped on every write.
  std::uint64_t version = 0;
};

/// Simple in-memory table. All mutating calls name the writing transaction;
/// locking/logging is the caller's job (see local::LocalDb).
class Table {
 public:
  Table() = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Reads the cell at `key`; NotFound if absent.
  Result<Cell> Get(DataKey key) const;

  /// True if `key` exists.
  bool Contains(DataKey key) const;

  /// Writes `value` at `key`, creating the key if necessary.
  void Put(DataKey key, Value value, WriterTag writer);

  /// Inserts a new key; Conflict if it already exists.
  Status Insert(DataKey key, Value value, WriterTag writer);

  /// Removes a key; NotFound if absent.
  Status Erase(DataKey key, WriterTag writer);

  /// Restores a key to an explicit prior state (used by undo/recovery).
  /// `before` empty means the key did not exist.
  void Restore(DataKey key, const std::optional<Cell>& before);

  std::size_t size() const { return cells_.size(); }

  /// Sum of all values (handy for conservation invariants in tests).
  Value SumValues() const;

  /// Iteration support for audits.
  const std::map<DataKey, Cell>& cells() const { return cells_; }

 private:
  std::map<DataKey, Cell> cells_;
  std::uint64_t next_version_ = 1;
};

}  // namespace o2pc::storage

#endif  // O2PC_STORAGE_TABLE_H_
