#include "storage/recovery.h"

#include <algorithm>
#include <map>
#include <set>

#include "trace/trace.h"

namespace o2pc::storage {

std::vector<UndoWrite> RollbackTxn(Wal& wal, Table& table, TxnId txn,
                                   WriterTag undo_writer) {
  std::vector<LogRecord> updates = wal.TxnUpdates(txn);
  std::vector<UndoWrite> undone;
  undone.reserve(updates.size());
  for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
    std::optional<Cell> before = it->before;
    if (before.has_value()) {
      // An invalid undo_writer id requests an exact restore (the original
      // provenance survives) — the normal case: rollback of never-exposed
      // work happens behind the transaction's own locks and must leave no
      // provenance trace. A valid tag re-attributes the restored cells to
      // that writer instead.
      Cell restored = *before;
      if (undo_writer.id != kInvalidTxn) restored.writer = undo_writer;
      table.Restore(it->key, restored);
      undone.push_back(UndoWrite{it->key, restored});
    } else {
      table.Restore(it->key, std::nullopt);
      undone.push_back(UndoWrite{it->key, std::nullopt});
    }
  }
  wal.LogAbort(txn);
  return undone;
}

RecoveryResult AnalyzeWal(const Wal& wal) {
  std::set<TxnId> begun;
  std::set<TxnId> finished;
  // Force-logged vote records keyed by local txn id; a later terminal
  // record (kGlobalFinal, or kAbort for a prepared survivor resolved by a
  // prior recovery pass) removes the entry again.
  std::map<TxnId, const LogRecord*> vote_records;
  for (const LogRecord& r : wal.records()) {
    switch (r.kind) {
      case LogRecordKind::kBegin:
        begun.insert(r.txn);
        break;
      case LogRecordKind::kCommit:
        finished.insert(r.txn);
        break;
      case LogRecordKind::kAbort:
        finished.insert(r.txn);
        vote_records.erase(r.txn);
        break;
      case LogRecordKind::kPrepared:
      case LogRecordKind::kLocallyCommitted:
        vote_records[r.txn] = &r;
        break;
      case LogRecordKind::kGlobalFinal:
        vote_records.erase(r.txn);
        break;
      default:
        break;
    }
  }
  RecoveryResult result;
  for (const auto& [txn, record] : vote_records) {
    InDoubtTxn in_doubt;
    in_doubt.txn = txn;
    in_doubt.global = static_cast<TxnId>(record->aux);
    in_doubt.coordinator = record->coordinator;
    in_doubt.participants = record->peers;
    in_doubt.prepared = record->kind == LogRecordKind::kPrepared;
    result.in_doubt.push_back(std::move(in_doubt));
  }
  for (TxnId txn : begun) {
    // A transaction with a durable vote is never a loser: a prepared
    // participant survives the crash still prepared (its locks must be
    // reacquired, never released by unilateral rollback), and a locally
    // committed one is already exposed and can only be compensated.
    if (!finished.contains(txn) && !vote_records.contains(txn)) {
      result.losers.push_back(txn);
    }
  }
  return result;
}

std::vector<TxnId> RecoverSite(Wal& wal, Table& table) {
  std::vector<TxnId> losers = AnalyzeWal(wal).losers;
  // Undo all loser updates in reverse LSN order (a single backward pass is
  // correct even if loser updates interleave in the log).
  const std::vector<LogRecord>& records = wal.records();
  std::set<TxnId> loser_set(losers.begin(), losers.end());
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->kind != LogRecordKind::kUpdate || !loser_set.contains(it->txn)) {
      continue;
    }
    if (it->before.has_value()) {
      Cell restored = *it->before;
      restored.writer = WriterTag{it->txn, TxnKind::kCompensating};
      table.Restore(it->key, restored);
    } else {
      table.Restore(it->key, std::nullopt);
    }
  }
  for (TxnId txn : losers) {
    wal.LogAbort(txn);
    // The storage layer does not know its site; the rollback lands on the
    // exporter's "system" track.
    O2PC_TRACE(kRollback, kInvalidSite, txn, txn);
  }
  return losers;
}

}  // namespace o2pc::storage
