#include "storage/recovery.h"

#include <algorithm>
#include <set>

#include "trace/trace.h"

namespace o2pc::storage {

std::vector<UndoWrite> RollbackTxn(Wal& wal, Table& table, TxnId txn,
                                   WriterTag undo_writer) {
  std::vector<LogRecord> updates = wal.TxnUpdates(txn);
  std::vector<UndoWrite> undone;
  undone.reserve(updates.size());
  for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
    std::optional<Cell> before = it->before;
    if (before.has_value()) {
      // An invalid undo_writer id requests an exact restore (the original
      // provenance survives) — the normal case: rollback of never-exposed
      // work happens behind the transaction's own locks and must leave no
      // provenance trace. A valid tag re-attributes the restored cells to
      // that writer instead.
      Cell restored = *before;
      if (undo_writer.id != kInvalidTxn) restored.writer = undo_writer;
      table.Restore(it->key, restored);
      undone.push_back(UndoWrite{it->key, restored});
    } else {
      table.Restore(it->key, std::nullopt);
      undone.push_back(UndoWrite{it->key, std::nullopt});
    }
  }
  wal.LogAbort(txn);
  return undone;
}

std::vector<TxnId> RecoverSite(Wal& wal, Table& table) {
  // Losers: began but neither committed nor aborted.
  std::set<TxnId> begun;
  std::set<TxnId> finished;
  for (const LogRecord& r : wal.records()) {
    switch (r.kind) {
      case LogRecordKind::kBegin:
        begun.insert(r.txn);
        break;
      case LogRecordKind::kCommit:
      case LogRecordKind::kAbort:
        finished.insert(r.txn);
        break;
      default:
        break;
    }
  }
  std::vector<TxnId> losers;
  for (TxnId txn : begun) {
    if (!finished.contains(txn)) losers.push_back(txn);
  }
  // Undo all loser updates in reverse LSN order (a single backward pass is
  // correct even if loser updates interleave in the log).
  const std::vector<LogRecord>& records = wal.records();
  std::set<TxnId> loser_set(losers.begin(), losers.end());
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->kind != LogRecordKind::kUpdate || !loser_set.contains(it->txn)) {
      continue;
    }
    if (it->before.has_value()) {
      Cell restored = *it->before;
      restored.writer = WriterTag{it->txn, TxnKind::kCompensating};
      table.Restore(it->key, restored);
    } else {
      table.Restore(it->key, std::nullopt);
    }
  }
  for (TxnId txn : losers) {
    wal.LogAbort(txn);
    // The storage layer does not know its site; the rollback lands on the
    // exporter's "system" track.
    O2PC_TRACE(kRollback, kInvalidSite, txn, txn);
  }
  return losers;
}

}  // namespace o2pc::storage
