#include "storage/wal.h"

#include <algorithm>

#include "common/logging.h"

namespace o2pc::storage {

const char* LogRecordKindName(LogRecordKind kind) {
  switch (kind) {
    case LogRecordKind::kBegin:
      return "BEGIN";
    case LogRecordKind::kUpdate:
      return "UPDATE";
    case LogRecordKind::kCommit:
      return "COMMIT";
    case LogRecordKind::kAbort:
      return "ABORT";
    case LogRecordKind::kCompensationBegin:
      return "COMP-BEGIN";
    case LogRecordKind::kCompensationCommit:
      return "COMP-COMMIT";
    case LogRecordKind::kDecision:
      return "DECISION";
    case LogRecordKind::kLocallyCommitted:
      return "LOCAL-COMMIT";
    case LogRecordKind::kGlobalFinal:
      return "GLOBAL-FINAL";
    case LogRecordKind::kCheckpoint:
      return "CHECKPOINT";
    case LogRecordKind::kPrepared:
      return "PREPARED";
  }
  return "?";
}

std::uint64_t Wal::Append(LogRecord record) {
  record.lsn = next_lsn_++;
  txn_index_[record.txn].push_back(record.lsn);
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

const LogRecord* Wal::Find(std::uint64_t lsn) const {
  if (lsn < base_lsn_ || lsn >= next_lsn_) return nullptr;
  return &records_[lsn - base_lsn_];
}

std::uint64_t Wal::LogBegin(TxnId txn) {
  LogRecord r;
  r.kind = LogRecordKind::kBegin;
  r.txn = txn;
  return Append(std::move(r));
}

std::uint64_t Wal::LogUpdate(TxnId txn, DataKey key,
                             std::optional<Cell> before,
                             std::optional<Cell> after,
                             std::uint8_t comp_kind, DataKey comp_key,
                             Value comp_value) {
  LogRecord r;
  r.kind = LogRecordKind::kUpdate;
  r.txn = txn;
  r.key = key;
  r.before = std::move(before);
  r.after = std::move(after);
  r.comp_kind = comp_kind;
  r.comp_key = comp_key;
  r.comp_value = comp_value;
  return Append(std::move(r));
}

std::uint64_t Wal::LogCommit(TxnId txn) {
  LogRecord r;
  r.kind = LogRecordKind::kCommit;
  r.txn = txn;
  return Append(std::move(r));
}

std::uint64_t Wal::LogAbort(TxnId txn) {
  LogRecord r;
  r.kind = LogRecordKind::kAbort;
  r.txn = txn;
  return Append(std::move(r));
}

std::uint64_t Wal::LogDecision(TxnId txn, bool commit) {
  LogRecord r;
  r.kind = LogRecordKind::kDecision;
  r.txn = txn;
  r.aux = commit ? 1 : 0;
  return Append(std::move(r));
}

std::vector<std::uint64_t> Wal::TxnRecords(TxnId txn) const {
  auto it = txn_index_.find(txn);
  if (it == txn_index_.end()) return {};
  return it->second;
}

std::vector<LogRecord> Wal::TxnUpdates(TxnId txn) const {
  std::vector<LogRecord> updates;
  auto it = txn_index_.find(txn);
  if (it == txn_index_.end()) return updates;
  for (std::uint64_t lsn : it->second) {
    const LogRecord* r = Find(lsn);
    if (r != nullptr && r->kind == LogRecordKind::kUpdate) {
      updates.push_back(*r);
    }
  }
  return updates;
}

std::optional<bool> Wal::DecisionFor(TxnId txn) const {
  auto it = txn_index_.find(txn);
  if (it == txn_index_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    const LogRecord* r = Find(*rit);
    if (r != nullptr && r->kind == LogRecordKind::kDecision) {
      return r->aux == 1;
    }
  }
  return std::nullopt;
}

bool Wal::Committed(TxnId txn) const {
  auto it = txn_index_.find(txn);
  if (it == txn_index_.end()) return false;
  for (std::uint64_t lsn : it->second) {
    const LogRecord* r = Find(lsn);
    if (r != nullptr && r->kind == LogRecordKind::kCommit) return true;
  }
  return false;
}

std::uint64_t Wal::LogCheckpoint(std::vector<TxnId> active) {
  LogRecord r;
  r.kind = LogRecordKind::kCheckpoint;
  r.active = std::move(active);
  return Append(std::move(r));
}

std::uint64_t Wal::LowWatermark(const std::vector<TxnId>& needed) const {
  std::uint64_t watermark = next_lsn_;
  for (TxnId txn : needed) {
    auto it = txn_index_.find(txn);
    if (it == txn_index_.end() || it->second.empty()) continue;
    watermark = std::min(watermark, it->second.front());
  }
  return watermark;
}

std::size_t Wal::TruncateBelow(std::uint64_t lsn) {
  if (lsn <= base_lsn_) return 0;
  const std::uint64_t bound = std::min(lsn, next_lsn_);
  const std::size_t drop = static_cast<std::size_t>(bound - base_lsn_);
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_lsn_ = bound;
  // Trim the per-transaction index.
  for (auto it = txn_index_.begin(); it != txn_index_.end();) {
    std::vector<std::uint64_t>& lsns = it->second;
    lsns.erase(std::remove_if(lsns.begin(), lsns.end(),
                              [bound](std::uint64_t l) { return l < bound; }),
               lsns.end());
    it = lsns.empty() ? txn_index_.erase(it) : std::next(it);
  }
  return drop;
}

}  // namespace o2pc::storage
