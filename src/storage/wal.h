#ifndef O2PC_STORAGE_WAL_H_
#define O2PC_STORAGE_WAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/table.h"

/// \file
/// Per-site write-ahead log. Update records carry before-images, which is
/// all undo-based rollback (the paper's "standard roll-back recovery") and
/// post-crash recovery need. The coordinator also keeps a tiny decision log
/// built on the same record type (kDecision).

namespace o2pc::storage {

enum class LogRecordKind : std::uint8_t {
  kBegin = 0,
  /// Covers Put/Insert/Erase; `before` empty means the key did not exist
  /// before, `after` empty means the operation erased the key.
  kUpdate = 1,
  kCommit = 2,
  kAbort = 3,
  /// Marks the start of a compensating (sub)transaction for `txn`.
  kCompensationBegin = 4,
  /// A compensating (sub)transaction for `txn` committed.
  kCompensationCommit = 5,
  /// Coordinator decision record: value 1 = commit, 0 = abort.
  kDecision = 6,
  /// A subtransaction locally committed under O2PC (exposed; a global
  /// decision is still pending). `aux` holds the global transaction id.
  kLocallyCommitted = 7,
  /// The pending locally-committed subtransaction reached its terminal
  /// global fate (finalized commit, or compensated). Closes the pending
  /// window opened by kLocallyCommitted.
  kGlobalFinal = 8,
  /// A fuzzy checkpoint: `active` lists the transactions in flight.
  kCheckpoint = 9,
  /// A 2PC subtransaction entered the prepared state (`aux` = global id).
  /// Prepared transactions survive crashes with recovery locks.
  kPrepared = 10,
};

const char* LogRecordKindName(LogRecordKind kind);

struct LogRecord {
  std::uint64_t lsn = 0;
  LogRecordKind kind = LogRecordKind::kBegin;
  TxnId txn = kInvalidTxn;
  DataKey key = 0;
  std::optional<Cell> before;
  std::optional<Cell> after;
  /// Free slot for kDecision (1 = commit), kBegin of global subtxns (the
  /// global id), kLocallyCommitted (the global id), and similar flags.
  std::int64_t aux = 0;
  /// Logged *semantic* counter-operation for this update (restricted
  /// model): kind/key/value of the operation that undoes it. Lets crash
  /// recovery rebuild the compensation plan of an exposed subtransaction —
  /// the paper's persistence-of-compensation requirement across failures.
  /// comp_kind 0 means "no counter-op logged" (reads, marking writes).
  std::uint8_t comp_kind = 0;
  DataKey comp_key = 0;
  Value comp_value = 0;
  /// kCheckpoint: transactions active at checkpoint time.
  std::vector<TxnId> active;
  /// Force-logged with kPrepared / kLocallyCommitted: the coordinator's
  /// home site, so a recovering participant can direct DECISION-REQ /
  /// cooperative-termination queries without any volatile state.
  SiteId coordinator = kInvalidSite;
  /// Force-logged peer participant set (the termination-protocol targets).
  std::vector<SiteId> peers;
};

/// Append-only in-memory log with a per-transaction index.
class Wal {
 public:
  Wal() = default;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends a record, assigning its LSN. Returns the LSN.
  std::uint64_t Append(LogRecord record);

  /// Convenience appenders.
  std::uint64_t LogBegin(TxnId txn);
  std::uint64_t LogUpdate(TxnId txn, DataKey key, std::optional<Cell> before,
                          std::optional<Cell> after,
                          std::uint8_t comp_kind = 0, DataKey comp_key = 0,
                          Value comp_value = 0);
  std::uint64_t LogCommit(TxnId txn);
  std::uint64_t LogAbort(TxnId txn);
  std::uint64_t LogDecision(TxnId txn, bool commit);

  /// All retained records, oldest first.
  const std::vector<LogRecord>& records() const { return records_; }

  /// LSNs of `txn`'s records, oldest first (empty if unknown).
  std::vector<std::uint64_t> TxnRecords(TxnId txn) const;

  /// Update records of `txn`, oldest first — the undo chain.
  std::vector<LogRecord> TxnUpdates(TxnId txn) const;

  /// Last decision logged for `txn`, if any (1 = commit, 0 = abort).
  std::optional<bool> DecisionFor(TxnId txn) const;

  /// True if a kCommit record exists for `txn`.
  bool Committed(TxnId txn) const;

  // --- Checkpointing / truncation ---------------------------------------

  /// Writes a fuzzy checkpoint naming the transactions still in flight.
  std::uint64_t LogCheckpoint(std::vector<TxnId> active);

  /// Earliest LSN the log must retain so every transaction in `needed` can
  /// still be rolled back (the recovery low-watermark). Returns the next
  /// LSN when nothing is needed (the whole log may go).
  std::uint64_t LowWatermark(const std::vector<TxnId>& needed) const;

  /// Drops every record with lsn < `lsn`. Returns the number dropped.
  std::size_t TruncateBelow(std::uint64_t lsn);

  /// Number of retained records.
  std::size_t size() const { return records_.size(); }
  /// LSN of the oldest retained record (== next_lsn when empty).
  std::uint64_t base_lsn() const { return base_lsn_; }
  std::uint64_t next_lsn() const { return next_lsn_; }

 private:
  const LogRecord* Find(std::uint64_t lsn) const;

  std::vector<LogRecord> records_;
  std::map<TxnId, std::vector<std::uint64_t>> txn_index_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t base_lsn_ = 1;
};

}  // namespace o2pc::storage

#endif  // O2PC_STORAGE_WAL_H_
