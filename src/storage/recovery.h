#ifndef O2PC_STORAGE_RECOVERY_H_
#define O2PC_STORAGE_RECOVERY_H_

#include <vector>

#include "common/types.h"
#include "storage/table.h"
#include "storage/wal.h"

/// \file
/// Undo-based recovery. Rolling back an uncommitted transaction applies its
/// before-images in reverse LSN order — the paper's "standard roll-back
/// using recovery techniques (e.g., undo from log)". Callers that need the
/// restored cells re-attributed to another writer can pass an `undo_writer`
/// tag; an invalid tag requests an exact restore (original provenance),
/// which is what every rollback of never-exposed work uses — under 2PL the
/// undo happens behind the transaction's own locks and must leave no trace.

namespace o2pc::storage {

/// One undo step applied during rollback (reported for SG bookkeeping).
struct UndoWrite {
  DataKey key = 0;
  /// Value restored; empty if the key was removed (undo of an insert).
  std::optional<Cell> restored;
};

/// Rolls `txn` back in `table`: applies before-images of its kUpdate
/// records in reverse, tagging restored cells with `undo_writer`. Appends a
/// kAbort record. Returns the undo writes performed (oldest-undone-last,
/// i.e. in the order they were applied).
std::vector<UndoWrite> RollbackTxn(Wal& wal, Table& table, TxnId txn,
                                   WriterTag undo_writer);

/// Crash recovery for a whole site: rolls back every transaction that has a
/// kBegin but neither kCommit nor kAbort. Returns the ids rolled back, in
/// the (deterministic) order they were processed.
std::vector<TxnId> RecoverSite(Wal& wal, Table& table);

}  // namespace o2pc::storage

#endif  // O2PC_STORAGE_RECOVERY_H_
