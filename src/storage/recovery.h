#ifndef O2PC_STORAGE_RECOVERY_H_
#define O2PC_STORAGE_RECOVERY_H_

#include <vector>

#include "common/types.h"
#include "storage/table.h"
#include "storage/wal.h"

/// \file
/// Undo-based recovery. Rolling back an uncommitted transaction applies its
/// before-images in reverse LSN order — the paper's "standard roll-back
/// using recovery techniques (e.g., undo from log)". Callers that need the
/// restored cells re-attributed to another writer can pass an `undo_writer`
/// tag; an invalid tag requests an exact restore (original provenance),
/// which is what every rollback of never-exposed work uses — under 2PL the
/// undo happens behind the transaction's own locks and must leave no trace.

namespace o2pc::storage {

/// One undo step applied during rollback (reported for SG bookkeeping).
struct UndoWrite {
  DataKey key = 0;
  /// Value restored; empty if the key was removed (undo of an insert).
  std::optional<Cell> restored;
};

/// A subtransaction the WAL vouches for across a crash: it durably voted
/// commit (force-logged kPrepared or kLocallyCommitted) but its global fate
/// (kGlobalFinal / kAbort) is still unknown. Recovery must NOT roll it back
/// — a prepared participant survives a crash still prepared, holding its
/// locks, and resolves through the decision/termination protocol.
struct InDoubtTxn {
  /// Local transaction id of the execution attempt.
  TxnId txn = kInvalidTxn;
  /// The global transaction it belongs to.
  TxnId global = kInvalidTxn;
  /// Coordinator home site force-logged with the prepare/local-commit
  /// record (kInvalidSite in pre-extension logs).
  SiteId coordinator = kInvalidSite;
  /// Participant peer set force-logged alongside (the CTP query targets).
  std::vector<SiteId> participants;
  /// True for a 2PC prepared survivor (locks must be reacquired); false
  /// for an O2PC locally-committed (exposed, lock-free) survivor.
  bool prepared = false;

  friend bool operator==(const InDoubtTxn&, const InDoubtTxn&) = default;
};

/// Outcome of the WAL analysis pass.
struct RecoveryResult {
  /// Transactions that began but never reached a durable vote or terminal
  /// record — recovery rolls these back.
  std::vector<TxnId> losers;
  /// Prepared / locally-committed subtransactions awaiting their verdict.
  std::vector<InDoubtTxn> in_doubt;

  friend bool operator==(const RecoveryResult&, const RecoveryResult&) =
      default;
};

/// The analysis pass alone: scans `wal` without mutating anything and
/// classifies every non-terminal transaction as a loser or in-doubt.
/// Deterministic (ascending txn-id order) and idempotent — re-running it
/// over the same log, including a log that already contains the kAbort
/// records a previous RecoverSite appended, yields the identical result.
RecoveryResult AnalyzeWal(const Wal& wal);

/// Rolls `txn` back in `table`: applies before-images of its kUpdate
/// records in reverse, tagging restored cells with `undo_writer`. Appends a
/// kAbort record. Returns the undo writes performed (oldest-undone-last,
/// i.e. in the order they were applied).
std::vector<UndoWrite> RollbackTxn(Wal& wal, Table& table, TxnId txn,
                                   WriterTag undo_writer);

/// Crash recovery for a whole site: rolls back every loser identified by
/// AnalyzeWal — transactions with a kBegin but no terminal record and no
/// durable vote. In-doubt transactions (force-logged kPrepared or
/// kLocallyCommitted without a terminal) are preserved untouched; their
/// fate belongs to the decision/termination protocol. Returns the ids
/// rolled back, in the (deterministic) order they were processed.
/// Idempotent: a second invocation finds the kAbort records the first one
/// appended and does nothing.
std::vector<TxnId> RecoverSite(Wal& wal, Table& table);

}  // namespace o2pc::storage

#endif  // O2PC_STORAGE_RECOVERY_H_
