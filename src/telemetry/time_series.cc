#include "telemetry/time_series.h"

#include "common/logging.h"
#include "core/system.h"

namespace o2pc::telemetry {

TimeSeriesSampler::TimeSeriesSampler(core::DistributedSystem* system,
                                     Duration interval)
    : system_(system) {
  O2PC_CHECK(system != nullptr);
  O2PC_CHECK(interval > 0);
  series_.interval = interval;
}

void TimeSeriesSampler::Start() { ScheduleNext(); }

void TimeSeriesSampler::ScheduleNext() {
  system_->NoteIdleTimerScheduled();
  system_->simulator().Schedule(series_.interval, [this] {
    system_->NoteIdleTimerFired();
    TimeSample sample;
    sample.time = system_->simulator().Now();
    for (int i = 0; i < system_->options().num_sites; ++i) {
      const lock::LockManager& locks =
          system_->db(static_cast<SiteId>(i)).lock_manager();
      sample.locks_held += locks.HeldLockCount();
      sample.lock_waiters += locks.WaitingLockCount();
      sample.waits_edges += locks.waits_for().edge_count();
    }
    sample.msgs_in_flight = system_->network().InFlight();
    sample.queue_depth = system_->simulator().pending();
    series_.samples.push_back(sample);
    // Resample only while non-timer work remains — the series must not
    // keep the simulation alive (checkpoint pattern; see core/system.h).
    if (system_->HasLiveWork()) ScheduleNext();
  });
}

}  // namespace o2pc::telemetry
