#ifndef O2PC_TELEMETRY_COVERAGE_H_
#define O2PC_TELEMETRY_COVERAGE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/step_hook.h"
#include "net/message.h"

/// \file
/// Protocol coverage accounting: which ProtocolStep hooks fired, which
/// MessageTypes crossed the network, which fault-grammar productions
/// actually triggered, and which oracle verdicts a sweep produced. One
/// CoverageMap per run; sweep maps fold with `Merge` (element-wise counter
/// addition, so the folded table is independent of merge order and
/// byte-identical at every `--jobs`). `UnhitCells` names the cells the CI
/// coverage gate requires to be non-zero.
///
/// The fault-production axis mirrors campaign::FaultKind by value. The
/// dependency points the other way (campaign links telemetry), so the
/// count and names are restated here and pinned by a static_assert in
/// campaign/injector.cc.

namespace o2pc::telemetry {

/// One cell per campaign::FaultKind, same order.
inline constexpr int kNumFaultProductions = 11;

/// Grammar-production name ("crash", "partition", ...) for cell `index`;
/// identical to campaign::FaultKindName.
const char* FaultProductionName(int index);

/// How the oracle battery judged a run. Violation categories follow the
/// campaign::OracleReport message prefixes.
enum class OracleVerdict : std::uint8_t {
  kPass = 0,
  kTraceViolation,  ///< trace invariant checker (I1-I7)
  kSgViolation,     ///< serialization-graph criterion
  kAuditViolation,  ///< durability / in-doubt / conservation audit
};
inline constexpr int kNumOracleVerdicts = 4;

const char* OracleVerdictName(OracleVerdict verdict);

/// Index of the (fault production x oracle verdict) matrix cell.
constexpr int ProductionVerdictCell(int production, int verdict) {
  return production * kNumOracleVerdicts + verdict;
}

/// Hit counters along the coverage axes, plus the (fault production x
/// oracle verdict) matrix: for every run, each production that fired is
/// crossed with the run's verdict categories — "did the sweep ever see a
/// duplication-faulted run pass the whole oracle battery" becomes one
/// gated cell instead of a join over two marginals.
struct CoverageMap {
  std::array<std::uint64_t, core::kNumProtocolSteps> step_hits{};
  std::array<std::uint64_t, net::kNumMessageTypes> message_hits{};
  std::array<std::uint64_t, kNumFaultProductions> fault_hits{};
  std::array<std::uint64_t, kNumOracleVerdicts> verdict_hits{};
  std::array<std::uint64_t, kNumFaultProductions * kNumOracleVerdicts>
      production_verdict_hits{};

  void RecordStep(core::ProtocolStep step) {
    ++step_hits[static_cast<int>(step)];
  }
  void RecordMessage(net::MessageType type) {
    ++message_hits[static_cast<int>(type)];
  }
  void RecordFault(int production, std::uint64_t hits = 1) {
    fault_hits[static_cast<std::size_t>(production)] += hits;
  }
  void RecordVerdict(OracleVerdict verdict) {
    ++verdict_hits[static_cast<int>(verdict)];
  }
  void RecordProductionVerdict(int production, OracleVerdict verdict) {
    ++production_verdict_hits[static_cast<std::size_t>(
        ProductionVerdictCell(production, static_cast<int>(verdict)))];
  }

  /// Element-wise counter addition (commutative and associative, so the
  /// sweep fold is order-independent).
  void Merge(const CoverageMap& other);

  /// Names of the *gated* cells with zero hits: every ProtocolStep, every
  /// fault production, and every (production, pass) matrix cell — a sweep
  /// must show each production surviving the full oracle battery at least
  /// once. Message types, verdicts, and the violation columns of the
  /// matrix are reported but not gated (kUser never appears outside unit
  /// tests, and a healthy sweep never produces a violation verdict).
  std::vector<std::string> UnhitCells() const;

  /// FNV-1a over every counter, in axis order — the sweep coverage
  /// fingerprint printed by o2pc_campaign.
  std::uint64_t Fingerprint() const;

  friend bool operator==(const CoverageMap&, const CoverageMap&) = default;
};

}  // namespace o2pc::telemetry

#endif  // O2PC_TELEMETRY_COVERAGE_H_
