#ifndef O2PC_TELEMETRY_JSON_H_
#define O2PC_TELEMETRY_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file
/// A minimal JSON reader for the telemetry pipeline (the repo takes no
/// external dependencies). It parses exactly the dialect the telemetry
/// writer emits — objects, arrays, double/integer numbers, strings with
/// backslash escapes, true/false/null — which is also plain standard
/// JSON, so o2pc_report can read files from any producer.

namespace o2pc::telemetry {

/// One parsed JSON value. A tagged struct rather than a variant keeps the
/// accessors trivial; telemetry files are small, so the extra containers
/// per node are irrelevant.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// std::map: object keys iterate sorted, deterministically.
  std::map<std::string, JsonValue> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// Object member, or null-kind sentinel when absent / not an object.
  const JsonValue& Get(const std::string& key) const;
  double NumberOr(double fallback) const {
    return IsNumber() ? number : fallback;
  }
  std::uint64_t UintOr(std::uint64_t fallback) const {
    return IsNumber() ? static_cast<std::uint64_t>(number) : fallback;
  }
};

/// Parses `text`; returns false (and sets `*error` to "offset N: reason")
/// on malformed input. Trailing non-whitespace is an error.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace o2pc::telemetry

#endif  // O2PC_TELEMETRY_JSON_H_
