#ifndef O2PC_TELEMETRY_PHASE_PROFILER_H_
#define O2PC_TELEMETRY_PHASE_PROFILER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "trace/trace.h"

/// \file
/// Commit-phase latency attribution. The profiler replays a run's trace
/// journal and splits every finished global transaction's lifetime along
/// the protocol's phase boundaries — execute (submit to first VOTE-REQ),
/// voting (to the last VOTE), decision (to the coordinator's force-log),
/// ack (to protocol drain) — plus two overlap phases the paper's headline
/// claim is about: the per-site *blocked-prepared* window (2PC prepare to
/// the decision's application, the lock-holding interval O2PC eliminates)
/// and per-site *termination-protocol* time (a participant's first
/// post-vote decision timeout until it learns the outcome) — plus the
/// per-site *recovery* window (crash to kRecoveryEnd: outage, WAL
/// analysis, and marking catch-up, the full unavailability interval of a
/// crash-restart).
///
/// Attribution is a pure function of the journal, so per-phase histograms
/// are deterministic wherever journals are, and profiles merge exactly
/// (sample concatenation) when a sweep folds runs together.

namespace o2pc::telemetry {

/// The attributed phases, in protocol order.
enum class Phase : std::uint8_t {
  kExecute = 0,      ///< submit -> first VOTE-REQ send
  kVoting,           ///< first VOTE-REQ send -> last VOTE
  kDecision,         ///< last VOTE -> decision force-logged
  kAck,              ///< decision force-logged -> protocol drained
  kBlockedPrepared,  ///< per (txn, site): prepared -> decision applied
  kTermination,      ///< per (txn, site): post-vote timeout -> outcome known
  kRecovery,         ///< per site: crash -> recovery phase complete
};
inline constexpr int kNumPhases = 7;

/// Stable machine-readable phase name ("execute", "blocked_prepared", ...).
const char* PhaseName(Phase phase);

/// Per-phase latency samples (microseconds) for one run or a merged sweep.
struct PhaseProfile {
  std::array<metrics::Histogram, kNumPhases> phases;
  /// Finished global transactions the profiler attributed.
  std::uint64_t txns_profiled = 0;
  std::uint64_t txns_committed = 0;

  metrics::Histogram& of(Phase phase) {
    return phases[static_cast<int>(phase)];
  }
  const metrics::Histogram& of(Phase phase) const {
    return phases[static_cast<int>(phase)];
  }

  /// Exact merge: concatenates every phase's samples.
  void Merge(const PhaseProfile& other);
};

/// Attributes phase time for every global transaction that reached
/// kTxnFinish in `events`. Unfinished transactions (and unresolved
/// prepared/termination windows, e.g. at a permanently dead site) are
/// skipped rather than guessed at.
PhaseProfile ProfilePhases(const std::vector<trace::TraceEvent>& events);

}  // namespace o2pc::telemetry

#endif  // O2PC_TELEMETRY_PHASE_PROFILER_H_
