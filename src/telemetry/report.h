#ifndef O2PC_TELEMETRY_REPORT_H_
#define O2PC_TELEMETRY_REPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "telemetry/coverage.h"
#include "telemetry/phase_profiler.h"
#include "telemetry/time_series.h"

/// \file
/// The telemetry data model shared by o2pc_sim, o2pc_campaign, and
/// o2pc_report: per-run capture (RunTelemetry), exact in-process sweep
/// folding (TelemetryAccumulator), the serializable sweep summary
/// (SweepTelemetry, a stable JSON schema), and rendering — machine-
/// readable JSON plus a self-contained single-file HTML report.
///
/// Determinism contract: every field of SweepTelemetry is a pure function
/// of the per-run journals and the sweep order. The accumulator is fed in
/// run-index order by a serial loop (RunExecutor collects into
/// index-ordered slots first), all floats are derived from integral
/// microsecond samples and formatted through one fixed-precision helper,
/// and no wall-clock value is ever included — so the emitted JSON (and
/// the coverage fingerprint inside it) is byte-identical for every
/// `--jobs`.
///
/// Percentiles are exact where the raw samples are in hand (one process'
/// sweep, via TelemetryAccumulator). Across files, o2pc_report merges the
/// fixed-layout bucket histograms and re-estimates percentiles from the
/// merged buckets — approximate, and labeled as such in the report.

namespace o2pc::telemetry {

/// Everything captured from a single run.
struct RunTelemetry {
  PhaseProfile profile;
  CoverageMap coverage;
  TimeSeries series;    ///< empty unless a sampler ran
  bool has_series = false;
};

/// Fills `out`'s phase profile and message-type coverage from a run's
/// trace journal. Steps, fault productions, and verdicts come from the
/// caller's hooks (step observer, injector, oracle report).
void CollectFromJournal(const std::vector<trace::TraceEvent>& events,
                        RunTelemetry* out);

/// Serializable per-phase latency summary. count/sum/min/max are exact
/// under any merge; p50/p90/p99 are exact when built from raw samples and
/// bucket-estimated after a cross-file merge.
struct PhaseStats {
  std::uint64_t count = 0;
  double sum_us = 0;
  double min_us = 0;
  double max_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  metrics::BucketHistogram buckets;

  static PhaseStats FromHistogram(const metrics::Histogram& histogram);

  double MeanUs() const {
    return count == 0 ? 0.0 : sum_us / static_cast<double>(count);
  }

  /// Bucket-based merge; percentiles become estimates. False on
  /// mismatched bucket layouts (target untouched).
  bool Merge(const PhaseStats& other);
};

/// Phase latencies for one protocol across a sweep.
struct ProtocolTelemetry {
  std::string protocol;  ///< "o2pc" or "2pc"
  std::uint64_t runs = 0;
  std::uint64_t txns_profiled = 0;
  std::uint64_t txns_committed = 0;
  std::array<PhaseStats, kNumPhases> phases;
};

/// One captured time-series with a human-readable origin label.
struct LabeledSeries {
  std::string label;
  TimeSeries series;
};

/// The sweep-level telemetry summary — the unit of serialization.
struct SweepTelemetry {
  std::uint64_t runs = 0;
  CoverageMap coverage;
  std::vector<ProtocolTelemetry> protocols;  ///< first-appearance order
  std::vector<LabeledSeries> series;
  /// True when phase percentiles were re-estimated from buckets (set by
  /// cross-file Merge); surfaces as a caveat in the report.
  bool approximate_percentiles = false;

  /// Stable, pretty-printed JSON (schema "o2pc-telemetry-v1").
  std::string ToJson() const;
  static bool FromJson(const std::string& text, SweepTelemetry* out,
                       std::string* error);

  /// Cross-file fold (o2pc_report). False + `*error` on schema conflicts
  /// (e.g. mismatched bucket layouts).
  bool Merge(const SweepTelemetry& other, std::string* error);
};

/// Folds per-run telemetry into a sweep summary, keeping raw phase
/// samples until Build() so in-process percentiles are exact. Feed runs
/// in sweep order (the order itself only affects protocol/series listing
/// order, never any counter).
class TelemetryAccumulator {
 public:
  /// `protocol` is the run's protocol label ("o2pc"/"2pc").
  void AddRun(const std::string& protocol, const RunTelemetry& run);
  /// Attaches a captured time-series under `label`.
  void AddSeries(std::string label, TimeSeries series);

  std::uint64_t runs() const { return runs_; }
  SweepTelemetry Build() const;

 private:
  struct ProtocolAccumulator {
    std::string name;
    std::uint64_t runs = 0;
    PhaseProfile profile;
  };

  std::uint64_t runs_ = 0;
  CoverageMap coverage_;
  std::vector<ProtocolAccumulator> protocols_;
  std::vector<LabeledSeries> series_;
};

/// Renders the self-contained single-file HTML report: per-protocol phase
/// breakdown (stacked critical path + per-phase table), the coverage
/// matrix with unhit cells highlighted, and time-series sparklines.
std::string RenderHtml(const SweepTelemetry& telemetry,
                       const std::string& title);

/// Writes `content` to `path`. False (with a perror-style log) on failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace o2pc::telemetry

#endif  // O2PC_TELEMETRY_REPORT_H_
