// RenderHtml: the self-contained single-file HTML report. No external
// assets, scripts, or fonts — inline CSS (light + dark via CSS custom
// properties) and inline SVG sparklines, so the file can be archived as a
// CI artifact and opened anywhere.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "telemetry/report.h"

namespace o2pc::telemetry {

namespace {

std::string Hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Us(double value) { return StrCat(FormatDouble(value, 1), "µs"); }

/// The pipeline phases stacked into the critical-path bar, and the two
/// overlap windows drawn as their own bars. Phase i wears series slot i+1.
constexpr Phase kPipelinePhases[] = {Phase::kExecute, Phase::kVoting,
                                     Phase::kDecision, Phase::kAck};
constexpr Phase kOverlapPhases[] = {Phase::kBlockedPrepared,
                                    Phase::kTermination, Phase::kRecovery};

const char* kStyle = R"css(
  :root { color-scheme: light dark; }
  body { margin: 0; background: var(--page); }
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --grid:           #e1e0d9;
    --border:         rgba(11,11,11,0.10);
    --series-1:       #2a78d6;
    --series-2:       #eb6834;
    --series-3:       #1baf7a;
    --series-4:       #eda100;
    --series-5:       #e87ba4;
    --series-6:       #008300;
    --series-7:       #7a5cd6;
    --critical:       #d03b3b;
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
    color: var(--text-primary);
    max-width: 980px;
    margin: 0 auto;
    padding: 24px 16px 48px;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --grid:           #2c2c2a;
      --border:         rgba(255,255,255,0.10);
      --series-1:       #3987e5;
      --series-2:       #d95926;
      --series-3:       #199e70;
      --series-4:       #c98500;
      --series-5:       #d55181;
      --series-6:       #008300;
      --series-7:       #8f74e8;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:           #2c2c2a;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-2:       #d95926;
    --series-3:       #199e70;
    --series-4:       #c98500;
    --series-5:       #d55181;
    --series-6:       #008300;
    --series-7:       #8f74e8;
  }
  h1 { font-size: 20px; margin: 0 0 4px; }
  h2 { font-size: 16px; margin: 28px 0 10px; }
  .subtitle { color: var(--text-secondary); margin: 0 0 16px; }
  .card {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 8px;
    padding: 16px;
    margin: 12px 0;
  }
  .bar-row { display: flex; align-items: center; margin: 6px 0; }
  .bar-label {
    flex: 0 0 150px;
    color: var(--text-secondary);
    font-size: 13px;
  }
  .bar-track { flex: 1; display: flex; min-height: 18px; }
  .bar-seg { height: 18px; border-radius: 4px; margin-right: 2px; }
  .bar-seg:last-child { margin-right: 0; }
  .bar-value {
    flex: 0 0 90px;
    text-align: right;
    color: var(--text-secondary);
    font-variant-numeric: tabular-nums;
    font-size: 13px;
  }
  .legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 10px 0 2px; }
  .legend span { color: var(--text-secondary); font-size: 13px; }
  .chip {
    display: inline-block;
    width: 10px; height: 10px;
    border-radius: 3px;
    margin-right: 5px;
  }
  table { border-collapse: collapse; width: 100%; margin-top: 8px; }
  th, td {
    text-align: right;
    padding: 4px 10px;
    border-bottom: 1px solid var(--grid);
    font-variant-numeric: tabular-nums;
    font-size: 13px;
  }
  th { color: var(--text-muted); font-weight: 500; }
  th:first-child, td:first-child { text-align: left; }
  td:first-child { color: var(--text-primary); }
  .axis-title { color: var(--text-muted); font-size: 12px; margin: 10px 0 4px; }
  .cells { display: flex; flex-wrap: wrap; gap: 6px; }
  .cell {
    border: 1px solid var(--grid);
    border-radius: 6px;
    padding: 4px 8px;
    font-size: 12px;
    color: var(--text-secondary);
  }
  .cell b {
    color: var(--text-primary);
    font-weight: 600;
    font-variant-numeric: tabular-nums;
  }
  .cell.unhit {
    border-color: var(--critical);
    color: var(--critical);
  }
  .cell.unhit b { color: var(--critical); }
  .spark-row { display: flex; align-items: center; gap: 10px; margin: 4px 0; }
  .spark-name {
    flex: 0 0 130px;
    color: var(--text-secondary);
    font-size: 12px;
  }
  .spark-max {
    color: var(--text-muted);
    font-size: 12px;
    font-variant-numeric: tabular-nums;
  }
  .series-label { color: var(--text-secondary); font-size: 13px; margin: 10px 0 2px; }
  .note { color: var(--text-muted); font-size: 12px; }
)css";

void AppendLegend(std::string* out) {
  *out += "<div class=\"legend\">";
  for (int i = 0; i < kNumPhases; ++i) {
    *out += StrCat("<span><i class=\"chip\" style=\"background:var(--series-",
                   i + 1, ")\"></i>", PhaseName(static_cast<Phase>(i)),
                   "</span>");
  }
  *out += "</div>\n";
}

void AppendBar(std::string* out, const std::string& label,
               const std::vector<std::pair<Phase, double>>& segments,
               double total_label_us, double scale_us) {
  *out += StrCat("<div class=\"bar-row\"><span class=\"bar-label\">",
                 HtmlEscape(label), "</span><div class=\"bar-track\">");
  for (const auto& [phase, mean_us] : segments) {
    if (mean_us <= 0 || scale_us <= 0) continue;
    const double pct = 100.0 * mean_us / scale_us;
    *out += StrCat("<div class=\"bar-seg\" style=\"width:",
                   FormatDouble(pct, 2), "%;background:var(--series-",
                   static_cast<int>(phase) + 1, ")\" title=\"",
                   PhaseName(phase), " — mean ", Us(mean_us), "\"></div>");
  }
  *out += StrCat("</div><span class=\"bar-value\">", Us(total_label_us),
                 "</span></div>\n");
}

void AppendPhaseTable(std::string* out, const ProtocolTelemetry& protocol) {
  *out +=
      "<table><tr><th>phase</th><th>n</th><th>mean</th><th>p50</th>"
      "<th>p90</th><th>p99</th><th>max</th></tr>\n";
  for (int i = 0; i < kNumPhases; ++i) {
    const PhaseStats& stats = protocol.phases[i];
    *out += StrCat("<tr><td>", PhaseName(static_cast<Phase>(i)), "</td><td>",
                   stats.count, "</td><td>", Us(stats.MeanUs()), "</td><td>",
                   Us(stats.p50_us), "</td><td>", Us(stats.p90_us),
                   "</td><td>", Us(stats.p99_us), "</td><td>",
                   Us(stats.max_us), "</td></tr>\n");
  }
  *out += "</table>\n";
}

void AppendCoverageAxis(std::string* out, const char* title,
                        const std::uint64_t* values, int n,
                        const char* (*name)(int), bool gated) {
  *out += StrCat("<div class=\"axis-title\">", title,
                 "</div><div class=\"cells\">");
  for (int i = 0; i < n; ++i) {
    const bool unhit = values[i] == 0;
    if (unhit && gated) {
      *out += StrCat("<span class=\"cell unhit\" title=\"", name(i),
                     ": not exercised\">✗ ", name(i), " <b>unhit</b></span>");
    } else {
      *out += StrCat("<span class=\"cell", unhit ? " unhit\"" : "\"",
                     " title=\"", name(i), ": ", values[i], " hits\">",
                     name(i), " <b>", values[i], "</b></span>");
    }
  }
  *out += "</div>\n";
}

/// One sparkline: an SVG polyline over the sample values, y-scaled to the
/// gauge's own max (printed to the right, so the scale is never implicit).
void AppendSparkline(std::string* out, const char* gauge_name,
                     const TimeSeries& series,
                     std::uint64_t (*get)(const TimeSample&)) {
  std::uint64_t max_value = 0;
  for (const TimeSample& sample : series.samples) {
    max_value = std::max(max_value, get(sample));
  }
  const std::size_t n = series.samples.size();
  // Cap the polyline at ~400 points; long runs stride-sample.
  const std::size_t stride = n > 400 ? (n + 399) / 400 : 1;
  const double width = 480.0;
  const double height = 36.0;
  std::string points;
  for (std::size_t i = 0; i < n; i += stride) {
    const double x =
        n <= 1 ? 0.0 : width * static_cast<double>(i) / (n - 1);
    const double value = static_cast<double>(get(series.samples[i]));
    const double y =
        max_value == 0 ? height - 1 : height - 1 - (height - 4) * value / max_value;
    points += StrCat(points.empty() ? "" : " ", FormatDouble(x, 1), ",",
                     FormatDouble(y, 1));
  }
  *out += StrCat(
      "<div class=\"spark-row\"><span class=\"spark-name\">", gauge_name,
      "</span><svg width=\"480\" height=\"36\" viewBox=\"0 0 480 36\" "
      "role=\"img\" aria-label=\"", gauge_name,
      " over simulated time\"><title>", gauge_name, " (max ", max_value,
      ")</title><line x1=\"0\" y1=\"35\" x2=\"480\" y2=\"35\" "
      "stroke=\"var(--grid)\" stroke-width=\"1\"/><polyline fill=\"none\" "
      "stroke=\"var(--series-1)\" stroke-width=\"2\" "
      "stroke-linejoin=\"round\" points=\"",
      points, "\"/></svg><span class=\"spark-max\">max ", max_value,
      "</span></div>\n");
}

}  // namespace

std::string RenderHtml(const SweepTelemetry& telemetry,
                       const std::string& title) {
  std::string out;
  out += "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  out += StrCat("<title>", HtmlEscape(title), "</title>\n<style>");
  out += kStyle;
  out += "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";

  out += StrCat("<h1>", HtmlEscape(title), "</h1>\n");
  out += StrCat("<p class=\"subtitle\">", telemetry.runs,
                " runs · coverage fingerprint <code>",
                Hex16(telemetry.coverage.Fingerprint()), "</code>",
                telemetry.approximate_percentiles
                    ? " · percentiles are bucket estimates (multi-file merge)"
                    : "",
                "</p>\n");

  // --- Phase latency breakdown ---
  out += "<h2>Commit-phase latency</h2>\n<div class=\"card\">\n";
  double scale_us = 0;
  for (const ProtocolTelemetry& protocol : telemetry.protocols) {
    double pipeline = 0;
    for (Phase phase : kPipelinePhases) {
      pipeline += protocol.phases[static_cast<int>(phase)].MeanUs();
    }
    scale_us = std::max(scale_us, pipeline);
    for (Phase phase : kOverlapPhases) {
      scale_us =
          std::max(scale_us, protocol.phases[static_cast<int>(phase)].MeanUs());
    }
  }
  for (const ProtocolTelemetry& protocol : telemetry.protocols) {
    std::vector<std::pair<Phase, double>> segments;
    double pipeline = 0;
    for (Phase phase : kPipelinePhases) {
      const double mean = protocol.phases[static_cast<int>(phase)].MeanUs();
      segments.emplace_back(phase, mean);
      pipeline += mean;
    }
    AppendBar(&out, StrCat(protocol.protocol, " critical path"), segments,
              pipeline, scale_us);
    for (Phase phase : kOverlapPhases) {
      const PhaseStats& stats = protocol.phases[static_cast<int>(phase)];
      if (stats.count == 0) continue;
      AppendBar(&out, StrCat(protocol.protocol, " ", PhaseName(phase)),
                {{phase, stats.MeanUs()}}, stats.MeanUs(), scale_us);
    }
  }
  AppendLegend(&out);
  out +=
      "<p class=\"note\">Mean simulated time per phase; the two window rows "
      "overlap the critical path rather than extending it.</p>\n";
  for (const ProtocolTelemetry& protocol : telemetry.protocols) {
    out += StrCat("<div class=\"series-label\">", HtmlEscape(protocol.protocol),
                  " — ", protocol.txns_profiled, " txns profiled, ",
                  protocol.txns_committed, " committed (", protocol.runs,
                  " runs)</div>\n");
    AppendPhaseTable(&out, protocol);
  }
  out += "</div>\n";

  // --- Coverage matrix ---
  out += "<h2>Coverage</h2>\n<div class=\"card\">\n";
  const CoverageMap& coverage = telemetry.coverage;
  AppendCoverageAxis(&out, "protocol steps", coverage.step_hits.data(),
                     core::kNumProtocolSteps,
                     [](int i) {
                       return core::ProtocolStepName(
                           static_cast<core::ProtocolStep>(i));
                     },
                     /*gated=*/true);
  AppendCoverageAxis(&out, "fault productions", coverage.fault_hits.data(),
                     kNumFaultProductions, &FaultProductionName,
                     /*gated=*/true);
  AppendCoverageAxis(&out, "message types", coverage.message_hits.data(),
                     net::kNumMessageTypes,
                     [](int i) {
                       return net::MessageTypeName(
                           static_cast<net::MessageType>(i));
                     },
                     /*gated=*/false);
  AppendCoverageAxis(&out, "oracle verdicts", coverage.verdict_hits.data(),
                     kNumOracleVerdicts,
                     [](int i) {
                       return OracleVerdictName(static_cast<OracleVerdict>(i));
                     },
                     /*gated=*/false);
  // Production x verdict matrix: one row per fault production, one column
  // per oracle verdict. Only the pass column is gated.
  out += "<div class=\"axis-title\">fault production × oracle verdict</div>";
  out += "<table><tr><th></th>";
  for (int v = 0; v < kNumOracleVerdicts; ++v) {
    out += StrCat("<th>", OracleVerdictName(static_cast<OracleVerdict>(v)),
                  "</th>");
  }
  out += "</tr>\n";
  for (int p = 0; p < kNumFaultProductions; ++p) {
    out += StrCat("<tr><td>", FaultProductionName(p), "</td>");
    for (int v = 0; v < kNumOracleVerdicts; ++v) {
      const std::uint64_t hits =
          coverage.production_verdict_hits[ProductionVerdictCell(p, v)];
      const bool gated_unhit =
          hits == 0 && v == static_cast<int>(OracleVerdict::kPass);
      out += gated_unhit
                 ? std::string("<td class=\"unhit\">✗ unhit</td>")
                 : StrCat("<td>", hits, "</td>");
    }
    out += "</tr>\n";
  }
  out += "</table>\n";
  out +=
      "<p class=\"note\">✗ marks a gated cell (protocol step, fault "
      "production, or a production's pass column in the matrix) the sweep "
      "never exercised.</p>\n";
  out += "</div>\n";

  // --- Time-series sparklines ---
  if (!telemetry.series.empty()) {
    out += "<h2>Contention over simulated time</h2>\n";
    for (const LabeledSeries& labeled : telemetry.series) {
      out += StrCat("<div class=\"card\">\n<div class=\"series-label\">",
                    HtmlEscape(labeled.label), " · ",
                    labeled.series.samples.size(), " samples every ",
                    FormatDuration(labeled.series.interval), "</div>\n");
      AppendSparkline(&out, "locks held", labeled.series,
                      [](const TimeSample& s) { return s.locks_held; });
      AppendSparkline(&out, "lock waiters", labeled.series,
                      [](const TimeSample& s) { return s.lock_waiters; });
      AppendSparkline(&out, "waits-for edges", labeled.series,
                      [](const TimeSample& s) { return s.waits_edges; });
      AppendSparkline(&out, "messages in flight", labeled.series,
                      [](const TimeSample& s) { return s.msgs_in_flight; });
      AppendSparkline(&out, "event-queue depth", labeled.series,
                      [](const TimeSample& s) { return s.queue_depth; });
      out += "</div>\n";
    }
  }

  out += "</div>\n</body>\n</html>\n";
  return out;
}

}  // namespace o2pc::telemetry
