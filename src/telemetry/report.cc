#include "telemetry/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "telemetry/json.h"

namespace o2pc::telemetry {

namespace {

/// Fixed-precision JSON number: integers print bare, fractional values
/// with exactly three decimals. One formatter for every emitted double is
/// part of the byte-identity contract.
std::string Num(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  return FormatDouble(value, 3);
}

std::string Hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void CollectFromJournal(const std::vector<trace::TraceEvent>& events,
                        RunTelemetry* out) {
  out->profile = ProfilePhases(events);
  for (const trace::TraceEvent& event : events) {
    if (event.type == trace::EventType::kMsgSend && event.a >= 0 &&
        event.a < net::kNumMessageTypes) {
      out->coverage.RecordMessage(static_cast<net::MessageType>(event.a));
    }
  }
}

PhaseStats PhaseStats::FromHistogram(const metrics::Histogram& histogram) {
  PhaseStats stats;
  stats.buckets = metrics::BucketHistogram::DefaultLatencyLayout();
  stats.count = histogram.count();
  if (stats.count == 0) return stats;
  stats.sum_us = histogram.Sum();
  stats.min_us = histogram.Min();
  stats.max_us = histogram.Max();
  stats.p50_us = histogram.Percentile(0.5);
  stats.p90_us = histogram.Percentile(0.9);
  stats.p99_us = histogram.Percentile(0.99);
  for (double sample : histogram.samples()) stats.buckets.Add(sample);
  return stats;
}

bool PhaseStats::Merge(const PhaseStats& other) {
  if (other.count == 0) return true;
  if (count == 0) {
    *this = other;
    return true;
  }
  if (!buckets.Merge(other.buckets)) return false;
  min_us = std::min(min_us, other.min_us);
  max_us = std::max(max_us, other.max_us);
  sum_us += other.sum_us;
  count += other.count;
  p50_us = buckets.PercentileEstimate(0.5);
  p90_us = buckets.PercentileEstimate(0.9);
  p99_us = buckets.PercentileEstimate(0.99);
  return true;
}

void TelemetryAccumulator::AddRun(const std::string& protocol,
                                  const RunTelemetry& run) {
  ++runs_;
  coverage_.Merge(run.coverage);
  ProtocolAccumulator* accumulator = nullptr;
  for (ProtocolAccumulator& candidate : protocols_) {
    if (candidate.name == protocol) {
      accumulator = &candidate;
      break;
    }
  }
  if (accumulator == nullptr) {
    protocols_.emplace_back();
    accumulator = &protocols_.back();
    accumulator->name = protocol;
  }
  ++accumulator->runs;
  accumulator->profile.Merge(run.profile);
}

void TelemetryAccumulator::AddSeries(std::string label, TimeSeries series) {
  series_.push_back({std::move(label), std::move(series)});
}

SweepTelemetry TelemetryAccumulator::Build() const {
  SweepTelemetry sweep;
  sweep.runs = runs_;
  sweep.coverage = coverage_;
  sweep.series = series_;
  sweep.protocols.reserve(protocols_.size());
  for (const ProtocolAccumulator& accumulator : protocols_) {
    ProtocolTelemetry protocol;
    protocol.protocol = accumulator.name;
    protocol.runs = accumulator.runs;
    protocol.txns_profiled = accumulator.profile.txns_profiled;
    protocol.txns_committed = accumulator.profile.txns_committed;
    for (int i = 0; i < kNumPhases; ++i) {
      protocol.phases[i] =
          PhaseStats::FromHistogram(accumulator.profile.phases[i]);
    }
    sweep.protocols.push_back(std::move(protocol));
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

namespace {

void AppendCounterObject(std::string* out, const char* key,
                         const std::uint64_t* values, int n,
                         const char* (*name)(int), const char* indent) {
  *out += StrCat(indent, "\"", key, "\": {");
  for (int i = 0; i < n; ++i) {
    *out += StrCat(i == 0 ? "" : ", ", "\"", name(i), "\": ", values[i]);
  }
  *out += "}";
}

const char* StepNameAt(int i) {
  return core::ProtocolStepName(static_cast<core::ProtocolStep>(i));
}
const char* MessageNameAt(int i) {
  return net::MessageTypeName(static_cast<net::MessageType>(i));
}
const char* VerdictNameAt(int i) {
  return OracleVerdictName(static_cast<OracleVerdict>(i));
}

void AppendPhaseStats(std::string* out, const PhaseStats& stats) {
  *out += StrCat("{\"count\": ", stats.count, ", \"sum_us\": ",
                 Num(stats.sum_us), ", \"min_us\": ", Num(stats.min_us),
                 ", \"max_us\": ", Num(stats.max_us),
                 ", \"p50_us\": ", Num(stats.p50_us),
                 ", \"p90_us\": ", Num(stats.p90_us),
                 ", \"p99_us\": ", Num(stats.p99_us));
  *out += ", \"buckets\": {\"bounds_us\": [";
  const auto& bounds = stats.buckets.bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    *out += StrCat(i == 0 ? "" : ",", Num(bounds[i]));
  }
  *out += "], \"counts\": [";
  const auto& counts = stats.buckets.counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    *out += StrCat(i == 0 ? "" : ",", counts[i]);
  }
  *out += StrCat("], \"overflow\": ", stats.buckets.overflow(), "}}");
}

}  // namespace

std::string SweepTelemetry::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"o2pc-telemetry-v1\",\n";
  out += StrCat("  \"runs\": ", runs, ",\n");
  out += StrCat("  \"approximate_percentiles\": ",
                approximate_percentiles ? "true" : "false", ",\n");

  out += "  \"coverage\": {\n";
  out += StrCat("    \"fingerprint\": \"", Hex16(coverage.Fingerprint()),
                "\",\n");
  AppendCounterObject(&out, "steps", coverage.step_hits.data(),
                      core::kNumProtocolSteps, &StepNameAt, "    ");
  out += ",\n";
  AppendCounterObject(&out, "messages", coverage.message_hits.data(),
                      net::kNumMessageTypes, &MessageNameAt, "    ");
  out += ",\n";
  AppendCounterObject(&out, "faults", coverage.fault_hits.data(),
                      kNumFaultProductions, &FaultProductionName, "    ");
  out += ",\n";
  AppendCounterObject(&out, "verdicts", coverage.verdict_hits.data(),
                      kNumOracleVerdicts, &VerdictNameAt, "    ");
  out += ",\n    \"production_verdicts\": {";
  for (int p = 0; p < kNumFaultProductions; ++p) {
    out += StrCat(p == 0 ? "" : ", ", "\"", FaultProductionName(p), "\": {");
    for (int v = 0; v < kNumOracleVerdicts; ++v) {
      out += StrCat(v == 0 ? "" : ", ", "\"", VerdictNameAt(v), "\": ",
                    coverage.production_verdict_hits[ProductionVerdictCell(
                        p, v)]);
    }
    out += "}";
  }
  out += "}";
  out += ",\n    \"unhit\": [";
  const std::vector<std::string> unhit = coverage.UnhitCells();
  for (std::size_t i = 0; i < unhit.size(); ++i) {
    out += StrCat(i == 0 ? "" : ", ", "\"", unhit[i], "\"");
  }
  out += "]\n  },\n";

  out += "  \"protocols\": [";
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const ProtocolTelemetry& protocol = protocols[p];
    out += StrCat(p == 0 ? "\n" : ",\n", "    {\"protocol\": \"",
                  JsonEscape(protocol.protocol),
                  "\", \"runs\": ", protocol.runs,
                  ", \"txns_profiled\": ", protocol.txns_profiled,
                  ", \"txns_committed\": ", protocol.txns_committed,
                  ", \"phases\": {\n");
    for (int i = 0; i < kNumPhases; ++i) {
      out += StrCat("      \"", PhaseName(static_cast<Phase>(i)), "\": ");
      AppendPhaseStats(&out, protocol.phases[i]);
      out += i + 1 < kNumPhases ? ",\n" : "\n";
    }
    out += "    }}";
  }
  out += protocols.empty() ? "],\n" : "\n  ],\n";

  out += "  \"time_series\": [";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const LabeledSeries& labeled = series[s];
    out += StrCat(s == 0 ? "\n" : ",\n", "    {\"label\": \"",
                  JsonEscape(labeled.label),
                  "\", \"interval_us\": ", labeled.series.interval,
                  ", \"samples\": [");
    for (std::size_t i = 0; i < labeled.series.samples.size(); ++i) {
      const TimeSample& sample = labeled.series.samples[i];
      out += StrCat(i == 0 ? "" : ",", "[", sample.time, ",",
                    sample.locks_held, ",", sample.lock_waiters, ",",
                    sample.waits_edges, ",", sample.msgs_in_flight, ",",
                    sample.queue_depth, "]");
    }
    out += "]}";
  }
  out += series.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

namespace {

bool ReadCounterObject(const JsonValue& object, std::uint64_t* values, int n,
                       const char* (*name)(int), const char* axis,
                       std::string* error) {
  if (!object.IsObject()) {
    *error = StrCat("coverage.", axis, " is not an object");
    return false;
  }
  for (const auto& [key, value] : object.object) {
    int index = -1;
    for (int i = 0; i < n; ++i) {
      if (key == name(i)) {
        index = i;
        break;
      }
    }
    if (index < 0) {
      *error = StrCat("unknown ", axis, " name '", key, "'");
      return false;
    }
    values[index] = value.UintOr(0);
  }
  return true;
}

bool ReadPhaseStats(const JsonValue& value, PhaseStats* stats,
                    std::string* error) {
  if (!value.IsObject()) {
    *error = "phase entry is not an object";
    return false;
  }
  stats->count = value.Get("count").UintOr(0);
  stats->sum_us = value.Get("sum_us").NumberOr(0);
  stats->min_us = value.Get("min_us").NumberOr(0);
  stats->max_us = value.Get("max_us").NumberOr(0);
  stats->p50_us = value.Get("p50_us").NumberOr(0);
  stats->p90_us = value.Get("p90_us").NumberOr(0);
  stats->p99_us = value.Get("p99_us").NumberOr(0);
  const JsonValue& buckets = value.Get("buckets");
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  for (const JsonValue& bound : buckets.Get("bounds_us").array) {
    bounds.push_back(bound.NumberOr(0));
  }
  for (const JsonValue& count : buckets.Get("counts").array) {
    counts.push_back(count.UintOr(0));
  }
  if (bounds.size() != counts.size()) {
    *error = "bucket bounds/counts size mismatch";
    return false;
  }
  stats->buckets = metrics::BucketHistogram::FromParts(
      std::move(bounds), std::move(counts),
      buckets.Get("overflow").UintOr(0));
  return true;
}

}  // namespace

bool SweepTelemetry::FromJson(const std::string& text, SweepTelemetry* out,
                              std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (root.Get("schema").string != "o2pc-telemetry-v1") {
    *error = "not an o2pc-telemetry-v1 file";
    return false;
  }
  *out = SweepTelemetry{};
  out->runs = root.Get("runs").UintOr(0);
  out->approximate_percentiles =
      root.Get("approximate_percentiles").boolean;

  const JsonValue& coverage = root.Get("coverage");
  if (!ReadCounterObject(coverage.Get("steps"), out->coverage.step_hits.data(),
                         core::kNumProtocolSteps, &StepNameAt, "steps",
                         error) ||
      !ReadCounterObject(coverage.Get("messages"),
                         out->coverage.message_hits.data(),
                         net::kNumMessageTypes, &MessageNameAt, "messages",
                         error) ||
      !ReadCounterObject(coverage.Get("faults"),
                         out->coverage.fault_hits.data(),
                         kNumFaultProductions, &FaultProductionName, "faults",
                         error) ||
      !ReadCounterObject(coverage.Get("verdicts"),
                         out->coverage.verdict_hits.data(),
                         kNumOracleVerdicts, &VerdictNameAt, "verdicts",
                         error)) {
    return false;
  }
  // Absent in pre-matrix files; rows for unknown productions are an error
  // like any other axis-name mismatch.
  const JsonValue& matrix = coverage.Get("production_verdicts");
  if (!matrix.IsNull()) {
    if (!matrix.IsObject()) {
      *error = "coverage.production_verdicts is not an object";
      return false;
    }
    for (const auto& [key, row] : matrix.object) {
      int production = -1;
      for (int p = 0; p < kNumFaultProductions; ++p) {
        if (key == FaultProductionName(p)) {
          production = p;
          break;
        }
      }
      if (production < 0) {
        *error = StrCat("unknown production_verdicts row '", key, "'");
        return false;
      }
      if (!ReadCounterObject(
              row,
              out->coverage.production_verdict_hits.data() +
                  ProductionVerdictCell(production, 0),
              kNumOracleVerdicts, &VerdictNameAt, "production_verdicts",
              error)) {
        return false;
      }
    }
  }

  for (const JsonValue& entry : root.Get("protocols").array) {
    ProtocolTelemetry protocol;
    protocol.protocol = entry.Get("protocol").string;
    protocol.runs = entry.Get("runs").UintOr(0);
    protocol.txns_profiled = entry.Get("txns_profiled").UintOr(0);
    protocol.txns_committed = entry.Get("txns_committed").UintOr(0);
    const JsonValue& phases = entry.Get("phases");
    for (int i = 0; i < kNumPhases; ++i) {
      const JsonValue& phase = phases.Get(PhaseName(static_cast<Phase>(i)));
      if (phase.IsNull()) continue;
      if (!ReadPhaseStats(phase, &protocol.phases[i], error)) return false;
    }
    out->protocols.push_back(std::move(protocol));
  }

  for (const JsonValue& entry : root.Get("time_series").array) {
    LabeledSeries labeled;
    labeled.label = entry.Get("label").string;
    labeled.series.interval =
        static_cast<Duration>(entry.Get("interval_us").NumberOr(0));
    for (const JsonValue& row : entry.Get("samples").array) {
      if (row.array.size() != 6) {
        *error = "time-series sample is not a 6-tuple";
        return false;
      }
      TimeSample sample;
      sample.time = static_cast<SimTime>(row.array[0].NumberOr(0));
      sample.locks_held = row.array[1].UintOr(0);
      sample.lock_waiters = row.array[2].UintOr(0);
      sample.waits_edges = row.array[3].UintOr(0);
      sample.msgs_in_flight = row.array[4].UintOr(0);
      sample.queue_depth = row.array[5].UintOr(0);
      labeled.series.samples.push_back(sample);
    }
    out->series.push_back(std::move(labeled));
  }
  return true;
}

bool SweepTelemetry::Merge(const SweepTelemetry& other, std::string* error) {
  runs += other.runs;
  coverage.Merge(other.coverage);
  for (const ProtocolTelemetry& theirs : other.protocols) {
    ProtocolTelemetry* mine = nullptr;
    for (ProtocolTelemetry& candidate : protocols) {
      if (candidate.protocol == theirs.protocol) {
        mine = &candidate;
        break;
      }
    }
    if (mine == nullptr) {
      protocols.push_back(theirs);
      continue;
    }
    mine->runs += theirs.runs;
    mine->txns_profiled += theirs.txns_profiled;
    mine->txns_committed += theirs.txns_committed;
    for (int i = 0; i < kNumPhases; ++i) {
      if (!mine->phases[i].Merge(theirs.phases[i])) {
        if (error != nullptr) {
          *error = StrCat("mismatched bucket layouts merging ",
                          theirs.protocol, "/",
                          PhaseName(static_cast<Phase>(i)));
        }
        return false;
      }
    }
    // Merged percentiles are bucket estimates from here on.
    approximate_percentiles = true;
  }
  approximate_percentiles |= other.approximate_percentiles;
  for (const LabeledSeries& labeled : other.series) {
    series.push_back(labeled);
  }
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    O2PC_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    O2PC_LOG(kError) << "write to " << path << " failed";
    return false;
  }
  return true;
}

}  // namespace o2pc::telemetry
