#include "telemetry/phase_profiler.h"

#include <map>
#include <utility>

#include "net/message.h"

namespace o2pc::telemetry {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kExecute:
      return "execute";
    case Phase::kVoting:
      return "voting";
    case Phase::kDecision:
      return "decision";
    case Phase::kAck:
      return "ack";
    case Phase::kBlockedPrepared:
      return "blocked_prepared";
    case Phase::kTermination:
      return "termination";
    case Phase::kRecovery:
      return "recovery";
  }
  return "unknown";
}

void PhaseProfile::Merge(const PhaseProfile& other) {
  for (int i = 0; i < kNumPhases; ++i) phases[i].Merge(other.phases[i]);
  txns_profiled += other.txns_profiled;
  txns_committed += other.txns_committed;
}

namespace {

constexpr SimTime kUnset = -1;

/// Phase boundaries of one global transaction, filled by the event scan.
struct TxnBoundaries {
  SimTime submit = kUnset;       ///< first kTxnSubmit
  SimTime first_votereq = kUnset;  ///< first VOTE-REQ handed to the network
  SimTime last_vote = kUnset;    ///< last kVote
  SimTime decide = kUnset;       ///< first kDecide
  SimTime finish = kUnset;       ///< kTxnFinish
  bool committed = false;
};

/// An open per-(txn, site) interval awaiting its closing event.
struct OpenWindow {
  SimTime start = kUnset;
};

}  // namespace

PhaseProfile ProfilePhases(const std::vector<trace::TraceEvent>& events) {
  PhaseProfile profile;
  // std::map keys the scans by ascending txn id, so sample insertion order
  // (and therefore serialized output) is independent of event interleaving
  // details beyond the journal itself.
  std::map<TxnId, TxnBoundaries> txns;
  std::map<std::pair<TxnId, SiteId>, OpenWindow> prepared;
  std::map<std::pair<TxnId, SiteId>, OpenWindow> terminating;
  std::map<SiteId, OpenWindow> recovering;

  for (const trace::TraceEvent& event : events) {
    switch (event.type) {
      case trace::EventType::kTxnSubmit: {
        TxnBoundaries& txn = txns[event.txn];
        if (txn.submit == kUnset) txn.submit = event.time;
        break;
      }
      case trace::EventType::kMsgSend:
        if (event.a ==
            static_cast<std::int64_t>(net::MessageType::kVoteRequest)) {
          TxnBoundaries& txn = txns[event.txn];
          if (txn.first_votereq == kUnset) txn.first_votereq = event.time;
        }
        break;
      case trace::EventType::kVote:
        txns[event.txn].last_vote = event.time;
        break;
      case trace::EventType::kDecide: {
        TxnBoundaries& txn = txns[event.txn];
        if (txn.decide == kUnset) txn.decide = event.time;
        break;
      }
      case trace::EventType::kTxnFinish: {
        TxnBoundaries& txn = txns[event.txn];
        txn.finish = event.time;
        txn.committed = event.a != 0;
        break;
      }
      case trace::EventType::kPrepare: {
        OpenWindow& window = prepared[{event.txn, event.site}];
        if (window.start == kUnset) window.start = event.time;
        break;
      }
      case trace::EventType::kFinalCommit:
      case trace::EventType::kRollback: {
        const std::pair<TxnId, SiteId> key{event.txn, event.site};
        if (auto it = prepared.find(key);
            it != prepared.end() && it->second.start != kUnset) {
          profile.of(Phase::kBlockedPrepared)
              .Add(static_cast<double>(event.time - it->second.start));
          prepared.erase(it);
        }
        if (auto it = terminating.find(key); it != terminating.end()) {
          profile.of(Phase::kTermination)
              .Add(static_cast<double>(event.time - it->second.start));
          terminating.erase(it);
        }
        break;
      }
      case trace::EventType::kDecisionTimeout:
        // Round 0 is the pre-vote autonomy timeout, not the termination
        // protocol; the blocked window opens at the first post-vote round.
        if (event.a >= 1) {
          OpenWindow& window = terminating[{event.txn, event.site}];
          if (window.start == kUnset) window.start = event.time;
        }
        break;
      case trace::EventType::kSiteCrash: {
        // The recovery window opens at the crash; a re-crash during an
        // open window (double fault) keeps the earliest start, so the
        // sample covers the whole unavailability interval.
        OpenWindow& window = recovering[event.site];
        if (window.start == kUnset) window.start = event.time;
        break;
      }
      case trace::EventType::kRecoveryEnd:
        if (auto it = recovering.find(event.site);
            it != recovering.end() && it->second.start != kUnset) {
          profile.of(Phase::kRecovery)
              .Add(static_cast<double>(event.time - it->second.start));
          recovering.erase(it);
        }
        break;
      case trace::EventType::kTermResolve: {
        const std::pair<TxnId, SiteId> key{event.txn, event.site};
        if (auto it = terminating.find(key); it != terminating.end()) {
          profile.of(Phase::kTermination)
              .Add(static_cast<double>(event.time - it->second.start));
          terminating.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [id, txn] : txns) {
    if (txn.submit == kUnset || txn.finish == kUnset) continue;  // unfinished
    ++profile.txns_profiled;
    if (txn.committed) ++profile.txns_committed;

    // Execute runs to the first boundary the transaction actually reached:
    // an early-decided abort never sends a VOTE-REQ, so its pre-decision
    // time is all execution.
    const SimTime exec_end = txn.first_votereq != kUnset ? txn.first_votereq
                             : txn.decide != kUnset      ? txn.decide
                                                         : txn.finish;
    profile.of(Phase::kExecute)
        .Add(static_cast<double>(exec_end - txn.submit));

    if (txn.first_votereq != kUnset) {
      SimTime vote_end = exec_end;
      if (txn.last_vote != kUnset && txn.last_vote >= exec_end) {
        vote_end = txn.last_vote;
      } else if (txn.decide != kUnset && txn.decide >= exec_end) {
        vote_end = txn.decide;
      }
      profile.of(Phase::kVoting)
          .Add(static_cast<double>(vote_end - exec_end));
      if (txn.decide != kUnset && txn.decide >= vote_end) {
        profile.of(Phase::kDecision)
            .Add(static_cast<double>(txn.decide - vote_end));
      }
    }
    if (txn.decide != kUnset && txn.finish >= txn.decide) {
      profile.of(Phase::kAck)
          .Add(static_cast<double>(txn.finish - txn.decide));
    }
  }
  return profile;
}

}  // namespace o2pc::telemetry
