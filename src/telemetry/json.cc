#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace o2pc::telemetry {

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNullValue;
  if (kind != Kind::kObject) return kNullValue;
  const auto it = object.find(key);
  return it == object.end() ? kNullValue : it->second;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = StrCat("offset ", pos_, ": ", reason);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(StrCat("expected '", c, "'"));
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseKeyword(text_[pos_] == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseKeyword(const std::string& word, JsonValue* out) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Fail(StrCat("expected '", word, "'"));
    }
    pos_ += word.size();
    if (word == "null") {
      out->kind = JsonValue::Kind::kNull;
    } else {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = word == "true";
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // The writer never emits \u escapes; decode the code point
          // naively (no surrogate pairs) so foreign files still parse.
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).Parse(out);
}

}  // namespace o2pc::telemetry
