#include "telemetry/coverage.h"

#include "common/string_util.h"

namespace o2pc::telemetry {

const char* FaultProductionName(int index) {
  switch (index) {
    case 0:
      return "crash";
    case 1:
      return "crash_at";
    case 2:
      return "partition";
    case 3:
      return "drop";
    case 4:
      return "delay";
    case 5:
      return "coordinator_crash";
    case 6:
      return "duplicate";
    case 7:
      return "reorder";
    case 8:
      return "oneway_partition";
    case 9:
      return "gray";
    case 10:
      return "crash_restart";
    default:
      return "unknown";
  }
}

const char* OracleVerdictName(OracleVerdict verdict) {
  switch (verdict) {
    case OracleVerdict::kPass:
      return "pass";
    case OracleVerdict::kTraceViolation:
      return "trace_violation";
    case OracleVerdict::kSgViolation:
      return "sg_violation";
    case OracleVerdict::kAuditViolation:
      return "audit_violation";
  }
  return "unknown";
}

void CoverageMap::Merge(const CoverageMap& other) {
  for (std::size_t i = 0; i < step_hits.size(); ++i) {
    step_hits[i] += other.step_hits[i];
  }
  for (std::size_t i = 0; i < message_hits.size(); ++i) {
    message_hits[i] += other.message_hits[i];
  }
  for (std::size_t i = 0; i < fault_hits.size(); ++i) {
    fault_hits[i] += other.fault_hits[i];
  }
  for (std::size_t i = 0; i < verdict_hits.size(); ++i) {
    verdict_hits[i] += other.verdict_hits[i];
  }
  for (std::size_t i = 0; i < production_verdict_hits.size(); ++i) {
    production_verdict_hits[i] += other.production_verdict_hits[i];
  }
}

std::vector<std::string> CoverageMap::UnhitCells() const {
  std::vector<std::string> unhit;
  for (int i = 0; i < core::kNumProtocolSteps; ++i) {
    if (step_hits[i] == 0) {
      unhit.push_back(StrCat(
          "step:", core::ProtocolStepName(static_cast<core::ProtocolStep>(i))));
    }
  }
  for (int i = 0; i < kNumFaultProductions; ++i) {
    if (fault_hits[i] == 0) {
      unhit.push_back(StrCat("fault:", FaultProductionName(i)));
    }
  }
  // Matrix gate, pass column only: each production must appear in at least
  // one run the whole oracle battery judged clean. (The violation columns
  // are unreachable in a healthy sweep, so gating them would always fail.)
  for (int i = 0; i < kNumFaultProductions; ++i) {
    if (production_verdict_hits[ProductionVerdictCell(
            i, static_cast<int>(OracleVerdict::kPass))] == 0) {
      unhit.push_back(StrCat("fault_verdict:", FaultProductionName(i),
                             "/pass"));
    }
  }
  return unhit;
}

std::uint64_t CoverageMap::Fingerprint() const {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  auto fold = [&hash](std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xff;
      hash *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  for (std::uint64_t v : step_hits) fold(v);
  for (std::uint64_t v : message_hits) fold(v);
  for (std::uint64_t v : fault_hits) fold(v);
  for (std::uint64_t v : verdict_hits) fold(v);
  for (std::uint64_t v : production_verdict_hits) fold(v);
  return hash;
}

}  // namespace o2pc::telemetry
