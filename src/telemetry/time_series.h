#ifndef O2PC_TELEMETRY_TIME_SERIES_H_
#define O2PC_TELEMETRY_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

/// \file
/// Fixed-interval simulated-time sampling of system gauges: lock-table
/// occupancy (held + waiting requests summed over every site), waits-for
/// edges, in-flight messages, and event-queue depth — how contention and
/// protocol traffic evolve over a run, rendered as sparklines in the HTML
/// report.
///
/// The sampler's timer events ride the DistributedSystem idle-timer
/// registry (NoteIdleTimerScheduled / HasLiveWork), so sampling never
/// keeps the simulation alive: the series simply ends when only timers
/// remain. Sampling reads gauges and schedules one timer per tick — it
/// never perturbs protocol event ordering or touches any RNG, so journals
/// and fingerprints are identical with sampling on or off.

namespace o2pc::core {
class DistributedSystem;
}

namespace o2pc::telemetry {

/// One gauge snapshot at simulated time `time`.
struct TimeSample {
  SimTime time = 0;
  std::uint64_t locks_held = 0;
  std::uint64_t lock_waiters = 0;
  std::uint64_t waits_edges = 0;
  std::uint64_t msgs_in_flight = 0;
  std::uint64_t queue_depth = 0;

  friend bool operator==(const TimeSample&, const TimeSample&) = default;
};

struct TimeSeries {
  Duration interval = 0;
  std::vector<TimeSample> samples;

  friend bool operator==(const TimeSeries&, const TimeSeries&) = default;
};

/// Samples `system`'s gauges every `interval` of simulated time, starting
/// at the first interval after Start(). Must outlive the simulation run.
class TimeSeriesSampler {
 public:
  TimeSeriesSampler(core::DistributedSystem* system, Duration interval);
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Schedules the first sample. Call after submitting work (or before
  /// Run); with no live work pending, no sample is ever taken.
  void Start();

  const TimeSeries& series() const { return series_; }

 private:
  void ScheduleNext();

  core::DistributedSystem* system_;  // not owned
  TimeSeries series_;
};

}  // namespace o2pc::telemetry

#endif  // O2PC_TELEMETRY_TIME_SERIES_H_
