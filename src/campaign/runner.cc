#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "campaign/injector.h"
#include "campaign/shrink.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "exec/run_executor.h"
#include "exec/world_pool.h"
#include "telemetry/time_series.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "workload/generator.h"

namespace o2pc::campaign {

std::uint64_t Fingerprint(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

/// The campaign's system tuning. Outages and heals in the built-in
/// templates stay under ~80ms, so a generous resend budget (300 retries
/// starting at 15ms, exponential with a 120ms cap) guarantees every
/// survivable fault drains — oracle violations then mean protocol bugs,
/// not an injector that out-lasted the retransmission safety net. The
/// participant-side termination protocol is armed so that a *permanent*
/// coordinator outage ("coordinator_outage" template) leaves no
/// participant wedged: after ~30ms without a DECISION the participant
/// asks the coordinator's recovery agent (DECISION-REQ), then escalates
/// to cooperative termination against its peers.
core::SystemOptions MakeSystemOptions(const CampaignRunConfig& config) {
  core::SystemOptions options;
  options.num_sites = config.num_sites;
  options.keys_per_site = config.keys_per_site;
  options.seed = config.seed;
  options.protocol.protocol = config.protocol;
  options.protocol.resend_timeout = Millis(15);
  options.protocol.max_resends = 300;
  options.protocol.retry_backoff_multiplier = 2.0;
  options.protocol.retry_backoff_cap = Millis(120);
  options.protocol.coordinator_crash_probability = 0.0;
  options.protocol.coordinator_recovery_delay = Millis(40);
  options.protocol.decision_timeout = Millis(30);
  options.protocol.decision_req_attempts = 2;
  options.protocol.termination_budget = 20;
  // Well above lock_wait_timeout (300ms) times the sites-per-txn fan-out,
  // so only a genuinely vanished coordinator trips the pre-vote abort.
  options.protocol.prevote_timeout = Seconds(2);
  options.network.duplicate_copies = config.duplicate_copies;
  options.network.duplicate_filter = config.duplicate_filter;
  return options;
}

workload::WorkloadOptions MakeWorkloadOptions(const CampaignRunConfig& config) {
  workload::WorkloadOptions options;
  options.num_global_txns = config.num_globals;
  options.num_local_txns = config.num_locals;
  options.min_sites_per_txn = std::min(2, config.num_sites);
  options.max_sites_per_txn = std::min(3, config.num_sites);
  options.vote_abort_probability = config.vote_abort_probability;
  options.semantic_ops = true;
  options.mean_global_interarrival = Millis(8);
  options.mean_local_interarrival = Millis(4);
  options.seed = config.seed * 31 + 7;
  return options;
}

/// Classifies one violation message into its verdict category by oracle
/// prefix.
telemetry::OracleVerdict ClassifyViolation(const std::string& violation) {
  if (violation.rfind("trace:", 0) == 0) {
    return telemetry::OracleVerdict::kTraceViolation;
  }
  if (violation.rfind("sg:", 0) == 0) {
    return telemetry::OracleVerdict::kSgViolation;
  }
  return telemetry::OracleVerdict::kAuditViolation;
}

/// Classifies oracle violations into verdict-coverage cells (one count per
/// violation; one kPass for a clean run).
void RecordVerdicts(const OracleReport& oracle, telemetry::CoverageMap* map) {
  if (oracle.ok()) {
    map->RecordVerdict(telemetry::OracleVerdict::kPass);
    return;
  }
  for (const std::string& violation : oracle.violations) {
    map->RecordVerdict(ClassifyViolation(violation));
  }
}

/// The run's verdict *categories*, deduplicated — the row set crossed with
/// every fault production that fired (each matrix cell counts runs, not
/// violations, so the matrix folds identically at every job count).
std::vector<telemetry::OracleVerdict> VerdictCategories(
    const OracleReport& oracle) {
  if (oracle.ok()) return {telemetry::OracleVerdict::kPass};
  std::vector<telemetry::OracleVerdict> categories;
  for (const std::string& violation : oracle.violations) {
    const telemetry::OracleVerdict verdict = ClassifyViolation(violation);
    if (std::find(categories.begin(), categories.end(), verdict) ==
        categories.end()) {
      categories.push_back(verdict);
    }
  }
  return categories;
}

}  // namespace

CampaignRunResult RunOne(const CampaignRunConfig& config) {
  core::DistributedSystem system(MakeSystemOptions(config));
  const Value initial_total = system.TotalValue();

  trace::TraceRecorder recorder;
  CampaignRunResult result;
  std::array<std::uint64_t, kNumFaultKinds> fired{};
  {
    trace::ScopedTrace scope(&recorder, &system.simulator());
    if (config.collect_telemetry) {
      // Rides the observer slot, so it composes with the injector's
      // StepHook instead of displacing it.
      telemetry::CoverageMap* coverage = &result.telemetry.coverage;
      system.SetStepObserver([coverage](const core::StepContext& context) {
        coverage->RecordStep(context.step);
      });
    }
    FaultInjector injector(&system, config.plan);
    injector.Arm();
    workload::WorkloadGenerator generator(config.num_sites,
                                          config.keys_per_site,
                                          MakeWorkloadOptions(config));
    generator.Drive(system);
    std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
    if (config.collect_telemetry && config.collect_time_series) {
      sampler = std::make_unique<telemetry::TimeSeriesSampler>(
          &system, config.time_series_interval);
      sampler->Start();
    }
    system.Run();
    result.faults_triggered = injector.faults_triggered();
    if (config.collect_telemetry) {
      fired = injector.FiredByKind();
      for (int kind = 0; kind < kNumFaultKinds; ++kind) {
        if (fired[kind] > 0) {
          result.telemetry.coverage.RecordFault(kind, fired[kind]);
        }
      }
      if (sampler != nullptr) {
        result.telemetry.series = sampler->series();
        result.telemetry.has_series = true;
      }
    }
  }

  // Per-site recovery timeline: one window per kSiteCrash, filled in by
  // the matching kRecoveryBegin/kRecoveryEnd (a re-crash during recovery
  // opens a fresh window; the superseded one keeps end == 0).
  for (const trace::TraceEvent& event : recorder.events()) {
    switch (event.type) {
      case trace::EventType::kSiteCrash: {
        RecoveryWindow window;
        window.site = event.site;
        window.crash_time = event.time;
        result.recovery_windows.push_back(window);
        break;
      }
      case trace::EventType::kRecoveryBegin:
        for (auto it = result.recovery_windows.rbegin();
             it != result.recovery_windows.rend(); ++it) {
          if (it->site == event.site && it->begin == 0) {
            it->begin = event.time;
            it->in_doubt = event.a;
            break;
          }
        }
        break;
      case trace::EventType::kRecoveryEnd:
        for (auto it = result.recovery_windows.rbegin();
             it != result.recovery_windows.rend(); ++it) {
          if (it->site == event.site && it->begin != 0 && it->end == 0) {
            it->end = event.time;
            it->unresolved = event.b;
            break;
          }
        }
        break;
      default:
        break;
    }
  }

  result.oracle = RunOracles(system, recorder.events(), initial_total);
  if (config.collect_telemetry) {
    telemetry::CollectFromJournal(recorder.events(), &result.telemetry);
    RecordVerdicts(result.oracle, &result.telemetry.coverage);
    // Cross every production that fired with the run's verdict categories.
    for (const telemetry::OracleVerdict verdict :
         VerdictCategories(result.oracle)) {
      for (int kind = 0; kind < kNumFaultKinds; ++kind) {
        if (fired[kind] > 0) {
          result.telemetry.coverage.RecordProductionVerdict(kind, verdict);
        }
      }
    }
  }
  result.journal = trace::ExportJsonlString(recorder.events());
  result.fingerprint = Fingerprint(result.journal);
  result.committed = system.stats().Count("globals_committed");
  result.aborted = system.stats().Count("globals_aborted");
  result.compensations = system.stats().Count("compensations_committed");
  result.site_crashes = system.stats().Count("site_crashes");
  result.coordinator_crashes = system.stats().Count("coordinator_crashes");
  result.messages_dropped = system.network().stats().dropped;
  result.makespan = system.simulator().Now();
  return result;
}

std::string ArtifactToString(const CampaignRunConfig& config) {
  std::ostringstream out;
  out << "protocol=" << (config.protocol == core::CommitProtocol::kOptimistic
                             ? "o2pc"
                             : "2pc")
      << "\n";
  out << "seed=" << config.seed << "\n";
  out << "sites=" << config.num_sites << "\n";
  out << "keys=" << config.keys_per_site << "\n";
  out << "globals=" << config.num_globals << "\n";
  out << "locals=" << config.num_locals << "\n";
  out << "abort_prob=" << config.vote_abort_probability << "\n";
  // Only non-default duplication knobs are serialized, so pre-existing
  // artifacts round-trip byte-identically.
  if (config.duplicate_copies != 0) {
    out << "duplicate_copies=" << config.duplicate_copies << "\n";
  }
  if (config.duplicate_filter != -1) {
    out << "duplicate_filter=" << config.duplicate_filter << "\n";
  }
  if (!config.template_name.empty()) {
    out << "template=" << config.template_name << "\n";
  }
  out << "plan_begin\n" << config.plan.ToString() << "plan_end\n";
  return out.str();
}

bool ParseArtifact(const std::string& text, CampaignRunConfig* config,
                   std::string* error) {
  CampaignRunConfig parsed;
  std::istringstream lines(text);
  std::string line;
  std::ostringstream plan_text;
  bool in_plan = false;
  bool saw_plan = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "plan_begin") {
      in_plan = true;
      saw_plan = true;
      continue;
    }
    if (line == "plan_end") {
      in_plan = false;
      continue;
    }
    if (in_plan) {
      plan_text << line << "\n";
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "malformed artifact line: " + line;
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "protocol") {
        if (value == "o2pc") {
          parsed.protocol = core::CommitProtocol::kOptimistic;
        } else if (value == "2pc") {
          parsed.protocol = core::CommitProtocol::kTwoPhaseCommit;
        } else {
          if (error != nullptr) *error = "unknown protocol: " + value;
          return false;
        }
      } else if (key == "seed") {
        parsed.seed = std::stoull(value);
      } else if (key == "sites") {
        parsed.num_sites = std::stoi(value);
      } else if (key == "keys") {
        parsed.keys_per_site = std::stoll(value);
      } else if (key == "globals") {
        parsed.num_globals = std::stoi(value);
      } else if (key == "locals") {
        parsed.num_locals = std::stoi(value);
      } else if (key == "abort_prob") {
        parsed.vote_abort_probability = std::stod(value);
      } else if (key == "duplicate_copies") {
        parsed.duplicate_copies = std::stoi(value);
      } else if (key == "duplicate_filter") {
        parsed.duplicate_filter = std::stoi(value);
      } else if (key == "template") {
        parsed.template_name = value;
      } else {
        if (error != nullptr) *error = "unknown artifact key: " + key;
        return false;
      }
    } catch (...) {
      if (error != nullptr) *error = "bad artifact value: " + line;
      return false;
    }
  }
  if (!saw_plan) {
    if (error != nullptr) *error = "artifact has no plan_begin section";
    return false;
  }
  if (!FaultPlan::Parse(plan_text.str(), &parsed.plan, error)) return false;
  *config = std::move(parsed);
  return true;
}

std::string WriteArtifact(const CampaignRunConfig& config,
                          const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ostringstream name;
  name << "campaign_fail_" << config.seed << "_"
       << (config.template_name.empty() ? "adhoc" : config.template_name)
       << "_"
       << (config.protocol == core::CommitProtocol::kOptimistic ? "o2pc"
                                                                : "2pc")
       << ".plan";
  const std::string path = (std::filesystem::path(dir) / name.str()).string();
  std::ofstream out(path);
  if (!out) return "";
  out << ArtifactToString(config);
  return out ? path : "";
}

bool LoadArtifact(const std::string& path, CampaignRunConfig* config,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseArtifact(text.str(), config, error);
}

std::uint64_t CampaignReport::CombinedFingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::uint64_t fp : fingerprints) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (fp >> (byte * 8)) & 0xff;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

namespace {

/// The i-th run of the sweep grid: a pure function of (options, i), so the
/// full matrix can be materialized up front and executed in any order.
/// Mixed-radix: protocol fastest, then template, then seed — every
/// {seed, template} is exercised under both protocols back to back.
CampaignRunConfig GridConfig(const CampaignOptions& options,
                             const std::vector<std::string>& templates,
                             int i) {
  const int num_protocols = static_cast<int>(options.protocols.size());
  const int num_templates = static_cast<int>(templates.size());
  CampaignRunConfig config;
  config.protocol = options.protocols[i % num_protocols];
  config.template_name = templates[(i / num_protocols) % num_templates];
  config.seed =
      options.base_seed +
      static_cast<std::uint64_t>(i / (num_protocols * num_templates));
  config.num_sites = options.num_sites;
  config.keys_per_site = options.keys_per_site;
  config.num_globals = options.num_globals;
  config.num_locals = options.num_locals;
  config.vote_abort_probability = options.vote_abort_probability;
  config.duplicate_copies = options.duplicate_copies;
  config.duplicate_filter = options.duplicate_filter;
  config.plan =
      GeneratePlan(config.template_name, config.seed, config.num_sites);
  return config;
}

}  // namespace

CampaignReport RunCampaign(const CampaignOptions& options, bool verbose) {
  CampaignReport report;
  const std::vector<std::string>& templates =
      options.templates.empty() ? DefaultTemplateNames() : options.templates;
  O2PC_CHECK(!options.protocols.empty());
  const auto start = std::chrono::steady_clock::now();

  exec::RunExecutor executor(options.jobs);
  telemetry::TelemetryAccumulator accumulator;
  const int num_protocols = static_cast<int>(options.protocols.size());
  // Runs execute in waves so the wall-clock budget is honored between
  // waves; results land in sweep-ordered slots, and **all** aggregation,
  // reporting, shrinking, and artifact writing happens serially below in
  // sweep order — the report is byte-identical for every job count (the
  // budget, when set, is the one wall-clock-dependent cutoff, exactly as
  // in the serial sweep).
  const int wave = std::max(1, executor.jobs());
  for (int wave_start = 0; wave_start < options.runs; wave_start += wave) {
    if (options.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options.time_budget_seconds) {
        report.budget_exhausted = true;
        break;
      }
    }
    const int wave_runs = std::min(wave, options.runs - wave_start);
    std::vector<CampaignRunConfig> configs;
    configs.reserve(wave_runs);
    for (int w = 0; w < wave_runs; ++w) {
      CampaignRunConfig config = GridConfig(options, templates, wave_start + w);
      if (options.collect_telemetry) {
        config.collect_telemetry = true;
        config.time_series_interval = options.time_series_interval;
        // Sample a time-series for the first run of each protocol (the
        // grid's fastest-varying radix): a fixed set of run *indices*, so
        // the sampled series are identical for every job count.
        config.collect_time_series = wave_start + w < num_protocols;
      }
      configs.push_back(std::move(config));
    }
    // Each worker recycles its thread-local world arena per run, and
    // opening a run rewinds that worker's previous one. A worker executes
    // many configs per wave, so a result must leave the lambda with no
    // arena-backed storage: close the scope (disarm — the arena stays
    // readable until the worker's next open), then copy the result, which
    // re-allocates every string and vector on the real heap.
    const bool reuse = options.reuse_worlds && exec::WorldPool::Enabled();
    const std::vector<CampaignRunResult> results =
        executor.Map<CampaignRunResult>(configs.size(), [&](std::size_t w) {
          if (!reuse) return RunOne(configs[w]);
          std::optional<exec::WorldPool::ScopedRun> scope(std::in_place);
          const CampaignRunResult armed = RunOne(configs[w]);
          scope.reset();
          CampaignRunResult escaped(armed);  // deep copy, off-arena
          return escaped;
        });

    for (int w = 0; w < wave_runs; ++w) {
      const CampaignRunConfig& config = configs[w];
      const CampaignRunResult& result = results[w];
      ++report.runs_completed;
      report.total_faults_triggered +=
          static_cast<std::uint64_t>(result.faults_triggered);
      report.fingerprints.push_back(result.fingerprint);
      if (options.collect_telemetry) {
        const char* protocol_name =
            config.protocol == core::CommitProtocol::kOptimistic ? "o2pc"
                                                                 : "2pc";
        accumulator.AddRun(protocol_name, result.telemetry);
        if (result.telemetry.has_series) {
          accumulator.AddSeries(
              StrCat(protocol_name, " seed=", config.seed,
                     " template=", config.template_name),
              result.telemetry.series);
        }
      }
      if (verbose) {
        std::cerr << "[campaign] run " << wave_start + w
                  << " seed=" << config.seed
                  << " template=" << config.template_name << " protocol="
                  << (config.protocol == core::CommitProtocol::kOptimistic
                          ? "o2pc"
                          : "2pc")
                  << " faults=" << result.faults_triggered
                  << (result.ok() ? " ok" : " FAIL") << "\n";
      }
      if (result.ok()) continue;

      ++report.runs_failed;
      CampaignFailure failure;
      failure.config = config;
      failure.oracle = result.oracle;
      failure.shrunk_plan = config.plan;
      if (options.shrink_failures) {
        failure.shrunk_plan = ShrinkFaultPlan(config).plan;
      }
      if (!options.artifact_dir.empty()) {
        CampaignRunConfig artifact_config = config;
        artifact_config.plan = failure.shrunk_plan;
        failure.artifact_path =
            WriteArtifact(artifact_config, options.artifact_dir);
      }
      report.failures.push_back(std::move(failure));
    }
  }
  if (options.collect_telemetry) {
    report.telemetry = accumulator.Build();
    report.telemetry_collected = true;
  }
  return report;
}

}  // namespace o2pc::campaign
