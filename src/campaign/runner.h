#ifndef O2PC_CAMPAIGN_RUNNER_H_
#define O2PC_CAMPAIGN_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/audit.h"
#include "campaign/fault_plan.h"
#include "core/protocol.h"
#include "telemetry/report.h"

/// \file
/// The fault-campaign runner: sweeps randomized fleets of simulations —
/// seeds x fault-plan templates x {O2PC, 2PC} — with a FaultInjector
/// executing each plan and the oracle battery (campaign/audit.h) judging
/// each run. Every run is identified by its `{seed, plan}` pair and its
/// JSONL journal fingerprint; a failing pair is written as a replayable
/// artifact and greedily shrunk (campaign/shrink.h) to a minimal plan.

namespace o2pc::campaign {

/// Everything needed to reproduce one run bit-identically.
struct CampaignRunConfig {
  core::CommitProtocol protocol = core::CommitProtocol::kOptimistic;
  std::uint64_t seed = 1;
  FaultPlan plan;
  int num_sites = 4;
  DataKey keys_per_site = 24;
  int num_globals = 24;
  int num_locals = 12;
  double vote_abort_probability = 0.15;
  /// Blanket at-least-once delivery at the net layer: every message
  /// matching `duplicate_filter` (a net::MessageType as int; -1 = all) is
  /// delivered `1 + duplicate_copies` times. The idempotence property
  /// sweeps run the whole campaign under this; 0 disables it.
  int duplicate_copies = 0;
  int duplicate_filter = -1;
  /// Campaign provenance, carried into artifacts (informational).
  std::string template_name;
  /// Capture phase latencies + coverage for this run (telemetry is purely
  /// observational; journals and fingerprints are identical either way).
  bool collect_telemetry = false;
  /// Also sample the system gauges over simulated time (one series per
  /// sampled run; the campaign samples the first run of each protocol).
  bool collect_time_series = false;
  Duration time_series_interval = Millis(2);
};

/// One site's crash-to-recovered interval, extracted from the journal.
/// `end` == 0 means the site never completed recovery (permanent outage or
/// a re-crash superseded the phase); `begin` == 0 means the outage never
/// ended (no recovery phase started).
struct RecoveryWindow {
  SiteId site = kInvalidSite;
  SimTime crash_time = 0;
  SimTime begin = 0;
  SimTime end = 0;
  /// In-doubt subtransactions found by WAL analysis (kRecoveryBegin's a).
  std::int64_t in_doubt = 0;
  /// In-doubt left for DECISION-REQ / cooperative termination after
  /// marking catch-up (kRecoveryEnd's b).
  std::int64_t unresolved = 0;
};

/// Outcome of one run.
struct CampaignRunResult {
  OracleReport oracle;
  /// The run's full JSONL trace journal (the replay-comparison artifact).
  std::string journal;
  /// FNV-1a 64-bit fingerprint of `journal`; equal fingerprints across
  /// replays certify deterministic reproduction.
  std::uint64_t fingerprint = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t compensations = 0;
  std::uint64_t site_crashes = 0;
  std::uint64_t coordinator_crashes = 0;
  std::uint64_t messages_dropped = 0;
  int faults_triggered = 0;
  SimTime makespan = 0;
  /// Per-site recovery timeline, one entry per crash, in journal order
  /// (--replay prints it for crash_restart plans).
  std::vector<RecoveryWindow> recovery_windows;
  /// Populated when config.collect_telemetry was set.
  telemetry::RunTelemetry telemetry;

  bool ok() const { return oracle.ok(); }
};

/// FNV-1a 64-bit (for journal fingerprints).
std::uint64_t Fingerprint(const std::string& text);

/// Executes one run: builds the system, arms the injector, drives the
/// workload, drains the simulation, runs the oracles, and exports the
/// journal.
CampaignRunResult RunOne(const CampaignRunConfig& config);

/// Campaign sweep parameters.
struct CampaignOptions {
  /// Total runs across the protocol x template x seed grid.
  int runs = 100;
  std::uint64_t base_seed = 1;
  /// Templates swept round-robin; empty = DefaultTemplateNames().
  std::vector<std::string> templates;
  /// Protocols swept round-robin.
  std::vector<core::CommitProtocol> protocols = {
      core::CommitProtocol::kOptimistic,
      core::CommitProtocol::kTwoPhaseCommit,
  };
  /// Wall-clock budget in seconds (0 = unlimited); the sweep stops early —
  /// reporting how many runs it covered — when exceeded.
  double time_budget_seconds = 0.0;
  /// Worker threads for the sweep (exec::RunExecutor). 1 = serial; N fans
  /// independent runs across N workers; <= 0 = one per hardware thread.
  /// Artifacts, fingerprints, failure ordering, and shrinking are
  /// byte-identical for every value — results are collected into
  /// sweep-ordered slots before any aggregation or reporting.
  int jobs = 1;
  /// Directory for failure artifacts (empty = don't write).
  std::string artifact_dir;
  /// Shrink each failing plan before reporting it.
  bool shrink_failures = true;
  /// Per-run workload sizing.
  int num_sites = 4;
  DataKey keys_per_site = 24;
  int num_globals = 24;
  int num_locals = 12;
  double vote_abort_probability = 0.15;
  /// Blanket duplication for every run of the sweep (see
  /// CampaignRunConfig::duplicate_copies) — the duplication-enabled
  /// campaign mode the idempotence acceptance gate runs at volume.
  int duplicate_copies = 0;
  int duplicate_filter = -1;
  /// Collect sweep telemetry (phase latencies, coverage map, time-series
  /// for the first run of each protocol) into CampaignReport::telemetry.
  bool collect_telemetry = false;
  Duration time_series_interval = Millis(2);
  /// Recycle one thread-local world arena per worker (exec::WorldPool):
  /// each run is bump-allocated into its worker's rewound arena instead of
  /// paying ~150k heap round trips. Behavior — journals, fingerprints,
  /// telemetry, artifacts — is byte-identical either way (pinned by
  /// determinism_golden_test); this only moves memory. Ignored when the
  /// arena machinery is unavailable (ASan builds, O2PC_RUN_ARENA=off).
  bool reuse_worlds = true;
};

/// One failing run, with its (possibly shrunk) reproduction recipe.
struct CampaignFailure {
  CampaignRunConfig config;
  /// The minimal failing plan (== config.plan when shrinking is off).
  FaultPlan shrunk_plan;
  OracleReport oracle;
  /// Path of the written artifact (empty when artifact_dir was empty).
  std::string artifact_path;
};

struct CampaignReport {
  int runs_completed = 0;
  int runs_failed = 0;
  bool budget_exhausted = false;
  std::uint64_t total_faults_triggered = 0;
  std::vector<CampaignFailure> failures;
  /// Per-run journal fingerprints in sweep order — the campaign's
  /// determinism artifact: equal vectors across job counts (and replays)
  /// certify byte-identical journals.
  std::vector<std::uint64_t> fingerprints;
  /// Sweep telemetry summary; valid when `telemetry_collected`. Folded
  /// serially in sweep order, so it is byte-identical for every job count.
  telemetry::SweepTelemetry telemetry;
  bool telemetry_collected = false;

  bool ok() const { return failures.empty(); }

  /// FNV-1a fold of `fingerprints` — one number summarizing every journal
  /// byte of the sweep (printed by the CLI, compared by exec_test).
  std::uint64_t CombinedFingerprint() const;
};

/// Runs the sweep. Progress lines go to stderr when `verbose`.
CampaignReport RunCampaign(const CampaignOptions& options,
                           bool verbose = false);

/// Serializes `config` (header + plan) as a self-contained replay artifact.
std::string ArtifactToString(const CampaignRunConfig& config);

/// Parses an artifact produced by ArtifactToString. Returns false (setting
/// `error` if non-null) on malformed input.
bool ParseArtifact(const std::string& text, CampaignRunConfig* config,
                   std::string* error = nullptr);

/// Writes/reads an artifact file. WriteArtifact returns the path written
/// (empty on I/O failure).
std::string WriteArtifact(const CampaignRunConfig& config,
                          const std::string& dir);
bool LoadArtifact(const std::string& path, CampaignRunConfig* config,
                  std::string* error = nullptr);

}  // namespace o2pc::campaign

#endif  // O2PC_CAMPAIGN_RUNNER_H_
