#ifndef O2PC_CAMPAIGN_AUDIT_H_
#define O2PC_CAMPAIGN_AUDIT_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "core/system.h"
#include "trace/trace.h"

/// \file
/// The campaign's oracle battery. One fleet run is judged by three
/// independent oracles, each contributing prefixed violation strings:
///
///   trace:  the I1–I7 protocol-invariant checker over the event journal
///           (trace/checker.h);
///   sg:     the paper's §5 serialization-graph criterion + atomicity of
///           compensation (sg/correctness.h);
///   audit:  a cross-site end-state audit new to the campaign — the
///           protocol drained (every submitted global finished), no site
///           retains an in-doubt (pending-exposed or pending-prepared)
///           subtransaction, semantic conservation holds (the sum of all
///           values equals the initial sum), and commit durability: every
///           global the trace shows as committed has a kFinalCommit at
///           every site where it locally committed or prepared, and no
///           compensation ever ran for it;
///   recovery: the crash-restart oracle — every site that came back up ran
///           a complete recovery phase (kRecoveryBegin/kRecoveryEnd pair,
///           none left wedged), and replaying each untruncated WAL
///           (after-images in LSN order, undo at aborts) reproduces the
///           site's live table exactly.
///
/// A run passes only when all oracle lists are empty.

namespace o2pc::campaign {

/// Combined verdict of one run.
struct OracleReport {
  /// Violations from all oracles, prefixed "trace:", "sg:", "audit:",
  /// "liveness:" or "recovery:".
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// "ok" or the violations joined by newlines.
  std::string Summary() const;
};

/// Runs the full oracle battery over a drained system. `events` is the
/// run's trace journal; `initial_total` the pre-run TotalValue().
OracleReport RunOracles(const core::DistributedSystem& system,
                        const std::vector<trace::TraceEvent>& events,
                        Value initial_total);

}  // namespace o2pc::campaign

#endif  // O2PC_CAMPAIGN_AUDIT_H_
