#include "campaign/audit.h"

#include <map>
#include <set>
#include <sstream>

#include "sg/correctness.h"
#include "trace/checker.h"

namespace o2pc::campaign {

std::string OracleReport::Summary() const {
  if (ok()) return "ok";
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << "\n";
    out << violations[i];
  }
  return out.str();
}

namespace {

/// audit: commit durability, reconstructed from the journal. For every
/// incarnation the coordinator finished as committed, every site that
/// locally committed (O2PC) or prepared (2PC) its subtransaction must show
/// a final commit there, and no compensation may ever have completed for it.
void CheckCommitDurability(const std::vector<trace::TraceEvent>& events,
                           std::vector<std::string>* violations) {
  std::set<TxnId> committed;
  std::map<TxnId, std::set<SiteId>> exposed_sites;  // kLocalCommit/kPrepare
  std::map<TxnId, std::set<SiteId>> final_sites;    // kFinalCommit
  std::map<TxnId, std::set<SiteId>> compensated;    // kCompensationEnd
  for (const trace::TraceEvent& event : events) {
    switch (event.type) {
      case trace::EventType::kTxnFinish:
        if (event.a != 0) committed.insert(event.txn);
        break;
      case trace::EventType::kLocalCommit:
      case trace::EventType::kPrepare:
        exposed_sites[event.txn].insert(event.site);
        break;
      case trace::EventType::kFinalCommit:
        final_sites[event.txn].insert(event.site);
        break;
      case trace::EventType::kCompensationEnd:
        compensated[event.txn].insert(event.site);
        break;
      default:
        break;
    }
  }
  for (TxnId txn : committed) {
    if (auto it = exposed_sites.find(txn); it != exposed_sites.end()) {
      for (SiteId site : it->second) {
        if (!final_sites[txn].contains(site)) {
          std::ostringstream out;
          out << "audit: T" << txn << " committed but site " << site
              << " never finalized its local commit/prepare";
          violations->push_back(out.str());
        }
      }
    }
    if (auto it = compensated.find(txn); it != compensated.end()) {
      for (SiteId site : it->second) {
        std::ostringstream out;
        out << "audit: T" << txn << " committed but site " << site
            << " ran a compensation for it";
        violations->push_back(out.str());
      }
    }
  }
}

}  // namespace

OracleReport RunOracles(const core::DistributedSystem& system,
                        const std::vector<trace::TraceEvent>& events,
                        Value initial_total) {
  OracleReport report;

  // Oracle 1: protocol-invariant checker over the journal.
  const trace::CheckReport trace_report = trace::CheckTrace(events);
  for (const trace::TraceViolation& violation : trace_report.violations) {
    report.violations.push_back("trace: " + violation.ToString());
  }

  // Oracle 2: the §5 serialization-graph criterion.
  const sg::CorrectnessReport sg_report = system.Analyze();
  if (!sg_report.locally_serializable) {
    report.violations.push_back("sg: a local history is not serializable");
  }
  if (!sg_report.correct) {
    report.violations.push_back(
        "sg: global SG violates the paper's criterion (regular cycle)");
  }
  if (!sg_report.atomic_compensation) {
    report.violations.push_back(
        "sg: atomicity of compensation violated (dual read of T_i and CT_i)");
  }
  for (const std::string& violation : sg_report.violations) {
    report.violations.push_back("sg: " + violation);
  }

  // Oracle 3: cross-site end-state audit.
  if (system.globals_finished() != system.globals_submitted()) {
    std::ostringstream out;
    out << "audit: protocol did not drain (" << system.globals_finished()
        << "/" << system.globals_submitted() << " globals finished)";
    report.violations.push_back(out.str());
  }
  for (int i = 0; i < system.options().num_sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    for (const auto& pending : system.db(site).PendingExposedSubtxns()) {
      std::ostringstream out;
      out << "audit: site " << site << " left in doubt: T"
          << pending.global_id
          << " locally committed without a terminal decision";
      report.violations.push_back(out.str());
    }
    for (const auto& pending : system.db(site).PendingPreparedSubtxns()) {
      std::ostringstream out;
      out << "audit: site " << site << " left in doubt: T"
          << pending.global_id << " prepared without a terminal decision";
      report.violations.push_back(out.str());
    }
  }
  const Value final_total = system.TotalValue();
  if (final_total != initial_total) {
    std::ostringstream out;
    out << "audit: conservation violated: total value " << final_total
        << " != initial " << initial_total;
    report.violations.push_back(out.str());
  }
  CheckCommitDurability(events, &report.violations);

  return report;
}

}  // namespace o2pc::campaign
