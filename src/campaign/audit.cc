#include "campaign/audit.h"

#include <map>
#include <set>
#include <sstream>

#include "sg/correctness.h"
#include "trace/checker.h"

namespace o2pc::campaign {

std::string OracleReport::Summary() const {
  if (ok()) return "ok";
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << "\n";
    out << violations[i];
  }
  return out.str();
}

namespace {

/// audit: commit durability, reconstructed from the journal. For every
/// incarnation the coordinator finished as committed, every site that
/// locally committed (O2PC) or prepared (2PC) its subtransaction must show
/// a final commit there, and no compensation may ever have completed for it.
void CheckCommitDurability(const std::vector<trace::TraceEvent>& events,
                           std::vector<std::string>* violations) {
  std::set<TxnId> committed;
  std::map<TxnId, std::set<SiteId>> exposed_sites;  // kLocalCommit/kPrepare
  std::map<TxnId, std::set<SiteId>> final_sites;    // kFinalCommit
  std::map<TxnId, std::set<SiteId>> compensated;    // kCompensationEnd
  for (const trace::TraceEvent& event : events) {
    switch (event.type) {
      case trace::EventType::kTxnFinish:
        if (event.a != 0) committed.insert(event.txn);
        break;
      case trace::EventType::kLocalCommit:
      case trace::EventType::kPrepare:
        exposed_sites[event.txn].insert(event.site);
        break;
      case trace::EventType::kFinalCommit:
        final_sites[event.txn].insert(event.site);
        break;
      case trace::EventType::kCompensationEnd:
        compensated[event.txn].insert(event.site);
        break;
      default:
        break;
    }
  }
  for (TxnId txn : committed) {
    if (auto it = exposed_sites.find(txn); it != exposed_sites.end()) {
      for (SiteId site : it->second) {
        if (!final_sites[txn].contains(site)) {
          std::ostringstream out;
          out << "audit: T" << txn << " committed but site " << site
              << " never finalized its local commit/prepare";
          violations->push_back(out.str());
        }
      }
    }
    if (auto it = compensated.find(txn); it != compensated.end()) {
      for (SiteId site : it->second) {
        std::ostringstream out;
        out << "audit: T" << txn << " committed but site " << site
            << " ran a compensation for it";
        violations->push_back(out.str());
      }
    }
  }
}

}  // namespace

OracleReport RunOracles(const core::DistributedSystem& system,
                        const std::vector<trace::TraceEvent>& events,
                        Value initial_total) {
  OracleReport report;

  // Oracle 1: protocol-invariant checker over the journal.
  const trace::CheckReport trace_report = trace::CheckTrace(events);
  for (const trace::TraceViolation& violation : trace_report.violations) {
    report.violations.push_back("trace: " + violation.ToString());
  }

  // Oracle 2: the §5 serialization-graph criterion.
  const sg::CorrectnessReport sg_report = system.Analyze();
  if (!sg_report.locally_serializable) {
    report.violations.push_back("sg: a local history is not serializable");
  }
  if (!sg_report.correct) {
    report.violations.push_back(
        "sg: global SG violates the paper's criterion (regular cycle)");
  }
  if (!sg_report.atomic_compensation) {
    report.violations.push_back(
        "sg: atomicity of compensation violated (dual read of T_i and CT_i)");
  }
  for (const std::string& violation : sg_report.violations) {
    report.violations.push_back("sg: " + violation);
  }

  // Oracle 3: liveness. Heal-able-fault runs must fully drain. The one
  // tolerated wedge is a *permanently* crashed coordinator: nobody is left
  // to fire its completion callback, so its own incarnation may hang — but
  // nothing else may. Participants of such a transaction must still
  // terminate via DECISION-REQ / cooperative termination, which the
  // in-doubt audit below verifies (it runs unconditionally, at every site).
  std::set<TxnId> orphaned;
  {
    std::set<TxnId> finished;
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::kTxnFinish) {
        finished.insert(event.txn);
      }
    }
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::kCoordinatorCrash &&
          event.b == 1 && !finished.contains(event.txn)) {
        orphaned.insert(event.txn);
      }
    }
  }
  if (system.globals_finished() + orphaned.size() !=
      system.globals_submitted()) {
    std::ostringstream out;
    out << "liveness: protocol did not drain (" << system.globals_finished()
        << " finished + " << orphaned.size()
        << " orphaned by permanent coordinator crashes != "
        << system.globals_submitted() << " submitted)";
    report.violations.push_back(out.str());
  }
  // The orphan tolerance covers only the coordinator's own incarnation. An
  // orphaned transaction whose *decision was force-logged* is recoverable —
  // any up participant can learn it via DECISION-REQ to the home site's
  // recovery agent or via cooperative termination against its peers — so a
  // subtransaction still in doubt at an up site is a termination failure,
  // not an excusable casualty of the crash.
  {
    std::set<TxnId> decided;
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::kDecide) decided.insert(event.txn);
    }
    for (int i = 0; i < system.options().num_sites; ++i) {
      const SiteId site = static_cast<SiteId>(i);
      if (system.network().NodeDown(site)) continue;
      const auto flag = [&](TxnId txn) {
        if (!orphaned.contains(txn) || !decided.contains(txn)) return;
        std::ostringstream out;
        out << "liveness: T" << txn << " wedged at up site " << site
            << " though its logged decision is recoverable "
               "(DECISION-REQ / cooperative termination)";
        report.violations.push_back(out.str());
      };
      for (const auto& pending : system.db(site).PendingExposedSubtxns()) {
        flag(pending.global_id);
      }
      for (const auto& pending : system.db(site).PendingPreparedSubtxns()) {
        flag(pending.global_id);
      }
    }
  }

  // Oracle 4: cross-site end-state audit.
  for (int i = 0; i < system.options().num_sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    for (const auto& pending : system.db(site).PendingExposedSubtxns()) {
      std::ostringstream out;
      out << "audit: site " << site << " left in doubt: T"
          << pending.global_id
          << " locally committed without a terminal decision";
      report.violations.push_back(out.str());
    }
    for (const auto& pending : system.db(site).PendingPreparedSubtxns()) {
      std::ostringstream out;
      out << "audit: site " << site << " left in doubt: T"
          << pending.global_id << " prepared without a terminal decision";
      report.violations.push_back(out.str());
    }
  }
  const Value final_total = system.TotalValue();
  if (final_total != initial_total) {
    std::ostringstream out;
    out << "audit: conservation violated: total value " << final_total
        << " != initial " << initial_total;
    report.violations.push_back(out.str());
  }
  CheckCommitDurability(events, &report.violations);

  return report;
}

}  // namespace o2pc::campaign
