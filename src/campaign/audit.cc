#include "campaign/audit.h"

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "sg/correctness.h"
#include "storage/wal.h"
#include "trace/checker.h"

namespace o2pc::campaign {

std::string OracleReport::Summary() const {
  if (ok()) return "ok";
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << "\n";
    out << violations[i];
  }
  return out.str();
}

namespace {

/// audit: commit durability, reconstructed from the journal. For every
/// incarnation the coordinator finished as committed, every site that
/// locally committed (O2PC) or prepared (2PC) its subtransaction must show
/// a final commit there, and no compensation may ever have completed for it.
void CheckCommitDurability(const std::vector<trace::TraceEvent>& events,
                           std::vector<std::string>* violations) {
  std::set<TxnId> committed;
  std::map<TxnId, std::set<SiteId>> exposed_sites;  // kLocalCommit/kPrepare
  std::map<TxnId, std::set<SiteId>> final_sites;    // kFinalCommit
  std::map<TxnId, std::set<SiteId>> compensated;    // kCompensationEnd
  for (const trace::TraceEvent& event : events) {
    switch (event.type) {
      case trace::EventType::kTxnFinish:
        if (event.a != 0) committed.insert(event.txn);
        break;
      case trace::EventType::kLocalCommit:
      case trace::EventType::kPrepare:
        exposed_sites[event.txn].insert(event.site);
        break;
      case trace::EventType::kFinalCommit:
        final_sites[event.txn].insert(event.site);
        break;
      case trace::EventType::kCompensationEnd:
        compensated[event.txn].insert(event.site);
        break;
      default:
        break;
    }
  }
  for (TxnId txn : committed) {
    if (auto it = exposed_sites.find(txn); it != exposed_sites.end()) {
      for (SiteId site : it->second) {
        if (!final_sites[txn].contains(site)) {
          std::ostringstream out;
          out << "audit: T" << txn << " committed but site " << site
              << " never finalized its local commit/prepare";
          violations->push_back(out.str());
        }
      }
    }
    if (auto it = compensated.find(txn); it != compensated.end()) {
      for (SiteId site : it->second) {
        std::ostringstream out;
        out << "audit: T" << txn << " committed but site " << site
            << " ran a compensation for it";
        violations->push_back(out.str());
      }
    }
  }
}

/// recovery: every crash-restart runs a complete recovery phase. A site
/// whose journal shows a kRecoveryBegin must show the matching
/// kRecoveryEnd before any later event at that site — a begin with no end
/// (and no superseding crash) is a wedged recovery, and a kSiteRecover
/// without a recovery phase means the site skipped WAL analysis and
/// marking catch-up entirely.
void CheckRecoveryPhases(const std::vector<trace::TraceEvent>& events,
                         std::vector<std::string>* violations) {
  enum class SiteState { kUp, kDown, kRecovering };
  std::map<SiteId, SiteState> states;
  for (const trace::TraceEvent& event : events) {
    switch (event.type) {
      case trace::EventType::kSiteCrash:
        states[event.site] = SiteState::kDown;
        break;
      case trace::EventType::kRecoveryBegin:
        states[event.site] = SiteState::kRecovering;
        break;
      case trace::EventType::kRecoveryEnd:
        states[event.site] = SiteState::kUp;
        break;
      case trace::EventType::kSiteRecover:
        if (auto it = states.find(event.site);
            it == states.end() || it->second != SiteState::kUp) {
          std::ostringstream out;
          out << "recovery: site " << event.site
              << " came back up without completing a recovery phase";
          violations->push_back(out.str());
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [site, state] : states) {
    if (state == SiteState::kRecovering) {
      std::ostringstream out;
      out << "recovery: site " << site
          << " began recovery but never completed it (wedged phase)";
      violations->push_back(out.str());
    }
  }
}

/// recovery: WAL replay reproduces the live table. For every site whose
/// log was never truncated (base_lsn == 1; campaign runs never
/// checkpoint), replaying update after-images in LSN order — undoing a
/// transaction's updates in reverse via before-images at its kAbort —
/// must land exactly on the site's live cells for every key the log
/// touches. Divergence means recovery (or normal execution) lost or
/// invented a write.
void CheckWalReplay(const core::DistributedSystem& system,
                    std::vector<std::string>* violations) {
  for (int i = 0; i < system.options().num_sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    const storage::Wal& wal = system.db(site).wal();
    if (wal.base_lsn() != 1) continue;  // truncated: replay has no base

    std::map<DataKey, std::optional<Value>> shadow;
    std::map<TxnId, std::vector<const storage::LogRecord*>> undo_chains;
    for (const storage::LogRecord& record : wal.records()) {
      switch (record.kind) {
        case storage::LogRecordKind::kUpdate:
          shadow[record.key] = record.after.has_value()
                                   ? std::optional<Value>(record.after->value)
                                   : std::nullopt;
          undo_chains[record.txn].push_back(&record);
          break;
        case storage::LogRecordKind::kCommit:
          undo_chains.erase(record.txn);
          break;
        case storage::LogRecordKind::kAbort: {
          auto it = undo_chains.find(record.txn);
          if (it == undo_chains.end()) break;  // re-logged abort: no-op
          for (auto u = it->second.rbegin(); u != it->second.rend(); ++u) {
            shadow[(*u)->key] =
                (*u)->before.has_value()
                    ? std::optional<Value>((*u)->before->value)
                    : std::nullopt;
          }
          undo_chains.erase(it);
          break;
        }
        default:
          break;
      }
    }

    const auto& cells = system.db(site).table().cells();
    for (const auto& [key, replayed] : shadow) {
      const auto live = cells.find(key);
      const bool live_present = live != cells.end();
      if (replayed.has_value() != live_present ||
          (live_present && *replayed != live->second.value)) {
        std::ostringstream out;
        out << "recovery: WAL replay diverges from live table at site "
            << site << " key " << key << " (replayed ";
        if (replayed.has_value()) {
          out << *replayed;
        } else {
          out << "<absent>";
        }
        out << ", live ";
        if (live_present) {
          out << live->second.value;
        } else {
          out << "<absent>";
        }
        out << ")";
        violations->push_back(out.str());
      }
    }
  }
}

}  // namespace

OracleReport RunOracles(const core::DistributedSystem& system,
                        const std::vector<trace::TraceEvent>& events,
                        Value initial_total) {
  OracleReport report;

  // Oracle 1: protocol-invariant checker over the journal.
  const trace::CheckReport trace_report = trace::CheckTrace(events);
  for (const trace::TraceViolation& violation : trace_report.violations) {
    report.violations.push_back("trace: " + violation.ToString());
  }

  // Oracle 2: the §5 serialization-graph criterion.
  const sg::CorrectnessReport sg_report = system.Analyze();
  if (!sg_report.locally_serializable) {
    report.violations.push_back("sg: a local history is not serializable");
  }
  if (!sg_report.correct) {
    report.violations.push_back(
        "sg: global SG violates the paper's criterion (regular cycle)");
  }
  if (!sg_report.atomic_compensation) {
    report.violations.push_back(
        "sg: atomicity of compensation violated (dual read of T_i and CT_i)");
  }
  for (const std::string& violation : sg_report.violations) {
    report.violations.push_back("sg: " + violation);
  }

  // Oracle 3: liveness. Heal-able-fault runs must fully drain. The one
  // tolerated wedge is a *permanently* crashed coordinator: nobody is left
  // to fire its completion callback, so its own incarnation may hang — but
  // nothing else may. Participants of such a transaction must still
  // terminate via DECISION-REQ / cooperative termination, which the
  // in-doubt audit below verifies (it runs unconditionally, at every site).
  std::set<TxnId> orphaned;
  {
    std::set<TxnId> finished;
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::kTxnFinish) {
        finished.insert(event.txn);
      }
    }
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::kCoordinatorCrash &&
          event.b == 1 && !finished.contains(event.txn)) {
        orphaned.insert(event.txn);
      }
    }
  }
  if (system.globals_finished() + orphaned.size() !=
      system.globals_submitted()) {
    std::ostringstream out;
    out << "liveness: protocol did not drain (" << system.globals_finished()
        << " finished + " << orphaned.size()
        << " orphaned by permanent coordinator crashes != "
        << system.globals_submitted() << " submitted)";
    report.violations.push_back(out.str());
  }
  // The orphan tolerance covers only the coordinator's own incarnation. An
  // orphaned transaction whose *decision was force-logged* is recoverable —
  // any up participant can learn it via DECISION-REQ to the home site's
  // recovery agent or via cooperative termination against its peers — so a
  // subtransaction still in doubt at an up site is a termination failure,
  // not an excusable casualty of the crash.
  {
    std::set<TxnId> decided;
    for (const trace::TraceEvent& event : events) {
      if (event.type == trace::EventType::kDecide) decided.insert(event.txn);
    }
    for (int i = 0; i < system.options().num_sites; ++i) {
      const SiteId site = static_cast<SiteId>(i);
      if (system.network().NodeDown(site)) continue;
      const auto flag = [&](TxnId txn) {
        if (!orphaned.contains(txn) || !decided.contains(txn)) return;
        std::ostringstream out;
        out << "liveness: T" << txn << " wedged at up site " << site
            << " though its logged decision is recoverable "
               "(DECISION-REQ / cooperative termination)";
        report.violations.push_back(out.str());
      };
      for (const auto& pending : system.db(site).PendingExposedSubtxns()) {
        flag(pending.global_id);
      }
      for (const auto& pending : system.db(site).PendingPreparedSubtxns()) {
        flag(pending.global_id);
      }
    }
  }

  // Oracle 4: cross-site end-state audit.
  for (int i = 0; i < system.options().num_sites; ++i) {
    const SiteId site = static_cast<SiteId>(i);
    for (const auto& pending : system.db(site).PendingExposedSubtxns()) {
      std::ostringstream out;
      out << "audit: site " << site << " left in doubt: T"
          << pending.global_id
          << " locally committed without a terminal decision";
      report.violations.push_back(out.str());
    }
    for (const auto& pending : system.db(site).PendingPreparedSubtxns()) {
      std::ostringstream out;
      out << "audit: site " << site << " left in doubt: T"
          << pending.global_id << " prepared without a terminal decision";
      report.violations.push_back(out.str());
    }
  }
  const Value final_total = system.TotalValue();
  if (final_total != initial_total) {
    std::ostringstream out;
    out << "audit: conservation violated: total value " << final_total
        << " != initial " << initial_total;
    report.violations.push_back(out.str());
  }
  CheckCommitDurability(events, &report.violations);

  // Oracle 5: the crash-restart recovery oracle — complete recovery phases
  // and WAL-replay equivalence with the live tables.
  CheckRecoveryPhases(events, &report.violations);
  CheckWalReplay(system, &report.violations);

  return report;
}

}  // namespace o2pc::campaign
