#include "campaign/fault_plan.h"

#include <iterator>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "net/message.h"

namespace o2pc::campaign {
namespace {

/// site/from/to fields serialize kInvalidSite as "any".
std::string SiteToken(SiteId site) {
  return site == kInvalidSite ? "any" : std::to_string(site);
}

bool ParseSiteToken(const std::string& token, SiteId* site) {
  if (token == "any") {
    *site = kInvalidSite;
    return true;
  }
  try {
    *site = static_cast<SiteId>(std::stoll(token));
  } catch (...) {
    return false;
  }
  return true;
}

bool ParseInt64(const std::string& token, std::int64_t* value) {
  try {
    *value = std::stoll(token);
  } catch (...) {
    return false;
  }
  return true;
}

std::string MsgTypeToken(int msg_type) {
  if (msg_type < 0 || msg_type >= net::kNumMessageTypes) return "any";
  return net::MessageTypeName(static_cast<net::MessageType>(msg_type));
}

bool ParseMsgTypeToken(const std::string& token, int* msg_type) {
  if (token == "any") {
    *msg_type = -1;
    return true;
  }
  for (int i = 0; i < net::kNumMessageTypes; ++i) {
    if (token == net::MessageTypeName(static_cast<net::MessageType>(i))) {
      *msg_type = i;
      return true;
    }
  }
  return false;
}

/// Splits "key=value" tokens of one plan line into an ordered list.
struct KvList {
  std::vector<std::pair<std::string, std::string>> pairs;

  const std::string* Find(const std::string& key) const {
    for (const auto& [k, v] : pairs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

bool SplitKv(std::istringstream& in, KvList* kv, std::string* error) {
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "malformed token '" + token + "'";
      return false;
    }
    kv->pairs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSiteCrashAtStep:
      return "crash";
    case FaultKind::kSiteCrashAtTime:
      return "crash_at";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kDropMessage:
      return "drop";
    case FaultKind::kDelayMessage:
      return "delay";
    case FaultKind::kCoordinatorCrash:
      return "coordinator_crash";
    case FaultKind::kDuplicateMessage:
      return "duplicate";
    case FaultKind::kReorderMessages:
      return "reorder";
    case FaultKind::kOneWayPartition:
      return "oneway_partition";
    case FaultKind::kGrayFailure:
      return "gray";
    case FaultKind::kCrashRestart:
      return "crash_restart";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  std::ostringstream out;
  out << FaultKindName(kind);
  switch (kind) {
    case FaultKind::kSiteCrashAtStep:
      out << " site=" << site << " step=" << core::ProtocolStepName(step)
          << " occurrence=" << occurrence << " outage_us=" << duration;
      break;
    case FaultKind::kSiteCrashAtTime:
      out << " site=" << site << " at_us=" << at << " outage_us=" << duration;
      break;
    case FaultKind::kPartition:
      out << " a=" << site << " b=" << peer << " at_us=" << at
          << " heal_us=" << duration;
      break;
    case FaultKind::kDropMessage:
      out << " type=" << MsgTypeToken(msg_type) << " from=" << SiteToken(msg_from)
          << " to=" << SiteToken(msg_to) << " occurrence=" << occurrence;
      break;
    case FaultKind::kDelayMessage:
      out << " type=" << MsgTypeToken(msg_type) << " from=" << SiteToken(msg_from)
          << " to=" << SiteToken(msg_to) << " occurrence=" << occurrence
          << " extra_us=" << duration;
      break;
    case FaultKind::kCoordinatorCrash:
      out << " occurrence=" << occurrence;
      // Outage is optional in the grammar; only non-default values are
      // serialized so seed-era plans round-trip byte-identically.
      if (duration != 0) out << " outage_us=" << duration;
      break;
    case FaultKind::kDuplicateMessage:
      out << " type=" << MsgTypeToken(msg_type) << " from=" << SiteToken(msg_from)
          << " to=" << SiteToken(msg_to) << " occurrence=" << occurrence
          << " copies=" << count;
      break;
    case FaultKind::kReorderMessages:
      out << " type=" << MsgTypeToken(msg_type) << " from=" << SiteToken(msg_from)
          << " to=" << SiteToken(msg_to) << " occurrence=" << occurrence
          << " count=" << count << " window_us=" << duration;
      break;
    case FaultKind::kOneWayPartition:
      out << " from=" << site << " to=" << peer << " at_us=" << at
          << " heal_us=" << duration;
      break;
    case FaultKind::kGrayFailure:
      out << " site=" << site << " at_us=" << at << " duration_us=" << duration
          << " factor=" << factor;
      break;
    case FaultKind::kCrashRestart:
      out << " site=" << site << " step=" << core::ProtocolStepName(step)
          << " occurrence=" << occurrence << " outage_us=" << duration
          << " recovery_us=" << recovery;
      // The double crash is optional in the grammar; only a non-default
      // value is serialized so plans round-trip byte-identically.
      if (recrash >= 0) out << " recrash_us=" << recrash;
      break;
  }
  return out.str();
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  for (const FaultEvent& event : events) {
    out << event.ToString() << "\n";
  }
  return out.str();
}

bool FaultPlan::Parse(const std::string& text, FaultPlan* plan,
                      std::string* error) {
  FaultPlan parsed;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream in(line);
    std::string kind_token;
    if (!(in >> kind_token) || kind_token[0] == '#') continue;

    const std::string where = "line " + std::to_string(line_no) + ": ";
    KvList kv;
    if (!SplitKv(in, &kv, error)) {
      if (error != nullptr) *error = where + *error;
      return false;
    }
    auto need = [&](const char* key) { return kv.Find(key); };

    FaultEvent event;
    std::int64_t value = 0;
    if (kind_token == "crash") {
      event.kind = FaultKind::kSiteCrashAtStep;
      const std::string* site = need("site");
      const std::string* step = need("step");
      const std::string* occurrence = need("occurrence");
      const std::string* outage = need("outage_us");
      if (site == nullptr || step == nullptr || occurrence == nullptr ||
          outage == nullptr) {
        return Fail(error, where + "crash needs site/step/occurrence/outage_us");
      }
      if (!ParseSiteToken(*site, &event.site) ||
          !core::ParseProtocolStep(*step, &event.step) ||
          !ParseInt64(*occurrence, &value)) {
        return Fail(error, where + "bad crash fields");
      }
      event.occurrence = static_cast<int>(value);
      if (!ParseInt64(*outage, &event.duration)) {
        return Fail(error, where + "bad outage_us");
      }
    } else if (kind_token == "crash_at") {
      event.kind = FaultKind::kSiteCrashAtTime;
      const std::string* site = need("site");
      const std::string* at = need("at_us");
      const std::string* outage = need("outage_us");
      if (site == nullptr || at == nullptr || outage == nullptr) {
        return Fail(error, where + "crash_at needs site/at_us/outage_us");
      }
      if (!ParseSiteToken(*site, &event.site) || !ParseInt64(*at, &event.at) ||
          !ParseInt64(*outage, &event.duration)) {
        return Fail(error, where + "bad crash_at fields");
      }
    } else if (kind_token == "partition") {
      event.kind = FaultKind::kPartition;
      const std::string* a = need("a");
      const std::string* b = need("b");
      const std::string* at = need("at_us");
      const std::string* heal = need("heal_us");
      if (a == nullptr || b == nullptr || at == nullptr || heal == nullptr) {
        return Fail(error, where + "partition needs a/b/at_us/heal_us");
      }
      if (!ParseSiteToken(*a, &event.site) || !ParseSiteToken(*b, &event.peer) ||
          !ParseInt64(*at, &event.at) || !ParseInt64(*heal, &event.duration)) {
        return Fail(error, where + "bad partition fields");
      }
    } else if (kind_token == "drop" || kind_token == "delay") {
      event.kind = kind_token == "drop" ? FaultKind::kDropMessage
                                        : FaultKind::kDelayMessage;
      const std::string* type = need("type");
      const std::string* from = need("from");
      const std::string* to = need("to");
      const std::string* occurrence = need("occurrence");
      if (type == nullptr || from == nullptr || to == nullptr ||
          occurrence == nullptr) {
        return Fail(error, where + kind_token + " needs type/from/to/occurrence");
      }
      if (!ParseMsgTypeToken(*type, &event.msg_type) ||
          !ParseSiteToken(*from, &event.msg_from) ||
          !ParseSiteToken(*to, &event.msg_to) ||
          !ParseInt64(*occurrence, &value)) {
        return Fail(error, where + "bad " + kind_token + " fields");
      }
      event.occurrence = static_cast<int>(value);
      if (event.kind == FaultKind::kDelayMessage) {
        const std::string* extra = need("extra_us");
        if (extra == nullptr || !ParseInt64(*extra, &event.duration)) {
          return Fail(error, where + "delay needs extra_us");
        }
      }
    } else if (kind_token == "duplicate" || kind_token == "reorder") {
      event.kind = kind_token == "duplicate" ? FaultKind::kDuplicateMessage
                                             : FaultKind::kReorderMessages;
      const std::string* type = need("type");
      const std::string* from = need("from");
      const std::string* to = need("to");
      const std::string* occurrence = need("occurrence");
      if (type == nullptr || from == nullptr || to == nullptr ||
          occurrence == nullptr) {
        return Fail(error, where + kind_token + " needs type/from/to/occurrence");
      }
      if (!ParseMsgTypeToken(*type, &event.msg_type) ||
          !ParseSiteToken(*from, &event.msg_from) ||
          !ParseSiteToken(*to, &event.msg_to) ||
          !ParseInt64(*occurrence, &value)) {
        return Fail(error, where + "bad " + kind_token + " fields");
      }
      event.occurrence = static_cast<int>(value);
      if (event.kind == FaultKind::kDuplicateMessage) {
        const std::string* copies = need("copies");
        if (copies == nullptr || !ParseInt64(*copies, &value) || value < 1) {
          return Fail(error, where + "duplicate needs copies >= 1");
        }
        event.count = static_cast<int>(value);
      } else {
        const std::string* window_count = need("count");
        const std::string* window = need("window_us");
        if (window_count == nullptr || window == nullptr ||
            !ParseInt64(*window_count, &value) || value < 1) {
          return Fail(error, where + "reorder needs count >= 1 and window_us");
        }
        event.count = static_cast<int>(value);
        if (!ParseInt64(*window, &event.duration) || event.duration < 0) {
          return Fail(error, where + "bad window_us");
        }
      }
    } else if (kind_token == "oneway_partition") {
      event.kind = FaultKind::kOneWayPartition;
      const std::string* from = need("from");
      const std::string* to = need("to");
      const std::string* at = need("at_us");
      const std::string* heal = need("heal_us");
      if (from == nullptr || to == nullptr || at == nullptr ||
          heal == nullptr) {
        return Fail(error,
                    where + "oneway_partition needs from/to/at_us/heal_us");
      }
      if (!ParseSiteToken(*from, &event.site) ||
          !ParseSiteToken(*to, &event.peer) || !ParseInt64(*at, &event.at) ||
          !ParseInt64(*heal, &event.duration)) {
        return Fail(error, where + "bad oneway_partition fields");
      }
    } else if (kind_token == "gray") {
      event.kind = FaultKind::kGrayFailure;
      const std::string* site = need("site");
      const std::string* at = need("at_us");
      const std::string* window = need("duration_us");
      const std::string* factor = need("factor");
      if (site == nullptr || at == nullptr || window == nullptr ||
          factor == nullptr) {
        return Fail(error, where + "gray needs site/at_us/duration_us/factor");
      }
      if (!ParseSiteToken(*site, &event.site) ||
          !ParseInt64(*at, &event.at) ||
          !ParseInt64(*window, &event.duration) ||
          !ParseInt64(*factor, &event.factor) || event.factor < 2) {
        return Fail(error, where + "bad gray fields (factor must be >= 2)");
      }
    } else if (kind_token == "crash_restart") {
      event.kind = FaultKind::kCrashRestart;
      const std::string* site = need("site");
      const std::string* step = need("step");
      const std::string* occurrence = need("occurrence");
      const std::string* outage = need("outage_us");
      const std::string* recovery = need("recovery_us");
      if (site == nullptr || step == nullptr || occurrence == nullptr ||
          outage == nullptr || recovery == nullptr) {
        return Fail(error, where +
                               "crash_restart needs "
                               "site/step/occurrence/outage_us/recovery_us");
      }
      if (!ParseSiteToken(*site, &event.site) ||
          !core::ParseProtocolStep(*step, &event.step) ||
          !ParseInt64(*occurrence, &value)) {
        return Fail(error, where + "bad crash_restart fields");
      }
      event.occurrence = static_cast<int>(value);
      if (!ParseInt64(*outage, &event.duration) || event.duration <= 0) {
        return Fail(error, where + "crash_restart needs outage_us > 0");
      }
      if (!ParseInt64(*recovery, &event.recovery) || event.recovery < 0) {
        return Fail(error, where + "bad recovery_us");
      }
      if (const std::string* recrash = need("recrash_us");
          recrash != nullptr) {
        if (!ParseInt64(*recrash, &event.recrash) || event.recrash < 0) {
          return Fail(error, where + "bad recrash_us");
        }
      }
    } else if (kind_token == "coordinator_crash") {
      event.kind = FaultKind::kCoordinatorCrash;
      const std::string* occurrence = need("occurrence");
      if (occurrence == nullptr || !ParseInt64(*occurrence, &value)) {
        return Fail(error, where + "coordinator_crash needs occurrence");
      }
      event.occurrence = static_cast<int>(value);
      if (const std::string* outage = need("outage_us"); outage != nullptr) {
        if (!ParseInt64(*outage, &event.duration)) {
          return Fail(error, where + "bad outage_us");
        }
      }
    } else {
      return Fail(error, where + "unknown fault kind '" + kind_token + "'");
    }
    parsed.events.push_back(event);
  }
  *plan = std::move(parsed);
  return true;
}

const std::vector<std::string>& DefaultTemplateNames() {
  // Append-only: sweep grids index templates by position, so inserting in
  // the middle would silently remap every historical {run index -> plan}.
  static const std::vector<std::string> kNames = {
      "none",   "crashes",     "partitions",         "drops",
      "delays", "coordinator", "coordinator_outage", "mixed",
      "duplicates", "reorders", "oneway_partitions", "gray",
      "mixed_adversarial", "crash_restarts",
  };
  return kNames;
}

namespace {

SiteId PickSite(Rng& rng, int num_sites) {
  return static_cast<SiteId>(rng.Uniform(0, num_sites - 1));
}

/// A step crash pinned to one of the protocol windows the paper cares
/// about: before the vote, between local commit and DECISION (O2PC's
/// exposure window), the prepared window (2PC's blocking window), and
/// mid-compensation.
FaultEvent RandomStepCrash(Rng& rng, int num_sites) {
  static const core::ProtocolStep kCrashSteps[] = {
      core::ProtocolStep::kSubtxnAdmit,       core::ProtocolStep::kBeforeVote,
      core::ProtocolStep::kLocalCommit,       core::ProtocolStep::kPrepare,
      core::ProtocolStep::kAfterVote,         core::ProtocolStep::kBeforeDecision,
      core::ProtocolStep::kCompensationBegin,
  };
  FaultEvent event;
  event.kind = FaultKind::kSiteCrashAtStep;
  event.site = PickSite(rng, num_sites);
  event.step = kCrashSteps[rng.Uniform(
      0, static_cast<std::int64_t>(std::size(kCrashSteps)) - 1)];
  event.occurrence = static_cast<int>(rng.Uniform(0, 3));
  event.duration = Millis(rng.Uniform(10, 80));
  return event;
}

/// A crash pinned to wall-clock (simulated) time rather than a protocol
/// step: it lands wherever the schedule happens to be, which catches
/// windows the step grammar cannot name (mid-retransmission, idle gaps).
FaultEvent RandomTimedCrash(Rng& rng, int num_sites) {
  FaultEvent event;
  event.kind = FaultKind::kSiteCrashAtTime;
  event.site = PickSite(rng, num_sites);
  event.at = Millis(rng.Uniform(5, 150));
  event.duration = Millis(rng.Uniform(10, 80));
  return event;
}

FaultEvent RandomPartition(Rng& rng, int num_sites) {
  FaultEvent event;
  event.kind = FaultKind::kPartition;
  event.site = PickSite(rng, num_sites);
  do {
    event.peer = PickSite(rng, num_sites);
  } while (num_sites > 1 && event.peer == event.site);
  event.at = Millis(rng.Uniform(5, 150));
  event.duration = Millis(rng.Uniform(10, 80));
  return event;
}

FaultEvent RandomDrop(Rng& rng, int num_sites) {
  FaultEvent event;
  event.kind = FaultKind::kDropMessage;
  // Protocol messages only (dropping USER traffic exercises nothing).
  event.msg_type = static_cast<int>(rng.Uniform(0, net::kNumMessageTypes - 2));
  event.msg_from = rng.Bernoulli(0.5) ? kInvalidSite : PickSite(rng, num_sites);
  event.msg_to = rng.Bernoulli(0.5) ? kInvalidSite : PickSite(rng, num_sites);
  event.occurrence = static_cast<int>(rng.Uniform(0, 5));
  return event;
}

FaultEvent RandomDelay(Rng& rng, int num_sites) {
  FaultEvent event = RandomDrop(rng, num_sites);
  event.kind = FaultKind::kDelayMessage;
  event.duration = Millis(rng.Uniform(10, 60));
  return event;
}

FaultEvent RandomDuplicate(Rng& rng, int num_sites) {
  FaultEvent event = RandomDrop(rng, num_sites);
  event.kind = FaultKind::kDuplicateMessage;
  event.count = static_cast<int>(rng.Uniform(1, 3));
  return event;
}

FaultEvent RandomReorder(Rng& rng, int num_sites) {
  FaultEvent event;
  event.kind = FaultKind::kReorderMessages;
  // Half the windows cover all protocol traffic on the matched route, the
  // other half pin one message type (shuffling retransmissions of a single
  // kind against each other).
  event.msg_type =
      rng.Bernoulli(0.5)
          ? -1
          : static_cast<int>(rng.Uniform(0, net::kNumMessageTypes - 2));
  event.msg_from = rng.Bernoulli(0.5) ? kInvalidSite : PickSite(rng, num_sites);
  event.msg_to = rng.Bernoulli(0.5) ? kInvalidSite : PickSite(rng, num_sites);
  event.occurrence = static_cast<int>(rng.Uniform(0, 3));
  event.count = static_cast<int>(rng.Uniform(4, 12));
  event.duration = Millis(rng.Uniform(5, 30));
  return event;
}

FaultEvent RandomOneWayPartition(Rng& rng, int num_sites) {
  FaultEvent event;
  event.kind = FaultKind::kOneWayPartition;
  event.site = PickSite(rng, num_sites);
  do {
    event.peer = PickSite(rng, num_sites);
  } while (num_sites > 1 && event.peer == event.site);
  event.at = Millis(rng.Uniform(5, 150));
  event.duration = Millis(rng.Uniform(10, 80));
  return event;
}

FaultEvent RandomGrayFailure(Rng& rng, int num_sites) {
  FaultEvent event;
  event.kind = FaultKind::kGrayFailure;
  event.site = PickSite(rng, num_sites);
  event.at = Millis(rng.Uniform(5, 120));
  event.duration = Millis(rng.Uniform(30, 120));
  // 10-60x on a 5ms base link: slow enough to outlive decision_timeout
  // (retransmission storms, DECISION-REQ under gray peers) while staying
  // inside the campaign's resend budget so survivable runs still drain.
  event.factor = rng.Uniform(10, 60);
  return event;
}

}  // namespace

FaultPlan GeneratePlan(const std::string& template_name, std::uint64_t seed,
                       int num_sites) {
  // Fold the template name into the seed so "crashes"/seed 7 and
  // "partitions"/seed 7 draw independent schedules.
  std::uint64_t folded = seed;
  for (char c : template_name) {
    folded = folded * 1099511628211ULL + static_cast<unsigned char>(c);
  }
  Rng rng(folded ^ 0xfa017b1a6ULL);
  FaultPlan plan;
  if (template_name == "crashes") {
    const int n = static_cast<int>(rng.Uniform(1, 2));
    for (int i = 0; i < n; ++i) {
      // Split draws between the step- and time-pinned crash productions so
      // the default sweep exercises both (the telemetry coverage gate
      // insists every fault production fires at least once).
      plan.events.push_back(rng.Bernoulli(0.5)
                                ? RandomTimedCrash(rng, num_sites)
                                : RandomStepCrash(rng, num_sites));
    }
  } else if (template_name == "partitions") {
    const int n = static_cast<int>(rng.Uniform(1, 2));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomPartition(rng, num_sites));
    }
  } else if (template_name == "drops") {
    const int n = static_cast<int>(rng.Uniform(2, 5));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomDrop(rng, num_sites));
    }
  } else if (template_name == "delays") {
    const int n = static_cast<int>(rng.Uniform(2, 5));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomDelay(rng, num_sites));
    }
  } else if (template_name == "coordinator") {
    FaultEvent event;
    event.kind = FaultKind::kCoordinatorCrash;
    event.occurrence = static_cast<int>(rng.Uniform(0, 4));
    plan.events.push_back(event);
  } else if (template_name == "coordinator_outage") {
    // A coordinator that never comes back: the decision is force-logged at
    // its home site but no DECISION ever leaves. 2PC participants sit
    // prepared until DECISION-REQ / cooperative termination resolves them;
    // the liveness oracle insists that they all do terminate.
    FaultEvent event;
    event.kind = FaultKind::kCoordinatorCrash;
    event.occurrence = static_cast<int>(rng.Uniform(0, 4));
    event.duration = -1;  // never recover
    plan.events.push_back(event);
  } else if (template_name == "mixed") {
    plan.events.push_back(RandomStepCrash(rng, num_sites));
    plan.events.push_back(RandomPartition(rng, num_sites));
    plan.events.push_back(RandomDrop(rng, num_sites));
    plan.events.push_back(RandomDrop(rng, num_sites));
  } else if (template_name == "duplicates") {
    const int n = static_cast<int>(rng.Uniform(2, 5));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomDuplicate(rng, num_sites));
    }
  } else if (template_name == "reorders") {
    const int n = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomReorder(rng, num_sites));
    }
  } else if (template_name == "oneway_partitions") {
    const int n = static_cast<int>(rng.Uniform(1, 2));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomOneWayPartition(rng, num_sites));
    }
  } else if (template_name == "gray") {
    const int n = static_cast<int>(rng.Uniform(1, 2));
    for (int i = 0; i < n; ++i) {
      plan.events.push_back(RandomGrayFailure(rng, num_sites));
    }
  } else if (template_name == "mixed_adversarial") {
    // One of each adversarial-network production in a single run:
    // stale duplicates racing a shuffled window across an asymmetric
    // partition while one site runs gray-slow.
    plan.events.push_back(RandomDuplicate(rng, num_sites));
    plan.events.push_back(RandomOneWayPartition(rng, num_sites));
    plan.events.push_back(RandomReorder(rng, num_sites));
    plan.events.push_back(RandomGrayFailure(rng, num_sites));
  } else if (template_name == "crash_restarts") {
    // Step-pinned crashes with explicit restart semantics: a bounded
    // outage, a recovery window during which WAL analysis and marking
    // catch-up run, and (half the time) a second crash landing inside or
    // just after that window — the crash-during-recovery double fault.
    const int n = static_cast<int>(rng.Uniform(1, 2));
    for (int i = 0; i < n; ++i) {
      FaultEvent event = RandomStepCrash(rng, num_sites);
      event.kind = FaultKind::kCrashRestart;
      event.duration = Millis(rng.Uniform(10, 60));
      event.recovery = Millis(rng.Uniform(1, 15));
      event.recrash = rng.Bernoulli(0.5)
                          ? Millis(rng.Uniform(0, 8))
                          : static_cast<Duration>(-1);
      plan.events.push_back(event);
    }
  }
  // "none" and unknown templates: empty plan (fault-free control run).
  return plan;
}

FaultPlan KnownBadPlan(int num_sites) {
  FaultPlan plan;
  // The lethal event: site 0 dies forever the moment it first locally
  // commits a subtransaction — its exposed updates can never be finalized
  // or compensated, so the in-doubt/durability oracle must fire.
  FaultEvent crash;
  crash.kind = FaultKind::kSiteCrashAtStep;
  crash.site = 0;
  crash.step = core::ProtocolStep::kLocalCommit;
  crash.occurrence = 0;
  crash.duration = 0;  // never recover
  plan.events.push_back(crash);

  // Noise the shrinker should strip: a late heal-quick partition between
  // the two highest sites and two one-shot drops of rarely-matching
  // messages.
  FaultEvent partition;
  partition.kind = FaultKind::kPartition;
  partition.site = static_cast<SiteId>(num_sites > 1 ? num_sites - 1 : 0);
  partition.peer = static_cast<SiteId>(num_sites > 2 ? num_sites - 2 : 0);
  partition.at = Millis(400);
  partition.duration = Millis(5);
  plan.events.push_back(partition);

  FaultEvent drop;
  drop.kind = FaultKind::kDropMessage;
  drop.msg_type = static_cast<int>(net::MessageType::kVoteRequest);
  drop.msg_from = kInvalidSite;
  drop.msg_to = static_cast<SiteId>(num_sites > 1 ? num_sites - 1 : 0);
  drop.occurrence = 7;
  plan.events.push_back(drop);

  FaultEvent delay;
  delay.kind = FaultKind::kDelayMessage;
  delay.msg_type = static_cast<int>(net::MessageType::kSubtxnAck);
  delay.msg_from = kInvalidSite;
  delay.msg_to = kInvalidSite;
  delay.occurrence = 3;
  delay.duration = Millis(2);
  plan.events.push_back(delay);
  return plan;
}

}  // namespace o2pc::campaign
