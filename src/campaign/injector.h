#ifndef O2PC_CAMPAIGN_INJECTOR_H_
#define O2PC_CAMPAIGN_INJECTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "campaign/fault_plan.h"
#include "core/system.h"

/// \file
/// FaultInjector: executes one FaultPlan against one DistributedSystem by
/// installing the system's StepHook and the network's FaultHook and
/// scheduling the plan's time-pinned events. All matching is counter-based
/// and purely a function of the deterministic simulation, so the same
/// `{seed, plan}` pair injects the identical faults on every run.

namespace o2pc::campaign {

class FaultInjector {
 public:
  /// Binds the injector to `system` (not owned; must outlive the injector).
  FaultInjector(core::DistributedSystem* system, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Installs the hooks and schedules time-pinned events. Call once,
  /// before submitting workload.
  void Arm();

  /// How many of the plan's events actually fired.
  int faults_triggered() const { return faults_triggered_; }

  /// Fired-event counts aggregated by FaultKind (indexed by the enum's
  /// numeric value) — the telemetry fault-production coverage source.
  std::array<std::uint64_t, kNumFaultKinds> FiredByKind() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  void OnStep(const core::StepContext& context);
  net::FaultDecision OnMessage(const net::Message& message);

  core::DistributedSystem* system_;  // not owned
  FaultPlan plan_;
  bool armed_ = false;
  /// Per-event match counters (step announcements seen / messages matched),
  /// indexed like plan_.events.
  std::vector<int> matches_;
  /// Per-event one-shot latches.
  std::vector<bool> fired_;
  /// Global kCoordinatorDecide announcement counter (coordinator-crash
  /// events pin against the system-wide decision sequence).
  int decide_count_ = 0;
  int faults_triggered_ = 0;
};

}  // namespace o2pc::campaign

#endif  // O2PC_CAMPAIGN_INJECTOR_H_
