#include "campaign/injector.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/coverage.h"

namespace o2pc::campaign {

// telemetry/coverage.h restates the fault-production axis (telemetry must
// not depend on campaign); keep the two vocabularies pinned together.
static_assert(kNumFaultKinds == telemetry::kNumFaultProductions,
              "telemetry/coverage.h fault-production axis is out of sync "
              "with campaign::FaultKind");

FaultInjector::FaultInjector(core::DistributedSystem* system, FaultPlan plan)
    : system_(system), plan_(std::move(plan)) {
  O2PC_CHECK(system != nullptr);
  matches_.assign(plan_.events.size(), 0);
  fired_.assign(plan_.events.size(), false);
}

FaultInjector::~FaultInjector() {
  if (armed_) {
    // The system may outlive the injector; leave no dangling hooks behind.
    system_->SetStepHook(nullptr);
    system_->network().SetFaultHook(nullptr);
  }
}

void FaultInjector::Arm() {
  O2PC_CHECK(!armed_) << "injector armed twice";
  armed_ = true;
  system_->SetStepHook(
      [this](const core::StepContext& context) { OnStep(context); });
  system_->network().SetFaultHook(
      [this](const net::Message& message) { return OnMessage(message); });

  sim::Simulator& simulator = system_->simulator();
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    switch (event.kind) {
      case FaultKind::kSiteCrashAtTime:
        simulator.Schedule(event.at, [this, i] {
          const FaultEvent& e = plan_.events[i];
          if (system_->network().NodeDown(e.site)) return;  // already down
          fired_[i] = true;
          ++faults_triggered_;
          system_->CrashSite(e.site, e.duration);
        });
        break;
      case FaultKind::kPartition:
        simulator.Schedule(event.at, [this, i] {
          const FaultEvent& e = plan_.events[i];
          fired_[i] = true;
          ++faults_triggered_;
          system_->network().SeverLink(e.site, e.peer);
          if (e.duration > 0) {
            system_->simulator().Schedule(e.duration, [this, i] {
              const FaultEvent& healed = plan_.events[i];
              system_->network().HealLink(healed.site, healed.peer);
            });
          }
        });
        break;
      case FaultKind::kOneWayPartition:
        simulator.Schedule(event.at, [this, i] {
          const FaultEvent& e = plan_.events[i];
          fired_[i] = true;
          ++faults_triggered_;
          system_->network().SeverLinkOneWay(e.site, e.peer);
          if (e.duration > 0) {
            system_->simulator().Schedule(e.duration, [this, i] {
              const FaultEvent& healed = plan_.events[i];
              system_->network().HealLinkOneWay(healed.site, healed.peer);
            });
          }
        });
        break;
      case FaultKind::kGrayFailure:
        simulator.Schedule(event.at, [this, i] {
          const FaultEvent& e = plan_.events[i];
          fired_[i] = true;
          ++faults_triggered_;
          system_->network().SetGrayFactor(e.site, e.factor);
          if (e.duration > 0) {
            system_->simulator().Schedule(e.duration, [this, i] {
              // Clears only if no later gray window re-raised the factor.
              const FaultEvent& over = plan_.events[i];
              if (system_->network().GrayFactor(over.site) == over.factor) {
                system_->network().SetGrayFactor(over.site, 0);
              }
            });
          }
        });
        break;
      case FaultKind::kSiteCrashAtStep:
      case FaultKind::kCrashRestart:
      case FaultKind::kDropMessage:
      case FaultKind::kDelayMessage:
      case FaultKind::kDuplicateMessage:
      case FaultKind::kReorderMessages:
      case FaultKind::kCoordinatorCrash:
        break;  // hook-driven
    }
  }
}

void FaultInjector::OnStep(const core::StepContext& context) {
  if (context.step == core::ProtocolStep::kCoordinatorDecide) {
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& event = plan_.events[i];
      if (event.kind != FaultKind::kCoordinatorCrash || fired_[i]) continue;
      if (decide_count_ == event.occurrence) {
        fired_[i] = true;
        ++faults_triggered_;
        // Only sets a flag; the coordinator crashes on its way into the
        // decision broadcast, after this hook returns.
        system_->InjectCoordinatorCrash(context.txn, event.duration);
      }
    }
    ++decide_count_;
    return;
  }

  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if ((event.kind != FaultKind::kSiteCrashAtStep &&
         event.kind != FaultKind::kCrashRestart) ||
        fired_[i]) {
      continue;
    }
    if (event.step != context.step) continue;
    if (event.site != kInvalidSite && event.site != context.site) continue;
    if (matches_[i]++ != event.occurrence) continue;
    fired_[i] = true;
    ++faults_triggered_;
    // Crash *after* the current protocol step unwinds: a zero-delay event
    // runs once the participant's in-progress handler returns, so the step
    // completes and the crash lands exactly in the window after it. A
    // crash_restart carries its explicit recovery-window and optional
    // double-crash schedule; a plain step crash keeps the defaults.
    const SiteId victim = context.site;
    const Duration outage = event.duration;
    const Duration recovery =
        event.kind == FaultKind::kCrashRestart ? event.recovery : 0;
    const Duration recrash =
        event.kind == FaultKind::kCrashRestart ? event.recrash : -1;
    system_->simulator().Schedule(0, [this, victim, outage, recovery,
                                      recrash] {
      if (system_->network().NodeDown(victim)) return;  // already down
      system_->CrashSite(victim, outage, recovery, recrash);
    });
  }
}

std::array<std::uint64_t, kNumFaultKinds> FaultInjector::FiredByKind() const {
  std::array<std::uint64_t, kNumFaultKinds> fired{};
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (fired_[i]) ++fired[static_cast<std::size_t>(plan_.events[i].kind)];
  }
  return fired;
}

net::FaultDecision FaultInjector::OnMessage(const net::Message& message) {
  net::FaultDecision decision;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind != FaultKind::kDropMessage &&
        event.kind != FaultKind::kDelayMessage &&
        event.kind != FaultKind::kDuplicateMessage &&
        event.kind != FaultKind::kReorderMessages) {
      continue;
    }
    // One-shot events latch on `fired_`; a reorder window keeps matching
    // until its `count` consecutive matches are exhausted.
    if (event.kind != FaultKind::kReorderMessages && fired_[i]) continue;
    if (event.msg_type >= 0 &&
        event.msg_type != static_cast<int>(message.type)) {
      continue;
    }
    if (event.msg_from != kInvalidSite && event.msg_from != message.from) {
      continue;
    }
    if (event.msg_to != kInvalidSite && event.msg_to != message.to) continue;
    if (event.kind == FaultKind::kReorderMessages) {
      const int window = std::max(event.count, 1);
      const int match = matches_[i]++;
      if (match < event.occurrence || match >= event.occurrence + window) {
        continue;
      }
      if (!fired_[i]) {
        fired_[i] = true;
        ++faults_triggered_;
      }
      decision.reorder_window =
          std::max(decision.reorder_window, event.duration);
      continue;
    }
    if (matches_[i]++ != event.occurrence) continue;
    fired_[i] = true;
    ++faults_triggered_;
    if (event.kind == FaultKind::kDropMessage) {
      decision.drop = true;
    } else if (event.kind == FaultKind::kDelayMessage) {
      decision.extra_delay += event.duration;
    } else {
      decision.duplicates += std::max(event.count, 1);
    }
  }
  return decision;
}

}  // namespace o2pc::campaign
