#include "campaign/shrink.h"

namespace o2pc::campaign {

ShrinkResult ShrinkFaultPlan(const CampaignRunConfig& config, int max_runs) {
  ShrinkResult result;
  result.plan = config.plan;
  ++result.runs_used;
  if (RunOne(config).ok()) return result;  // not failing: nothing to shrink

  bool removed_any = true;
  while (removed_any) {
    removed_any = false;
    std::size_t i = 0;
    while (i < result.plan.events.size()) {
      if (result.runs_used >= max_runs) {
        result.reached_fixpoint = false;
        return result;
      }
      CampaignRunConfig probe = config;
      probe.plan = result.plan;
      probe.plan.events.erase(probe.plan.events.begin() +
                              static_cast<std::ptrdiff_t>(i));
      ++result.runs_used;
      if (!RunOne(probe).ok()) {
        // Still fails without this event: it was not needed. Stay at `i`,
        // which now indexes the next candidate.
        result.plan = std::move(probe.plan);
        removed_any = true;
      } else {
        ++i;
      }
    }
  }
  return result;
}

}  // namespace o2pc::campaign
