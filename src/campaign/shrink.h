#ifndef O2PC_CAMPAIGN_SHRINK_H_
#define O2PC_CAMPAIGN_SHRINK_H_

#include "campaign/runner.h"

/// \file
/// Greedy fault-plan shrinking: given a failing `{seed, plan}` run, remove
/// one fault event at a time, keeping each removal that still reproduces an
/// oracle violation, until a fixpoint (no single event can be removed) or
/// the run budget is exhausted. The simulation is deterministic, so every
/// probe is exact — no flaky-reproduction heuristics needed.

namespace o2pc::campaign {

struct ShrinkResult {
  /// A minimal still-failing plan (1-minimal w.r.t. event removal when the
  /// budget sufficed).
  FaultPlan plan;
  /// Simulation runs spent probing.
  int runs_used = 0;
  /// False when max_runs cut the search short of the fixpoint.
  bool reached_fixpoint = true;
};

/// Shrinks `config.plan`. `config` must currently fail its oracles; if it
/// does not, the original plan is returned untouched (runs_used = 1).
ShrinkResult ShrinkFaultPlan(const CampaignRunConfig& config,
                             int max_runs = 64);

}  // namespace o2pc::campaign

#endif  // O2PC_CAMPAIGN_SHRINK_H_
