#ifndef O2PC_CAMPAIGN_FAULT_PLAN_H_
#define O2PC_CAMPAIGN_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/step_hook.h"

/// \file
/// Fault plans: declarative, serializable schedules of faults injected into
/// one simulation run. A plan is a list of FaultEvents; each event is either
/// pinned to simulated time (partitions, timed crashes) or to a *protocol
/// step occurrence* (crash site 2 the first time it locally commits, crash
/// the coordinator at its third decision, drop the second DECISION message
/// from site 0) — the step-indexed pins are what make "crash between local
/// commit and DECISION" a first-class, replayable schedule rather than a
/// lucky timing.
///
/// Plans round-trip through a line-oriented text grammar (ToString/Parse),
/// so a failing `{seed, plan}` pair can be written to disk, attached to a
/// bug report, replayed bit-identically, and shrunk. One event per line:
///
///     crash site=2 step=local_commit occurrence=0 outage_us=40000
///     crash_at site=1 at_us=12000 outage_us=30000
///     partition a=0 b=1 at_us=8000 heal_us=50000
///     drop type=DECISION from=any to=2 occurrence=1
///     delay type=VOTE from=any to=any occurrence=0 extra_us=20000
///     coordinator_crash occurrence=2
///     coordinator_crash occurrence=0 outage_us=-1
///     duplicate type=VOTE_REQ from=any to=2 occurrence=1 copies=2
///     reorder type=any from=0 to=any occurrence=0 count=6 window_us=15000
///     oneway_partition from=0 to=1 at_us=8000 heal_us=50000
///     gray site=2 at_us=10000 duration_us=80000 factor=25
///     crash_restart site=1 step=before_decision occurrence=0 outage_us=40000 recovery_us=5000 recrash_us=2000
///
/// `coordinator_crash` takes an optional `outage_us` (omitted or 0: the
/// configured recovery delay; > 0: that outage; < 0: the coordinator never
/// recovers — participants must terminate via DECISION-REQ or the
/// cooperative termination protocol).
///
/// The four adversarial-network productions:
///   `duplicate` delivers `copies` extra copies of the `occurrence`-th
///   matching message, each with an independent latency draw (at-least-once
///   delivery; a copy can overtake the original).
///   `reorder` spans a *window* of `count` consecutive matching messages
///   starting at the `occurrence`-th; each delivery in the window gets an
///   independent extra delay uniform in [0, window_us], shuffling relative
///   order while never moving any message by more than the bound.
///   `oneway_partition` severs only the direction from->to at `at_us`
///   (heal_us <= 0: never heals) — the reverse direction stays alive.
///   `gray` multiplies every delivery latency to or from `site` by
///   `factor` for `duration_us` (<= 0: forever); the site is slow but
///   alive and never declared down.
///
/// Lines starting with '#' and blank lines are ignored.

namespace o2pc::campaign {

/// What kind of fault one event injects.
enum class FaultKind : std::uint8_t {
  /// Crash `site` at the `occurrence`-th announcement of `step` at it.
  kSiteCrashAtStep = 0,
  /// Crash `site` at simulated time `at`.
  kSiteCrashAtTime,
  /// Sever the link `site`<->`peer` at `at`, heal it `duration` later
  /// (duration <= 0: never heal).
  kPartition,
  /// Drop the `occurrence`-th matching message (type/from/to filters).
  kDropMessage,
  /// Delay the `occurrence`-th matching message by `duration` extra.
  kDelayMessage,
  /// Crash the coordinator at its `occurrence`-th decision, system-wide.
  /// `duration` = 0 uses the configured recovery delay, > 0 overrides it,
  /// < 0 makes the outage permanent.
  kCoordinatorCrash,
  /// Deliver `count` extra copies of the `occurrence`-th matching message.
  kDuplicateMessage,
  /// Shuffle a window of `count` matching messages (starting at the
  /// `occurrence`-th) within a `duration` delivery-delay bound.
  kReorderMessages,
  /// Sever only the direction `site`->`peer` at `at`, heal `duration`
  /// later (duration <= 0: never heal). The reverse direction stays up.
  kOneWayPartition,
  /// Inflate every delivery latency to/from `site` by `factor` between
  /// `at` and `at` + `duration` (duration <= 0: forever).
  kGrayFailure,
  /// Crash `site` at the `occurrence`-th announcement of `step`, with an
  /// explicit restart: outage `duration` (> 0 required), then a recovery
  /// phase of at least `recovery` (WAL analysis + marking catch-up run
  /// before the site accepts work again). `recrash` >= 0 schedules a
  /// second crash that many microseconds after recovery begins — the
  /// crash-during-recovery double fault.
  kCrashRestart,
};

/// Number of grammar productions (FaultKind values are contiguous from 0).
inline constexpr int kNumFaultKinds =
    static_cast<int>(FaultKind::kCrashRestart) + 1;

const char* FaultKindName(FaultKind kind);

/// One scheduled fault. Fields beyond `kind` are interpreted per kind;
/// unused fields keep their defaults (and are not serialized).
struct FaultEvent {
  FaultKind kind = FaultKind::kSiteCrashAtTime;
  /// Crash target / partition endpoint A.
  SiteId site = kInvalidSite;
  /// Partition endpoint B.
  SiteId peer = kInvalidSite;
  /// Step pin for kSiteCrashAtStep.
  core::ProtocolStep step = core::ProtocolStep::kLocalCommit;
  /// Which occurrence of the pin fires the event (0 = first).
  int occurrence = 0;
  /// Message-type filter for drop/delay (-1 = any type); values are
  /// net::MessageType casts.
  int msg_type = -1;
  /// Sender/receiver filters for drop/delay (kInvalidSite = any).
  SiteId msg_from = kInvalidSite;
  SiteId msg_to = kInvalidSite;
  /// Absolute simulated time for time-pinned events.
  SimTime at = 0;
  /// Outage length (crashes; <= 0 = never recover), heal delay
  /// (partitions, one-way partitions; <= 0 = never heal), extra delay
  /// (kDelayMessage), reorder window bound (kReorderMessages), or gray
  /// window length (kGrayFailure; <= 0 = forever).
  Duration duration = 0;
  /// Extra copies (kDuplicateMessage, key `copies`) or window size in
  /// matching messages (kReorderMessages, key `count`).
  int count = 1;
  /// Latency multiplier for kGrayFailure.
  std::int64_t factor = 0;
  /// Minimum recovery-window length for kCrashRestart (the site stays
  /// unreachable until the window elapses and catch-up settles).
  Duration recovery = 0;
  /// kCrashRestart: delay from recovery begin to a second crash
  /// (< 0: no double crash).
  Duration recrash = -1;

  /// One-line serialization in the plan grammar.
  std::string ToString() const;
};

/// A full fault schedule for one run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Multi-line serialization (one event per line, trailing newline).
  std::string ToString() const;

  /// Parses the grammar above. Returns false (and sets `error` if non-null)
  /// on the first malformed line; `plan` is untouched on failure.
  static bool Parse(const std::string& text, FaultPlan* plan,
                    std::string* error = nullptr);
};

/// Names of the built-in plan templates swept by the campaign:
/// "none", "crashes", "partitions", "drops", "delays", "coordinator",
/// "coordinator_outage" (a *permanent* coordinator crash — the liveness
/// oracle checks that every blocked participant still terminates), "mixed",
/// plus the adversarial-network templates "duplicates", "reorders",
/// "oneway_partitions", "gray", and "mixed_adversarial" (one of each new
/// production in a single run), and "crash_restarts" (step-pinned crashes
/// with explicit recovery windows and crash-during-recovery double
/// faults). New templates append at the end so position-indexed sweep
/// grids keep their historical run->plan mapping.
const std::vector<std::string>& DefaultTemplateNames();

/// Generates a randomized plan from `template_name` for a system of
/// `num_sites` sites, deterministically from `seed`. Unknown template
/// names yield an empty plan.
FaultPlan GeneratePlan(const std::string& template_name, std::uint64_t seed,
                       int num_sites);

/// A deliberately lethal plan: site 0 crashes permanently the first time it
/// locally commits (recovery disabled via outage <= 0), burying an exposed
/// in-doubt subtransaction forever — plus a little irrelevant noise for the
/// shrinker to strip. The durability/in-doubt oracle must flag it.
FaultPlan KnownBadPlan(int num_sites);

}  // namespace o2pc::campaign

#endif  // O2PC_CAMPAIGN_FAULT_PLAN_H_
