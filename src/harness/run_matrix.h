#ifndef O2PC_HARNESS_RUN_MATRIX_H_
#define O2PC_HARNESS_RUN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "harness/experiment.h"

/// \file
/// Batch experiment runner shared by every bench binary: collect the full
/// protocol x parameter grid up front, then execute it — serially or fanned
/// across cores via exec::RunExecutor — and return results **in submission
/// order**. Each run is an isolated simulation, so the result vector (and
/// everything derived from it: tables, merged stats, BENCH_*.json) is
/// byte-identical for every job count.

namespace o2pc::harness {

class RunMatrix {
 public:
  /// `jobs`: 1 = serial (the exact pre-executor code path), N = fan out
  /// across N workers, <= 0 = one per hardware thread.
  explicit RunMatrix(int jobs = 1);

  /// Queues one experiment; returns its index into RunAll()'s result
  /// vector.
  std::size_t Add(ExperimentConfig config);

  std::size_t size() const { return configs_.size(); }
  int jobs() const { return jobs_; }

  /// Runs every queued experiment and returns results in Add() order.
  std::vector<RunResult> RunAll() const;

 private:
  int jobs_;
  std::vector<ExperimentConfig> configs_;
};

/// Parses `--jobs N` / `--jobs=N` / `-j N` / `-jN` out of a bench binary's
/// argv (0 = one per hardware thread). Unrecognized arguments are ignored so
/// benches stay forgiving. Returns `fallback` when no flag is present.
int JobsFromArgs(int argc, char** argv, int fallback = 1);

}  // namespace o2pc::harness

#endif  // O2PC_HARNESS_RUN_MATRIX_H_
