#ifndef O2PC_HARNESS_EXPERIMENT_H_
#define O2PC_HARNESS_EXPERIMENT_H_

#include <array>
#include <string>

#include "core/system.h"
#include "net/message.h"
#include "sg/correctness.h"
#include "workload/generator.h"

/// \file
/// One-call experiment runner: build a DistributedSystem, drive a synthetic
/// workload to completion, aggregate the metrics every experiment needs
/// (throughput, latency, lock hold/wait times, message counts, abort and
/// compensation counts), and run the §5 correctness analysis.

namespace o2pc::harness {

struct ExperimentConfig {
  std::string label;
  core::SystemOptions system;
  workload::WorkloadOptions workload;
  /// If true (default), run the post-hoc serialization-graph analysis
  /// (can be disabled for very large runs).
  bool analyze = true;
};

struct RunResult {
  std::string label;

  SimTime makespan = 0;
  double throughput_tps = 0.0;  // committed globals per simulated second

  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;

  double mean_xlock_hold_us = 0.0;
  double p99_xlock_hold_us = 0.0;
  double max_xlock_hold_us = 0.0;
  double mean_lock_wait_us = 0.0;

  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t compensations = 0;
  std::uint64_t compensation_retries = 0;
  std::uint64_t r1_rejections = 0;
  std::uint64_t restarts = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t coordinator_crashes = 0;
  std::uint64_t udum_unmarks = 0;
  std::uint64_t locals_committed = 0;

  std::uint64_t messages_total = 0;
  std::array<std::uint64_t, net::kNumMessageTypes> messages_by_type{};

  sg::CorrectnessReport report;
  int regular_cycle_pivots = 0;
};

/// Builds, drives, drains, aggregates.
RunResult RunExperiment(const ExperimentConfig& config);

}  // namespace o2pc::harness

#endif  // O2PC_HARNESS_EXPERIMENT_H_
