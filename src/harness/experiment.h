#ifndef O2PC_HARNESS_EXPERIMENT_H_
#define O2PC_HARNESS_EXPERIMENT_H_

#include <array>
#include <string>
#include <vector>

#include "core/system.h"
#include "net/message.h"
#include "sg/correctness.h"
#include "trace/trace.h"
#include "workload/generator.h"

/// \file
/// One-call experiment runner: build a DistributedSystem, drive a synthetic
/// workload to completion, aggregate the metrics every experiment needs
/// (throughput, latency, lock hold/wait times, message counts, abort and
/// compensation counts), and run the §5 correctness analysis.

namespace o2pc::harness {

struct ExperimentConfig {
  std::string label;
  core::SystemOptions system;
  workload::WorkloadOptions workload;
  /// If true (default), run the post-hoc serialization-graph analysis
  /// (can be disabled for very large runs).
  bool analyze = true;

  /// Protocol event tracing. Events are recorded while the run executes and
  /// exported afterwards; with every field at its default the run pays only
  /// the dormant-hook cost (one load+branch per emit point).
  ///
  /// Caller-owned recorder to capture into (e.g. to run the TraceChecker or
  /// assert on the journal in tests). If null but an export path is set, an
  /// internal recorder is used for the duration of the run.
  trace::TraceRecorder* recorder = nullptr;
  /// Write the journal as JSONL to this path after the run ("" = off).
  std::string trace_jsonl_path;
  /// Write the journal in Chrome trace-event format ("" = off); load the
  /// file via chrome://tracing or https://ui.perfetto.dev.
  std::string trace_chrome_path;

  /// Telemetry capture (src/telemetry): write the machine-readable sweep
  /// telemetry JSON and/or the self-contained HTML report after the run
  /// ("" = off). Either path forces trace recording for the duration of
  /// the run (the phase profiler reads the journal) and samples the
  /// system gauges every `time_series_interval` of simulated time.
  std::string telemetry_json_path;
  std::string report_html_path;
  Duration time_series_interval = Millis(2);
};

struct RunResult {
  std::string label;

  SimTime makespan = 0;
  double throughput_tps = 0.0;  // committed globals per simulated second

  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;

  /// Submit → decision-logged latency over decided globals: how long the
  /// vote phase holds the outcome open, independent of ack drain.
  double mean_decision_latency_us = 0.0;
  double p50_decision_latency_us = 0.0;
  double p99_decision_latency_us = 0.0;
  double max_decision_latency_us = 0.0;

  double mean_xlock_hold_us = 0.0;
  double p99_xlock_hold_us = 0.0;
  double max_xlock_hold_us = 0.0;
  double mean_lock_wait_us = 0.0;

  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t compensations = 0;
  std::uint64_t compensation_retries = 0;
  std::uint64_t r1_rejections = 0;
  std::uint64_t restarts = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t coordinator_crashes = 0;
  std::uint64_t udum_unmarks = 0;
  std::uint64_t locals_committed = 0;

  /// Time participants spent blocked — voted, updates exposed (O2PC) or
  /// locks held prepared (2PC) — waiting for the DECISION. The paper's
  /// blocking-window comparison: grows with coordinator outages under 2PC,
  /// stays near zero under O2PC (locks were released at the vote; only the
  /// bookkeeping wait remains). Total is in nanoseconds for headroom.
  std::uint64_t blocked_prepared_ns = 0;
  double mean_blocked_prepared_us = 0.0;
  double p50_blocked_prepared_us = 0.0;
  double p99_blocked_prepared_us = 0.0;
  double max_blocked_prepared_us = 0.0;
  /// Participant-driven decision recovery traffic (termination protocol).
  std::uint64_t decision_reqs = 0;
  std::uint64_t ctp_resolutions = 0;

  std::uint64_t messages_total = 0;
  std::array<std::uint64_t, net::kNumMessageTypes> messages_by_type{};

  sg::CorrectnessReport report;
  int regular_cycle_pivots = 0;

  /// Number of protocol events journaled (0 when tracing was off).
  std::uint64_t trace_events = 0;

  /// The result as a single pretty-printed JSON object (metrics only; the
  /// correctness report is summarized as pass/fail counts).
  std::string ToJson() const;
};

/// Writes `result.ToJson()` to `path`. Returns false (and logs) on I/O
/// failure.
bool WriteResultJson(const RunResult& result, const std::string& path);

/// Writes every run of one benchmark as a JSON array to BENCH_<name>.json
/// in the working directory, so a bench binary leaves a machine-readable
/// record next to its printed tables. Returns false (and logs) on failure.
bool WriteBenchJson(const std::string& name,
                    const std::vector<RunResult>& results);

/// Builds, drives, drains, aggregates.
RunResult RunExperiment(const ExperimentConfig& config);

}  // namespace o2pc::harness

#endif  // O2PC_HARNESS_EXPERIMENT_H_
