#include "harness/run_matrix.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/run_executor.h"

namespace o2pc::harness {

RunMatrix::RunMatrix(int jobs)
    : jobs_(jobs <= 0 ? exec::RunExecutor::HardwareJobs() : jobs) {}

std::size_t RunMatrix::Add(ExperimentConfig config) {
  configs_.push_back(std::move(config));
  return configs_.size() - 1;
}

std::vector<RunResult> RunMatrix::RunAll() const {
  if (jobs_ == 1) {
    std::vector<RunResult> results;
    results.reserve(configs_.size());
    for (const ExperimentConfig& config : configs_) {
      results.push_back(RunExperiment(config));
    }
    return results;
  }
  exec::RunExecutor executor(jobs_);
  return executor.Map<RunResult>(
      configs_.size(),
      [this](std::size_t i) { return RunExperiment(configs_[i]); });
}

int JobsFromArgs(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc) value = argv[i + 1];
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      value = arg + 2;
    }
    if (value != nullptr) {
      const int jobs = std::atoi(value);
      return jobs <= 0 ? exec::RunExecutor::HardwareJobs() : jobs;
    }
  }
  return fallback;
}

}  // namespace o2pc::harness
