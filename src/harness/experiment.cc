#include "harness/experiment.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "metrics/histogram.h"
#include "telemetry/report.h"
#include "telemetry/time_series.h"
#include "trace/export.h"

namespace o2pc::harness {

namespace {

void JsonField(std::ostream& out, bool& first, const char* name) {
  if (!first) out << ",";
  first = false;
  out << "\n  \"" << name << "\": ";
}

void Put(std::ostream& out, bool& first, const char* name, double value) {
  JsonField(out, first, name);
  out << value;
}

void Put(std::ostream& out, bool& first, const char* name,
         std::uint64_t value) {
  JsonField(out, first, name);
  out << value;
}

void Put(std::ostream& out, bool& first, const char* name, bool value) {
  JsonField(out, first, name);
  out << (value ? "true" : "false");
}

}  // namespace

std::string RunResult::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  JsonField(out, first, "label");
  out << "\"" << label << "\"";
  Put(out, first, "makespan_us", static_cast<std::uint64_t>(makespan));
  Put(out, first, "throughput_tps", throughput_tps);
  Put(out, first, "mean_latency_us", mean_latency_us);
  Put(out, first, "p99_latency_us", p99_latency_us);
  Put(out, first, "mean_decision_latency_us", mean_decision_latency_us);
  Put(out, first, "p50_decision_latency_us", p50_decision_latency_us);
  Put(out, first, "p99_decision_latency_us", p99_decision_latency_us);
  Put(out, first, "max_decision_latency_us", max_decision_latency_us);
  Put(out, first, "mean_xlock_hold_us", mean_xlock_hold_us);
  Put(out, first, "p99_xlock_hold_us", p99_xlock_hold_us);
  Put(out, first, "max_xlock_hold_us", max_xlock_hold_us);
  Put(out, first, "mean_lock_wait_us", mean_lock_wait_us);
  Put(out, first, "committed", committed);
  Put(out, first, "aborted", aborted);
  Put(out, first, "compensations", compensations);
  Put(out, first, "compensation_retries", compensation_retries);
  Put(out, first, "r1_rejections", r1_rejections);
  Put(out, first, "restarts", restarts);
  Put(out, first, "deadlocks", deadlocks);
  Put(out, first, "coordinator_crashes", coordinator_crashes);
  Put(out, first, "udum_unmarks", udum_unmarks);
  Put(out, first, "locals_committed", locals_committed);
  Put(out, first, "blocked_prepared_ns", blocked_prepared_ns);
  Put(out, first, "mean_blocked_prepared_us", mean_blocked_prepared_us);
  Put(out, first, "p50_blocked_prepared_us", p50_blocked_prepared_us);
  Put(out, first, "p99_blocked_prepared_us", p99_blocked_prepared_us);
  Put(out, first, "max_blocked_prepared_us", max_blocked_prepared_us);
  Put(out, first, "decision_reqs", decision_reqs);
  Put(out, first, "ctp_resolutions", ctp_resolutions);
  Put(out, first, "messages_total", messages_total);
  JsonField(out, first, "messages_by_type");
  out << "[";
  for (std::size_t i = 0; i < messages_by_type.size(); ++i) {
    if (i != 0) out << ",";
    out << messages_by_type[i];
  }
  out << "]";
  Put(out, first, "locally_serializable", report.locally_serializable);
  Put(out, first, "has_regular_cycle", report.has_regular_cycle);
  Put(out, first, "correct", report.correct);
  Put(out, first, "atomic_compensation", report.atomic_compensation);
  Put(out, first, "regular_cycle_pivots",
      static_cast<std::uint64_t>(regular_cycle_pivots));
  Put(out, first, "trace_events", trace_events);
  out << "\n}\n";
  return out.str();
}

bool WriteResultJson(const RunResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    O2PC_LOG(kError) << "cannot open result output file '" << path << "'";
    return false;
  }
  out << result.ToJson();
  out.flush();
  return static_cast<bool>(out);
}

bool WriteBenchJson(const std::string& name,
                    const std::vector<RunResult>& results) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    O2PC_LOG(kError) << "cannot open bench output file '" << path << "'";
    return false;
  }
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n" << results[i].ToJson();
  }
  out << "]\n";
  out.flush();
  return static_cast<bool>(out);
}

RunResult RunExperiment(const ExperimentConfig& config) {
  core::DistributedSystem system(config.system);
  workload::WorkloadGenerator generator(
      config.system.num_sites, config.system.keys_per_site, config.workload);

  const bool want_telemetry = !config.telemetry_json_path.empty() ||
                              !config.report_html_path.empty();
  const bool want_export = !config.trace_jsonl_path.empty() ||
                           !config.trace_chrome_path.empty() || want_telemetry;
  trace::TraceRecorder own_recorder;
  trace::TraceRecorder* recorder = config.recorder;
  if (recorder == nullptr && want_export) recorder = &own_recorder;

  telemetry::RunTelemetry run_telemetry;
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
  if (want_telemetry) {
    telemetry::CoverageMap* coverage = &run_telemetry.coverage;
    system.SetStepObserver([coverage](const core::StepContext& context) {
      coverage->RecordStep(context.step);
    });
    sampler = std::make_unique<telemetry::TimeSeriesSampler>(
        &system, config.time_series_interval);
  }

  if (recorder != nullptr) {
    trace::ScopedTrace scope(recorder, &system.simulator());
    generator.Drive(system);
    if (sampler != nullptr) sampler->Start();
    system.Run();
  } else {
    generator.Drive(system);
    system.Run();
  }

  RunResult result;
  result.label = config.label;
  result.makespan = system.simulator().Now();

  const metrics::StatsCollector& stats = system.stats();
  result.throughput_tps = stats.Throughput(result.makespan);
  metrics::Histogram latency = stats.CommitLatency();
  result.mean_latency_us = latency.Mean();
  result.p99_latency_us = latency.Percentile(0.99);

  metrics::Histogram decision;
  for (const metrics::GlobalTxnRecord& txn : stats.global_txns()) {
    if (txn.decide_time <= 0) continue;  // never reached a decision
    decision.Add(static_cast<double>(
        std::max<SimTime>(0, txn.decide_time - txn.submit_time)));
  }
  result.mean_decision_latency_us = decision.Mean();
  result.p50_decision_latency_us = decision.Percentile(0.5);
  result.p99_decision_latency_us = decision.Percentile(0.99);
  result.max_decision_latency_us = decision.Max();

  metrics::Histogram xhold;
  metrics::Histogram wait;
  for (int i = 0; i < config.system.num_sites; ++i) {
    const lock::LockStats& lock_stats =
        system.db(static_cast<SiteId>(i)).lock_manager().stats();
    xhold.AddAll(lock_stats.exclusive_hold);
    wait.AddAll(lock_stats.wait_time);
    result.deadlocks += lock_stats.deadlocks;
  }
  result.mean_xlock_hold_us = xhold.Mean();
  result.p99_xlock_hold_us = xhold.Percentile(0.99);
  result.max_xlock_hold_us = xhold.Max();
  result.mean_lock_wait_us = wait.Mean();

  result.committed = stats.Count("globals_committed");
  result.aborted = stats.Count("globals_aborted");
  result.compensations = stats.Count("compensations_committed");
  result.compensation_retries = stats.Count("compensation_retries");
  result.r1_rejections = stats.Count("r1_rejections");
  result.restarts = stats.Count("global_restarts");
  result.coordinator_crashes = stats.Count("coordinator_crashes");
  result.udum_unmarks = stats.Count("udum_unmarks");
  result.locals_committed = stats.Count("locals_committed");
  result.blocked_prepared_ns = stats.Count("blocked_prepared_ns");
  if (const metrics::Histogram* blocked = stats.FindHist("blocked_prepared_us");
      blocked != nullptr) {
    result.mean_blocked_prepared_us = blocked->Mean();
    result.p50_blocked_prepared_us = blocked->Percentile(0.5);
    result.p99_blocked_prepared_us = blocked->Percentile(0.99);
    result.max_blocked_prepared_us = blocked->Max();
  }
  result.decision_reqs = stats.Count("decision_reqs_sent");
  result.ctp_resolutions = stats.Count("ctp_resolutions");

  const net::NetworkStats& net_stats = system.network().stats();
  result.messages_total = net_stats.sent_total;
  result.messages_by_type = net_stats.sent_by_type;

  if (config.analyze) {
    result.report = system.Analyze();
    result.regular_cycle_pivots =
        static_cast<int>(result.report.regular_pivots.size());
  }

  if (recorder != nullptr) {
    result.trace_events = recorder->size();
    if (!config.trace_jsonl_path.empty()) {
      trace::WriteJsonlFile(recorder->events(), config.trace_jsonl_path);
    }
    if (!config.trace_chrome_path.empty()) {
      trace::WriteChromeTraceFile(recorder->events(),
                                  config.trace_chrome_path);
    }
  }

  if (want_telemetry && recorder != nullptr) {
    telemetry::CollectFromJournal(recorder->events(), &run_telemetry);
    if (config.analyze) {
      // The sim has no oracle battery; the §5 analysis stands in for it.
      run_telemetry.coverage.RecordVerdict(
          result.report.correct && result.report.atomic_compensation
              ? telemetry::OracleVerdict::kPass
              : telemetry::OracleVerdict::kSgViolation);
    }
    const char* protocol_name =
        config.system.protocol.protocol == core::CommitProtocol::kOptimistic
            ? "o2pc"
            : "2pc";
    telemetry::TelemetryAccumulator accumulator;
    accumulator.AddRun(protocol_name, run_telemetry);
    accumulator.AddSeries(
        StrCat(protocol_name, " ",
               config.label.empty() ? std::string("run") : config.label),
        sampler->series());
    const telemetry::SweepTelemetry sweep = accumulator.Build();
    if (!config.telemetry_json_path.empty()) {
      telemetry::WriteTextFile(config.telemetry_json_path, sweep.ToJson());
    }
    if (!config.report_html_path.empty()) {
      telemetry::WriteTextFile(
          config.report_html_path,
          telemetry::RenderHtml(
              sweep, config.label.empty() ? "o2pc_sim run" : config.label));
    }
  }
  return result;
}

}  // namespace o2pc::harness
