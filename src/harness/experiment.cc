#include "harness/experiment.h"

#include "common/logging.h"
#include "metrics/histogram.h"

namespace o2pc::harness {

RunResult RunExperiment(const ExperimentConfig& config) {
  core::DistributedSystem system(config.system);
  workload::WorkloadGenerator generator(
      config.system.num_sites, config.system.keys_per_site, config.workload);
  generator.Drive(system);
  system.Run();

  RunResult result;
  result.label = config.label;
  result.makespan = system.simulator().Now();

  const metrics::StatsCollector& stats = system.stats();
  result.throughput_tps = stats.Throughput(result.makespan);
  metrics::Histogram latency = stats.CommitLatency();
  result.mean_latency_us = latency.Mean();
  result.p99_latency_us = latency.Percentile(0.99);

  metrics::Histogram xhold;
  metrics::Histogram wait;
  for (int i = 0; i < config.system.num_sites; ++i) {
    const lock::LockStats& lock_stats =
        system.db(static_cast<SiteId>(i)).lock_manager().stats();
    xhold.AddAll(lock_stats.exclusive_hold);
    wait.AddAll(lock_stats.wait_time);
    result.deadlocks += lock_stats.deadlocks;
  }
  result.mean_xlock_hold_us = xhold.Mean();
  result.p99_xlock_hold_us = xhold.Percentile(0.99);
  result.max_xlock_hold_us = xhold.Max();
  result.mean_lock_wait_us = wait.Mean();

  result.committed = stats.Count("globals_committed");
  result.aborted = stats.Count("globals_aborted");
  result.compensations = stats.Count("compensations_committed");
  result.compensation_retries = stats.Count("compensation_retries");
  result.r1_rejections = stats.Count("r1_rejections");
  result.restarts = stats.Count("global_restarts");
  result.coordinator_crashes = stats.Count("coordinator_crashes");
  result.udum_unmarks = stats.Count("udum_unmarks");
  result.locals_committed = stats.Count("locals_committed");

  const net::NetworkStats& net_stats = system.network().stats();
  result.messages_total = net_stats.sent_total;
  result.messages_by_type = net_stats.sent_by_type;

  if (config.analyze) {
    result.report = system.Analyze();
    result.regular_cycle_pivots =
        static_cast<int>(result.report.regular_pivots.size());
  }
  return result;
}

}  // namespace o2pc::harness
