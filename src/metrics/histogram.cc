#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace o2pc::metrics {

void Histogram::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Histogram::AddAll(const std::vector<std::int64_t>& samples) {
  samples_.reserve(samples_.size() + samples.size());
  for (std::int64_t s : samples) samples_.push_back(static_cast<double>(s));
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (sorted_) return;
  auto* self = const_cast<Histogram*>(this);
  std::sort(self->samples_.begin(), self->samples_.end());
  self->sorted_ = true;
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double Histogram::Sum() const {
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum;
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string Histogram::Summary(const std::string& unit) const {
  if (samples_.empty()) return "n=0";
  return StrCat("n=", count(), " mean=", FormatDouble(Mean(), 1), unit,
                " p50=", FormatDouble(Median(), 1), unit,
                " p99=", FormatDouble(Percentile(0.99), 1), unit,
                " max=", FormatDouble(Max(), 1), unit);
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

}  // namespace o2pc::metrics
