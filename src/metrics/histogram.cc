#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace o2pc::metrics {

void Histogram::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Histogram::AddAll(const std::vector<std::int64_t>& samples) {
  samples_.reserve(samples_.size() + samples.size());
  for (std::int64_t s : samples) samples_.push_back(static_cast<double>(s));
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (sorted_) return;
  auto* self = const_cast<Histogram*>(this);
  std::sort(self->samples_.begin(), self->samples_.end());
  self->sorted_ = true;
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double Histogram::Sum() const {
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum;
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string Histogram::Summary(const std::string& unit) const {
  if (samples_.empty()) return "n=0";
  return StrCat("n=", count(), " mean=", FormatDouble(Mean(), 1), unit,
                " p50=", FormatDouble(Median(), 1), unit,
                " p99=", FormatDouble(Percentile(0.99), 1), unit,
                " max=", FormatDouble(Max(), 1), unit);
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size(), 0) {}

BucketHistogram BucketHistogram::DefaultLatencyLayout() {
  std::vector<double> bounds;
  bounds.reserve(28);
  double edge = 1.0;
  for (int i = 0; i < 28; ++i) {
    bounds.push_back(edge);
    edge *= 2.0;
  }
  return BucketHistogram(std::move(bounds));
}

BucketHistogram BucketHistogram::FromParts(std::vector<double> upper_bounds,
                                           std::vector<std::uint64_t> counts,
                                           std::uint64_t overflow) {
  BucketHistogram histogram(std::move(upper_bounds));
  if (counts.size() == histogram.bounds_.size()) {
    histogram.counts_ = std::move(counts);
  }
  histogram.overflow_ = overflow;
  histogram.count_ = overflow;
  for (std::uint64_t c : histogram.counts_) histogram.count_ += c;
  return histogram;
}

void BucketHistogram::Add(double sample) {
  ++count_;
  // First bucket whose upper edge admits the sample (edges inclusive).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  if (it == bounds_.end()) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

bool BucketHistogram::Merge(const BucketHistogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  count_ += other.count_;
  return true;
}

double BucketHistogram::PercentileEstimate(double q) const {
  if (count_ == 0 || bounds_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target among the bucketed counts; walk the cumulative sum.
  // q=0 targets the first sample (a zero target would match nothing and
  // fall through to the overflow saturation below).
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= target && target > seen) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = counts_[i] == 0
                              ? 0.0
                              : static_cast<double>(target - seen) /
                                    static_cast<double>(counts_[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts_[i];
  }
  // Remaining mass lives in the overflow bucket: saturate at the last edge.
  return bounds_.back();
}

void BucketHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  overflow_ = 0;
  count_ = 0;
}

}  // namespace o2pc::metrics
