#ifndef O2PC_METRICS_HISTOGRAM_H_
#define O2PC_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Sample-based summary statistics (mean/percentiles) used for latency,
/// lock-hold and wait-time reporting.

namespace o2pc::metrics {

class Histogram {
 public:
  Histogram() = default;

  void Add(double sample);
  void AddAll(const std::vector<std::int64_t>& samples);
  /// Appends every sample of `other` (multi-run aggregation).
  void Merge(const Histogram& other);

  std::uint64_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  /// q in [0,1]; nearest-rank on the sorted samples.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }
  double StdDev() const;

  /// "mean=... p50=... p99=... max=..." (values via `unit` suffix).
  std::string Summary(const std::string& unit = "") const;

  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace o2pc::metrics

#endif  // O2PC_METRICS_HISTOGRAM_H_
