#ifndef O2PC_METRICS_HISTOGRAM_H_
#define O2PC_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Sample-based summary statistics (mean/percentiles) used for latency,
/// lock-hold and wait-time reporting, plus a fixed-layout bucketed
/// histogram (`BucketHistogram`) for compact, mergeable serialization of
/// latency distributions in telemetry JSON.

namespace o2pc::metrics {

class Histogram {
 public:
  Histogram() = default;

  void Add(double sample);
  void AddAll(const std::vector<std::int64_t>& samples);
  /// Appends every sample of `other` (multi-run aggregation).
  void Merge(const Histogram& other);

  std::uint64_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  /// q in [0,1]; nearest-rank on the sorted samples.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }
  double StdDev() const;

  /// "mean=... p50=... p99=... max=..." (values via `unit` suffix).
  std::string Summary(const std::string& unit = "") const;

  /// The raw samples (order unspecified: queries may have sorted them).
  const std::vector<double>& samples() const { return samples_; }

  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// A bucketed histogram with an explicit layout: `bounds[i]` is the
/// *inclusive* upper edge of bucket i, and samples beyond the last bound
/// land in a dedicated overflow bucket. Unlike `Histogram` (which keeps
/// every raw sample), a BucketHistogram is fixed-size, so it serializes
/// compactly and merges across sweeps without unbounded growth — the
/// telemetry layer's on-disk representation of latency distributions.
///
/// Merge requires identical layouts (it returns false and leaves the
/// target untouched on a mismatch): re-bucketing counts between layouts
/// would silently distort percentile estimates.
class BucketHistogram {
 public:
  BucketHistogram() = default;
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit BucketHistogram(std::vector<double> upper_bounds);

  /// Powers of two from 1us to ~134s (28 buckets) — wide enough for every
  /// simulated latency the protocol produces; the shared default layout
  /// makes all telemetry files merge-compatible.
  static BucketHistogram DefaultLatencyLayout();

  /// Reconstructs a histogram from serialized parts (telemetry JSON
  /// round-trip). Requires counts.size() == bounds.size().
  static BucketHistogram FromParts(std::vector<double> upper_bounds,
                                   std::vector<std::uint64_t> counts,
                                   std::uint64_t overflow);

  void Add(double sample);
  /// Element-wise count merge. False (target untouched) when `other` has a
  /// different bucket layout.
  bool Merge(const BucketHistogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t overflow() const { return overflow_; }

  /// q in [0,1]; linear interpolation inside the winning bucket. Overflow
  /// samples report the last bound (the estimate saturates there).
  double PercentileEstimate(double q) const;

  void Clear();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace o2pc::metrics

#endif  // O2PC_METRICS_HISTOGRAM_H_
