#include "metrics/table.h"

#include <algorithm>

namespace o2pc::metrics {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
  return *this;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace o2pc::metrics
