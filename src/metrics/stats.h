#ifndef O2PC_METRICS_STATS_H_
#define O2PC_METRICS_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "metrics/histogram.h"

/// \file
/// Run-wide metrics: named counters, named histograms, and one record per
/// global transaction. The harness turns these into experiment tables.

namespace o2pc::metrics {

/// Everything worth knowing about one global transaction's life.
struct GlobalTxnRecord {
  TxnId id = kInvalidTxn;
  SimTime submit_time = 0;
  /// When the coordinator learned the outcome (decision logged).
  SimTime decide_time = 0;
  /// When the protocol fully drained (acks in, compensations done).
  SimTime finish_time = 0;
  bool committed = false;
  /// Number of participant sites.
  int num_sites = 0;
  /// Compensating subtransactions that ran (locally-committed sites of an
  /// aborted transaction).
  int compensations = 0;
  /// Times a subtransaction was rejected by the marking check R1.
  int r1_rejections = 0;
  /// Times the whole transaction was restarted (deadlock / rejection).
  int restarts = 0;

  Duration Latency() const { return finish_time - submit_time; }
};

class StatsCollector {
 public:
  StatsCollector() = default;
  StatsCollector(const StatsCollector&) = delete;
  StatsCollector& operator=(const StatsCollector&) = delete;

  void Incr(const std::string& counter, std::uint64_t delta = 1) {
    counters_[counter] += delta;
  }
  std::uint64_t Count(const std::string& counter) const {
    auto it = counters_.find(counter);
    return it == counters_.end() ? 0 : it->second;
  }

  Histogram& Hist(const std::string& name) { return histograms_[name]; }
  const Histogram* FindHist(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  /// Counter lookup without creating the entry (Count() hides absence by
  /// returning 0; this distinguishes "absent" from "zero").
  const std::uint64_t* FindCounter(const std::string& counter) const {
    auto it = counters_.find(counter);
    return it == counters_.end() ? nullptr : &it->second;
  }

  /// Folds `other` into this collector: counters add, histograms append
  /// their samples, transaction records concatenate. Used to aggregate
  /// multi-run (e.g. multi-seed) experiments.
  void Merge(const StatsCollector& other);

  void AddGlobalTxn(GlobalTxnRecord record) {
    txns_.push_back(std::move(record));
  }
  const std::vector<GlobalTxnRecord>& global_txns() const { return txns_; }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Committed global transactions per simulated second.
  double Throughput(SimTime makespan) const;

  /// Latency histogram of committed global transactions (microseconds).
  Histogram CommitLatency() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  std::vector<GlobalTxnRecord> txns_;
};

}  // namespace o2pc::metrics

#endif  // O2PC_METRICS_STATS_H_
