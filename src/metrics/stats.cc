#include "metrics/stats.h"

namespace o2pc::metrics {

void StatsCollector::Merge(const StatsCollector& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].Merge(hist);
  }
  txns_.insert(txns_.end(), other.txns_.begin(), other.txns_.end());
}

double StatsCollector::Throughput(SimTime makespan) const {
  if (makespan <= 0) return 0.0;
  std::uint64_t committed = 0;
  for (const GlobalTxnRecord& record : txns_) {
    if (record.committed) ++committed;
  }
  return static_cast<double>(committed) /
         (static_cast<double>(makespan) / 1e6);
}

Histogram StatsCollector::CommitLatency() const {
  Histogram hist;
  for (const GlobalTxnRecord& record : txns_) {
    if (record.committed) {
      hist.Add(static_cast<double>(record.Latency()));
    }
  }
  return hist;
}

}  // namespace o2pc::metrics
