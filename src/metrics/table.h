#ifndef O2PC_METRICS_TABLE_H_
#define O2PC_METRICS_TABLE_H_

#include <string>
#include <vector>

/// \file
/// Aligned ascii tables (and CSV) for benchmark/experiment output.

namespace o2pc::metrics {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& AddRow(std::vector<std::string> row);

  /// Aligned ascii rendering, with a header separator line.
  std::string ToString() const;

  /// Comma-separated rendering for machine consumption.
  std::string ToCsv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace o2pc::metrics

#endif  // O2PC_METRICS_TABLE_H_
