#include "lock/waits_for.h"

namespace o2pc::lock {

const common::SmallSet<TxnId> WaitsForGraph::kEmpty;

bool WaitsForGraph::AddEdge(TxnId waiter, TxnId holder) {
  if (waiter == holder) return false;
  return out_[waiter].insert(holder).second;
}

void WaitsForGraph::ClearWaiter(TxnId waiter) { out_.erase(waiter); }

void WaitsForGraph::RemoveTxn(TxnId txn) {
  out_.erase(txn);
  for (auto& [waiter, targets] : out_) targets.erase(txn);
}

bool WaitsForGraph::Dfs(TxnId node, TxnId start, std::uint64_t epoch,
                        std::vector<TxnId>& path) const {
  path.push_back(node);
  mark_[node] = (epoch << 1) | 1;  // on path
  auto it = out_.find(node);
  if (it != out_.end()) {
    // SmallSet iterates in ascending id order — the same successor order the
    // tree-based graph produced, so the first-found cycle is unchanged.
    for (TxnId next : it->second) {
      if (next == start) return true;  // `path` is the cycle
      auto mit = mark_.find(next);
      if (mit != mark_.end() && (mit->second >> 1) == epoch) continue;
      if (Dfs(next, start, epoch, path)) return true;
    }
  }
  path.pop_back();
  mark_[node] = epoch << 1;  // done this epoch
  return false;
}

std::vector<TxnId> WaitsForGraph::FindCycleFrom(TxnId start) const {
  // A cycle through `start` exists iff `start` is reachable from one of its
  // successors; the lock manager clears a waiter's edges whenever its
  // request resolves, so this is the only place a new cycle can appear.
  std::vector<TxnId> path;
  if (!Dfs(start, start, ++epoch_, path)) path.clear();
  return path;
}

bool WaitsForGraph::HasAnyCycle() const {
  for (const auto& [node, targets] : out_) {
    (void)targets;
    if (!FindCycleFrom(node).empty()) return true;
  }
  return false;
}

const common::SmallSet<TxnId>& WaitsForGraph::WaitTargets(
    TxnId waiter) const {
  auto it = out_.find(waiter);
  return it == out_.end() ? kEmpty : it->second;
}

std::size_t WaitsForGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [node, targets] : out_) {
    (void)node;
    n += targets.size();
  }
  return n;
}

}  // namespace o2pc::lock
