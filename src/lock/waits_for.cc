#include "lock/waits_for.h"

#include <algorithm>
#include <functional>

namespace o2pc::lock {

const std::set<TxnId> WaitsForGraph::kEmpty;

void WaitsForGraph::AddEdge(TxnId waiter, TxnId holder) {
  if (waiter == holder) return;
  out_[waiter].insert(holder);
}

void WaitsForGraph::ClearWaiter(TxnId waiter) { out_.erase(waiter); }

void WaitsForGraph::RemoveTxn(TxnId txn) {
  out_.erase(txn);
  for (auto& [waiter, targets] : out_) targets.erase(txn);
}

std::vector<TxnId> WaitsForGraph::FindCycleFrom(TxnId start) const {
  // Iterative DFS from `start`; a cycle through `start` exists iff `start`
  // is reachable from one of its successors. We track the path to report
  // the cycle's members.
  std::vector<TxnId> path;
  std::set<TxnId> on_path;
  std::set<TxnId> done;
  std::vector<TxnId> result;

  std::function<bool(TxnId)> dfs = [&](TxnId node) -> bool {
    path.push_back(node);
    on_path.insert(node);
    auto it = out_.find(node);
    if (it != out_.end()) {
      for (TxnId next : it->second) {
        if (next == start) {
          result = path;  // path from start back to start
          return true;
        }
        if (on_path.contains(next) || done.contains(next)) continue;
        if (dfs(next)) return true;
      }
    }
    path.pop_back();
    on_path.erase(node);
    done.insert(node);
    return false;
  };

  dfs(start);
  return result;
}

bool WaitsForGraph::HasAnyCycle() const {
  for (const auto& [node, targets] : out_) {
    (void)targets;
    if (!FindCycleFrom(node).empty()) return true;
  }
  return false;
}

const std::set<TxnId>& WaitsForGraph::WaitTargets(TxnId waiter) const {
  auto it = out_.find(waiter);
  return it == out_.end() ? kEmpty : it->second;
}

std::size_t WaitsForGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [node, targets] : out_) {
    (void)node;
    n += targets.size();
  }
  return n;
}

}  // namespace o2pc::lock
