#ifndef O2PC_LOCK_WAITS_FOR_H_
#define O2PC_LOCK_WAITS_FOR_H_

#include <map>
#include <set>
#include <vector>

#include "common/types.h"

/// \file
/// The waits-for graph used for local deadlock detection. Nodes are
/// transactions; an edge a -> b means "a waits for a lock held (or queued
/// ahead) by b".

namespace o2pc::lock {

class WaitsForGraph {
 public:
  WaitsForGraph() = default;

  /// Adds edge waiter -> holder (self-edges are ignored).
  void AddEdge(TxnId waiter, TxnId holder);

  /// Removes every outgoing edge of `waiter` (called when its request is
  /// granted, cancelled, or fails).
  void ClearWaiter(TxnId waiter);

  /// Removes `txn` entirely (as waiter and as wait target).
  void RemoveTxn(TxnId txn);

  /// If `start` is on a cycle, returns the cycle's members (in path order,
  /// starting at `start`); otherwise returns an empty vector.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  /// True if any cycle exists (used by tests and the detector bench).
  bool HasAnyCycle() const;

  const std::set<TxnId>& WaitTargets(TxnId waiter) const;

  std::size_t edge_count() const;

 private:
  std::map<TxnId, std::set<TxnId>> out_;
  static const std::set<TxnId> kEmpty;
};

}  // namespace o2pc::lock

#endif  // O2PC_LOCK_WAITS_FOR_H_
