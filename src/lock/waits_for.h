#ifndef O2PC_LOCK_WAITS_FOR_H_
#define O2PC_LOCK_WAITS_FOR_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/types.h"

/// \file
/// The waits-for graph used for local deadlock detection. Nodes are
/// transactions; an edge a -> b means "a waits for a lock held (or queued
/// ahead) by b".
///
/// Detection is incremental: the lock manager clears a waiter's edges when
/// its request resolves, so a new cycle can only pass through the txn whose
/// edges were just inserted — FindCycleFrom searches only from there. The
/// DFS reuses an epoch-stamped mark table across calls instead of building
/// fresh `std::set`s per check, so steady-state detection allocates nothing.

namespace o2pc::lock {

class WaitsForGraph {
 public:
  WaitsForGraph() = default;

  /// Adds edge waiter -> holder (self-edges are ignored). Returns true if
  /// the edge was not already present.
  bool AddEdge(TxnId waiter, TxnId holder);

  /// Removes every outgoing edge of `waiter` (called when its request is
  /// granted, cancelled, or fails).
  void ClearWaiter(TxnId waiter);

  /// Drops every edge and all DFS scratch, retaining capacity (world-reuse
  /// reset contract, DESIGN §16).
  void ResetForRun() {
    out_.clear();
    mark_.clear();
    epoch_ = 0;
  }

  /// Removes `txn` entirely (as waiter and as wait target).
  void RemoveTxn(TxnId txn);

  /// If `start` is on a cycle, returns the cycle's members (in path order,
  /// starting at `start`); otherwise returns an empty vector.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  /// True if any cycle exists (used by tests and the detector bench).
  bool HasAnyCycle() const;

  /// Outgoing wait targets of `waiter`, in ascending txn-id order.
  const common::SmallSet<TxnId>& WaitTargets(TxnId waiter) const;

  std::size_t edge_count() const;

 private:
  /// Recursive DFS step; returns true once a path back to `start` is found
  /// (the path so far is then the cycle).
  bool Dfs(TxnId node, TxnId start, std::uint64_t epoch,
           std::vector<TxnId>& path) const;

  common::FlatMap<TxnId, common::SmallSet<TxnId>> out_;

  /// DFS scratch, reused across FindCycleFrom calls. `mark_[n]` encodes
  /// (epoch << 1 | on_path): nodes whose stored epoch differs from the
  /// current call's are simply unvisited — no clearing between calls.
  mutable common::FlatMap<TxnId, std::uint64_t> mark_;
  mutable std::uint64_t epoch_ = 0;

  static const common::SmallSet<TxnId> kEmpty;
};

}  // namespace o2pc::lock

#endif  // O2PC_LOCK_WAITS_FOR_H_
