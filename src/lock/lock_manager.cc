#include "lock/lock_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "trace/trace.h"

namespace o2pc::lock {
namespace {

/// First-append reservation for LockStats sample vectors. Keeps the steady
/// state at amortized O(1) appends without paying geometric-growth copies
/// through the small sizes, and costs nothing when record_samples is off
/// (the vectors never see an append, so never allocate).
constexpr std::size_t kSampleReserve = 1024;

void AppendSample(std::vector<Duration>& samples, Duration value) {
  if (samples.capacity() == 0) samples.reserve(kSampleReserve);
  samples.push_back(value);
}

}  // namespace

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "S" : "X";
}

LockManager::LockManager(sim::Simulator* simulator, Options options)
    : simulator_(simulator), options_(options) {
  O2PC_CHECK(simulator != nullptr);
}

void LockManager::ResetForRun() {
  queues_.clear();
  held_.clear();
  waiting_on_.clear();
  waits_for_.ResetForRun();
  stats_.acquires = 0;
  stats_.immediate_grants = 0;
  stats_.waits = 0;
  stats_.deadlocks = 0;
  stats_.cancelled_waits = 0;
  stats_.exclusive_hold.clear();
  stats_.shared_hold.clear();
  stats_.wait_time.clear();
}

void LockManager::Acquire(TxnId txn, DataKey key, LockMode mode,
                          GrantCallback callback) {
  O2PC_CHECK(!waiting_on_.contains(txn))
      << "txn " << txn << " issued a second concurrent lock request";
  ++stats_.acquires;
  Queue& queue = queues_[key];

  // Re-entrant acquisition and upgrades.
  auto holder_it =
      std::find_if(queue.holders.begin(), queue.holders.end(),
                   [txn](const Holder& h) { return h.txn == txn; });
  if (holder_it != queue.holders.end()) {
    const bool covered = holder_it->mode == LockMode::kExclusive ||
                         mode == LockMode::kShared;
    if (covered) {
      ++stats_.immediate_grants;
      simulator_->Schedule(
          0, [cb = std::move(callback)]() mutable { cb(Status::OK()); });
      return;
    }
    // Upgrade S -> X.
    if (queue.holders.size() == 1) {
      holder_it->mode = LockMode::kExclusive;
      ++stats_.immediate_grants;
      O2PC_TRACE(kLockAcquire, options_.site, txn, key,
                 static_cast<std::int64_t>(LockMode::kExclusive));
      simulator_->Schedule(
          0, [cb = std::move(callback)]() mutable { cb(Status::OK()); });
      return;
    }
    ++stats_.waits;
    O2PC_TRACE(kLockWait, options_.site, txn, key,
               static_cast<std::int64_t>(mode));
    queue.waiters.insert(
        queue.waiters.begin(),
        Request{txn, mode, std::move(callback), simulator_->Now(),
                /*is_upgrade=*/true});
    waiting_on_[txn] = key;
    OnBlocked(key, txn);
    return;
  }

  if (CanGrant(queue, txn, mode, /*is_upgrade=*/false)) {
    ++stats_.immediate_grants;
    Grant(key, queue,
          Request{txn, mode, std::move(callback), simulator_->Now(), false});
    return;
  }

  ++stats_.waits;
  O2PC_TRACE(kLockWait, options_.site, txn, key,
             static_cast<std::int64_t>(mode));
  queue.waiters.push_back(Request{txn, mode, std::move(callback),
                                  simulator_->Now(), /*is_upgrade=*/false});
  waiting_on_[txn] = key;
  OnBlocked(key, txn);
}

bool LockManager::CanGrant(const Queue& queue, TxnId txn, LockMode mode,
                           bool is_upgrade) const {
  if (is_upgrade) {
    // Grantable when txn is the sole holder.
    return queue.holders.size() == 1 && queue.holders.front().txn == txn;
  }
  if (!queue.waiters.empty()) return false;  // FIFO fairness
  for (const Holder& holder : queue.holders) {
    if (!Compatible(mode, holder.mode)) return false;
  }
  return true;
}

void LockManager::Grant(DataKey key, Queue& queue, Request request) {
  if (request.is_upgrade) {
    auto it = std::find_if(
        queue.holders.begin(), queue.holders.end(),
        [&](const Holder& h) { return h.txn == request.txn; });
    O2PC_CHECK(it != queue.holders.end()) << "upgrade grant without holder";
    it->mode = LockMode::kExclusive;
  } else {
    queue.holders.push_back(
        Holder{request.txn, request.mode, simulator_->Now()});
    held_[request.txn].insert(key);
  }
  O2PC_TRACE(kLockAcquire, options_.site, request.txn, key,
             static_cast<std::int64_t>(request.is_upgrade
                                           ? LockMode::kExclusive
                                           : request.mode));
  // GrantCallback's inline budget (kGrantCallbackBytes) is sized so this
  // wrapper fits the event queue's 56-byte Callback: no allocation here.
  simulator_->Schedule(0, [cb = std::move(request.callback)]() mutable {
    cb(Status::OK());
  });
}

void LockManager::PumpQueue(DataKey key) {
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return;
  Queue& queue = qit->second;

  while (!queue.waiters.empty()) {
    Request& front = queue.waiters.front();
    if (!front.is_upgrade) {
      bool compatible = true;
      for (const Holder& holder : queue.holders) {
        if (!Compatible(front.mode, holder.mode)) {
          compatible = false;
          break;
        }
      }
      if (!compatible) break;
    } else if (queue.holders.size() != 1 ||
               queue.holders.front().txn != front.txn) {
      break;
    }
    Request request = std::move(front);
    queue.waiters.erase(queue.waiters.begin());
    waiting_on_.erase(request.txn);
    waits_for_.ClearWaiter(request.txn);
    if (options_.record_samples) {
      AppendSample(stats_.wait_time, simulator_->Now() - request.enqueue_time);
    }
    Grant(key, queue, std::move(request));
  }

  // Rebuild waits-for edges of the remaining waiters: the holder set just
  // changed, so old edges may be stale.
  for (std::size_t i = 0; i < queue.waiters.size(); ++i) {
    const Request& request = queue.waiters[i];
    waits_for_.ClearWaiter(request.txn);
    for (const Holder& holder : queue.holders) {
      if (request.is_upgrade || !Compatible(request.mode, holder.mode)) {
        waits_for_.AddEdge(request.txn, holder.txn);
      }
    }
    for (std::size_t j = 0; j < i; ++j) {
      const Request& ahead = queue.waiters[j];
      if (!Compatible(request.mode, ahead.mode)) {
        waits_for_.AddEdge(request.txn, ahead.txn);
      }
    }
  }

  if (queue.holders.empty() && queue.waiters.empty()) {
    queues_.erase(qit);
  }
}

void LockManager::OnBlocked(DataKey key, TxnId txn) {
  Queue& queue = queues_[key];
  // Find our request's position to know who is ahead.
  std::size_t my_pos = queue.waiters.size();
  LockMode my_mode = LockMode::kShared;
  bool my_upgrade = false;
  for (std::size_t i = 0; i < queue.waiters.size(); ++i) {
    if (queue.waiters[i].txn == txn) {
      my_pos = i;
      my_mode = queue.waiters[i].mode;
      my_upgrade = queue.waiters[i].is_upgrade;
      break;
    }
  }
  O2PC_CHECK(my_pos < queue.waiters.size()) << "blocked txn not in queue";

  for (const Holder& holder : queue.holders) {
    if (my_upgrade || !Compatible(my_mode, holder.mode)) {
      waits_for_.AddEdge(txn, holder.txn);
    }
  }
  for (std::size_t j = 0; j < my_pos; ++j) {
    if (!Compatible(my_mode, queue.waiters[j].mode)) {
      waits_for_.AddEdge(txn, queue.waiters[j].txn);
    }
  }

  if (!options_.detect_deadlocks) return;
  // The blocked txn had no outgoing edges before this call (they are
  // cleared whenever a request resolves), so any new cycle must pass
  // through it: searching from `txn` alone is a full detection.
  std::vector<TxnId> cycle = waits_for_.FindCycleFrom(txn);
  if (cycle.empty()) return;

  // Youngest-victim policy: transaction ids are assigned monotonically, so
  // the largest id is the youngest transaction.
  TxnId victim = *std::max_element(cycle.begin(), cycle.end());
  ++stats_.deadlocks;
  auto wit = waiting_on_.find(victim);
  O2PC_CHECK(wit != waiting_on_.end())
      << "deadlock victim " << victim << " is not waiting";
  O2PC_LOG(kDebug) << "deadlock: victim txn " << victim << " (cycle of "
                   << cycle.size() << ")";
  FailWaiter(wit->second, victim, Status::Deadlock("lock wait cycle"));
}

void LockManager::FailWaiter(DataKey key, TxnId txn, Status status) {
  auto qit = queues_.find(key);
  O2PC_CHECK(qit != queues_.end());
  Queue& queue = qit->second;
  auto it = std::find_if(queue.waiters.begin(), queue.waiters.end(),
                         [txn](const Request& r) { return r.txn == txn; });
  O2PC_CHECK(it != queue.waiters.end())
      << "txn " << txn << " has no waiting request on key " << key;
  GrantCallback callback = std::move(it->callback);
  queue.waiters.erase(it);
  waiting_on_.erase(txn);
  waits_for_.ClearWaiter(txn);
  simulator_->Schedule(
      0, [cb = std::move(callback), status]() mutable { cb(status); });
  PumpQueue(key);
}

void LockManager::Release(TxnId txn, DataKey key) {
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return;
  Queue& queue = qit->second;
  auto it = std::find_if(queue.holders.begin(), queue.holders.end(),
                         [txn](const Holder& h) { return h.txn == txn; });
  if (it == queue.holders.end()) return;
  RecordHold(*it);
  O2PC_TRACE(kLockRelease, options_.site, txn, key,
             static_cast<std::int64_t>(it->mode));
  queue.holders.erase(it);
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    hit->second.erase(key);
    if (hit->second.empty()) held_.erase(txn);
  }
  PumpQueue(key);
}

void LockManager::ReleaseAll(TxnId txn) {
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  // Ascending key order, as the sorted held-set iterates — release order is
  // trace-visible and must not change under the container swap.
  const std::vector<DataKey> keys(hit->second.begin(), hit->second.end());
  for (DataKey key : keys) Release(txn, key);
}

void LockManager::ReleaseShared(TxnId txn) {
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  const std::vector<DataKey> keys(hit->second.begin(), hit->second.end());
  for (DataKey key : keys) {
    auto qit = queues_.find(key);
    if (qit == queues_.end()) continue;
    auto it = std::find_if(
        qit->second.holders.begin(), qit->second.holders.end(),
        [txn](const Holder& h) { return h.txn == txn; });
    if (it != qit->second.holders.end() && it->mode == LockMode::kShared) {
      Release(txn, key);
    }
  }
}

void LockManager::CancelWaits(TxnId txn, Status status) {
  auto wit = waiting_on_.find(txn);
  if (wit == waiting_on_.end()) return;
  ++stats_.cancelled_waits;
  FailWaiter(wit->second, txn, std::move(status));
}

bool LockManager::Holds(TxnId txn, DataKey key, LockMode mode) const {
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return false;
  for (const Holder& holder : qit->second.holders) {
    if (holder.txn != txn) continue;
    return holder.mode == LockMode::kExclusive || mode == LockMode::kShared;
  }
  return false;
}

std::vector<DataKey> LockManager::HeldKeys(TxnId txn) const {
  auto hit = held_.find(txn);
  if (hit == held_.end()) return {};
  return std::vector<DataKey>(hit->second.begin(), hit->second.end());
}

bool LockManager::IsWaiting(TxnId txn) const {
  return waiting_on_.contains(txn);
}

std::size_t LockManager::QueueLength(DataKey key) const {
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return 0;
  return qit->second.holders.size() + qit->second.waiters.size();
}

void LockManager::RecordHold(const Holder& holder) {
  if (!options_.record_samples) return;
  const Duration held = simulator_->Now() - holder.grant_time;
  if (holder.mode == LockMode::kExclusive) {
    AppendSample(stats_.exclusive_hold, held);
  } else {
    AppendSample(stats_.shared_hold, held);
  }
}

}  // namespace o2pc::lock
