#ifndef O2PC_LOCK_LOCK_MANAGER_H_
#define O2PC_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/waits_for.h"
#include "sim/callback.h"
#include "sim/simulator.h"

/// \file
/// A strict-2PL lock manager for one site. Shared/exclusive modes, FIFO
/// queues with upgrade priority, callback-based grants (requests never
/// block the simulation thread), waits-for deadlock detection with
/// youngest-victim selection, and the selective-release entry points the
/// commit layer needs:
///
///  * `ReleaseAll`    — local commit/abort, and O2PC's early release at
///                      vote time (the crux of the paper);
///  * `ReleaseShared` — distributed 2PL's release of read locks when
///                      VOTE-REQ arrives (paper §2).
///
/// Hold-time and wait-time samples feed experiment E1.

namespace o2pc::lock {

enum class LockMode : std::uint8_t { kShared = 0, kExclusive = 1 };

const char* LockModeName(LockMode mode);

/// True if two holders with these modes may coexist.
constexpr bool Compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

/// Inline capture budget of GrantCallback. Sized so the grant wrapper
/// `[cb = std::move(cb)]() mutable { cb(Status::OK()); }` — a GrantCallback
/// (40 bytes of storage + ops pointer = 48 bytes) — still fits inline in
/// the 56-byte event-queue Callback: a granted Acquire never touches the
/// heap.
inline constexpr std::size_t kGrantCallbackBytes = 40;

/// Invoked exactly once per Acquire: OK when granted, kDeadlock when the
/// requester was chosen as a deadlock victim, kAborted when the wait was
/// cancelled by CancelWaits.
using GrantCallback = sim::BasicCallback<kGrantCallbackBytes, const Status&>;

/// Aggregate counters plus raw duration samples.
struct LockStats {
  std::uint64_t acquires = 0;
  std::uint64_t immediate_grants = 0;
  std::uint64_t waits = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t cancelled_waits = 0;
  /// Exclusive-lock hold durations (grant -> release), microseconds.
  std::vector<Duration> exclusive_hold;
  /// Shared-lock hold durations.
  std::vector<Duration> shared_hold;
  /// Wait durations for requests that were eventually granted.
  std::vector<Duration> wait_time;
};

class LockManager {
 public:
  struct Options {
    bool detect_deadlocks = true;
    /// If true, hold/wait duration samples are recorded (costs memory).
    bool record_samples = true;
    /// Site this manager belongs to; only used to label trace events.
    SiteId site = kInvalidSite;
  };

  LockManager(sim::Simulator* simulator, Options options);
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `key` in `mode` for `txn`. The callback fires (via a
  /// zero-delay simulator event) once granted or failed. Re-acquiring an
  /// already-held lock in the same or weaker mode grants immediately;
  /// holding S and requesting X is an upgrade (granted when `txn` is the
  /// sole holder, queued with priority otherwise).
  ///
  /// A transaction may have at most one pending request at a time.
  void Acquire(TxnId txn, DataKey key, LockMode mode, GrantCallback callback);

  /// Releases `txn`'s lock on `key` (no-op if not held) and grants waiters.
  void Release(TxnId txn, DataKey key);

  /// Releases everything `txn` holds.
  void ReleaseAll(TxnId txn);

  /// Releases only `txn`'s *shared* locks (distributed 2PL at VOTE-REQ).
  void ReleaseShared(TxnId txn);

  /// Fails `txn`'s pending request (if any) with `status` and removes it
  /// from all queues. Used when a transaction is aborted while waiting.
  void CancelWaits(TxnId txn, Status status);

  /// True if `txn` currently holds `key` with at least `mode` strength.
  bool Holds(TxnId txn, DataKey key, LockMode mode) const;

  /// Keys currently held by `txn`.
  std::vector<DataKey> HeldKeys(TxnId txn) const;

  /// Returns the manager to its just-constructed state — every queue,
  /// holder, waiter, waits-for edge, and stat dropped — retaining container
  /// capacity (world-reuse reset contract, DESIGN §16). Pending grant
  /// callbacks must already have fired or been cancelled: a reset never
  /// fires callbacks.
  void ResetForRun();

  /// True if `txn` has a request waiting in some queue.
  bool IsWaiting(TxnId txn) const;

  /// Number of transactions currently holding or waiting for `key`.
  std::size_t QueueLength(DataKey key) const;

  /// Total (txn, key) holds across every queue — the lock-table occupancy
  /// gauge the telemetry time-series sampler reads.
  std::size_t HeldLockCount() const {
    std::size_t n = 0;
    for (const auto& entry : queues_) n += entry.second.holders.size();
    return n;
  }

  /// Total queued (not yet granted) requests across every queue.
  std::size_t WaitingLockCount() const {
    std::size_t n = 0;
    for (const auto& entry : queues_) n += entry.second.waiters.size();
    return n;
  }

  const LockStats& stats() const { return stats_; }
  const WaitsForGraph& waits_for() const { return waits_for_; }

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
    SimTime grant_time;
  };
  struct Request {
    TxnId txn;
    LockMode mode;
    GrantCallback callback;
    SimTime enqueue_time;
    bool is_upgrade;
  };
  struct Queue {
    std::vector<Holder> holders;
    /// FIFO (front = next to grant); a vector, not a deque, so Queue stays
    /// nothrow-movable inside the flat table. Waiter lists are short, so
    /// the O(n) front operations are cheaper than deque's segment map.
    std::vector<Request> waiters;
  };

  /// True if `request` can be granted right now given holders/waiters.
  bool CanGrant(const Queue& queue, TxnId txn, LockMode mode,
                bool is_upgrade) const;

  /// Installs `txn` as a holder and schedules its callback.
  void Grant(DataKey key, Queue& queue, Request request);

  /// Re-examines `key`'s queue after a release/cancel, granting in FIFO
  /// order (upgrades first).
  void PumpQueue(DataKey key);

  /// Records waits-for edges for a newly blocked request and runs deadlock
  /// detection; may synchronously fail some victim's pending request.
  void OnBlocked(DataKey key, TxnId txn);

  /// Removes `txn`'s waiting request on `key` and fires its callback with
  /// `status`.
  void FailWaiter(DataKey key, TxnId txn, Status status);

  void RecordHold(const Holder& holder);

  sim::Simulator* simulator_;  // not owned
  Options options_;
  /// Per-key lock queues. Never iterated, so insertion-ordered FlatMap
  /// lookup replaces the rb-tree walk on every Acquire/Release.
  common::FlatMap<DataKey, Queue> queues_;
  /// Keys held per txn. The inner set is iterated by ReleaseAll (release
  /// order is trace-visible), so it stays sorted — SmallSet, not FlatSet.
  common::FlatMap<TxnId, common::SmallSet<DataKey>> held_;
  /// key a txn is currently waiting on (at most one).
  common::FlatMap<TxnId, DataKey> waiting_on_;
  WaitsForGraph waits_for_;
  LockStats stats_;
};

}  // namespace o2pc::lock

#endif  // O2PC_LOCK_LOCK_MANAGER_H_
