#ifndef O2PC_EXEC_WORLD_POOL_H_
#define O2PC_EXEC_WORLD_POOL_H_

#include <cstdint>

#include "common/arena.h"

/// \file
/// Per-worker world recycling for the run executor (DESIGN §16).
///
/// Every campaign/bench run builds a complete world — system, sites,
/// network, trace recorder, oracle scratch — and tears it down again. The
/// construction itself is microseconds; what costs is the ~150k heap
/// round trips the run performs while it lives. `WorldPool::ScopedRun`
/// recycles instead: it leases the calling worker's pooled
/// `common::MonotonicArena`, rewinds it (the previous run's world vanishes
/// in O(1)), and arms it for the scope's lifetime, so the next world is
/// bump-allocated into the same cache-warm pages.
///
/// The reset contract: a worker's run results remain readable after the
/// scope ends, *until the same worker opens its next ScopedRun* (the
/// rewind happens at open, not at close). The campaign's wave barrier —
/// Map() returns, the coordinator consumes every slot, only then does the
/// next wave start — is exactly this contract. Anything kept beyond a wave
/// (failure artifacts, telemetry folds) is deep-copied while disarmed.
///
/// Worlds recycled this way are byte-identical to freshly constructed
/// ones: arming changes where memory comes from, never what runs compute.
/// `tests/determinism_golden_test.cc` pins fresh-vs-recycled equality of
/// journal fingerprints and telemetry JSON; `tests/arena_test.cc` pins the
/// steady-state heap-allocation count of a recycled run at zero.

namespace o2pc::exec {

class WorldPool {
 public:
  /// True when runs opened through ScopedRun actually recycle (arena
  /// machinery compiled in, reservation succeeded, not disabled via
  /// O2PC_RUN_ARENA=off). When false, ScopedRun is inert and runs allocate
  /// from the real heap — same behavior, no reuse.
  static bool Enabled() { return common::RunArenaEnabled(); }

  /// Arms the calling worker's recycled world memory for one run.
  class ScopedRun {
   public:
    ScopedRun();
    ~ScopedRun() = default;
    ScopedRun(const ScopedRun&) = delete;
    ScopedRun& operator=(const ScopedRun&) = delete;

    bool recycled() const { return scope_.armed(); }

    /// System-heap allocations since the scope opened on this thread —
    /// zero for a warm recycled run (the steady-state gate).
    std::uint64_t heap_allocs() const {
      return common::ThreadHeapAllocs() - heap_allocs_at_open_;
    }
    /// Arena-served allocations since the scope opened.
    std::uint64_t arena_allocs() const {
      return common::ThreadArenaAllocs() - arena_allocs_at_open_;
    }
    /// Bytes the current run has bumped so far (0 when not recycled).
    std::uint64_t arena_bytes() const;

   private:
    common::MonotonicArena* arena_ = nullptr;
    common::ScopedRunArena scope_;
    std::uint64_t heap_allocs_at_open_ = 0;
    std::uint64_t arena_allocs_at_open_ = 0;
  };
};

}  // namespace o2pc::exec

#endif  // O2PC_EXEC_WORLD_POOL_H_
