#ifndef O2PC_EXEC_RUN_EXECUTOR_H_
#define O2PC_EXEC_RUN_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Work-stealing thread-pool executor for independent simulation runs.
///
/// Campaign runs, bench repetitions, and soak iterations are embarrassingly
/// parallel: each run is a self-contained seeded `Simulator` with its own
/// system, trace recorder, and stats — no shared mutable state. The
/// `RunExecutor` fans a batch of such runs across cores and collects results
/// into **index-ordered slots**, so downstream aggregation (stats merges,
/// journal fingerprints, emitted JSON) is byte-identical to a serial sweep
/// for every thread count. Determinism is the contract: the executor decides
/// only *when and where* a run executes, never *what* it computes.
///
/// Scheduling: each ParallelFor splits the index range into one contiguous
/// chunk per worker; a worker drains its own chunk from the front and, when
/// empty, steals from the back of the fullest remaining chunk. Chunks are
/// tiny mutex-guarded ranges — runs are milliseconds each, so contention is
/// negligible and the implementation stays ThreadSanitizer-clean.
///
/// An exception thrown by a task cancels the rest of the batch and is
/// rethrown (the lowest-index failure wins) from ParallelFor on the calling
/// thread.

namespace o2pc::exec {

class RunExecutor {
 public:
  /// Creates a pool of `jobs` workers (including the calling thread when a
  /// batch runs). `jobs <= 0` uses HardwareJobs(). `jobs == 1` never spawns
  /// a thread and executes batches inline, in index order.
  explicit RunExecutor(int jobs = 0);
  ~RunExecutor();
  RunExecutor(const RunExecutor&) = delete;
  RunExecutor& operator=(const RunExecutor&) = delete;

  int jobs() const { return jobs_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareJobs();

  /// Raw std::thread::hardware_concurrency — 0 when the platform cannot
  /// report it. Bench JSON records this so a floor-of-1 fallback (e.g. a
  /// single-core CI box) is distinguishable from a measured value.
  static unsigned DetectedHardwareConcurrency();

  /// Runs `body(i)` exactly once for every i in [0, n), fanned across the
  /// pool; the calling thread participates. Blocks until the batch drains.
  /// Not reentrant and single-caller: one batch at a time.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  /// ParallelFor that collects `fn(i)` into slot i of the returned vector —
  /// the order is the index order, independent of execution interleaving.
  template <typename T, typename Fn>
  std::vector<T> Map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Number of cross-chunk steals since construction (observability; tests
  /// use it to verify stealing actually engages on unbalanced batches).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's contiguous slice of the batch's index range. The owner
  /// takes from the front (preserving per-worker index order); thieves take
  /// from the back (minimizing interference with the owner's locality).
  struct Chunk {
    std::mutex mu;
    std::size_t next = 0;
    std::size_t end = 0;
  };

  /// One ParallelFor invocation in flight.
  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::vector<std::unique_ptr<Chunk>> chunks;
    /// Indices finished or cancelled; the batch drains at `total`.
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    /// Workers currently inside WorkOn (batch memory must outlive them).
    int active_workers = 0;

    std::mutex error_mu;
    std::exception_ptr error;
    std::size_t error_index = 0;
    std::atomic<bool> cancelled{false};
  };

  void WorkerLoop();
  void WorkOn(Batch* batch, std::size_t home_chunk);
  /// Claims one index: own chunk front first, then steals. False = drained.
  bool ClaimIndex(Batch* batch, std::size_t home_chunk, std::size_t* index);
  void RunIndex(Batch* batch, std::size_t index);
  /// Marks every unclaimed index done so the batch can drain after an error.
  void CancelRemaining(Batch* batch);
  /// Wakes the batch-owning caller, serialized against its predicate check.
  void NotifyDrained();

  int jobs_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: a batch arrived / shutdown
  std::condition_variable done_cv_;   // caller: batch drained + workers out
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace o2pc::exec

#endif  // O2PC_EXEC_RUN_EXECUTOR_H_
