#include "exec/run_executor.h"

#include <algorithm>

#include "common/logging.h"

namespace o2pc::exec {

int RunExecutor::HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

unsigned RunExecutor::DetectedHardwareConcurrency() {
  return std::thread::hardware_concurrency();
}

RunExecutor::RunExecutor(int jobs) {
  jobs_ = jobs <= 0 ? HardwareJobs() : jobs;
  // Worker thread i (0-based) owns chunk i + 1; the calling thread owns
  // chunk 0. jobs_ == 1 stays threadless.
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

RunExecutor::~RunExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void RunExecutor::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    std::size_t home_chunk = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen_generation &&
                             current_ != nullptr);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = current_;
      // Home chunk = this worker's slot. Identify by position in threads_;
      // cheaper: assign on wake in arrival order. Arrival order is
      // scheduling-dependent, which is fine — chunk ownership affects only
      // execution placement, never results.
      home_chunk = static_cast<std::size_t>(++batch->active_workers);
      if (home_chunk >= batch->chunks.size()) {
        // More workers woke than this batch has chunks; nothing owned,
        // pure thief.
        home_chunk = batch->chunks.size() - 1;
      }
    }
    WorkOn(batch, home_chunk);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --batch->active_workers;
    }
    done_cv_.notify_all();
  }
}

void RunExecutor::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    // Serial reference path: exactly the pre-executor behavior.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Batch batch;
  batch.body = &body;
  batch.total = n;
  const std::size_t num_chunks =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  batch.chunks.reserve(num_chunks);
  // Contiguous split; remainder spread one-each over the leading chunks.
  const std::size_t base = n / num_chunks;
  const std::size_t extra = n % num_chunks;
  std::size_t start = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    auto chunk = std::make_unique<Chunk>();
    chunk->next = start;
    start += base + (c < extra ? 1 : 0);
    chunk->end = start;
    batch.chunks.push_back(std::move(chunk));
  }
  O2PC_CHECK(start == n);

  {
    std::lock_guard<std::mutex> lock(mu_);
    O2PC_CHECK(current_ == nullptr) << "ParallelFor is not reentrant";
    current_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller works the batch too, owning chunk 0.
  WorkOn(&batch, 0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch.done.load(std::memory_order_acquire) == batch.total &&
             batch.active_workers == 0;
    });
    current_ = nullptr;
  }

  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

void RunExecutor::WorkOn(Batch* batch, std::size_t home_chunk) {
  std::size_t index;
  while (ClaimIndex(batch, home_chunk, &index)) {
    RunIndex(batch, index);
  }
}

bool RunExecutor::ClaimIndex(Batch* batch, std::size_t home_chunk,
                             std::size_t* index) {
  if (batch->cancelled.load(std::memory_order_acquire)) return false;
  // Own chunk first, front-to-back.
  {
    Chunk& own = *batch->chunks[home_chunk];
    std::lock_guard<std::mutex> lock(own.mu);
    if (own.next < own.end) {
      *index = own.next++;
      return true;
    }
  }
  // Steal one index from the back of the fullest other chunk.
  for (;;) {
    std::size_t victim = batch->chunks.size();
    std::size_t victim_size = 0;
    for (std::size_t c = 0; c < batch->chunks.size(); ++c) {
      if (c == home_chunk) continue;
      Chunk& chunk = *batch->chunks[c];
      std::lock_guard<std::mutex> lock(chunk.mu);
      const std::size_t size = chunk.end - chunk.next;
      if (size > victim_size) {
        victim = c;
        victim_size = size;
      }
    }
    if (victim == batch->chunks.size()) return false;  // everything drained
    Chunk& chunk = *batch->chunks[victim];
    std::lock_guard<std::mutex> lock(chunk.mu);
    if (chunk.next < chunk.end) {
      *index = --chunk.end;
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Lost the race to the victim's owner; rescan.
  }
}

void RunExecutor::RunIndex(Batch* batch, std::size_t index) {
  try {
    (*batch->body)(index);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(batch->error_mu);
      if (!batch->error || index < batch->error_index) {
        batch->error = std::current_exception();
        batch->error_index = index;
      }
    }
    batch->cancelled.store(true, std::memory_order_release);
    CancelRemaining(batch);
  }
  if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      batch->total) {
    NotifyDrained();
  }
}

void RunExecutor::CancelRemaining(Batch* batch) {
  std::size_t skipped = 0;
  for (const auto& chunk : batch->chunks) {
    std::lock_guard<std::mutex> lock(chunk->mu);
    skipped += chunk->end - chunk->next;
    chunk->next = chunk->end;
  }
  if (skipped > 0 &&
      batch->done.fetch_add(skipped, std::memory_order_acq_rel) + skipped ==
          batch->total) {
    NotifyDrained();
  }
}

void RunExecutor::NotifyDrained() {
  // Taking mu_ (even though `done` is atomic) serializes against the
  // caller's predicate evaluation in ParallelFor: without it the final
  // increment could land between the caller's predicate check and its
  // wait(), and the notification would be lost.
  { std::lock_guard<std::mutex> lock(mu_); }
  done_cv_.notify_all();
}

}  // namespace o2pc::exec
