#include "exec/world_pool.h"

namespace o2pc::exec {

namespace {

common::MonotonicArena* AcquireRewound() {
  common::MonotonicArena* arena = common::ThreadRunArena();
  // Rewind at open, not close: the previous run's results stay readable
  // (by any thread) until this worker starts its next run.
  if (arena != nullptr) arena->Rewind();
  return arena;
}

}  // namespace

WorldPool::ScopedRun::ScopedRun()
    : arena_(AcquireRewound()),
      scope_(arena_),
      heap_allocs_at_open_(common::ThreadHeapAllocs()),
      arena_allocs_at_open_(common::ThreadArenaAllocs()) {}

std::uint64_t WorldPool::ScopedRun::arena_bytes() const {
  return arena_ != nullptr ? arena_->bytes_used() : 0;
}

}  // namespace o2pc::exec
