#ifndef O2PC_WORKLOAD_GENERATOR_H_
#define O2PC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/global_txn.h"
#include "core/system.h"

/// \file
/// Synthetic multidatabase workloads: global transactions decomposed over
/// 2..k sites, background local transactions, Zipf-skewed key choice,
/// Poisson arrivals, and injected abort votes. Write operations are
/// zero-sum increments (restricted model) by default, so the total value
/// across the system is an executable conservation invariant under
/// commits, rollbacks *and* compensations; the generic model (before-image
/// writes) is available as an option.

namespace o2pc::workload {

struct WorkloadOptions {
  int num_global_txns = 100;
  int num_local_txns = 100;
  int min_sites_per_txn = 2;
  int max_sites_per_txn = 3;
  int ops_per_subtxn = 4;
  int ops_per_local_txn = 3;
  /// Probability an operation is a read (the rest are increments/writes).
  double read_ratio = 0.5;
  /// Key skew within each site (0 = uniform).
  double zipf_theta = 0.8;
  /// Probability a global transaction has one site vote abort.
  double vote_abort_probability = 0.0;
  /// Mean inter-arrival time of global transactions (Poisson process).
  Duration mean_global_interarrival = Millis(2);
  /// Mean inter-arrival time of local transactions.
  Duration mean_local_interarrival = Millis(2);
  /// true: restricted-model zero-sum increments; false: generic-model
  /// random writes (no conservation invariant).
  bool semantic_ops = true;
  std::uint64_t seed = 1234;
};

class WorkloadGenerator {
 public:
  /// `num_sites`/`keys_per_site` must match the target system.
  WorkloadGenerator(int num_sites, DataKey keys_per_site,
                    WorkloadOptions options);

  /// Generates one random global transaction spec.
  core::GlobalTxnSpec NextGlobal();

  /// Generates one random local transaction (site chosen uniformly).
  std::pair<SiteId, std::vector<local::Operation>> NextLocal();

  /// Schedules the whole workload (Poisson arrivals) onto `system`. Call
  /// before system.Run().
  void Drive(core::DistributedSystem& system);

  const WorkloadOptions& options() const { return options_; }

 private:
  /// Fills write deltas pairwise (+d here, -d there) so every transaction
  /// is zero-sum.
  void BalanceIncrements(std::vector<local::Operation*>& writes);

  int num_sites_;
  DataKey keys_per_site_;
  WorkloadOptions options_;
  Rng rng_;
  ZipfGenerator zipf_;
};

}  // namespace o2pc::workload

#endif  // O2PC_WORKLOAD_GENERATOR_H_
