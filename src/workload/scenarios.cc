#include "workload/scenarios.h"

namespace o2pc::workload {

using local::Operation;
using local::OpType;

core::GlobalTxnSpec MakeTransfer(SiteId from_site, DataKey from_account,
                                 SiteId to_site, DataKey to_account,
                                 Value amount) {
  core::GlobalTxnSpec spec;
  core::SubtxnSpec debit;
  debit.site = from_site;
  debit.ops.push_back(Operation{OpType::kRead, from_account, 0});
  debit.ops.push_back(Operation{OpType::kIncrement, from_account, -amount});
  core::SubtxnSpec credit;
  credit.site = to_site;
  credit.ops.push_back(Operation{OpType::kIncrement, to_account, amount});
  spec.subtxns.push_back(std::move(debit));
  spec.subtxns.push_back(std::move(credit));
  return spec;
}

core::GlobalTxnSpec MakeTripBooking(SiteId airline, DataKey flight,
                                    SiteId hotel, DataKey room, SiteId cars,
                                    DataKey car, bool print_ticket) {
  core::GlobalTxnSpec spec;
  core::SubtxnSpec seat;
  seat.site = airline;
  seat.ops.push_back(Operation{OpType::kRead, flight, 0});
  seat.ops.push_back(Operation{OpType::kIncrement, flight, -1});
  if (print_ticket) {
    seat.ops.push_back(Operation{OpType::kRealAction, flight, 0});
  }
  core::SubtxnSpec night;
  night.site = hotel;
  night.ops.push_back(Operation{OpType::kRead, room, 0});
  night.ops.push_back(Operation{OpType::kIncrement, room, -1});
  core::SubtxnSpec rental;
  rental.site = cars;
  rental.ops.push_back(Operation{OpType::kRead, car, 0});
  rental.ops.push_back(Operation{OpType::kIncrement, car, -1});
  spec.subtxns.push_back(std::move(seat));
  spec.subtxns.push_back(std::move(night));
  spec.subtxns.push_back(std::move(rental));
  return spec;
}

core::GlobalTxnSpec MakeOrder(SiteId order_site, DataKey order_key,
                              SiteId warehouse_site, DataKey stock_key,
                              Value quantity) {
  core::GlobalTxnSpec spec;
  core::SubtxnSpec order;
  order.site = order_site;
  order.ops.push_back(Operation{OpType::kInsert, order_key, quantity});
  core::SubtxnSpec stock;
  stock.site = warehouse_site;
  stock.ops.push_back(Operation{OpType::kRead, stock_key, 0});
  stock.ops.push_back(Operation{OpType::kIncrement, stock_key, -quantity});
  spec.subtxns.push_back(std::move(order));
  spec.subtxns.push_back(std::move(stock));
  return spec;
}

}  // namespace o2pc::workload
