#include "workload/generator.h"

#include <algorithm>

#include "common/logging.h"

namespace o2pc::workload {

WorkloadGenerator::WorkloadGenerator(int num_sites, DataKey keys_per_site,
                                     WorkloadOptions options)
    : num_sites_(num_sites),
      keys_per_site_(keys_per_site),
      options_(options),
      rng_(options.seed),
      zipf_(keys_per_site, options.zipf_theta) {
  O2PC_CHECK(num_sites >= 1);
  O2PC_CHECK(options_.min_sites_per_txn >= 1);
  O2PC_CHECK(options_.max_sites_per_txn >= options_.min_sites_per_txn);
}

void WorkloadGenerator::BalanceIncrements(
    std::vector<local::Operation*>& writes) {
  // Pair the write slots: +d on the first of a pair, -d on the second; a
  // leftover unpaired slot becomes delta 0 (still a write lock + log).
  for (std::size_t i = 0; i + 1 < writes.size(); i += 2) {
    const Value delta = rng_.Uniform(1, 10);
    writes[i]->value = delta;
    writes[i + 1]->value = -delta;
  }
  if (writes.size() % 2 == 1) writes.back()->value = 0;
}

core::GlobalTxnSpec WorkloadGenerator::NextGlobal() {
  const int want_sites =
      static_cast<int>(rng_.Uniform(options_.min_sites_per_txn,
                                    options_.max_sites_per_txn));
  const int num_txn_sites = std::min(want_sites, num_sites_);

  // Sample distinct sites.
  std::vector<SiteId> sites;
  while (static_cast<int>(sites.size()) < num_txn_sites) {
    const SiteId site =
        static_cast<SiteId>(rng_.Uniform(0, num_sites_ - 1));
    if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
      sites.push_back(site);
    }
  }

  core::GlobalTxnSpec spec;
  std::vector<local::Operation*> writes;
  for (SiteId site : sites) {
    core::SubtxnSpec sub;
    sub.site = site;
    for (int i = 0; i < options_.ops_per_subtxn; ++i) {
      local::Operation op;
      op.key = zipf_.Sample(rng_);
      if (rng_.Bernoulli(options_.read_ratio)) {
        op.type = local::OpType::kRead;
      } else if (options_.semantic_ops) {
        op.type = local::OpType::kIncrement;
      } else {
        op.type = local::OpType::kWrite;
        op.value = rng_.Uniform(0, 1'000'000);
      }
      sub.ops.push_back(op);
    }
    spec.subtxns.push_back(std::move(sub));
  }
  if (options_.semantic_ops) {
    for (core::SubtxnSpec& sub : spec.subtxns) {
      for (local::Operation& op : sub.ops) {
        if (op.type == local::OpType::kIncrement) writes.push_back(&op);
      }
    }
    BalanceIncrements(writes);
  }
  if (options_.vote_abort_probability > 0.0 &&
      rng_.Bernoulli(options_.vote_abort_probability)) {
    const std::size_t victim = static_cast<std::size_t>(
        rng_.Uniform(0, static_cast<std::int64_t>(spec.subtxns.size()) - 1));
    spec.subtxns[victim].force_abort_vote = true;
  }
  return spec;
}

std::pair<SiteId, std::vector<local::Operation>>
WorkloadGenerator::NextLocal() {
  const SiteId site = static_cast<SiteId>(rng_.Uniform(0, num_sites_ - 1));
  std::vector<local::Operation> ops;
  std::vector<local::Operation*> writes;
  for (int i = 0; i < options_.ops_per_local_txn; ++i) {
    local::Operation op;
    op.key = zipf_.Sample(rng_);
    if (rng_.Bernoulli(options_.read_ratio)) {
      op.type = local::OpType::kRead;
    } else if (options_.semantic_ops) {
      op.type = local::OpType::kIncrement;
    } else {
      op.type = local::OpType::kWrite;
      op.value = rng_.Uniform(0, 1'000'000);
    }
    ops.push_back(op);
  }
  if (options_.semantic_ops) {
    for (local::Operation& op : ops) {
      if (op.type == local::OpType::kIncrement) writes.push_back(&op);
    }
    BalanceIncrements(writes);
  }
  return {site, std::move(ops)};
}

void WorkloadGenerator::Drive(core::DistributedSystem& system) {
  SimTime when = 0;
  for (int i = 0; i < options_.num_global_txns; ++i) {
    when += static_cast<Duration>(rng_.Exponential(
        static_cast<double>(options_.mean_global_interarrival)));
    core::GlobalTxnSpec spec = NextGlobal();
    system.simulator().ScheduleAt(
        when, [&system, spec = std::move(spec)]() mutable {
          system.SubmitGlobal(std::move(spec));
        });
  }
  when = 0;
  for (int i = 0; i < options_.num_local_txns; ++i) {
    when += static_cast<Duration>(rng_.Exponential(
        static_cast<double>(options_.mean_local_interarrival)));
    auto [site, ops] = NextLocal();
    system.simulator().ScheduleAt(
        when, [&system, site, ops = std::move(ops)]() mutable {
          system.SubmitLocal(site, std::move(ops));
        });
  }
}

}  // namespace o2pc::workload
