#ifndef O2PC_WORKLOAD_SCENARIOS_H_
#define O2PC_WORKLOAD_SCENARIOS_H_

#include "common/types.h"
#include "core/global_txn.h"

/// \file
/// Hand-built domain scenarios matching the paper's motivating settings:
/// inter-bank transfers (restricted-model semantic ops with obvious
/// counter-operations) and multi-agency travel booking (autonomous,
/// possibly competing sites; a non-compensatable ticket-printing real
/// action).

namespace o2pc::workload {

/// A funds transfer: debit `amount` from `from_account` at `from_site`,
/// credit it to `to_account` at `to_site`. Compensation is the counter
/// transfer.
core::GlobalTxnSpec MakeTransfer(SiteId from_site, DataKey from_account,
                                 SiteId to_site, DataKey to_account,
                                 Value amount);

/// Books one seat, one room and one car at three autonomous agencies
/// (decrement of each inventory key). If `print_ticket` is set, the
/// airline site also performs a real action (ticket printing), which makes
/// that site keep its locks until the decision even under O2PC.
core::GlobalTxnSpec MakeTripBooking(SiteId airline, DataKey flight,
                                    SiteId hotel, DataKey room, SiteId cars,
                                    DataKey car, bool print_ticket);

/// An order-entry transaction: inserts an order row at the order site and
/// decrements stock at the warehouse site. Compensation deletes the order
/// and restores the stock.
core::GlobalTxnSpec MakeOrder(SiteId order_site, DataKey order_key,
                              SiteId warehouse_site, DataKey stock_key,
                              Value quantity);

}  // namespace o2pc::workload

#endif  // O2PC_WORKLOAD_SCENARIOS_H_
