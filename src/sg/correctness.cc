#include "sg/correctness.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace o2pc::sg {

std::string CorrectnessReport::Summary() const {
  std::vector<std::string> parts;
  parts.push_back(StrCat("correct=", correct ? "yes" : "NO"));
  parts.push_back(
      StrCat("locally-serializable=", locally_serializable ? "yes" : "NO"));
  parts.push_back(StrCat("regular-cycles=", has_regular_cycle ? "YES" : "no"));
  parts.push_back(
      StrCat("fully-serializable=", fully_serializable ? "yes" : "no"));
  parts.push_back(
      StrCat("atomic-compensation=", atomic_compensation ? "yes" : "NO"));
  return Join(parts, ", ");
}

SerializationGraph MergeLocalGraphs(
    const std::vector<SerializationGraph>& locals) {
  SerializationGraph global;
  for (const SerializationGraph& local : locals) global.Merge(local);
  return global;
}

CorrectnessReport AnalyzeHistory(
    const std::vector<const ConflictTracker*>& sites,
    const std::set<TxnId>& excluded_globals) {
  CorrectnessReport report;

  std::vector<SerializationGraph> locals;
  locals.reserve(sites.size());
  for (const ConflictTracker* tracker : sites) {
    locals.push_back(tracker->BuildGraph(excluded_globals));
    const std::vector<NodeRef> cycle = locals.back().FindCycle();
    if (!cycle.empty()) {
      report.locally_serializable = false;
      std::vector<std::string> names;
      for (const NodeRef& node : cycle) names.push_back(NodeName(node));
      report.violations.push_back(StrCat("local cycle at site ",
                                         tracker->site(), ": ",
                                         Join(names, " -> ")));
    }
  }

  const SerializationGraph global = MergeLocalGraphs(locals);
  report.fully_serializable = !global.HasCycle();

  RegularCycleDetector detector(global);
  report.has_regular_cycle = detector.HasRegularCycle();
  report.regular_pivots = detector.pivots();
  if (report.has_regular_cycle) {
    report.witness = detector.FindWitness();
    if (report.witness.has_value()) {
      report.violations.push_back(
          StrCat("regular cycle: ", report.witness->ToString()));
    }
  }

  report.correct = report.locally_serializable && !report.has_regular_cycle;

  // Atomicity of compensation: no reader may observe versions from both
  // T_i and CT_i (merged across sites; the dual reads may happen at two
  // different sites).
  std::map<NodeRef, std::set<NodeRef>> observed;
  for (const ConflictTracker* tracker : sites) {
    for (const ReadsFrom& rf : tracker->CommittedReadsFrom(excluded_globals)) {
      observed[rf.reader].insert(rf.writer);
    }
  }
  for (const auto& [reader, writers] : observed) {
    for (const NodeRef& writer : writers) {
      if (writer.kind != TxnKind::kGlobal) continue;
      if (writers.contains(CompNode(writer.id))) {
        report.atomic_compensation = false;
        report.violations.push_back(
            StrCat(NodeName(reader), " read from both ", NodeName(writer),
                   " and ", NodeName(CompNode(writer.id))));
      }
    }
  }

  return report;
}

}  // namespace o2pc::sg
