#ifndef O2PC_SG_CORRECTNESS_H_
#define O2PC_SG_CORRECTNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "sg/conflict_tracker.h"
#include "sg/regular_cycle.h"
#include "sg/serialization_graph.h"

/// \file
/// The paper's correctness criterion (§5), as an executable oracle:
/// a history is **correct** iff every local SG is acyclic (local
/// serializability is assumed/required) and the global SG contains **no
/// regular cycles**. The oracle also evaluates plain serializability (the
/// criterion collapses to it when no global transaction aborts) and
/// **atomicity of compensation** (Theorem 2: no transaction reads from both
/// T_i and CT_i).

namespace o2pc::sg {

struct CorrectnessReport {
  /// Every local SG is acyclic.
  bool locally_serializable = true;
  /// The global SG has a regular cycle (criterion violation).
  bool has_regular_cycle = false;
  /// The global SG is acyclic outright (classic serializability over all
  /// nodes, including CTs).
  bool fully_serializable = true;
  /// The paper's criterion: locally serializable and no regular cycles.
  bool correct = true;
  /// No transaction read from both T_i and CT_i for any i.
  bool atomic_compensation = true;

  /// Regular transactions that pivot regular cycles.
  std::vector<NodeRef> regular_pivots;
  /// One concrete regular cycle, when any exists.
  std::optional<RegularCycleWitness> witness;
  /// Human-readable violation details (local cycles, dual reads, ...).
  std::vector<std::string> violations;

  std::string Summary() const;
};

/// Merges per-site local graphs into the global SG.
SerializationGraph MergeLocalGraphs(
    const std::vector<SerializationGraph>& locals);

/// Runs the full analysis over the per-site trackers. `excluded_globals`
/// names aborted global transactions that never exposed anything — they
/// are dropped like the committed projection drops aborted locals (their
/// whole lifetime was covered by held locks, so no other transaction can
/// distinguish the history from one where they never ran).
CorrectnessReport AnalyzeHistory(
    const std::vector<const ConflictTracker*>& sites,
    const std::set<TxnId>& excluded_globals = {});

}  // namespace o2pc::sg

#endif  // O2PC_SG_CORRECTNESS_H_
