#ifndef O2PC_SG_SERIALIZATION_GRAPH_H_
#define O2PC_SG_SERIALIZATION_GRAPH_H_

#include <compare>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

/// \file
/// Serialization graphs in the paper's extended sense (§5): nodes are local
/// transactions `L`, regular global transactions `T`, and compensating
/// transactions `CT` (the CT of T_i shares T_i's id but has its own node).
/// Edges are conflict edges and carry the site at which the conflict
/// happened, so a *global* SG (the union of the local SGs) remembers which
/// segments of a path are local to which site — the information the
/// minimal-representation machinery needs.

namespace o2pc::sg {

/// Identity of an SG node: transaction id plus the node's role. `T_i` and
/// `CT_i` share `id` but differ in `kind`.
struct NodeRef {
  TxnId id = kInvalidTxn;
  TxnKind kind = TxnKind::kLocal;

  friend auto operator<=>(const NodeRef&, const NodeRef&) = default;
};

/// "T7", "CT7", "L12" — for test output and witnesses.
std::string NodeName(const NodeRef& node);

/// Convenience constructors.
inline NodeRef GlobalNode(TxnId id) { return {id, TxnKind::kGlobal}; }
inline NodeRef CompNode(TxnId id) { return {id, TxnKind::kCompensating}; }
inline NodeRef LocalNode(TxnId id) { return {id, TxnKind::kLocal}; }

/// A serialization graph — local (all edges share one site label) or global
/// (the union of local SGs).
class SerializationGraph {
 public:
  /// adjacency: from -> (to -> sites at which the conflict edge exists).
  using Adjacency = std::map<NodeRef, std::map<NodeRef, std::set<SiteId>>>;

  SerializationGraph() = default;

  void AddNode(NodeRef node);
  void AddEdge(NodeRef from, NodeRef to, SiteId site);

  bool HasNode(NodeRef node) const { return nodes_.contains(node); }
  bool HasEdge(NodeRef from, NodeRef to) const;

  /// Merges `other` into this graph (used to form the global SG).
  void Merge(const SerializationGraph& other);

  /// True if the graph has any directed cycle (site labels ignored). This
  /// is the classic serializability test.
  bool HasCycle() const;

  /// A witness cycle (node sequence, first == entry point, not repeated at
  /// the end), or empty if acyclic.
  std::vector<NodeRef> FindCycle() const;

  const std::set<NodeRef>& nodes() const { return nodes_; }
  const Adjacency& adjacency() const { return adjacency_; }

  std::size_t edge_count() const;

  /// Graphviz rendering (CT nodes are boxes, locals are gray; edges are
  /// labelled with their sites) — for debugging and reports.
  std::string ToDot() const;

 private:
  std::set<NodeRef> nodes_;
  Adjacency adjacency_;
};

}  // namespace o2pc::sg

#endif  // O2PC_SG_SERIALIZATION_GRAPH_H_
