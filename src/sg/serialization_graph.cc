#include "sg/serialization_graph.h"

#include <functional>

#include "common/string_util.h"

namespace o2pc::sg {

std::string NodeName(const NodeRef& node) {
  return TxnLabel(node.kind, node.id);
}

void SerializationGraph::AddNode(NodeRef node) { nodes_.insert(node); }

void SerializationGraph::AddEdge(NodeRef from, NodeRef to, SiteId site) {
  if (from == to) return;
  nodes_.insert(from);
  nodes_.insert(to);
  adjacency_[from][to].insert(site);
}

bool SerializationGraph::HasEdge(NodeRef from, NodeRef to) const {
  auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.contains(to);
}

void SerializationGraph::Merge(const SerializationGraph& other) {
  for (const NodeRef& node : other.nodes_) nodes_.insert(node);
  for (const auto& [from, targets] : other.adjacency_) {
    for (const auto& [to, sites] : targets) {
      adjacency_[from][to].insert(sites.begin(), sites.end());
    }
  }
}

bool SerializationGraph::HasCycle() const { return !FindCycle().empty(); }

std::vector<NodeRef> SerializationGraph::FindCycle() const {
  // DFS with colors; returns the first back-edge cycle found.
  enum class Color { kWhite, kGray, kBlack };
  std::map<NodeRef, Color> color;
  for (const NodeRef& node : nodes_) color[node] = Color::kWhite;

  std::vector<NodeRef> path;
  std::vector<NodeRef> cycle;

  std::function<bool(const NodeRef&)> dfs = [&](const NodeRef& node) -> bool {
    color[node] = Color::kGray;
    path.push_back(node);
    auto it = adjacency_.find(node);
    if (it != adjacency_.end()) {
      for (const auto& [next, sites] : it->second) {
        (void)sites;
        if (color[next] == Color::kGray) {
          // Extract the cycle from the path.
          auto start = std::find(path.begin(), path.end(), next);
          cycle.assign(start, path.end());
          return true;
        }
        if (color[next] == Color::kWhite && dfs(next)) return true;
      }
    }
    path.pop_back();
    color[node] = Color::kBlack;
    return false;
  };

  for (const NodeRef& node : nodes_) {
    if (color[node] == Color::kWhite && dfs(node)) return cycle;
  }
  return {};
}

std::string SerializationGraph::ToDot() const {
  std::string out = "digraph SG {\n";
  for (const NodeRef& node : nodes_) {
    out += StrCat("  \"", NodeName(node), "\"");
    if (node.kind == TxnKind::kCompensating) {
      out += " [shape=box]";
    } else if (node.kind == TxnKind::kLocal) {
      out += " [color=gray, fontcolor=gray]";
    }
    out += ";\n";
  }
  for (const auto& [from, targets] : adjacency_) {
    for (const auto& [to, sites] : targets) {
      std::vector<std::string> labels;
      for (SiteId site : sites) labels.push_back(StrCat("S", site));
      out += StrCat("  \"", NodeName(from), "\" -> \"", NodeName(to),
                    "\" [label=\"", Join(labels, ","), "\"];\n");
    }
  }
  out += "}\n";
  return out;
}

std::size_t SerializationGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [from, targets] : adjacency_) {
    (void)from;
    n += targets.size();
  }
  return n;
}

}  // namespace o2pc::sg
