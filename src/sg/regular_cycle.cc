#include "sg/regular_cycle.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/string_util.h"

namespace o2pc::sg {

std::string RegularCycleWitness::ToString() const {
  std::vector<std::string> names;
  names.reserve(cycle.size() + 1);
  for (const NodeRef& node : cycle) names.push_back(NodeName(node));
  if (!cycle.empty()) names.push_back(NodeName(cycle.front()));
  return StrCat(NodeName(pivot), " (in@S", in_site, ", out@S", out_site,
                "): ", Join(names, " -> "));
}

RegularCycleDetector::RegularCycleDetector(const SerializationGraph& global)
    : RegularCycleDetector(global, Options{}) {}

RegularCycleDetector::RegularCycleDetector(const SerializationGraph& global,
                                           Options options)
    : options_(options) {
  BuildReduced(global);
  ComputeScc();
  FindPivots();
}

bool RegularCycleDetector::HasDirectEdge(const NodeRef& from,
                                         const NodeRef& to) const {
  auto it = reduced_.find(from);
  return it != reduced_.end() && it->second.contains(to);
}

void RegularCycleDetector::BuildReduced(const SerializationGraph& global) {
  for (const NodeRef& node : global.nodes()) {
    if (node.kind != TxnKind::kLocal) global_nodes_.insert(node);
  }

  // Collect the sites that label any edge.
  std::set<SiteId> sites;
  for (const auto& [from, targets] : global.adjacency()) {
    (void)from;
    for (const auto& [to, edge_sites] : targets) {
      (void)to;
      sites.insert(edge_sites.begin(), edge_sites.end());
    }
  }

  // Per site: restrict to that site's edges and BFS from each global node.
  for (SiteId site : sites) {
    std::map<NodeRef, std::vector<NodeRef>> site_adj;
    for (const auto& [from, targets] : global.adjacency()) {
      for (const auto& [to, edge_sites] : targets) {
        if (edge_sites.contains(site)) site_adj[from].push_back(to);
      }
    }
    for (const NodeRef& start : global_nodes_) {
      if (!site_adj.contains(start)) continue;
      std::set<NodeRef> visited{start};
      std::deque<NodeRef> frontier{start};
      while (!frontier.empty()) {
        NodeRef node = frontier.front();
        frontier.pop_front();
        auto it = site_adj.find(node);
        if (it == site_adj.end()) continue;
        for (const NodeRef& next : it->second) {
          if (!visited.insert(next).second) continue;
          if (next.kind != TxnKind::kLocal && next != start) {
            reduced_[start][next].insert(site);
          }
          frontier.push_back(next);
        }
      }
    }
  }
}

void RegularCycleDetector::ComputeScc() {
  // Kosaraju: finish-order DFS on the reduced graph, then assign components
  // on the reverse graph.
  std::map<NodeRef, std::vector<NodeRef>> fwd;
  std::map<NodeRef, std::vector<NodeRef>> rev;
  for (const NodeRef& node : global_nodes_) {
    fwd[node];
    rev[node];
  }
  for (const auto& [from, targets] : reduced_) {
    for (const auto& [to, edge_sites] : targets) {
      (void)edge_sites;
      fwd[from].push_back(to);
      rev[to].push_back(from);
    }
  }

  std::vector<NodeRef> order;
  std::set<NodeRef> visited;
  for (const auto& [start, adj] : fwd) {
    (void)adj;
    if (visited.contains(start)) continue;
    // Iterative post-order DFS.
    std::vector<std::pair<NodeRef, std::size_t>> stack{{start, 0}};
    visited.insert(start);
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const std::vector<NodeRef>& adj_list = fwd[node];
      if (idx < adj_list.size()) {
        NodeRef next = adj_list[idx++];
        if (visited.insert(next).second) stack.push_back({next, 0});
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }

  int component = 0;
  std::set<NodeRef> assigned;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (assigned.contains(*it)) continue;
    std::deque<NodeRef> frontier{*it};
    assigned.insert(*it);
    while (!frontier.empty()) {
      NodeRef node = frontier.front();
      frontier.pop_front();
      scc_[node] = component;
      for (const NodeRef& prev : rev[node]) {
        if (assigned.insert(prev).second) frontier.push_back(prev);
      }
    }
    ++component;
  }
}

void RegularCycleDetector::FindPivots() {
  // Concrete in-edges per node, restricted to same-SCC sources.
  struct End {
    NodeRef node;
    SiteId site;
  };
  std::map<NodeRef, std::vector<End>> in_edges;
  for (const auto& [from, targets] : reduced_) {
    for (const auto& [to, edge_sites] : targets) {
      if (scc_.at(from) != scc_.at(to)) continue;
      for (SiteId site : edge_sites) in_edges[to].push_back({from, site});
    }
  }
  for (const NodeRef& node : global_nodes_) {
    if (node.kind != TxnKind::kGlobal) continue;  // pivots are regular
    auto in_it = in_edges.find(node);
    if (in_it == in_edges.end()) continue;
    auto out_it = reduced_.find(node);
    if (out_it == reduced_.end()) continue;
    bool is_pivot = false;
    for (const End& in : in_it->second) {
      for (const auto& [to, edge_sites] : out_it->second) {
        if (scc_.at(node) != scc_.at(to)) continue;
        for (SiteId out_site : edge_sites) {
          if (in.site == out_site) continue;
          // A one-segment bypass between the neighbours shortcuts the
          // two-segment route through this node in every minimal
          // representation.
          if (options_.drop_bypassable_pivots && in.node != to &&
              HasDirectEdge(in.node, to)) {
            continue;
          }
          is_pivot = true;
          break;
        }
        if (is_pivot) break;
      }
      if (is_pivot) break;
    }
    if (is_pivot) pivots_.push_back(node);
  }
}

std::optional<RegularCycleWitness> RegularCycleDetector::FindWitness() const {
  for (const NodeRef& pivot : pivots_) {
    const int component = scc_.at(pivot);
    // Concrete in/out edges with differing sites.
    struct End {
      NodeRef node;
      SiteId site;
    };
    std::vector<End> ins;
    std::vector<End> outs;
    for (const auto& [from, targets] : reduced_) {
      for (const auto& [to, edge_sites] : targets) {
        if (to == pivot && scc_.at(from) == component) {
          for (SiteId s : edge_sites) ins.push_back({from, s});
        }
        if (from == pivot && scc_.at(to) == component) {
          for (SiteId s : edge_sites) outs.push_back({to, s});
        }
      }
    }
    for (const End& in : ins) {
      for (const End& out : outs) {
        if (in.site == out.site) continue;
        if (options_.drop_bypassable_pivots && in.node != out.node &&
            HasDirectEdge(in.node, out.node)) {
          continue;
        }
        // BFS path out.node => in.node within the reduced graph.
        std::map<NodeRef, NodeRef> parent;
        std::deque<NodeRef> frontier{out.node};
        parent[out.node] = out.node;
        bool found = out.node == in.node;
        while (!frontier.empty() && !found) {
          NodeRef node = frontier.front();
          frontier.pop_front();
          auto adj_it = reduced_.find(node);
          if (adj_it == reduced_.end()) continue;
          for (const auto& [next, edge_sites] : adj_it->second) {
            (void)edge_sites;
            if (parent.contains(next)) continue;
            parent[next] = node;
            if (next == in.node) {
              found = true;
              break;
            }
            frontier.push_back(next);
          }
        }
        if (!found) continue;
        RegularCycleWitness witness;
        witness.pivot = pivot;
        witness.in_site = in.site;
        witness.out_site = out.site;
        std::vector<NodeRef> tail;  // in.node back to out.node
        for (NodeRef node = in.node;; node = parent.at(node)) {
          tail.push_back(node);
          if (node == out.node) break;
        }
        std::reverse(tail.begin(), tail.end());
        witness.cycle.push_back(pivot);
        for (const NodeRef& node : tail) {
          if (node != pivot) witness.cycle.push_back(node);
        }
        return witness;
      }
    }
  }
  return std::nullopt;
}

}  // namespace o2pc::sg
