#ifndef O2PC_SG_REGULAR_CYCLE_H_
#define O2PC_SG_REGULAR_CYCLE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "sg/serialization_graph.h"

/// \file
/// Detection of *regular cycles* (paper §5). A regular cycle is a global
/// cyclic path whose **minimal representation** — the decomposition into
/// the fewest single-site path segments — includes at least one regular
/// (non-compensating) global transaction. Cycles whose minimal
/// representations only switch sites at compensating transactions are
/// benign and allowed by the correctness criterion.
///
/// Algorithm. First build the *reduced multigraph* over global nodes
/// (T's and CT's): an edge A --s--> B exists iff B is reachable from A
/// inside site s's local SG (through any intermediate nodes). A segment
/// endpoint of a minimal representation is always a point where the cycle
/// switches sites (same-site adjacent segments merge, which is exactly how
/// the paper's Example 1 drops the interior T_2). Hence:
///
///   a regular cycle exists  iff  some regular node T lies on a cycle of
///   the reduced multigraph with its entering segment at site s1 and its
///   leaving segment at site s2, s1 != s2.
///
/// With SCCs of the reduced graph this becomes: T is a *pivot* iff it has
/// an in-edge (X --s1--> T) and an out-edge (T --s2--> Y) with s1 != s2,
/// X and Y in T's strongly connected component, **and no single-site
/// closure edge X --s--> Y exists** — if one does, re-routing through it
/// costs one segment where the route through T costs two, so every minimal
/// representation drops T (this is exactly the paper's Example 1, where
/// the direct SG2 segment CT1 => CT3 shortcuts the interior T2). When no
/// one-segment bypass exists, the route through T is minimal (possibly
/// tied) and T appears on a minimal representation.
///
/// The bypass test examines single closure edges only; in rare tie
/// configurations where a two-segment bypass merges with neighbouring
/// segments, this errs toward *not* reporting a cycle (the permissive
/// direction). The strict variant (every site-switching pivot counts) is
/// available through Options for sensitivity analysis.

namespace o2pc::sg {

/// A demonstrable regular cycle: the pivot and one concrete cyclic path.
struct RegularCycleWitness {
  NodeRef pivot;                 // the regular transaction that is included
  SiteId in_site = kInvalidSite;   // site of the segment entering the pivot
  SiteId out_site = kInvalidSite;  // site of the segment leaving the pivot
  /// Reduced-graph cycle, starting and ending at `pivot` conceptually;
  /// stored as pivot, Y, ..., X (each consecutive pair is a reduced edge).
  std::vector<NodeRef> cycle;

  std::string ToString() const;
};

class RegularCycleDetector {
 public:
  struct Options {
    /// If true (default; matches the paper's Example 1), a pivot whose
    /// neighbours are directly connected by a single-site closure edge is
    /// not reported. If false, every site-switching pivot counts (a
    /// strictly stronger criterion).
    bool drop_bypassable_pivots = true;
  };

  /// Builds the reduced multigraph and its SCCs from a global SG.
  explicit RegularCycleDetector(const SerializationGraph& global);
  RegularCycleDetector(const SerializationGraph& global, Options options);

  /// True iff the global SG contains a regular cycle.
  bool HasRegularCycle() const { return !pivots_.empty(); }

  /// All regular transactions that pivot some regular cycle.
  const std::vector<NodeRef>& pivots() const { return pivots_; }

  /// Materializes one witness cycle, if any exist.
  std::optional<RegularCycleWitness> FindWitness() const;

  /// The reduced multigraph: A -> (B -> sites with a local path A=>B).
  using Reduced = std::map<NodeRef, std::map<NodeRef, std::set<SiteId>>>;
  const Reduced& reduced() const { return reduced_; }

  /// SCC index of each reduced-graph node.
  const std::map<NodeRef, int>& scc() const { return scc_; }

 private:
  void BuildReduced(const SerializationGraph& global);
  void ComputeScc();
  void FindPivots();
  /// True if a single-site closure edge X -> Y exists (any site).
  bool HasDirectEdge(const NodeRef& from, const NodeRef& to) const;

  Options options_;
  Reduced reduced_;
  std::set<NodeRef> global_nodes_;
  std::map<NodeRef, int> scc_;
  std::vector<NodeRef> pivots_;
};

}  // namespace o2pc::sg

#endif  // O2PC_SG_REGULAR_CYCLE_H_
