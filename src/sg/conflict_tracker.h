#ifndef O2PC_SG_CONFLICT_TRACKER_H_
#define O2PC_SG_CONFLICT_TRACKER_H_

#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "sg/serialization_graph.h"

/// \file
/// Per-site online conflict recording. The local DBMS reports every data
/// access (after its lock is granted) and every read's provenance; the
/// local SG is materialized at analysis time because the paper's SG
/// definition (§5) admits *all* global and compensating transactions but
/// only the *committed* local transactions — whether a local transaction
/// belongs in the graph is only known once it finishes.

namespace o2pc::sg {

/// "reader read a value produced by writer". The initial database state is
/// writer id kInvalidTxn and is skipped.
struct ReadsFrom {
  NodeRef reader;
  NodeRef writer;

  friend auto operator<=>(const ReadsFrom&, const ReadsFrom&) = default;
};

class ConflictTracker {
 public:
  explicit ConflictTracker(SiteId site) : site_(site) {}
  ConflictTracker(const ConflictTracker&) = delete;
  ConflictTracker& operator=(const ConflictTracker&) = delete;

  /// Records that `node` accessed `key` (in lock-grant order, which under
  /// 2PL is the conflict order).
  void RecordAccess(NodeRef node, DataKey key, bool is_write);

  /// Records read provenance: `reader` read the version written by
  /// `writer`.
  void RecordReadFrom(NodeRef reader, NodeRef writer);

  /// Declares that local transaction `txn` committed (locals that never
  /// commit are excluded from the SG, per §5).
  void MarkLocalCommitted(TxnId txn);

  /// Materializes the local SG: nodes are all recorded global/compensating
  /// transactions plus committed locals; edges are conflict edges labeled
  /// with this site. The construction emits the transitive *reduction* per
  /// key (w->w chains, w->r, r->next-w), which preserves reachability and
  /// therefore every cycle/SCC property the analysis needs.
  ///
  /// `excluded_globals` drops the named global transactions (and their
  /// CTs) from the graph — used for aborted transactions that never
  /// exposed anything: under strict 2PL with locks held through rollback
  /// they are observationally equivalent to transactions that never ran,
  /// exactly like the committed projection drops aborted locals.
  SerializationGraph BuildGraph(
      const std::set<TxnId>& excluded_globals = {}) const;

  /// Reads-from pairs whose reader is in the SG (globals, CTs, committed
  /// locals) and whose writer is a real transaction.
  std::vector<ReadsFrom> CommittedReadsFrom(
      const std::set<TxnId>& excluded_globals = {}) const;

  SiteId site() const { return site_; }

  std::size_t access_count() const { return access_count_; }

 private:
  struct Access {
    NodeRef node;
    bool is_write;
  };

  /// True if `node` belongs in the SG.
  bool Included(const NodeRef& node,
                const std::set<TxnId>& excluded_globals) const;

  SiteId site_;
  std::map<DataKey, std::vector<Access>> history_;
  std::vector<ReadsFrom> reads_from_;
  std::set<TxnId> committed_locals_;
  std::size_t access_count_ = 0;
};

}  // namespace o2pc::sg

#endif  // O2PC_SG_CONFLICT_TRACKER_H_
