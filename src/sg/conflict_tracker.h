#ifndef O2PC_SG_CONFLICT_TRACKER_H_
#define O2PC_SG_CONFLICT_TRACKER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/flat_hash.h"
#include "common/types.h"
#include "sg/serialization_graph.h"

/// \file
/// Per-site online conflict recording. The local DBMS reports every data
/// access (after its lock is granted) and every read's provenance; the
/// local SG is materialized at analysis time because the paper's SG
/// definition (§5) admits *all* global and compensating transactions but
/// only the *committed* local transactions — whether a local transaction
/// belongs in the graph is only known once it finishes.
///
/// The recording side is per-operation hot path and runs on flat
/// containers; the analysis side (BuildGraph, CommittedReadsFrom) runs
/// once per run and re-sorts where the old tree iteration order was
/// observable.

namespace o2pc::sg {

/// "reader read a value produced by writer". The initial database state is
/// writer id kInvalidTxn and is skipped.
struct ReadsFrom {
  NodeRef reader;
  NodeRef writer;

  friend auto operator<=>(const ReadsFrom&, const ReadsFrom&) = default;
};

class ConflictTracker {
 public:
  explicit ConflictTracker(SiteId site) : site_(site) {}
  ConflictTracker(const ConflictTracker&) = delete;
  ConflictTracker& operator=(const ConflictTracker&) = delete;

  /// Records that `node` accessed `key` (in lock-grant order, which under
  /// 2PL is the conflict order). Consecutive accesses by the same node in
  /// the same mode are collapsed: under 2PL the repeat holds the same lock
  /// and can only produce self-edges or duplicate edges, so dropping it
  /// changes no graph — but it keeps hot-key chains linear in the number
  /// of *distinct* conflicting accesses instead of raw operation count.
  void RecordAccess(NodeRef node, DataKey key, bool is_write);

  /// Records read provenance: `reader` read the version written by
  /// `writer`. Duplicate (reader, writer) pairs are recorded once.
  void RecordReadFrom(NodeRef reader, NodeRef writer);

  /// Drops all recorded history, provenance, and commit marks, retaining
  /// container capacity (world-reuse reset contract, DESIGN §16).
  void ResetForRun() {
    history_.clear();
    reads_from_.clear();
    reads_from_seen_.clear();
    committed_locals_.clear();
    access_count_ = 0;
  }

  /// Declares that local transaction `txn` committed (locals that never
  /// commit are excluded from the SG, per §5).
  void MarkLocalCommitted(TxnId txn);

  /// Materializes the local SG: nodes are all recorded global/compensating
  /// transactions plus committed locals; edges are conflict edges labeled
  /// with this site. The construction emits the transitive *reduction* per
  /// key (w->w chains, w->r, r->next-w), which preserves reachability and
  /// therefore every cycle/SCC property the analysis needs.
  ///
  /// `excluded_globals` drops the named global transactions (and their
  /// CTs) from the graph — used for aborted transactions that never
  /// exposed anything: under strict 2PL with locks held through rollback
  /// they are observationally equivalent to transactions that never ran,
  /// exactly like the committed projection drops aborted locals.
  SerializationGraph BuildGraph(
      const std::set<TxnId>& excluded_globals = {}) const;

  /// Reads-from pairs whose reader is in the SG (globals, CTs, committed
  /// locals) and whose writer is a real transaction.
  std::vector<ReadsFrom> CommittedReadsFrom(
      const std::set<TxnId>& excluded_globals = {}) const;

  SiteId site() const { return site_; }

  std::size_t access_count() const { return access_count_; }

 private:
  struct Access {
    NodeRef node;
    bool is_write;
  };

  /// NodeRef packed into one word for the reads-from dedup index: the
  /// kind's 2 bits below the id.
  static std::uint64_t Pack(const NodeRef& node) {
    return (node.id << 2) | static_cast<std::uint64_t>(node.kind);
  }

  /// True if `node` belongs in the SG.
  bool Included(const NodeRef& node,
                const std::set<TxnId>& excluded_globals) const;

  SiteId site_;
  common::FlatMap<DataKey, std::vector<Access>> history_;
  /// First occurrence of each (reader, writer) pair, in record order.
  std::vector<ReadsFrom> reads_from_;
  /// Dedup index over reads_from_: packed reader -> packed writers seen.
  common::FlatMap<std::uint64_t, common::SmallSet<std::uint64_t>>
      reads_from_seen_;
  common::FlatSet<TxnId> committed_locals_;
  std::size_t access_count_ = 0;
};

}  // namespace o2pc::sg

#endif  // O2PC_SG_CONFLICT_TRACKER_H_
