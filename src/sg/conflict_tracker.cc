#include "sg/conflict_tracker.h"

#include <algorithm>

namespace o2pc::sg {

void ConflictTracker::RecordAccess(NodeRef node, DataKey key, bool is_write) {
  std::vector<Access>& chain = history_[key];
  // Collapse consecutive same-(node, mode) repeats: the holder re-touching
  // its own key adds only self-edges (ignored) or duplicate edges (deduped)
  // to the SG, so the chain stays equivalent.
  if (!chain.empty() && chain.back().node == node &&
      chain.back().is_write == is_write) {
    return;
  }
  chain.push_back(Access{node, is_write});
  ++access_count_;
}

void ConflictTracker::RecordReadFrom(NodeRef reader, NodeRef writer) {
  if (writer.id == kInvalidTxn) return;  // initial database state
  if (reader == writer) return;
  // Keep the first occurrence only; CommittedReadsFrom consumers aggregate
  // into sets, so dropping repeats changes nothing downstream.
  if (!reads_from_seen_[Pack(reader)].insert(Pack(writer)).second) return;
  reads_from_.push_back(ReadsFrom{reader, writer});
}

void ConflictTracker::MarkLocalCommitted(TxnId txn) {
  committed_locals_.insert(txn);
}

bool ConflictTracker::Included(
    const NodeRef& node, const std::set<TxnId>& excluded_globals) const {
  if (node.kind != TxnKind::kLocal) {
    return !excluded_globals.contains(node.id);
  }
  return committed_locals_.contains(node.id);
}

SerializationGraph ConflictTracker::BuildGraph(
    const std::set<TxnId>& excluded_globals) const {
  SerializationGraph graph;
  // Analysis runs once per run: sort the keys so construction order matches
  // the tree-map iteration this code used to rely on.
  std::vector<DataKey> keys;
  keys.reserve(history_.size());
  for (const auto& [key, accesses] : history_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (DataKey key : keys) {
    const std::vector<Access>& accesses = history_.find(key)->second;
    // Per-key transitive reduction: writes chain; reads hang between
    // writes. Accesses of excluded (never-committed local) transactions are
    // dropped entirely — strict 2PL guarantees they exposed nothing.
    bool have_last_write = false;
    NodeRef last_write;
    std::vector<NodeRef> readers_since_write;
    for (const Access& access : accesses) {
      if (!Included(access.node, excluded_globals)) continue;
      graph.AddNode(access.node);
      if (access.is_write) {
        if (have_last_write) graph.AddEdge(last_write, access.node, site_);
        for (const NodeRef& reader : readers_since_write) {
          graph.AddEdge(reader, access.node, site_);
        }
        readers_since_write.clear();
        last_write = access.node;
        have_last_write = true;
      } else {
        if (have_last_write) graph.AddEdge(last_write, access.node, site_);
        readers_since_write.push_back(access.node);
      }
    }
  }
  return graph;
}

std::vector<ReadsFrom> ConflictTracker::CommittedReadsFrom(
    const std::set<TxnId>& excluded_globals) const {
  std::vector<ReadsFrom> out;
  for (const ReadsFrom& rf : reads_from_) {
    if (Included(rf.reader, excluded_globals) &&
        Included(rf.writer, excluded_globals)) {
      out.push_back(rf);
    }
  }
  return out;
}

}  // namespace o2pc::sg
