#include "net/network.h"

#include <algorithm>

#include "common/logging.h"
#include "trace/trace.h"

namespace o2pc::net {

Network::Network(sim::Simulator* simulator, NetworkOptions options,
                 std::uint64_t seed)
    : simulator_(simulator), options_(options), rng_(seed) {
  O2PC_CHECK(simulator != nullptr);
}

void Network::RegisterNode(SiteId site, Handler handler) {
  O2PC_CHECK(!handlers_.contains(site))
      << "node " << site << " registered twice";
  handlers_[site] = std::move(handler);
}

Duration Network::DeliveryLatency(SiteId from, SiteId to) {
  Duration latency;
  if (from == to) {
    latency = options_.loopback_latency;
  } else {
    Duration base = options_.base_latency;
    if (auto it = link_latency_.find({from, to}); it != link_latency_.end()) {
      base = it->second;
    }
    Duration jitter = 0;
    if (options_.jitter > 0) {
      jitter = rng_.Uniform(0, options_.jitter);
    }
    latency = base + jitter;
  }
  // A gray endpoint inflates the whole delivery (its slow processing is
  // folded into the link time); two gray endpoints take the worse factor.
  if (!gray_factor_.empty()) {
    std::int64_t factor = 1;
    if (auto it = gray_factor_.find(from); it != gray_factor_.end()) {
      factor = std::max(factor, it->second);
    }
    if (auto it = gray_factor_.find(to); it != gray_factor_.end()) {
      factor = std::max(factor, it->second);
    }
    latency *= factor;
  }
  return latency;
}

void Network::CountDrop(const Message& message) {
  stats_.dropped++;
  O2PC_TRACE(kMsgDrop, message.from, message.txn,
             static_cast<std::int64_t>(message.type), message.to);
  O2PC_LOG(kDebug) << "dropped " << MessageTypeName(message.type) << " "
                   << message.from << "->" << message.to;
}

void Network::Send(Message message) {
  O2PC_CHECK(handlers_.contains(message.to))
      << "send to unregistered node " << message.to;
  stats_.sent_by_type[static_cast<int>(message.type)]++;
  stats_.sent_total++;
  O2PC_TRACE(kMsgSend, message.from, message.txn,
             static_cast<std::int64_t>(message.type), message.to);

  if (down_.contains(message.to) || down_.contains(message.from) ||
      Severed(message.from, message.to) ||
      (options_.drop_probability > 0.0 &&
       message.from != message.to &&
       rng_.Bernoulli(options_.drop_probability))) {
    CountDrop(message);
    return;
  }

  Duration latency = DeliveryLatency(message.from, message.to);
  int extra_copies = 0;
  Duration reorder_window = 0;
  if (fault_hook_) {
    const FaultDecision decision = fault_hook_(message);
    if (decision.drop) {
      CountDrop(message);
      return;
    }
    latency += decision.extra_delay;
    extra_copies = decision.duplicates;
    reorder_window = decision.reorder_window;
    if (reorder_window > 0) {
      latency += rng_.Uniform(0, reorder_window);
    }
  }
  if (options_.duplicate_copies > 0 &&
      (options_.duplicate_filter < 0 ||
       options_.duplicate_filter == static_cast<int>(message.type))) {
    extra_copies += options_.duplicate_copies;
  }

  // Extra copies each draw their own latency (and reorder offset), so a
  // copy can overtake the original — at-least-once delivery with no
  // ordering promise, which is exactly what handler idempotence must
  // survive. Draws happen before any delivery runs, keeping the RNG
  // stream a pure function of the send sequence.
  for (int copy = 0; copy < extra_copies; ++copy) {
    Duration copy_latency = DeliveryLatency(message.from, message.to);
    if (reorder_window > 0) {
      copy_latency += rng_.Uniform(0, reorder_window);
    }
    stats_.duplicated++;
    ScheduleDelivery(message, copy_latency);
  }
  ScheduleDelivery(std::move(message), latency);
}

void Network::ScheduleDelivery(Message message, Duration latency) {
  ++in_flight_;
  simulator_->Schedule(latency, [this, msg = std::move(message)]() {
    --in_flight_;
    // Re-check the fault state at the delivery instant: a partition
    // installed — or a destination crashed — while the message was in
    // flight kills it deterministically.
    if (down_.contains(msg.to) || Severed(msg.from, msg.to)) {
      CountDrop(msg);
      return;
    }
    O2PC_TRACE(kMsgRecv, msg.to, msg.txn,
               static_cast<std::int64_t>(msg.type), msg.from);
    handlers_.at(msg.to)(msg);
  });
}

void Network::SetNodeDown(SiteId node, bool down) {
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

void Network::SeverLink(SiteId a, SiteId b) {
  severed_.insert({a, b});
  severed_.insert({b, a});
}

void Network::HealLink(SiteId a, SiteId b) {
  severed_.erase({a, b});
  severed_.erase({b, a});
}

void Network::SeverLinkOneWay(SiteId from, SiteId to) {
  severed_.insert({from, to});
}

void Network::HealLinkOneWay(SiteId from, SiteId to) {
  severed_.erase({from, to});
}

void Network::SetGrayFactor(SiteId site, std::int64_t factor) {
  if (factor <= 1) {
    gray_factor_.erase(site);
  } else {
    gray_factor_[site] = factor;
  }
}

std::int64_t Network::GrayFactor(SiteId site) const {
  auto it = gray_factor_.find(site);
  return it == gray_factor_.end() ? 1 : it->second;
}

bool Network::Severed(SiteId a, SiteId b) const {
  return severed_.contains({a, b});
}

void Network::SetLinkLatency(SiteId a, SiteId b, Duration latency) {
  link_latency_[{a, b}] = latency;
}

}  // namespace o2pc::net
