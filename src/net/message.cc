#include "net/message.h"

namespace o2pc::net {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kSubtxnInvoke:
      return "SUBTXN-INVOKE";
    case MessageType::kSubtxnAck:
      return "SUBTXN-ACK";
    case MessageType::kVoteRequest:
      return "VOTE-REQ";
    case MessageType::kVote:
      return "VOTE";
    case MessageType::kDecision:
      return "DECISION";
    case MessageType::kDecisionAck:
      return "DECISION-ACK";
    case MessageType::kDecisionReq:
      return "DECISION-REQ";
    case MessageType::kTermReq:
      return "TERM-REQ";
    case MessageType::kTermResp:
      return "TERM-RESP";
    case MessageType::kUser:
      return "USER";
  }
  return "?";
}

}  // namespace o2pc::net
