#ifndef O2PC_NET_PAYLOAD_POOL_H_
#define O2PC_NET_PAYLOAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

/// \file
/// Thread-local freelist pool for message-payload allocations.
///
/// Every protocol message carries a `shared_ptr<const Payload>`, and each
/// send used to pay one `make_shared` heap round-trip. The commit exchange
/// allocates and frees the same handful of payload shapes millions of times
/// per campaign, so `MakePayload<T>()` routes the combined control-block +
/// payload allocation through small per-size-class freelists instead.
///
/// The freelists are **thread-local**: each run-executor worker recycles its
/// own blocks with zero synchronization, which keeps the pool invisible to
/// ThreadSanitizer and keeps parallel runs bit-deterministic (a pool is pure
/// memory reuse — it never changes program behavior). Blocks freed on a
/// thread join that thread's freelist; since every simulation run is
/// confined to one thread, blocks never migrate in practice. Each thread's
/// lists are released when the thread exits.

namespace o2pc::net {

namespace pool_internal {

/// Allocates `bytes` from the calling thread's freelists (or the heap for
/// outsized requests). Never returns nullptr.
void* Allocate(std::size_t bytes);

/// Returns a block obtained from Allocate() with the same `bytes`.
void Deallocate(void* block, std::size_t bytes) noexcept;

/// Observability for tests/benches: per-thread allocation counts.
struct PoolCounters {
  std::uint64_t allocations = 0;  ///< total Allocate() calls
  std::uint64_t reuses = 0;       ///< served from a freelist
  std::uint64_t oversized = 0;    ///< fell back to plain operator new
};
const PoolCounters& Counters();

}  // namespace pool_internal

/// Minimal std allocator over the thread-local pool (for allocate_shared).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT: rebind conversion

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_internal::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_internal::Deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

/// Pooled replacement for `std::make_shared<T>()` at payload construction
/// sites. The returned pointer is mutable so call sites can fill fields
/// before handing it to a Message (which holds it as `const Payload`).
template <typename T, typename... Args>
std::shared_ptr<T> MakePayload(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(),
                                 std::forward<Args>(args)...);
}

}  // namespace o2pc::net

#endif  // O2PC_NET_PAYLOAD_POOL_H_
