#ifndef O2PC_NET_MESSAGE_H_
#define O2PC_NET_MESSAGE_H_

#include <memory>
#include <string>

#include "common/types.h"

/// \file
/// Typed messages exchanged between sites. The commit layer defines the
/// concrete payload structs (deriving from Payload); the network only
/// routes, delays and counts envelopes.
///
/// The message vocabulary is exactly the standard 2PC exchange plus the
/// operation-shipping messages any distributed transaction needs. O2PC adds
/// **no** message types and no extra rounds (paper §1, §7): compensation is
/// triggered by the existing DECISION message, and marking/UDUM1 information
/// rides piggyback on these same envelopes.

namespace o2pc::net {

enum class MessageType : std::uint8_t {
  /// Coordinator -> site: invoke subtransaction T_jk (ops + piggyback).
  kSubtxnInvoke = 0,
  /// Site -> coordinator: subtransaction completed / rejected / failed.
  kSubtxnAck = 1,
  /// Coordinator -> site: VOTE-REQ (a.k.a. PREPARE).
  kVoteRequest = 2,
  /// Site -> coordinator: VOTE (commit or abort).
  kVote = 3,
  /// Coordinator -> site: DECISION (commit or abort).
  kDecision = 4,
  /// Site -> coordinator: acknowledgement of the decision.
  kDecisionAck = 5,
  /// Free-form message used by tests.
  kUser = 6,
};
inline constexpr int kNumMessageTypes = 7;

/// Human-readable message-type name ("VOTE-REQ", ...).
const char* MessageTypeName(MessageType type);

/// Base class of all message payloads.
struct Payload {
  virtual ~Payload() = default;
};

/// Envelope routed by the Network.
struct Message {
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  MessageType type = MessageType::kUser;
  /// Global transaction this message belongs to (kInvalidTxn for kUser).
  TxnId txn = kInvalidTxn;
  std::shared_ptr<const Payload> payload;
};

}  // namespace o2pc::net

#endif  // O2PC_NET_MESSAGE_H_
