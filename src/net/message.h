#ifndef O2PC_NET_MESSAGE_H_
#define O2PC_NET_MESSAGE_H_

#include <memory>
#include <string>

#include "common/types.h"

/// \file
/// Typed messages exchanged between sites. The commit layer defines the
/// concrete payload structs (deriving from Payload); the network only
/// routes, delays and counts envelopes.
///
/// The message vocabulary is the standard 2PC exchange plus the
/// operation-shipping messages any distributed transaction needs. O2PC adds
/// **no** message types and no extra rounds (paper §1, §7): compensation is
/// triggered by the existing DECISION message, and marking/UDUM1 information
/// rides piggyback on these same envelopes. The *termination* messages
/// (DECISION-REQ, TERM-REQ, TERM-RESP) belong to the failure path shared by
/// both protocols — a blocked participant asking for a decision it missed —
/// and appear in no failure-free run, so the paper's no-extra-rounds claim
/// is unaffected.

namespace o2pc::net {

enum class MessageType : std::uint8_t {
  /// Coordinator -> site: invoke subtransaction T_jk (ops + piggyback).
  kSubtxnInvoke = 0,
  /// Site -> coordinator: subtransaction completed / rejected / failed.
  kSubtxnAck = 1,
  /// Coordinator -> site: VOTE-REQ (a.k.a. PREPARE).
  kVoteRequest = 2,
  /// Site -> coordinator: VOTE (commit or abort).
  kVote = 3,
  /// Coordinator -> site: DECISION (commit or abort).
  kDecision = 4,
  /// Site -> coordinator: acknowledgement of the decision.
  kDecisionAck = 5,
  /// Site -> coordinator home: a blocked participant asks the recovery
  /// agent for the logged decision (participant-driven decision recovery).
  kDecisionReq = 6,
  /// Site -> peer site: cooperative-termination query — "do you know the
  /// outcome of T, or can you rule commit out?"
  kTermReq = 7,
  /// Peer site -> asker: cooperative-termination answer.
  kTermResp = 8,
  /// Free-form message used by tests.
  kUser = 9,
};
inline constexpr int kNumMessageTypes = 10;

/// Human-readable message-type name ("VOTE-REQ", ...).
const char* MessageTypeName(MessageType type);

/// Base class of all message payloads.
struct Payload {
  virtual ~Payload() = default;
};

/// Envelope routed by the Network.
struct Message {
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  MessageType type = MessageType::kUser;
  /// Global transaction this message belongs to (kInvalidTxn for kUser).
  TxnId txn = kInvalidTxn;
  std::shared_ptr<const Payload> payload;
};

}  // namespace o2pc::net

#endif  // O2PC_NET_MESSAGE_H_
