#ifndef O2PC_NET_NETWORK_H_
#define O2PC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "sim/simulator.h"

/// \file
/// Simulated message-passing network: per-link latency with jitter, optional
/// message loss, link partitions, scriptable per-message fault hooks, and
/// per-type delivery counters (the counters drive experiment E6, the "no
/// extra messages" claim).
///
/// Partitions and node outages are enforced at **both** ends of a message's
/// life: a message sent into a severed link (or to/from a down node) is
/// dropped at send time, and a message already in flight when the link is
/// severed — or when its destination crashes — is dropped at its delivery
/// instant. A link healed before the delivery instant delivers normally
/// (the packet was in the pipe). Both rules are pure functions of simulated
/// time, so fault schedules replay deterministically.

namespace o2pc::net {

struct NetworkOptions {
  /// Mean one-way latency between distinct sites.
  Duration base_latency = Millis(5);
  /// Uniform jitter added to each delivery, in [0, jitter].
  Duration jitter = Micros(500);
  /// Latency for a site messaging itself (coordinator to its own site).
  Duration loopback_latency = Micros(10);
  /// Probability a message is silently dropped (partitions drop anyway).
  double drop_probability = 0.0;
  /// Blanket at-least-once delivery: every message matching
  /// `duplicate_filter` is delivered `1 + duplicate_copies` times, each
  /// copy with an independent latency draw. The idempotence property
  /// sweeps run whole campaigns under this; 0 disables it (and the RNG
  /// stream is then untouched, so fault-free runs stay byte-identical).
  int duplicate_copies = 0;
  /// MessageType (as int) the blanket duplication applies to; -1 = all.
  int duplicate_filter = -1;
};

/// Per-type delivery statistics.
struct NetworkStats {
  std::array<std::uint64_t, kNumMessageTypes> sent_by_type{};
  std::uint64_t sent_total = 0;
  std::uint64_t dropped = 0;
  /// Extra deliveries manufactured by duplication (hook or blanket).
  std::uint64_t duplicated = 0;

  std::uint64_t sent(MessageType type) const {
    return sent_by_type[static_cast<int>(type)];
  }
};

/// Verdict of a scriptable fault hook for one message.
struct FaultDecision {
  /// Drop the message (counted and traced like any other drop).
  bool drop = false;
  /// Extra one-way delay added on top of the link latency.
  Duration extra_delay = 0;
  /// Deliver this many *extra* copies (at-least-once delivery). Each copy
  /// draws its own link latency, so copies can overtake the original.
  int duplicates = 0;
  /// Reorder window: every delivery of this message (original and copies)
  /// gets an independent extra delay uniform in [0, reorder_window], which
  /// shuffles its order against neighboring traffic while never moving it
  /// by more than the window bound.
  Duration reorder_window = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Scriptable per-message fault hook, consulted at send time for every
  /// message that passed the partition/outage/loss checks. Deterministic
  /// hooks (e.g. "drop the 3rd DECISION from site 2") make fault schedules
  /// replayable; see campaign::FaultInjector.
  using FaultHook = std::function<FaultDecision(const Message&)>;

  Network(sim::Simulator* simulator, NetworkOptions options,
          std::uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the message handler of node `site`. One handler per node.
  void RegisterNode(SiteId site, Handler handler);

  /// Sends `message`; it is delivered to the destination handler after the
  /// link latency, unless dropped or partitioned. Sending to an unregistered
  /// node is an error.
  void Send(Message message);

  /// Severs both directions between `a` and `b`. Messages sent while a link
  /// is severed are lost (counted as dropped), and so are messages already
  /// in flight whose delivery instant falls inside the partition.
  void SeverLink(SiteId a, SiteId b);

  /// Restores both directions between `a` and `b`.
  void HealLink(SiteId a, SiteId b);

  /// Severs only the direction `from`->`to` (an asymmetric, one-way
  /// partition: A cannot reach B while B still reaches A). In-flight
  /// messages obey the same directional rule at their delivery instant.
  void SeverLinkOneWay(SiteId from, SiteId to);

  /// Restores only the direction `from`->`to`.
  void HealLinkOneWay(SiteId from, SiteId to);

  /// True if a->b is currently severed.
  bool Severed(SiteId a, SiteId b) const;

  /// Overrides the latency of the (directed) link a->b.
  void SetLinkLatency(SiteId a, SiteId b, Duration latency);

  /// Marks a node down (crashed): messages addressed to it — including
  /// ones already in flight — are dropped until it comes back up.
  void SetNodeDown(SiteId node, bool down);
  bool NodeDown(SiteId node) const { return down_.contains(node); }

  /// Gray failure: every delivery to or from `site` (loopback included)
  /// has its latency multiplied by `factor` — the site is slow but alive,
  /// never declared down, and never loses a message. `factor` <= 1
  /// clears the condition. Purely a function of simulated time, so gray
  /// windows replay deterministically.
  void SetGrayFactor(SiteId site, std::int64_t factor);
  std::int64_t GrayFactor(SiteId site) const;

  /// Installs (or, with nullptr, clears) the scriptable fault hook.
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  /// Messages currently in the pipe: sent (and not dropped at send time)
  /// but not yet delivered or dropped at their delivery instant. A gauge
  /// for the telemetry time-series sampler.
  std::uint64_t InFlight() const { return in_flight_; }

 private:
  Duration DeliveryLatency(SiteId from, SiteId to);

  /// Records one drop (counter + trace event).
  void CountDrop(const Message& message);

  /// Schedules one delivery of `message` after `latency` (fault state is
  /// re-checked at the delivery instant).
  void ScheduleDelivery(Message message, Duration latency);

  sim::Simulator* simulator_;  // not owned
  NetworkOptions options_;
  Rng rng_;
  FaultHook fault_hook_;
  std::map<SiteId, Handler> handlers_;
  std::set<std::pair<SiteId, SiteId>> severed_;
  std::set<SiteId> down_;
  std::map<SiteId, std::int64_t> gray_factor_;
  std::map<std::pair<SiteId, SiteId>, Duration> link_latency_;
  NetworkStats stats_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace o2pc::net

#endif  // O2PC_NET_NETWORK_H_
