#include "net/payload_pool.h"

#include <array>
#include <new>

namespace o2pc::net::pool_internal {

namespace {

/// Size classes cover every payload + shared_ptr control block in the
/// protocol vocabulary; anything larger takes the plain-new fallback.
constexpr std::array<std::size_t, 4> kClasses = {64, 128, 256, 512};

int ClassFor(std::size_t bytes) {
  for (std::size_t i = 0; i < kClasses.size(); ++i) {
    if (bytes <= kClasses[i]) return static_cast<int>(i);
  }
  return -1;
}

/// One thread's freelists. The destructor releases cached blocks when the
/// thread exits; blocks still alive at that point (none, in practice — each
/// run drains on its own thread) simply fall back to the heap on free.
struct ThreadPool {
  struct FreeNode {
    FreeNode* next;
  };

  std::array<FreeNode*, kClasses.size()> heads{};
  PoolCounters counters;

  ~ThreadPool() {
    for (std::size_t i = 0; i < heads.size(); ++i) {
      FreeNode* node = heads[i];
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(node, std::align_val_t{alignof(std::max_align_t)});
        node = next;
      }
      heads[i] = nullptr;
    }
  }
};

thread_local ThreadPool g_pool;

}  // namespace

void* Allocate(std::size_t bytes) {
  ThreadPool& pool = g_pool;
  ++pool.counters.allocations;
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    ++pool.counters.oversized;
    return ::operator new(bytes,
                          std::align_val_t{alignof(std::max_align_t)});
  }
  if (ThreadPool::FreeNode* node = pool.heads[cls]; node != nullptr) {
    pool.heads[cls] = node->next;
    ++pool.counters.reuses;
    return node;
  }
  return ::operator new(kClasses[cls],
                        std::align_val_t{alignof(std::max_align_t)});
}

void Deallocate(void* block, std::size_t bytes) noexcept {
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    ::operator delete(block, std::align_val_t{alignof(std::max_align_t)});
    return;
  }
  ThreadPool& pool = g_pool;
  auto* node = static_cast<ThreadPool::FreeNode*>(block);
  node->next = pool.heads[cls];
  pool.heads[cls] = node;
}

const PoolCounters& Counters() { return g_pool.counters; }

}  // namespace o2pc::net::pool_internal
