#include "net/payload_pool.h"

#include <array>
#include <cstdlib>
#include <new>

#include "common/arena.h"

namespace o2pc::net::pool_internal {

namespace {

/// Size classes cover every payload + shared_ptr control block in the
/// protocol vocabulary; anything larger takes the plain-new fallback.
constexpr std::array<std::size_t, 4> kClasses = {64, 128, 256, 512};

int ClassFor(std::size_t bytes) {
  for (std::size_t i = 0; i < kClasses.size(); ++i) {
    if (bytes <= kClasses[i]) return static_cast<int>(i);
  }
  return -1;
}

/// One thread's freelists. The destructor releases cached blocks when the
/// thread exits; blocks still alive at that point (none, in practice — each
/// run drains on its own thread) simply fall back to the heap on free.
///
/// The freelists survive across runs on their thread, so blocks must come
/// from the *system heap* (raw malloc), never from the thread's run arena
/// (common/arena.h): an arena-backed block would dangle after the
/// between-runs rewind. Steady state allocates nothing either way — the
/// lists reach their high-water after the first run and recycle forever.
struct ThreadPool {
  struct FreeNode {
    FreeNode* next;
  };

  std::array<FreeNode*, kClasses.size()> heads{};
  PoolCounters counters;

  ~ThreadPool() {
    for (std::size_t i = 0; i < heads.size(); ++i) {
      FreeNode* node = heads[i];
      while (node != nullptr) {
        FreeNode* next = node->next;
        common::BypassFree(node);
        node = next;
      }
      heads[i] = nullptr;
    }
  }
};

thread_local ThreadPool g_pool;

}  // namespace

void* Allocate(std::size_t bytes) {
  ThreadPool& pool = g_pool;
  ++pool.counters.allocations;
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    ++pool.counters.oversized;
    return common::BypassMalloc(bytes);
  }
  if (ThreadPool::FreeNode* node = pool.heads[cls]; node != nullptr) {
    pool.heads[cls] = node->next;
    ++pool.counters.reuses;
    return node;
  }
  return common::BypassMalloc(kClasses[cls]);
}

void Deallocate(void* block, std::size_t bytes) noexcept {
  const int cls = ClassFor(bytes);
  if (cls < 0) {
    common::BypassFree(block);
    return;
  }
  ThreadPool& pool = g_pool;
  auto* node = static_cast<ThreadPool::FreeNode*>(block);
  node->next = pool.heads[cls];
  pool.heads[cls] = node;
}

const PoolCounters& Counters() { return g_pool.counters; }

}  // namespace o2pc::net::pool_internal
