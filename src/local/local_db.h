#ifndef O2PC_LOCAL_LOCAL_DB_H_
#define O2PC_LOCAL_LOCAL_DB_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "local/local_txn.h"
#include "lock/lock_manager.h"
#include "sg/conflict_tracker.h"
#include "sim/simulator.h"
#include "storage/recovery.h"
#include "storage/table.h"
#include "storage/wal.h"

/// \file
/// One site's autonomous DBMS: strict-2PL locking, WAL + undo rollback,
/// versioned storage, and online conflict tracking. Local transactions use
/// Begin/Execute/CommitLocal/AbortLocal. The commit layer (core) drives
/// subtransactions through the additional verbs that differentiate 2PC
/// from O2PC:
///
///   * ReleaseSharedLocks  — distributed 2PL at VOTE-REQ;
///   * LocallyCommit       — O2PC's early release at vote time;
///   * FinalizeCommit      — DECISION = commit;
///   * RollbackSubtxn      — abort vote or DECISION = abort before
///                           local-commit (undo attributed to CT_i);
///   * CompensationPlan    — the counter-operations a CT must replay after
///                           a locally-committed subtransaction must be
///                           semantically undone.

namespace o2pc::local {

/// Completion callback of Execute: the read/new value, or the failure that
/// aborted the operation (kDeadlock, kConflict, kNotFound, ...).
using OpCallback = std::function<void(Result<Value>)>;

class LocalDb {
 public:
  struct Options {
    SiteId site = 0;
    /// CPU cost charged per applied operation.
    Duration op_cost = Micros(100);
    /// A lock wait longer than this fails with kDeadlock (0 disables).
    /// Local waits-for detection handles same-site deadlocks; this timeout
    /// is the standard resolution for *distributed* deadlocks, which no
    /// single site can see. Each wait's actual bound is jittered in
    /// [timeout, 2*timeout] so that symmetric distributed deadlocks pick a
    /// single victim instead of killing both parties in lockstep.
    Duration lock_wait_timeout = Millis(300);
    /// Seed for the timeout jitter (deterministic per site/run).
    std::uint64_t seed = 0;
    lock::LockManager::Options lock_options;
  };

  LocalDb(sim::Simulator* simulator, Options options);
  LocalDb(const LocalDb&) = delete;
  LocalDb& operator=(const LocalDb&) = delete;

  /// Loads `value` under `key` outside any transaction (initial state).
  void Preload(DataKey key, Value value);

  // --- Transaction lifecycle -------------------------------------------

  /// Registers a transaction. `id` must be unique site-wide per execution
  /// attempt. For kCompensating, `global_id` names the forward transaction
  /// being compensated; for kGlobal it must equal the global transaction's
  /// id (defaulted).
  void Begin(TxnId id, TxnKind kind, TxnId global_id = kInvalidTxn);

  /// Executes one operation: acquires the lock (possibly waiting), charges
  /// `op_cost`, applies, records undo + compensation info, and completes
  /// through `callback`. A transaction may run one operation at a time.
  void Execute(TxnId id, const Operation& op, OpCallback callback);

  /// Commits a local or compensating transaction: flushes SG records,
  /// WAL-commits, releases all locks.
  void CommitLocal(TxnId id);

  /// Aborts a local (or partially executed compensating) transaction:
  /// cancels any lock wait, undoes from the WAL restoring original
  /// provenance, releases locks. Leaves no SG trace.
  void AbortLocal(TxnId id);

  // --- Subtransaction verbs driven by the commit layer ------------------

  /// Distributed 2PL refinement: drop shared locks at VOTE-REQ, enter
  /// kPrepared. `coordinator` / `peers` are force-logged with the prepared
  /// record so a post-crash recovery can direct DECISION-REQ/termination
  /// queries without any volatile state.
  void PrepareAndReleaseShared(TxnId id, SiteId coordinator = kInvalidSite,
                               std::vector<SiteId> peers = {});

  /// O2PC: the site votes commit and immediately exposes the
  /// subtransaction — WAL commit, *all* locks released, state
  /// kLocallyCommitted. SG records flush now (this is the moment the
  /// updates join the site's visible history). `coordinator` / `peers` are
  /// force-logged as for PrepareAndReleaseShared.
  void LocallyCommit(TxnId id, SiteId coordinator = kInvalidSite,
                     std::vector<SiteId> peers = {});

  /// DECISION = commit. For kPrepared (2PC) this durably commits and
  /// releases everything; for kLocallyCommitted it finalizes bookkeeping.
  /// Deferred real actions execute now (returned to the caller).
  std::vector<Operation> FinalizeCommit(TxnId id);

  /// Rolls back a subtransaction whose locks are still held (abort vote,
  /// or 2PC DECISION = abort). The undo is an exact restore leaving no SG
  /// or provenance trace: with exclusive locks covering every written key
  /// from first write through the undo, the rollback is invisible — an
  /// ordinary 2PL abort, not a compensating transaction (CTs exist only
  /// for exposed, locally-committed subtransactions).
  void RollbackSubtxn(TxnId id);

  /// Counter-operations for compensating a locally-committed
  /// subtransaction, already reversed into replay order.
  std::vector<Operation> CompensationPlan(TxnId id) const;

  /// Records that a locally-committed subtransaction has been
  /// compensated-for (terminal transition to kAborted; the CT itself ran
  /// as its own transaction). Logs kGlobalFinal, closing the pending
  /// window crash recovery watches.
  void MarkCompensated(TxnId id);

  // --- Crash / recovery / checkpointing ---------------------------------

  /// Simulates a site crash followed by immediate restart-recovery. All
  /// volatile state (lock table, transaction records) is lost; the table
  /// and WAL survive (the table is the force-written store of this
  /// undo/no-redo scheme). Recovery:
  ///   * losers (active transactions) are rolled back from the WAL — for
  ///     global subtransactions the undo is attributed to CT_i;
  ///   * *prepared* (2PC) subtransactions survive with their exclusive
  ///     locks re-acquired from the WAL (recovery locks), keeping the 2PC
  ///     promise;
  ///   * *locally-committed* subtransactions whose global fate is unknown
  ///     (kLocallyCommitted without kGlobalFinal) are rebuilt as pending;
  ///     their compensation plans are recoverable from the logged
  ///     counter-operations — persistence of compensation across crashes.
  /// Returns the rolled-back loser ids.
  std::vector<TxnId> Crash();

  /// Bumped on every Crash(); pre-crash callbacks compare epochs and
  /// abandon themselves.
  std::uint64_t epoch() const { return epoch_; }

  /// An exposed subtransaction whose global decision is still pending.
  struct PendingExposed {
    TxnId local_id = kInvalidTxn;
    TxnId global_id = kInvalidTxn;
    /// Coordinator / peer set force-logged with the vote record
    /// (kInvalidSite / empty on records that predate the extension).
    SiteId coordinator = kInvalidSite;
    std::vector<SiteId> participants;
  };
  /// Locally-committed subtransactions without a terminal kGlobalFinal,
  /// per the WAL (survives crashes).
  std::vector<PendingExposed> PendingExposedSubtxns() const;

  /// A prepared (2PC) subtransaction awaiting its decision, per the WAL.
  std::vector<PendingExposed> PendingPreparedSubtxns() const;

  /// Rebuilds a compensation plan from the WAL's logged counter-operations
  /// (replay order). Works after a crash, when the in-memory record is
  /// gone.
  std::vector<Operation> CompensationPlanFromWal(TxnId id) const;

  /// Fuzzy checkpoint: logs the in-flight transaction set and truncates
  /// the WAL below the recovery low-watermark (the oldest record still
  /// needed to roll back an in-flight transaction or compensate a pending
  /// exposed one).
  void Checkpoint();

  /// Transactions currently holding undo obligations (active/prepared).
  std::vector<TxnId> ActiveTxnIds() const;

  // --- Introspection -----------------------------------------------------

  bool HasTxn(TxnId id) const { return txns_.contains(id); }
  LocalTxnState TxnState(TxnId id) const;
  /// The global transaction a (sub)transaction belongs to.
  TxnId GlobalIdOf(TxnId id) const;
  TxnKind KindOf(TxnId id) const;
  bool HasRealAction(TxnId id) const;

  SiteId site() const { return options_.site; }
  const storage::Table& table() const { return table_; }
  const storage::Wal& wal() const { return wal_; }
  lock::LockManager& lock_manager() { return *locks_; }
  const lock::LockManager& lock_manager() const { return *locks_; }
  sg::ConflictTracker& tracker() { return tracker_; }
  const sg::ConflictTracker& tracker() const { return tracker_; }

  /// Count of real actions actually performed (at commit decisions).
  std::uint64_t real_actions_performed() const {
    return real_actions_performed_;
  }

 private:
  LocalTxnRec& Rec(TxnId id);
  const LocalTxnRec& Rec(TxnId id) const;

  /// Applies `op` after its lock is granted; returns the operation result
  /// and appends undo/compensation/SG bookkeeping to `rec`.
  Result<Value> ApplyOp(LocalTxnRec& rec, const Operation& op);

  /// Moves buffered access/provenance records into the conflict tracker.
  void FlushSgRecords(LocalTxnRec& rec);

  sim::Simulator* simulator_;  // not owned
  Options options_;
  Rng rng_;
  storage::Table table_;
  storage::Wal wal_;
  /// Recreated on Crash() — lock state is volatile.
  std::unique_ptr<lock::LockManager> locks_;
  sg::ConflictTracker tracker_;
  std::map<TxnId, LocalTxnRec> txns_;
  std::uint64_t real_actions_performed_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace o2pc::local

#endif  // O2PC_LOCAL_LOCAL_DB_H_
