#include "local/local_txn.h"

#include "common/string_util.h"

namespace o2pc::local {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "READ";
    case OpType::kWrite:
      return "WRITE";
    case OpType::kIncrement:
      return "INCR";
    case OpType::kInsert:
      return "INSERT";
    case OpType::kErase:
      return "ERASE";
    case OpType::kRealAction:
      return "REAL-ACTION";
  }
  return "?";
}

bool IsWriteOp(OpType type) { return type != OpType::kRead; }

std::string OperationToString(const Operation& op) {
  if (op.type == OpType::kRead || op.type == OpType::kErase ||
      op.type == OpType::kRealAction) {
    return StrCat(OpTypeName(op.type), "(", op.key, ")");
  }
  return StrCat(OpTypeName(op.type), "(", op.key, ", ", op.value, ")");
}

const char* LocalTxnStateName(LocalTxnState state) {
  switch (state) {
    case LocalTxnState::kActive:
      return "active";
    case LocalTxnState::kPrepared:
      return "prepared";
    case LocalTxnState::kLocallyCommitted:
      return "locally-committed";
    case LocalTxnState::kCommitted:
      return "committed";
    case LocalTxnState::kAborted:
      return "aborted";
  }
  return "?";
}

sg::NodeRef LocalTxnRec::Node() const {
  switch (kind) {
    case TxnKind::kLocal:
      return sg::LocalNode(id);
    case TxnKind::kGlobal:
      return sg::GlobalNode(global_id);
    case TxnKind::kCompensating:
      return sg::CompNode(global_id);
  }
  return sg::LocalNode(id);
}

}  // namespace o2pc::local
