#ifndef O2PC_LOCAL_LOCAL_TXN_H_
#define O2PC_LOCAL_LOCAL_TXN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sg/serialization_graph.h"
#include "storage/table.h"

/// \file
/// Transaction-side state of one site's DBMS: the operation vocabulary
/// (generic reads/writes plus the restricted model's semantic operations),
/// per-transaction undo/compensation bookkeeping, and the subtransaction
/// state machine that the commit layer drives.

namespace o2pc::local {

/// Operations a (sub)transaction can execute against a site.
enum class OpType : std::uint8_t {
  /// Generic model: read the value of `key`.
  kRead = 0,
  /// Generic model: overwrite `key` with `value` (created if absent).
  /// Compensated by restoring the before-image.
  kWrite = 1,
  /// Restricted model: add `value` (may be negative) to `key`.
  /// Compensated by the counter-increment — the paper's prime example of a
  /// semantically coherent task with an obvious counter-task.
  kIncrement = 2,
  /// Restricted model: insert a new row. Compensated by kErase.
  kInsert = 3,
  /// Restricted model: delete a row. Compensated by re-insertion.
  kErase = 4,
  /// A non-compensatable *real action* (paper §2: "firing a missile or
  /// dispensing cash"). Deferred until the commit decision; forces the
  /// site to keep 2PC behaviour for this transaction.
  kRealAction = 5,
};

const char* OpTypeName(OpType type);

/// True for operations that modify data (need an exclusive lock).
bool IsWriteOp(OpType type);

struct Operation {
  OpType type = OpType::kRead;
  DataKey key = 0;
  /// Write value / increment delta / insert value; unused for reads.
  Value value = 0;
};

std::string OperationToString(const Operation& op);

/// Lifecycle of a transaction at one site.
enum class LocalTxnState : std::uint8_t {
  /// Executing operations; all acquired locks held.
  kActive = 0,
  /// Voted commit under 2PC: shared locks released, exclusive locks held
  /// until the decision (the blocking window the paper attacks).
  kPrepared = 1,
  /// Voted commit under O2PC: *all* locks released, updates exposed; a
  /// compensating subtransaction will run if the decision is abort.
  kLocallyCommitted = 2,
  /// Terminal: durably committed.
  kCommitted = 3,
  /// Terminal: rolled back (and, for exposed subtransactions,
  /// compensated-for by a separate CT).
  kAborted = 4,
};

const char* LocalTxnStateName(LocalTxnState state);

/// Per-transaction record kept by LocalDb. Access/provenance entries are
/// buffered here and flushed to the site's ConflictTracker only when the
/// transaction reaches an outcome that belongs in the SG (see local_db.cc).
struct LocalTxnRec {
  TxnId id = kInvalidTxn;  // unique per execution attempt, site-wide
  TxnKind kind = TxnKind::kLocal;
  /// For kind == kCompensating: the forward transaction being compensated.
  /// For kind == kGlobal: == id of the global transaction.
  TxnId global_id = kInvalidTxn;
  LocalTxnState state = LocalTxnState::kActive;

  /// Counter-operations recorded in execution order; a compensating
  /// subtransaction replays them in reverse.
  std::vector<Operation> compensation_log;

  /// Real actions awaiting the commit decision.
  std::vector<Operation> deferred_real_actions;
  bool has_real_action = false;

  /// Buffered SG access records: (key, is_write), in lock-grant order.
  std::vector<std::pair<DataKey, bool>> accesses;
  /// Buffered read provenance.
  std::vector<storage::WriterTag> reads_from;

  SimTime begin_time = 0;

  /// The SG node this transaction's effects belong to.
  sg::NodeRef Node() const;
};

}  // namespace o2pc::local

#endif  // O2PC_LOCAL_LOCAL_TXN_H_
