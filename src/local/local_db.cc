#include "local/local_db.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "trace/trace.h"

namespace o2pc::local {

namespace {

/// The lock manager labels its trace events with the owning site.
lock::LockManager::Options LockOptionsFor(const LocalDb::Options& options) {
  lock::LockManager::Options lock_options = options.lock_options;
  lock_options.site = options.site;
  return lock_options;
}

}  // namespace

LocalDb::LocalDb(sim::Simulator* simulator, Options options)
    : simulator_(simulator),
      options_(options),
      rng_(options.seed ^ (static_cast<std::uint64_t>(options.site) * 7919 +
                           0x5bd1e995ULL)),
      locks_(std::make_unique<lock::LockManager>(simulator,
                                                 LockOptionsFor(options))),
      tracker_(options.site) {
  O2PC_CHECK(simulator != nullptr);
}

void LocalDb::Preload(DataKey key, Value value) {
  table_.Put(key, value, storage::WriterTag{});
}

void LocalDb::Begin(TxnId id, TxnKind kind, TxnId global_id) {
  O2PC_CHECK(id != kInvalidTxn);
  O2PC_CHECK(!txns_.contains(id))
      << "txn " << id << " already exists at site " << options_.site;
  LocalTxnRec rec;
  rec.id = id;
  rec.kind = kind;
  rec.global_id = kind == TxnKind::kGlobal && global_id == kInvalidTxn
                      ? id
                      : global_id;
  if (kind == TxnKind::kCompensating) {
    O2PC_CHECK(global_id != kInvalidTxn)
        << "compensating txn must name its forward transaction";
  }
  rec.begin_time = simulator_->Now();
  {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kBegin;
    r.txn = id;
    if (kind == TxnKind::kGlobal) {
      r.aux = static_cast<std::int64_t>(rec.global_id);
    }
    wal_.Append(std::move(r));
  }
  if (kind == TxnKind::kCompensating) {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kCompensationBegin;
    r.txn = id;
    r.aux = static_cast<std::int64_t>(global_id);
    wal_.Append(std::move(r));
  }
  txns_.emplace(id, std::move(rec));
}

LocalTxnRec& LocalDb::Rec(TxnId id) {
  auto it = txns_.find(id);
  O2PC_CHECK(it != txns_.end())
      << "unknown txn " << id << " at site " << options_.site;
  return it->second;
}

const LocalTxnRec& LocalDb::Rec(TxnId id) const {
  auto it = txns_.find(id);
  O2PC_CHECK(it != txns_.end())
      << "unknown txn " << id << " at site " << options_.site;
  return it->second;
}

void LocalDb::Execute(TxnId id, const Operation& op, OpCallback callback) {
  LocalTxnRec& rec = Rec(id);
  if (rec.state != LocalTxnState::kActive) {
    // A crash (or racing abort) terminated this transaction between the
    // caller's decision to issue the operation and now.
    simulator_->Schedule(0, [cb = std::move(callback)] {
      cb(Status::Aborted("txn no longer active"));
    });
    return;
  }
  const lock::LockMode mode = IsWriteOp(op.type)
                                  ? lock::LockMode::kExclusive
                                  : lock::LockMode::kShared;
  // Arm the distributed-deadlock timeout; cancelled the moment the lock is
  // granted (or the wait fails for another reason).
  auto timeout_event = std::make_shared<sim::EventId>(sim::kInvalidEvent);
  if (options_.lock_wait_timeout > 0) {
    const Duration bound = options_.lock_wait_timeout +
                           rng_.Uniform(0, options_.lock_wait_timeout);
    *timeout_event = simulator_->Schedule(bound, [this, id] {
      locks_->CancelWaits(id, Status::Deadlock("lock wait timeout"));
    });
  }
  locks_->Acquire(
      id, op.key, mode,
      [this, id, op, timeout_event,
       cb = std::move(callback)](const Status& status) {
        if (*timeout_event != sim::kInvalidEvent) {
          simulator_->Cancel(*timeout_event);
        }
        if (!status.ok()) {
          cb(status);
          return;
        }
        simulator_->Schedule(options_.op_cost, [this, id, op, cb,
                                                epoch = epoch_] {
          auto it = txns_.find(id);
          if (epoch != epoch_ || it == txns_.end()) {
            // The site crashed (or the record vanished) between the lock
            // grant and the apply: the pre-crash work is void.
            cb(Status::Aborted("site crashed"));
            return;
          }
          LocalTxnRec& rec = it->second;
          if (rec.state != LocalTxnState::kActive) {
            // The transaction was aborted between grant and apply.
            cb(Status::Aborted("txn no longer active"));
            return;
          }
          cb(ApplyOp(rec, op));
        });
      });
}

Result<Value> LocalDb::ApplyOp(LocalTxnRec& rec, const Operation& op) {
  const storage::WriterTag tag{
      rec.kind == TxnKind::kLocal ? rec.id : rec.global_id, rec.kind};
  switch (op.type) {
    case OpType::kRead: {
      Result<storage::Cell> cell = table_.Get(op.key);
      if (!cell.ok()) return cell.status();
      rec.accesses.emplace_back(op.key, false);
      rec.reads_from.push_back(cell->writer);
      return cell->value;
    }
    case OpType::kWrite: {
      Result<storage::Cell> before = table_.Get(op.key);
      std::optional<storage::Cell> before_img;
      if (before.ok()) before_img = *before;
      table_.Put(op.key, op.value, tag);
      Operation counter = before_img.has_value()
                              ? Operation{OpType::kWrite, op.key,
                                          before_img->value}
                              : Operation{OpType::kErase, op.key, 0};
      wal_.LogUpdate(rec.id, op.key, before_img, *table_.Get(op.key),
                     static_cast<std::uint8_t>(counter.type) + 1,
                     counter.key, counter.value);
      rec.compensation_log.push_back(counter);
      rec.accesses.emplace_back(op.key, true);
      return op.value;
    }
    case OpType::kIncrement: {
      Result<storage::Cell> cell = table_.Get(op.key);
      if (!cell.ok()) return cell.status();
      const Value new_value = cell->value + op.value;
      rec.reads_from.push_back(cell->writer);
      table_.Put(op.key, new_value, tag);
      wal_.LogUpdate(
          rec.id, op.key, *cell, *table_.Get(op.key),
          static_cast<std::uint8_t>(OpType::kIncrement) + 1, op.key,
          -op.value);
      rec.compensation_log.push_back(
          Operation{OpType::kIncrement, op.key, -op.value});
      rec.accesses.emplace_back(op.key, true);
      return new_value;
    }
    case OpType::kInsert: {
      if (table_.Contains(op.key)) {
        return Status::Conflict(StrCat("insert: key ", op.key, " exists"));
      }
      table_.Put(op.key, op.value, tag);
      wal_.LogUpdate(rec.id, op.key, std::nullopt, *table_.Get(op.key),
                     static_cast<std::uint8_t>(OpType::kErase) + 1, op.key,
                     0);
      rec.compensation_log.push_back(Operation{OpType::kErase, op.key, 0});
      rec.accesses.emplace_back(op.key, true);
      return op.value;
    }
    case OpType::kErase: {
      Result<storage::Cell> cell = table_.Get(op.key);
      if (!cell.ok()) return cell.status();
      wal_.LogUpdate(rec.id, op.key, *cell, std::nullopt,
                     static_cast<std::uint8_t>(OpType::kInsert) + 1, op.key,
                     cell->value);
      Status erased = table_.Erase(op.key, tag);
      O2PC_CHECK(erased.ok());
      rec.compensation_log.push_back(
          Operation{OpType::kInsert, op.key, cell->value});
      rec.accesses.emplace_back(op.key, true);
      return cell->value;
    }
    case OpType::kRealAction: {
      rec.has_real_action = true;
      rec.deferred_real_actions.push_back(op);
      rec.accesses.emplace_back(op.key, true);
      return Value{0};
    }
  }
  return Status::Internal("unhandled op type");
}

void LocalDb::FlushSgRecords(LocalTxnRec& rec) {
  const sg::NodeRef node = rec.Node();
  for (const auto& [key, is_write] : rec.accesses) {
    tracker_.RecordAccess(node, key, is_write);
  }
  for (const storage::WriterTag& tag : rec.reads_from) {
    tracker_.RecordReadFrom(node, sg::NodeRef{tag.id, tag.kind});
  }
  rec.accesses.clear();
  rec.reads_from.clear();
}

void LocalDb::CommitLocal(TxnId id) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.state == LocalTxnState::kActive)
      << "CommitLocal on " << LocalTxnStateName(rec.state);
  O2PC_CHECK(rec.kind != TxnKind::kGlobal)
      << "subtransactions terminate through the commit protocol";
  wal_.LogCommit(id);
  if (rec.kind == TxnKind::kCompensating) {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kCompensationCommit;
    r.txn = id;
    r.aux = static_cast<std::int64_t>(rec.global_id);
    wal_.Append(std::move(r));
  }
  FlushSgRecords(rec);
  if (rec.kind == TxnKind::kLocal) tracker_.MarkLocalCommitted(id);
  locks_->ReleaseAll(id);
  rec.state = LocalTxnState::kCommitted;
}

void LocalDb::AbortLocal(TxnId id) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.state == LocalTxnState::kActive)
      << "AbortLocal on " << LocalTxnStateName(rec.state);
  locks_->CancelWaits(id, Status::Aborted("txn aborting"));
  // Exact restore: an aborted local (or CT attempt) leaves no SG trace.
  storage::RollbackTxn(wal_, table_, id, storage::WriterTag{});
  rec.accesses.clear();
  rec.reads_from.clear();
  rec.compensation_log.clear();
  rec.deferred_real_actions.clear();
  locks_->ReleaseAll(id);
  rec.state = LocalTxnState::kAborted;
}

void LocalDb::PrepareAndReleaseShared(TxnId id, SiteId coordinator,
                                      std::vector<SiteId> peers) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.state == LocalTxnState::kActive);
  O2PC_CHECK(rec.kind == TxnKind::kGlobal);
  rec.state = LocalTxnState::kPrepared;
  {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kPrepared;
    r.txn = id;
    r.aux = static_cast<std::int64_t>(rec.global_id);
    r.coordinator = coordinator;
    r.peers = std::move(peers);
    wal_.Append(std::move(r));
  }
  // The access set is frozen here — a prepared subtransaction never reads
  // or writes again — and the shared-lock release below lets later writers
  // overtake this subtransaction's reads. Flush the SG records now so they
  // land in lock-grant order (the tracker's contract): deferring the flush
  // to the final commit records a late-deciding reader AFTER a writer that
  // overtook it, manufacturing a reversed r->w edge and phantom regular
  // cycles whenever the decision is slow to arrive (e.g. a crashed
  // coordinator whose outcome the participant recovers via DECISION-REQ).
  FlushSgRecords(rec);
  // Journal the prepared transition before the shared-lock releases it
  // permits: only exclusive locks are pinned until the DECISION.
  O2PC_TRACE(kPrepare, options_.site, rec.global_id, id);
  locks_->ReleaseShared(id);
}

void LocalDb::LocallyCommit(TxnId id, SiteId coordinator,
                            std::vector<SiteId> peers) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.state == LocalTxnState::kActive);
  O2PC_CHECK(rec.kind == TxnKind::kGlobal);
  O2PC_CHECK(!rec.has_real_action)
      << "sites with real actions must keep locks until the decision";
  wal_.LogCommit(id);
  {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kLocallyCommitted;
    r.txn = id;
    r.aux = static_cast<std::int64_t>(rec.global_id);
    r.coordinator = coordinator;
    r.peers = std::move(peers);
    wal_.Append(std::move(r));
  }
  FlushSgRecords(rec);
  locks_->ReleaseAll(id);
  // Journaled after the releases: at this instant the subtxn holds nothing
  // (the O2PC early-release invariant the trace checker replays).
  O2PC_TRACE(kLocalCommit, options_.site, rec.global_id, id);
  rec.state = LocalTxnState::kLocallyCommitted;
}

std::vector<Operation> LocalDb::FinalizeCommit(TxnId id) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.kind == TxnKind::kGlobal);
  if (rec.state == LocalTxnState::kLocallyCommitted) {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kGlobalFinal;
    r.txn = id;
    r.aux = static_cast<std::int64_t>(rec.global_id);
    wal_.Append(std::move(r));
    O2PC_TRACE(kFinalCommit, options_.site, rec.global_id, id);
    rec.state = LocalTxnState::kCommitted;
    return {};
  }
  O2PC_CHECK(rec.state == LocalTxnState::kActive ||
             rec.state == LocalTxnState::kPrepared)
      << "FinalizeCommit on " << LocalTxnStateName(rec.state);
  wal_.LogCommit(id);
  {
    storage::LogRecord r;
    r.kind = storage::LogRecordKind::kGlobalFinal;
    r.txn = id;
    r.aux = static_cast<std::int64_t>(rec.global_id);
    wal_.Append(std::move(r));
  }
  FlushSgRecords(rec);
  std::vector<Operation> actions = std::move(rec.deferred_real_actions);
  rec.deferred_real_actions.clear();
  real_actions_performed_ += actions.size();
  locks_->ReleaseAll(id);
  O2PC_TRACE(kFinalCommit, options_.site, rec.global_id, id);
  rec.state = LocalTxnState::kCommitted;
  return actions;
}

void LocalDb::RollbackSubtxn(TxnId id) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.kind == TxnKind::kGlobal);
  O2PC_CHECK(rec.state == LocalTxnState::kActive ||
             rec.state == LocalTxnState::kPrepared)
      << "RollbackSubtxn on " << LocalTxnStateName(rec.state);
  locks_->CancelWaits(id, Status::Aborted("subtxn rolling back"));
  // The forward accesses stay in the SG (aborted global transactions are SG
  // nodes, per §5). The undo, however, leaves no trace: this subtransaction
  // never locally committed, so its exclusive locks covered every written
  // key continuously from first write through the undo — no observer can
  // distinguish the history from one where the writes never happened. CT
  // nodes belong only to real compensation of *exposed* subtransactions;
  // attributing this invisible undo to a CT manufactures SG edges that can
  // close phantom regular cycles (found by the fault campaign: a partition
  // stretching a mixed-vote window chained CT_i -> T_j through the
  // abort-voting site even though the observable history serializes).
  FlushSgRecords(rec);
  storage::RollbackTxn(wal_, table_, id, storage::WriterTag{});
  rec.compensation_log.clear();
  rec.deferred_real_actions.clear();
  locks_->ReleaseAll(id);
  O2PC_TRACE(kRollback, options_.site, rec.global_id, id);
  rec.state = LocalTxnState::kAborted;
}

std::vector<Operation> LocalDb::CompensationPlan(TxnId id) const {
  const LocalTxnRec& rec = Rec(id);
  if (rec.compensation_log.empty()) {
    // Post-crash: the in-memory log is gone; rebuild from the WAL.
    return CompensationPlanFromWal(id);
  }
  std::vector<Operation> plan(rec.compensation_log.rbegin(),
                              rec.compensation_log.rend());
  return plan;
}

std::vector<Operation> LocalDb::CompensationPlanFromWal(TxnId id) const {
  std::vector<storage::LogRecord> updates = wal_.TxnUpdates(id);
  std::vector<Operation> plan;
  plan.reserve(updates.size());
  for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
    if (it->comp_kind == 0) continue;
    plan.push_back(Operation{static_cast<OpType>(it->comp_kind - 1),
                             it->comp_key, it->comp_value});
  }
  return plan;
}

std::vector<TxnId> LocalDb::ActiveTxnIds() const {
  std::vector<TxnId> active;
  for (const auto& [id, rec] : txns_) {
    if (rec.state == LocalTxnState::kActive ||
        rec.state == LocalTxnState::kPrepared) {
      active.push_back(id);
    }
  }
  return active;
}

std::vector<LocalDb::PendingExposed> LocalDb::PendingExposedSubtxns() const {
  std::map<TxnId, PendingExposed> pending;  // keyed by local id
  for (const storage::LogRecord& r : wal_.records()) {
    if (r.kind == storage::LogRecordKind::kLocallyCommitted) {
      pending[r.txn] = PendingExposed{r.txn, static_cast<TxnId>(r.aux),
                                      r.coordinator, r.peers};
    } else if (r.kind == storage::LogRecordKind::kGlobalFinal) {
      pending.erase(r.txn);
    }
  }
  std::vector<PendingExposed> out;
  for (auto& [local_id, entry] : pending) out.push_back(std::move(entry));
  return out;
}

std::vector<LocalDb::PendingExposed> LocalDb::PendingPreparedSubtxns() const {
  std::map<TxnId, PendingExposed> pending;  // keyed by local id
  for (const storage::LogRecord& r : wal_.records()) {
    switch (r.kind) {
      case storage::LogRecordKind::kPrepared:
        pending[r.txn] = PendingExposed{r.txn, static_cast<TxnId>(r.aux),
                                        r.coordinator, r.peers};
        break;
      case storage::LogRecordKind::kGlobalFinal:
      case storage::LogRecordKind::kAbort:
        pending.erase(r.txn);
        break;
      default:
        break;
    }
  }
  std::vector<PendingExposed> out;
  for (auto& [local_id, entry] : pending) out.push_back(std::move(entry));
  return out;
}

std::vector<TxnId> LocalDb::Crash() {
  ++epoch_;
  // Volatile state is gone: fresh lock table.
  locks_ = std::make_unique<lock::LockManager>(simulator_,
                                               LockOptionsFor(options_));

  // Survivors, per the durable log.
  std::set<TxnId> prepared;
  for (const PendingExposed& p : PendingPreparedSubtxns()) {
    prepared.insert(p.local_id);
  }

  // Roll back the losers: every in-flight transaction that is neither
  // prepared nor terminal. The in-memory records still name them (the
  // tracker is an analysis oracle; the records themselves are rebuilt
  // below as a real restart would from the WAL).
  std::vector<TxnId> losers;
  for (auto& [id, rec] : txns_) {
    if (rec.state != LocalTxnState::kActive) continue;
    if (prepared.contains(id)) continue;
    losers.push_back(id);
  }
  for (TxnId id : losers) {
    LocalTxnRec& rec = txns_.at(id);
    // A crash-time loser is pre-vote by definition (prepared and
    // locally-committed states survive), so its locks covered its entire
    // lifetime and nothing was exposed: the rollback is invisible and must
    // leave no SG trace — crucially so, because the coordinator may resend
    // the invoke and *re-execute* the same global transaction here; a
    // ghost T_i/CT_i pair from the first attempt would fabricate a local
    // cycle with the successful retry.
    rec.accesses.clear();
    rec.reads_from.clear();
    storage::RollbackTxn(wal_, table_, id, storage::WriterTag{});
    rec.compensation_log.clear();
    rec.deferred_real_actions.clear();
    O2PC_TRACE(kRollback, options_.site, rec.global_id, id);
    rec.state = LocalTxnState::kAborted;
  }

  // Prepared survivors: re-acquire exclusive locks on their written keys
  // (recovery locks) so the 2PC promise holds across the crash.
  for (TxnId id : prepared) {
    for (const storage::LogRecord& update : wal_.TxnUpdates(id)) {
      locks_->Acquire(id, update.key, lock::LockMode::kExclusive,
                      [](const Status&) {});
    }
  }

  // Exposed-pending subtransactions survive lock-free; wipe their volatile
  // compensation logs so plans demonstrably rebuild from the WAL.
  for (const PendingExposed& p : PendingExposedSubtxns()) {
    auto it = txns_.find(p.local_id);
    if (it != txns_.end()) it->second.compensation_log.clear();
  }
  return losers;
}

void LocalDb::Checkpoint() {
  std::vector<TxnId> needed = ActiveTxnIds();
  const std::vector<TxnId> active = needed;
  for (const PendingExposed& p : PendingExposedSubtxns()) {
    needed.push_back(p.local_id);
  }
  const std::uint64_t checkpoint_lsn = wal_.LogCheckpoint(active);
  wal_.TruncateBelow(std::min(wal_.LowWatermark(needed), checkpoint_lsn));
}

void LocalDb::MarkCompensated(TxnId id) {
  LocalTxnRec& rec = Rec(id);
  O2PC_CHECK(rec.state == LocalTxnState::kLocallyCommitted)
      << "MarkCompensated on " << LocalTxnStateName(rec.state);
  storage::LogRecord r;
  r.kind = storage::LogRecordKind::kGlobalFinal;
  r.txn = id;
  r.aux = static_cast<std::int64_t>(rec.global_id);
  wal_.Append(std::move(r));
  rec.state = LocalTxnState::kAborted;
}

LocalTxnState LocalDb::TxnState(TxnId id) const { return Rec(id).state; }

TxnId LocalDb::GlobalIdOf(TxnId id) const { return Rec(id).global_id; }

TxnKind LocalDb::KindOf(TxnId id) const { return Rec(id).kind; }

bool LocalDb::HasRealAction(TxnId id) const { return Rec(id).has_real_action; }

}  // namespace o2pc::local
