#include "sim/simulator.h"

#include "common/logging.h"

namespace o2pc::sim {

EventId Simulator::Schedule(Duration delay, Callback fn) {
  O2PC_CHECK(delay >= 0) << "negative delay " << delay;
  return queue_.Push(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, Callback fn) {
  O2PC_CHECK(when >= now_) << "scheduling into the past: " << when << " < "
                           << now_;
  return queue_.Push(when, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return queue_.Cancel(id); }

void Simulator::Step() {
  Event event = queue_.Pop();
  now_ = event.time;
  ++events_executed_;
  event.fn();
}

std::uint64_t Simulator::Run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    Step();
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_ && queue_.PeekTime() <= deadline) {
    Step();
    ++executed;
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
  return executed;
}

std::uint64_t Simulator::RunSteps(std::uint64_t n) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_ && executed < n) {
    Step();
    ++executed;
  }
  return executed;
}

}  // namespace o2pc::sim
