#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace o2pc::sim {

namespace {

/// Initial calendar geometry. The window (width * buckets) comfortably
/// covers the protocol's dense short-horizon band (operation costs and
/// network hops, tens to hundreds of microseconds); retransmit spikes and
/// recovery windows land in the far heap and migrate in as the window
/// slides. Splitting adapts the width downward when traffic bunches.
constexpr SimTime kInitialWidth = 16;         // microseconds per bucket
constexpr std::size_t kInitialBuckets = 512;  // power of two
constexpr std::size_t kMaxBuckets = std::size_t{1} << 15;
/// A bucket holding more than this many scheduled keys (spanning more than
/// one distinct instant) triggers a split.
constexpr std::size_t kSplitThreshold = 48;

bool DefaultToCalendar() {
  static const bool calendar = [] {
    const char* env = std::getenv("O2PC_EVENTQUEUE");
    return env == nullptr || std::strcmp(env, "heap") != 0;
  }();
  return calendar;
}

}  // namespace

EventQueue::EventQueue() : calendar_(DefaultToCalendar()) {
  if (calendar_) {
    buckets_.resize(kInitialBuckets);
    occupied_.assign(kInitialBuckets / 64, 0);
    num_buckets_ = kInitialBuckets;
    mask_ = kInitialBuckets - 1;
    width_ = kInitialWidth;
  }
}

EventQueue::~EventQueue() = default;

void EventQueue::ForceImplementation(bool calendar) {
  O2PC_CHECK(live_count_ == 0 && far_.empty() && heap_.empty())
      << "ForceImplementation on a non-empty queue";
  calendar_ = calendar;
  if (calendar_ && buckets_.empty()) {
    buckets_.resize(kInitialBuckets);
    occupied_.assign(kInitialBuckets / 64, 0);
    num_buckets_ = kInitialBuckets;
    mask_ = kInitialBuckets - 1;
    width_ = kInitialWidth;
  }
}

std::size_t EventQueue::FindOccupied(std::size_t from) const {
  std::size_t word = from >> 6;
  if (word >= occupied_.size()) return num_buckets_;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (from & 63));
  while (bits == 0) {
    if (++word >= occupied_.size()) return num_buckets_;
    bits = occupied_[word];
  }
  return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
}

std::uint32_t EventQueue::ParkCallback(Callback fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
    return slot;
  }
  slots_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

Callback EventQueue::TakeCallback(std::uint32_t slot) {
  Callback fn = std::move(slots_[slot]);
  slots_[slot] = Callback();
  free_slots_.push_back(slot);
  return fn;
}

EventId EventQueue::Push(SimTime time, Callback fn) {
  const EventId id = next_id_++;
  const Key key{time, id, ParkCallback(std::move(fn))};
  state_.push_back(kPending);  // state_.size() tracks next_id_
  ++live_count_;
  if (calendar_) {
    CalendarPush(key);
  } else {
    heap_.push_back(key);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  return id;
}

void EventQueue::CalendarPush(const Key& key) {
  if (key.time >= RingEnd()) {
    far_.push_back(key);
    std::push_heap(far_.begin(), far_.end(), Later{});
    return;
  }
  if (key.time < ring_base_) {
    // A push into the past relative to the window (possible only for
    // callers that pop below a previously pushed far-future time and then
    // push near it — the Simulator never does, but the queue's contract is
    // a plain priority queue). Slide the window back to cover it.
    Rebuild(key.time - (key.time % width_), width_, num_buckets_);
  }
  const std::size_t index = BucketIndex(key.time);
  Bucket& bucket = buckets_[index];
  MarkOccupied(index);
  // Sorted insertion from the back. Pushes arrive in id order, so keys at
  // the same instant already sit in FIFO order and the common append case
  // terminates on the first compare.
  bucket.keys.push_back(key);
  std::size_t i = bucket.keys.size() - 1;
  while (i > bucket.head && Later{}(bucket.keys[i - 1], key)) {
    bucket.keys[i] = bucket.keys[i - 1];
    --i;
  }
  bucket.keys[i] = key;
  // A stale cursor (the ring looked drained) must fall back to this key.
  if (index < cursor_) cursor_ = index;
  MaybeSplit(index);
}

void EventQueue::MaybeSplit(std::size_t bucket_index) {
  const Bucket& bucket = buckets_[bucket_index];
  if (bucket.keys.size() - bucket.head <= kSplitThreshold) return;
  if (num_buckets_ >= kMaxBuckets || width_ <= 1) return;
  // Same-instant bursts gain nothing from a split (they share a bucket at
  // any width, and their insertion is O(1) appends).
  if (bucket.keys.front().time == bucket.keys.back().time) return;
  Rebuild(ring_base_, width_ / 2, num_buckets_ * 2);
}

void EventQueue::Rebuild(SimTime base, SimTime width,
                         std::size_t num_buckets) {
  // Halving the width while doubling the count keeps the window end fixed,
  // so no key moves between ring and far heap. Ring keys concatenated in
  // bucket order are globally sorted; re-appending preserves per-bucket
  // sorted order.
  std::vector<Key> scheduled;
  scheduled.reserve(live_count_);
  for (std::size_t b = cursor_; b < num_buckets_; ++b) {
    Bucket& bucket = buckets_[b];
    for (std::size_t i = bucket.head; i < bucket.keys.size(); ++i) {
      scheduled.push_back(bucket.keys[i]);
    }
    bucket.reset();
  }
  buckets_.resize(num_buckets);
  occupied_.assign((num_buckets + 63) / 64, 0);
  num_buckets_ = num_buckets;
  mask_ = num_buckets - 1;
  width_ = width;
  ring_base_ = base;
  cursor_ = num_buckets_;  // nothing scheduled yet; pushes pull it back
  for (const Key& key : scheduled) {
    if (key.time >= RingEnd()) {  // window slid backward: overflow to far
      far_.push_back(key);
      std::push_heap(far_.begin(), far_.end(), Later{});
      continue;
    }
    const std::size_t index = BucketIndex(key.time);
    buckets_[index].keys.push_back(key);
    MarkOccupied(index);
    if (index < cursor_) cursor_ = index;
  }
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // An id is live iff its state byte says so — no structure scan. The key
  // (and its parked callback) is reaped when it surfaces, exactly like the
  // pre-calendar lazy heap.
  if (state_[id] != kPending) return false;
  state_[id] = kCancelled;
  --live_count_;
  return true;
}

bool EventQueue::SeekRing() {
  cursor_ = FindOccupied(cursor_);
  while (cursor_ < num_buckets_) {
    Bucket& bucket = buckets_[cursor_];
    while (!bucket.drained()) {
      const Key& front = bucket.keys[bucket.head];
      if (state_[front.id] == kPending) return true;
      state_[front.id] = kDone;  // reap the cancelled key
      TakeCallback(front.slot);
      ++bucket.head;
    }
    bucket.reset();
    ClearOccupied(cursor_);
    cursor_ = FindOccupied(cursor_ + 1);
  }
  return false;
}

void EventQueue::CalendarSeek() {
  for (;;) {
    if (SeekRing()) return;
    // Ring drained: slide the window to the far heap's minimum. Only Pop
    // calls this, and it immediately pops that minimum, so simulated time
    // catches up to the new base before any Push can observe it.
    while (!far_.empty() && state_[far_.front().id] != kPending) {
      state_[far_.front().id] = kDone;
      TakeCallback(far_.front().slot);
      std::pop_heap(far_.begin(), far_.end(), Later{});
      far_.pop_back();
    }
    O2PC_CHECK(!far_.empty()) << "CalendarSeek on empty queue";
    ring_base_ = far_.front().time - (far_.front().time % width_);
    cursor_ = num_buckets_;
    const SimTime ring_end = RingEnd();
    while (!far_.empty() && far_.front().time < ring_end) {
      const Key key = far_.front();
      std::pop_heap(far_.begin(), far_.end(), Later{});
      far_.pop_back();
      if (state_[key.id] != kPending) {
        state_[key.id] = kDone;
        TakeCallback(key.slot);
        continue;
      }
      CalendarPush(key);
    }
  }
}

SimTime EventQueue::PeekTime() {
  O2PC_CHECK(live_count_ > 0) << "PeekTime on empty queue";
  if (!calendar_) {
    HeapSkipCancelled();
    return heap_.front().time;
  }
  // Scan the ring without sliding the window (a slide is only safe inside
  // Pop, where the popped event immediately advances simulated time past
  // the new base).
  if (SeekRing()) return buckets_[cursor_].keys[buckets_[cursor_].head].time;
  while (!far_.empty() && state_[far_.front().id] != kPending) {
    state_[far_.front().id] = kDone;
    TakeCallback(far_.front().slot);
    std::pop_heap(far_.begin(), far_.end(), Later{});
    far_.pop_back();
  }
  O2PC_CHECK(!far_.empty()) << "PeekTime on empty queue";
  return far_.front().time;
}

Event EventQueue::Pop() {
  O2PC_CHECK(live_count_ > 0) << "Pop on empty queue";
  if (!calendar_) {
    HeapSkipCancelled();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Key top = heap_.back();
    heap_.pop_back();
    state_[top.id] = kDone;
    --live_count_;
    return Event{top.time, top.id, TakeCallback(top.slot)};
  }
  CalendarSeek();
  Bucket& bucket = buckets_[cursor_];
  const Key top = bucket.keys[bucket.head];
  ++bucket.head;
  if (bucket.drained()) {
    bucket.reset();
    ClearOccupied(cursor_);
  }
  state_[top.id] = kDone;
  --live_count_;
  return Event{top.time, top.id, TakeCallback(top.slot)};
}

void EventQueue::HeapSkipCancelled() {
  while (!heap_.empty() && state_[heap_.front().id] != kPending) {
    state_[heap_.front().id] = kDone;
    TakeCallback(heap_.front().slot);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::ResetForRun() {
  slots_.clear();  // destroys any still-parked callbacks
  free_slots_.clear();
  state_.clear();
  state_.push_back(kDone);
  live_count_ = 0;
  next_id_ = 1;
  for (Bucket& bucket : buckets_) bucket.reset();
  std::fill(occupied_.begin(), occupied_.end(), 0);
  far_.clear();
  heap_.clear();
  ring_base_ = 0;
  cursor_ = 0;
  // width_/num_buckets_ keep their adapted geometry: pop order is
  // geometry-independent, and a warm ring skips re-learning the density.
}

}  // namespace o2pc::sim
