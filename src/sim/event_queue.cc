#include "sim/event_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace o2pc::sim {

EventId EventQueue::Push(SimTime time, Callback fn) {
  const EventId id = next_id_++;
  heap_.push_back(HeapEntry{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  state_.push_back(kPending);  // state_.size() tracks next_id_
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // An id is live iff its state byte says so: ids that already ran (or were
  // cancelled and reaped) are kDone, double-cancels are kCancelled. No heap
  // membership scan needed.
  if (state_[id] != kPending) return false;
  state_[id] = kCancelled;
  --live_count_;
  return true;
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  O2PC_CHECK(!heap_.empty()) << "PeekTime on empty queue";
  return heap_.front().time;
}

Event EventQueue::Pop() {
  SkipCancelled();
  O2PC_CHECK(!heap_.empty()) << "Pop on empty queue";
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  HeapEntry top = std::move(heap_.back());
  heap_.pop_back();
  state_[top.id] = kDone;
  --live_count_;
  return Event{top.time, top.id, std::move(top.fn)};
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && state_[heap_.front().id] == kCancelled) {
    state_[heap_.front().id] = kDone;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

}  // namespace o2pc::sim
