#include "sim/event_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace o2pc::sim {

EventId EventQueue::Push(SimTime time, Callback fn) {
  const EventId id = next_id_++;
  heap_.push_back(HeapEntry{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // An id is live iff it is still in the heap and not yet cancelled. We
  // cannot cheaply test heap membership, so track cancellation and let Pop
  // reconcile. Double-cancel and cancel-after-run both return false via the
  // cancelled_ bookkeeping below.
  if (cancelled_.contains(id)) return false;
  // Check the id has not already run: ids that ran are not in the heap. We
  // scan lazily only when the heap is small; otherwise we optimistically
  // record the cancellation (Pop ignores unknown ids).
  bool present = false;
  for (const auto& e : heap_) {
    if (e.id == id) {
      present = true;
      break;
    }
  }
  if (!present) return false;
  cancelled_.insert(id);
  --live_count_;
  return true;
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  O2PC_CHECK(!heap_.empty()) << "PeekTime on empty queue";
  return heap_.front().time;
}

Event EventQueue::Pop() {
  SkipCancelled();
  O2PC_CHECK(!heap_.empty()) << "Pop on empty queue";
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  HeapEntry top = std::move(heap_.back());
  heap_.pop_back();
  --live_count_;
  return Event{top.time, top.id, std::move(top.fn)};
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

}  // namespace o2pc::sim
