#ifndef O2PC_SIM_EVENT_QUEUE_H_
#define O2PC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/callback.h"

/// \file
/// Priority queue of timed events with stable FIFO ordering among events
/// scheduled for the same instant, so simulation runs are fully
/// deterministic for a given seed. Events carry a small-buffer Callback
/// (sim/callback.h) instead of a std::function, so the typical protocol
/// capture lives inline in the heap slot — no per-event allocation.

namespace o2pc::sim {

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// A scheduled callback, as returned by Pop().
struct Event {
  SimTime time = 0;
  EventId id = kInvalidEvent;  // also the FIFO tiebreaker
  Callback fn;
};

/// Min-heap of events ordered by (time, id). Cancellation is lazy: cancelled
/// entries stay in the heap and are skipped when they surface. Ids are dense
/// (1, 2, 3, ...), so per-event lifecycle state is a direct-indexed byte
/// vector — Cancel is O(1) with no hashing and no heap scan.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Adds `fn` at absolute time `time`. Returns a cancellation handle.
  EventId Push(SimTime time, Callback fn);

  /// Cancels a previously pushed event. Returns false if the event already
  /// ran, was cancelled, or never existed.
  bool Cancel(EventId id);

  /// True if no runnable event remains.
  bool empty() const { return live_count_ == 0; }

  /// Number of runnable (non-cancelled) events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest runnable event. Pre: !empty().
  SimTime PeekTime();

  /// Removes and returns the earliest runnable event. Pre: !empty().
  Event Pop();

 private:
  /// Lifecycle of an id, indexed by the id itself.
  enum State : std::uint8_t {
    kDone = 0,       // ran, or cancelled and reaped — not in the heap
    kPending = 1,    // in the heap, will run
    kCancelled = 2,  // in the heap, will be skipped when it surfaces
  };

  struct HeapEntry {
    SimTime time;
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Drops cancelled entries sitting at the top of the heap.
  void SkipCancelled();

  std::vector<HeapEntry> heap_;  // managed with std::push_heap/pop_heap
  std::vector<std::uint8_t> state_{kDone};  // state_[id]; index 0 unused
  std::size_t live_count_ = 0;
  EventId next_id_ = 1;
};

}  // namespace o2pc::sim

#endif  // O2PC_SIM_EVENT_QUEUE_H_
