#ifndef O2PC_SIM_EVENT_QUEUE_H_
#define O2PC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/callback.h"

/// \file
/// Priority queue of timed events with stable FIFO ordering among events
/// scheduled for the same instant, so simulation runs are fully
/// deterministic for a given seed.
///
/// Two implementations behind one class (selected once per process;
/// `O2PC_EVENTQUEUE=heap` forces the fallback for A/B):
///
///  * **Calendar queue** (default): a ring of time-bucketed, sorted
///    mini-vectors covering a sliding near-future window, with a binary
///    heap holding the far tail (recovery windows, pre-vote timeouts).
///    The protocol's timer distribution is strongly short-horizon —
///    op costs and network hops of tens to hundreds of microseconds,
///    retransmit spikes at a few milliseconds — so push and pop are O(1)
///    amortized: append (or a short shift) into a small bucket, pop from
///    the current bucket's head. The bucket count and width adapt
///    deterministically to the observed density (they depend only on the
///    push/pop sequence, never on wall clock).
///  * **Binary heap**: ordered by (time, id), the pre-calendar engine.
///
/// Both implementations store only 24-byte POD keys in their ordering
/// structure; the fat small-buffer `Callback` payloads are parked once in
/// a stable free-list slab and never move while scheduled. (The old heap
/// sifted 80-byte entries, paying an indirect relocate call per element
/// move — millions per run.)
///
/// Pop order is exactly (time, id) in both implementations — bit-identical
/// journals, pinned by the cross-implementation property test in
/// tests/sim_test.cc and the determinism goldens.

namespace o2pc::sim {

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// A scheduled callback, as returned by Pop().
struct Event {
  SimTime time = 0;
  EventId id = kInvalidEvent;  // also the FIFO tiebreaker
  Callback fn;
};

/// Min-queue of events ordered by (time, id). Cancellation is lazy in the
/// ordering structure but eager in the slab: Cancel destroys the callback
/// and recycles its slot in O(1) (ids are dense, so per-event lifecycle
/// state is a direct-indexed byte vector); the stale key is skipped when
/// it surfaces.
class EventQueue {
 public:
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// Adds `fn` at absolute time `time` (>= the last popped time). Returns
  /// a cancellation handle.
  EventId Push(SimTime time, Callback fn);

  /// Cancels a previously pushed event. Returns false if the event already
  /// ran, was cancelled, or never existed.
  bool Cancel(EventId id);

  /// True if no runnable event remains.
  bool empty() const { return live_count_ == 0; }

  /// Number of runnable (non-cancelled) events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest runnable event. Pre: !empty().
  SimTime PeekTime();

  /// Removes and returns the earliest runnable event. Pre: !empty().
  Event Pop();

  /// Clears all state for a fresh run, retaining every buffer — bucket
  /// ring, slab, free list — and the adapted calendar geometry (pop order
  /// is geometry-independent, so a warm queue stays byte-identical to a
  /// cold one). Part of the world-reuse reset contract (DESIGN §16).
  void ResetForRun();

  /// True when this queue runs the calendar implementation (tests/bench).
  bool using_calendar() const { return calendar_; }

  /// Forces the implementation for this instance (bench_micro A/Bs both in
  /// one process). Only valid on an empty queue.
  void ForceImplementation(bool calendar);

 private:
  /// Lifecycle of an id, indexed by the id itself.
  enum State : std::uint8_t {
    kDone = 0,       // ran, or was cancelled — not scheduled
    kPending = 1,    // scheduled, will run
    kCancelled = 2,  // key still in the structure, skipped when it surfaces
  };

  /// Ordering key: everything the structure moves around. POD, 24 bytes.
  struct Key {
    SimTime time;
    EventId id;
    std::uint32_t slot;  // index of the parked Callback in slots_
  };
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// One calendar bucket: a sorted mini-vector consumed from the front.
  /// `head` avoids erase-from-front; the vector compacts when drained.
  struct Bucket {
    std::vector<Key> keys;
    std::size_t head = 0;

    bool drained() const { return head >= keys.size(); }
    void reset() {
      keys.clear();
      head = 0;
    }
  };

  std::uint32_t ParkCallback(Callback fn);
  Callback TakeCallback(std::uint32_t slot);

  // -- calendar implementation --
  void CalendarPush(const Key& key);
  /// Index of the bucket covering `time` (pre: within the ring window).
  std::size_t BucketIndex(SimTime time) const {
    return static_cast<std::size_t>((time - ring_base_) / width_) & mask_;
  }
  SimTime RingEnd() const {
    return ring_base_ + static_cast<SimTime>(num_buckets_) * width_;
  }
  /// Advances cursor_ to the first bucket holding a live key, reaping
  /// cancelled heads on the way. Returns false when the ring is fully
  /// drained (cursor_ == num_buckets_). Empty buckets are skipped via the
  /// occupancy bitmap — a word scan, not a bucket scan, so a sparse window
  /// costs (num_buckets / 64) loads per sweep instead of num_buckets.
  bool SeekRing();
  /// SeekRing, plus window re-base from the far heap when the ring drains.
  /// Pre: !empty(). Post: buckets_[cursor_] front is live.
  void CalendarSeek();
  void MarkOccupied(std::size_t bucket) {
    occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  }
  void ClearOccupied(std::size_t bucket) {
    occupied_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
  /// First bucket index >= `from` with any key scheduled; num_buckets_ if
  /// none.
  std::size_t FindOccupied(std::size_t from) const;
  /// Re-buckets every scheduled ring key into a ring of `num_buckets`
  /// buckets of `width` starting at `base`.
  void Rebuild(SimTime base, SimTime width, std::size_t num_buckets);
  /// Doubles the ring (halving the width) when a bucket overcrowds.
  void MaybeSplit(std::size_t bucket_index);

  // -- shared state --
  bool calendar_ = true;
  std::vector<Callback> slots_;        // parked callbacks, stable
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint8_t> state_{kDone};  // state_[id]; index 0 unused
  std::size_t live_count_ = 0;
  EventId next_id_ = 1;

  // -- calendar state --
  std::vector<Bucket> buckets_;  // ring; size is a power of two
  std::vector<std::uint64_t> occupied_;  // bit per bucket: any key present
  std::size_t num_buckets_ = 0;
  std::size_t mask_ = 0;
  SimTime width_ = 0;
  SimTime ring_base_ = 0;
  std::size_t cursor_ = 0;       // first ring bucket that may hold work
  std::vector<Key> far_;         // min-heap: keys at or past RingEnd()

  // -- binary-heap fallback --
  std::vector<Key> heap_;  // managed with std::push_heap/pop_heap
  void HeapSkipCancelled();
};

}  // namespace o2pc::sim

#endif  // O2PC_SIM_EVENT_QUEUE_H_
