#ifndef O2PC_SIM_CALLBACK_H_
#define O2PC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file
/// Small-buffer callable for the event kernel's hot path.
///
/// Every scheduled event used to carry a `std::function<void()>`, whose
/// inline buffer (16 bytes on libstdc++) is too small for the protocol's
/// typical captures — a `this` pointer plus a `net::Message` is ~48 bytes —
/// so nearly every Schedule() call heap-allocated. `BasicCallback` inlines
/// up to `kBytes` of capture state directly in the owner's slot and only
/// falls back to the heap for outsized callables. Move-only, like the
/// events it carries.
///
/// Two instantiations matter:
///  * `Callback` (56-byte, `void()`) — what the event queue stores;
///  * the lock manager's `GrantCallback` (40-byte, `void(const Status&)`)
///    — sized so that the grant wrapper `[cb = std::move(cb)] { cb(ok); }`
///    still fits inline in a `Callback`, making the lock grant path
///    allocation-free end to end.

namespace o2pc::sim {

/// Inline capture budget of the event-queue `Callback`. Sized for the
/// largest hot-path lambda (network delivery: a `this` pointer + a moved
/// `net::Message`) with headroom for a couple of extra captured words.
inline constexpr std::size_t kInlineCallbackBytes = 56;

/// Move-only type-erased `void(Args...)` with `kBytes` of inline capture
/// storage. Callables larger than `kBytes` (or over-aligned) go to the heap.
template <std::size_t kBytes, typename... Args>
class BasicCallback {
 public:
  BasicCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  BasicCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in
                          // for std::function at every call site.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  BasicCallback(BasicCallback&& other) noexcept { MoveFrom(other); }

  BasicCallback& operator=(BasicCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  BasicCallback(const BasicCallback&) = delete;
  BasicCallback& operator=(const BasicCallback&) = delete;

  ~BasicCallback() { Reset(); }

  void operator()(Args... args) {
    ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self, Args... args);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* self, Args... args) {
      (*static_cast<Fn*>(self))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* self) { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Slot(void* self) { return *static_cast<Fn**>(self); }
    static void Invoke(void* self, Args... args) {
      (*Slot(self))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      *static_cast<Fn**>(dst) = Slot(src);
    }
    static void Destroy(void* self) { delete Slot(self); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(BasicCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kBytes];
  const Ops* ops_ = nullptr;
};

/// The event-queue callable. Every Schedule() call site takes this.
using Callback = BasicCallback<kInlineCallbackBytes>;

}  // namespace o2pc::sim

#endif  // O2PC_SIM_CALLBACK_H_
