#ifndef O2PC_SIM_CALLBACK_H_
#define O2PC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file
/// Small-buffer `void()` callable for the event kernel's hot path.
///
/// Every scheduled event used to carry a `std::function<void()>`, whose
/// inline buffer (16 bytes on libstdc++) is too small for the protocol's
/// typical captures — a `this` pointer plus a `net::Message` is ~48 bytes —
/// so nearly every Schedule() call heap-allocated. `Callback` inlines up to
/// `kInlineCallbackBytes` of capture state directly in the event-queue slot
/// and only falls back to the heap for outsized callables. Move-only, like
/// the events it carries.

namespace o2pc::sim {

/// Inline capture budget. Sized for the largest hot-path lambda (network
/// delivery: a `this` pointer + a moved `net::Message`) with headroom for a
/// couple of extra captured words.
inline constexpr std::size_t kInlineCallbackBytes = 56;

class Callback {
 public:
  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every Schedule() call site.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  Callback(Callback&& other) noexcept { MoveFrom(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* self) { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Slot(void* self) { return *static_cast<Fn**>(self); }
    static void Invoke(void* self) { (*Slot(self))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<Fn**>(dst) = Slot(src);
    }
    static void Destroy(void* self) { delete Slot(self); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCallbackBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace o2pc::sim

#endif  // O2PC_SIM_CALLBACK_H_
