#ifndef O2PC_SIM_SIMULATOR_H_
#define O2PC_SIM_SIMULATOR_H_

#include <cstdint>

#include "common/types.h"
#include "sim/event_queue.h"

/// \file
/// The discrete-event simulation kernel. All distributed components (sites,
/// network, coordinators) run on one Simulator: they schedule callbacks at
/// future simulated instants and never block. Time advances only between
/// events, so a run is a deterministic function of the initial seedable
/// inputs.

namespace o2pc::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0; a
  /// delay of 0 runs after all currently pending events at `Now()`).
  EventId Schedule(Duration delay, Callback fn);

  /// Schedules `fn` at the absolute instant `when` (>= Now()).
  EventId ScheduleAt(SimTime when, Callback fn);

  /// Cancels a scheduled event; false if it already ran or was cancelled.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or Stop() is called. Returns the
  /// number of events executed.
  std::uint64_t Run();

  /// Runs events with time <= deadline. Returns the number executed.
  std::uint64_t RunUntil(SimTime deadline);

  /// Executes at most `n` events.
  std::uint64_t RunSteps(std::uint64_t n);

  /// Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  bool Idle() const { return queue_.empty(); }

  /// Number of scheduled (not yet executed) events.
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed over the simulator's lifetime.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Returns the kernel to its just-constructed state for a fresh run,
  /// retaining the queue's buffers and adapted calendar geometry (part of
  /// the world-reuse reset contract, DESIGN §16).
  void ResetForRun() {
    queue_.ResetForRun();
    now_ = 0;
    stopped_ = false;
    events_executed_ = 0;
  }

 private:
  /// Pops and runs one event. Pre: !Idle().
  void Step();

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace o2pc::sim

#endif  // O2PC_SIM_SIMULATOR_H_
