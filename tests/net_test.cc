// Unit tests for the simulated network: latency, jitter, loopback,
// severed links, drops, and the per-type counters behind experiment E6.

#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace o2pc::net {
namespace {

struct TestPayload : Payload {
  int value = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&sim_, Options(), 99) {
    network_.RegisterNode(0, [this](const Message& m) { Deliver(0, m); });
    network_.RegisterNode(1, [this](const Message& m) { Deliver(1, m); });
  }

  static NetworkOptions Options() {
    NetworkOptions options;
    options.base_latency = Millis(5);
    options.jitter = 0;
    options.loopback_latency = Micros(10);
    return options;
  }

  void Deliver(SiteId at, const Message& message) {
    received_.push_back({at, message, sim_.Now()});
  }

  Message Make(SiteId from, SiteId to, int value = 0) {
    auto payload = std::make_shared<TestPayload>();
    payload->value = value;
    Message m;
    m.from = from;
    m.to = to;
    m.type = MessageType::kUser;
    m.payload = payload;
    return m;
  }

  struct Received {
    SiteId at;
    Message message;
    SimTime when;
  };

  sim::Simulator sim_;
  Network network_;
  std::vector<Received> received_;
};

TEST_F(NetworkTest, DeliversWithBaseLatency) {
  network_.Send(Make(0, 1, 7));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 1u);
  EXPECT_EQ(received_[0].when, Millis(5));
  const auto* payload =
      static_cast<const TestPayload*>(received_[0].message.payload.get());
  EXPECT_EQ(payload->value, 7);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  network_.Send(Make(1, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Micros(10));
}

TEST_F(NetworkTest, SeveredLinkDropsBothDirections) {
  network_.SeverLink(0, 1);
  network_.Send(Make(0, 1));
  network_.Send(Make(1, 0));
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_.stats().dropped, 2u);
  EXPECT_EQ(network_.stats().sent_total, 2u);

  network_.HealLink(0, 1);
  network_.Send(Make(0, 1));
  sim_.Run();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, PerLinkLatencyOverride) {
  network_.SetLinkLatency(0, 1, Millis(50));
  network_.Send(Make(0, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Millis(50));
}

TEST_F(NetworkTest, CountsByType) {
  network_.Send(Make(0, 1));
  network_.Send(Make(1, 0));
  sim_.Run();
  EXPECT_EQ(network_.stats().sent(MessageType::kUser), 2u);
  EXPECT_EQ(network_.stats().sent(MessageType::kVote), 0u);
  network_.ResetStats();
  EXPECT_EQ(network_.stats().sent_total, 0u);
}

TEST_F(NetworkTest, PartitionDropsInFlightDeliveries) {
  // Regression: the message leaves at t=0 (delivery due t=5ms) and the link
  // is severed at t=1ms — the in-flight delivery must die at its delivery
  // instant, not sneak through a partition installed while it was in the
  // pipe.
  network_.Send(Make(0, 1));
  sim_.Schedule(Millis(1), [this] { network_.SeverLink(0, 1); });
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_.stats().dropped, 1u);
}

TEST_F(NetworkTest, PartitionHealedBeforeDeliveryStillDelivers) {
  // The packet was in the pipe and the pipe is whole again at its delivery
  // instant: sever at 1ms, heal at 3ms, delivery due at 5ms.
  network_.Send(Make(0, 1));
  sim_.Schedule(Millis(1), [this] { network_.SeverLink(0, 1); });
  sim_.Schedule(Millis(3), [this] { network_.HealLink(0, 1); });
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Millis(5));
  EXPECT_EQ(network_.stats().dropped, 0u);
}

TEST_F(NetworkTest, DestinationCrashMidFlightDropsDelivery) {
  network_.Send(Make(0, 1));
  sim_.Schedule(Millis(2), [this] { network_.SetNodeDown(1, true); });
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_.stats().dropped, 1u);
}

TEST_F(NetworkTest, FaultHookDropsAndDelays) {
  int seen = 0;
  network_.SetFaultHook([&](const Message& message) {
    FaultDecision decision;
    ++seen;
    if (seen == 1) decision.drop = true;          // first message: dropped
    if (seen == 2) decision.extra_delay = Millis(10);  // second: +10ms
    return decision;
  });
  network_.Send(Make(0, 1, 1));
  network_.Send(Make(0, 1, 2));
  network_.Send(Make(0, 1, 3));
  sim_.Run();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(network_.stats().dropped, 1u);
  // Third message (undelayed) arrives at 5ms, second at 15ms.
  EXPECT_EQ(received_[0].when, Millis(5));
  EXPECT_EQ(
      static_cast<const TestPayload*>(received_[0].message.payload.get())
          ->value,
      3);
  EXPECT_EQ(received_[1].when, Millis(15));
  EXPECT_EQ(
      static_cast<const TestPayload*>(received_[1].message.payload.get())
          ->value,
      2);
}

TEST(NetworkDropTest, DropProbabilityLosesRoughlyThatFraction) {
  sim::Simulator sim;
  NetworkOptions options;
  options.jitter = 0;
  options.drop_probability = 0.4;
  Network network(&sim, options, 7);
  int delivered = 0;
  network.RegisterNode(0, [](const Message&) {});
  network.RegisterNode(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 2000; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kUser;
    network.Send(std::move(m));
  }
  sim.Run();
  EXPECT_NEAR(delivered, 1200, 100);
  EXPECT_EQ(network.stats().dropped + delivered, 2000u);
}

TEST(NetworkJitterTest, JitterStaysWithinBound) {
  sim::Simulator sim;
  NetworkOptions options;
  options.base_latency = Millis(5);
  options.jitter = Micros(500);
  Network network(&sim, options, 3);
  std::vector<SimTime> arrivals;
  network.RegisterNode(0, [](const Message&) {});
  network.RegisterNode(1, [&](const Message&) { arrivals.push_back(sim.Now()); });
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kUser;
    network.Send(std::move(m));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (SimTime t : arrivals) {
    EXPECT_GE(t, Millis(5));
    EXPECT_LE(t, Millis(5) + Micros(500));
  }
}

TEST(MessageTypeTest, NamesAreThe2pcVocabulary) {
  EXPECT_STREQ(MessageTypeName(MessageType::kVoteRequest), "VOTE-REQ");
  EXPECT_STREQ(MessageTypeName(MessageType::kVote), "VOTE");
  EXPECT_STREQ(MessageTypeName(MessageType::kDecision), "DECISION");
}

}  // namespace
}  // namespace o2pc::net
