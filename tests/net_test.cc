// Unit tests for the simulated network: latency, jitter, loopback,
// severed links, drops, and the per-type counters behind experiment E6.

#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace o2pc::net {
namespace {

struct TestPayload : Payload {
  int value = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&sim_, Options(), 99) {
    network_.RegisterNode(0, [this](const Message& m) { Deliver(0, m); });
    network_.RegisterNode(1, [this](const Message& m) { Deliver(1, m); });
  }

  static NetworkOptions Options() {
    NetworkOptions options;
    options.base_latency = Millis(5);
    options.jitter = 0;
    options.loopback_latency = Micros(10);
    return options;
  }

  void Deliver(SiteId at, const Message& message) {
    received_.push_back({at, message, sim_.Now()});
  }

  Message Make(SiteId from, SiteId to, int value = 0) {
    auto payload = std::make_shared<TestPayload>();
    payload->value = value;
    Message m;
    m.from = from;
    m.to = to;
    m.type = MessageType::kUser;
    m.payload = payload;
    return m;
  }

  struct Received {
    SiteId at;
    Message message;
    SimTime when;
  };

  sim::Simulator sim_;
  Network network_;
  std::vector<Received> received_;
};

TEST_F(NetworkTest, DeliversWithBaseLatency) {
  network_.Send(Make(0, 1, 7));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 1u);
  EXPECT_EQ(received_[0].when, Millis(5));
  const auto* payload =
      static_cast<const TestPayload*>(received_[0].message.payload.get());
  EXPECT_EQ(payload->value, 7);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  network_.Send(Make(1, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Micros(10));
}

TEST_F(NetworkTest, SeveredLinkDropsBothDirections) {
  network_.SeverLink(0, 1);
  network_.Send(Make(0, 1));
  network_.Send(Make(1, 0));
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_.stats().dropped, 2u);
  EXPECT_EQ(network_.stats().sent_total, 2u);

  network_.HealLink(0, 1);
  network_.Send(Make(0, 1));
  sim_.Run();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, PerLinkLatencyOverride) {
  network_.SetLinkLatency(0, 1, Millis(50));
  network_.Send(Make(0, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Millis(50));
}

TEST_F(NetworkTest, CountsByType) {
  network_.Send(Make(0, 1));
  network_.Send(Make(1, 0));
  sim_.Run();
  EXPECT_EQ(network_.stats().sent(MessageType::kUser), 2u);
  EXPECT_EQ(network_.stats().sent(MessageType::kVote), 0u);
  network_.ResetStats();
  EXPECT_EQ(network_.stats().sent_total, 0u);
}

TEST_F(NetworkTest, PartitionDropsInFlightDeliveries) {
  // Regression: the message leaves at t=0 (delivery due t=5ms) and the link
  // is severed at t=1ms — the in-flight delivery must die at its delivery
  // instant, not sneak through a partition installed while it was in the
  // pipe.
  network_.Send(Make(0, 1));
  sim_.Schedule(Millis(1), [this] { network_.SeverLink(0, 1); });
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_.stats().dropped, 1u);
}

TEST_F(NetworkTest, PartitionHealedBeforeDeliveryStillDelivers) {
  // The packet was in the pipe and the pipe is whole again at its delivery
  // instant: sever at 1ms, heal at 3ms, delivery due at 5ms.
  network_.Send(Make(0, 1));
  sim_.Schedule(Millis(1), [this] { network_.SeverLink(0, 1); });
  sim_.Schedule(Millis(3), [this] { network_.HealLink(0, 1); });
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Millis(5));
  EXPECT_EQ(network_.stats().dropped, 0u);
}

TEST_F(NetworkTest, DestinationCrashMidFlightDropsDelivery) {
  network_.Send(Make(0, 1));
  sim_.Schedule(Millis(2), [this] { network_.SetNodeDown(1, true); });
  sim_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_.stats().dropped, 1u);
}

TEST_F(NetworkTest, FaultHookDropsAndDelays) {
  int seen = 0;
  network_.SetFaultHook([&](const Message&) {
    FaultDecision decision;
    ++seen;
    if (seen == 1) decision.drop = true;          // first message: dropped
    if (seen == 2) decision.extra_delay = Millis(10);  // second: +10ms
    return decision;
  });
  network_.Send(Make(0, 1, 1));
  network_.Send(Make(0, 1, 2));
  network_.Send(Make(0, 1, 3));
  sim_.Run();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(network_.stats().dropped, 1u);
  // Third message (undelayed) arrives at 5ms, second at 15ms.
  EXPECT_EQ(received_[0].when, Millis(5));
  EXPECT_EQ(
      static_cast<const TestPayload*>(received_[0].message.payload.get())
          ->value,
      3);
  EXPECT_EQ(received_[1].when, Millis(15));
  EXPECT_EQ(
      static_cast<const TestPayload*>(received_[1].message.payload.get())
          ->value,
      2);
}

TEST_F(NetworkTest, OneWayPartitionDropsExactlyTheDeadDirection) {
  network_.SeverLinkOneWay(0, 1);
  network_.Send(Make(0, 1, 1));  // dead direction: dropped
  network_.Send(Make(1, 0, 2));  // live direction: delivered
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 0u);
  EXPECT_EQ(
      static_cast<const TestPayload*>(received_[0].message.payload.get())
          ->value,
      2);
  EXPECT_EQ(network_.stats().dropped, 1u);
  EXPECT_TRUE(network_.Severed(0, 1));
  EXPECT_FALSE(network_.Severed(1, 0));

  network_.HealLinkOneWay(0, 1);
  network_.Send(Make(0, 1, 3));
  sim_.Run();
  EXPECT_EQ(received_.size(), 2u);
}

TEST_F(NetworkTest, OneWayPartitionKillsInFlightOnlyInTheDeadDirection) {
  // Both messages leave at t=0 (due t=5ms); the 0->1 direction dies at
  // t=1ms. The 0->1 packet must die at its delivery instant while the
  // 1->0 packet — in the pipe at the same moment — sails through.
  network_.Send(Make(0, 1, 1));
  network_.Send(Make(1, 0, 2));
  sim_.Schedule(Millis(1), [this] { network_.SeverLinkOneWay(0, 1); });
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 0u);
  EXPECT_EQ(network_.stats().dropped, 1u);
}

TEST_F(NetworkTest, GrayFactorInflatesLatencyExactly) {
  // jitter = 0, base 5ms: a gray factor of 10 means exactly 50ms, and the
  // inflation covers loopback too (the slow site is slow to itself).
  network_.SetGrayFactor(1, 10);
  network_.Send(Make(0, 1));
  network_.Send(Make(1, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].when, Micros(100));  // loopback 10us x 10
  EXPECT_EQ(received_[1].when, Millis(50));
  EXPECT_EQ(network_.GrayFactor(1), 10);

  // Clearing (factor <= 1) restores normal latency; no message was lost.
  received_.clear();
  network_.SetGrayFactor(1, 1);
  EXPECT_EQ(network_.GrayFactor(1), 1);
  network_.Send(Make(0, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  // Sent at t=50ms (end of the first drain), delivered one base latency on.
  EXPECT_EQ(received_[0].when, Millis(55));
  EXPECT_EQ(network_.stats().dropped, 0u);
}

TEST_F(NetworkTest, GrayFactorUsesSlowerEndpoint) {
  network_.SetGrayFactor(0, 10);
  network_.SetGrayFactor(1, 20);
  network_.Send(Make(0, 1));
  sim_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].when, Millis(100));  // 5ms x max(10, 20)
}

TEST_F(NetworkTest, FaultHookDuplicatesDeliverExtraCopies) {
  network_.SetFaultHook([](const Message&) {
    FaultDecision decision;
    decision.duplicates = 2;
    return decision;
  });
  network_.Send(Make(0, 1, 9));
  sim_.Run();
  ASSERT_EQ(received_.size(), 3u);
  for (const auto& r : received_) {
    EXPECT_EQ(r.when, Millis(5));  // jitter 0: all copies land together
    EXPECT_EQ(
        static_cast<const TestPayload*>(r.message.payload.get())->value, 9);
  }
  EXPECT_EQ(network_.stats().duplicated, 2u);
  EXPECT_EQ(network_.stats().sent_total, 1u);
}

TEST_F(NetworkTest, BlanketDuplicationHonorsTypeFilter) {
  NetworkOptions options = Options();
  options.duplicate_copies = 1;
  options.duplicate_filter = static_cast<int>(MessageType::kVote);
  sim::Simulator sim;
  Network network(&sim, options, 99);
  int user = 0;
  int vote = 0;
  network.RegisterNode(0, [](const Message&) {});
  network.RegisterNode(1, [&](const Message& m) {
    (m.type == MessageType::kVote ? vote : user)++;
  });
  Message u;
  u.from = 0;
  u.to = 1;
  u.type = MessageType::kUser;
  network.Send(std::move(u));
  Message v;
  v.from = 0;
  v.to = 1;
  v.type = MessageType::kVote;
  network.Send(std::move(v));
  sim.Run();
  EXPECT_EQ(user, 1);  // filter mismatch: delivered once
  EXPECT_EQ(vote, 2);  // filter match: original + 1 copy
  EXPECT_EQ(network.stats().duplicated, 1u);
}

TEST(NetworkReorderTest, ReorderWindowNeverExceedsTheBound) {
  sim::Simulator sim;
  NetworkOptions options;
  options.base_latency = Millis(5);
  options.jitter = 0;
  Network network(&sim, options, 11);
  network.SetFaultHook([](const Message&) {
    FaultDecision decision;
    decision.reorder_window = Millis(10);
    return decision;
  });
  struct Arrival {
    int value;
    SimTime when;
  };
  std::vector<Arrival> arrivals;
  network.RegisterNode(0, [](const Message&) {});
  network.RegisterNode(1, [&](const Message& m) {
    arrivals.push_back(
        {static_cast<const TestPayload*>(m.payload.get())->value, sim.Now()});
  });
  for (int i = 0; i < 200; ++i) {
    auto payload = std::make_shared<TestPayload>();
    payload->value = i;
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kUser;
    m.payload = payload;
    network.Send(std::move(m));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    // Bound: every delivery lands within [base, base + window].
    EXPECT_GE(arrivals[i].when, Millis(5));
    EXPECT_LE(arrivals[i].when, Millis(5) + Millis(10));
    if (arrivals[i].value != static_cast<int>(i)) reordered = true;
  }
  // The window actually shuffles: with 200 messages and a 10ms window the
  // seeded draw is guaranteed to move at least one out of send order.
  EXPECT_TRUE(reordered);
}

TEST(NetworkGrayDeterminismTest, GrayLatencyInflationIsDeterministicPerSeed) {
  // Two networks, same seed, same gray schedule, with jitter enabled: the
  // arrival sequences must be identical (gray windows replay bit-exactly).
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    NetworkOptions options;
    options.base_latency = Millis(5);
    options.jitter = Micros(500);
    Network network(&sim, options, seed);
    std::vector<SimTime> arrivals;
    network.RegisterNode(0, [](const Message&) {});
    network.RegisterNode(1,
                         [&](const Message&) { arrivals.push_back(sim.Now()); });
    network.SetGrayFactor(1, 25);
    for (int i = 0; i < 50; ++i) {
      Message m;
      m.from = 0;
      m.to = 1;
      m.type = MessageType::kUser;
      network.Send(std::move(m));
    }
    sim.Run();
    return arrivals;
  };
  const std::vector<SimTime> first = run(17);
  const std::vector<SimTime> second = run(17);
  ASSERT_EQ(first.size(), 50u);
  EXPECT_EQ(first, second);
  for (SimTime t : first) {
    // Inflation multiplies the whole draw: [5ms, 5.5ms] x 25.
    EXPECT_GE(t, Millis(5) * 25);
    EXPECT_LE(t, (Millis(5) + Micros(500)) * 25);
  }
  EXPECT_NE(first, run(23));  // a different seed draws different jitter
}

TEST(NetworkDropTest, DropProbabilityLosesRoughlyThatFraction) {
  sim::Simulator sim;
  NetworkOptions options;
  options.jitter = 0;
  options.drop_probability = 0.4;
  Network network(&sim, options, 7);
  int delivered = 0;
  network.RegisterNode(0, [](const Message&) {});
  network.RegisterNode(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 2000; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kUser;
    network.Send(std::move(m));
  }
  sim.Run();
  EXPECT_NEAR(delivered, 1200, 100);
  EXPECT_EQ(network.stats().dropped + delivered, 2000u);
}

TEST(NetworkJitterTest, JitterStaysWithinBound) {
  sim::Simulator sim;
  NetworkOptions options;
  options.base_latency = Millis(5);
  options.jitter = Micros(500);
  Network network(&sim, options, 3);
  std::vector<SimTime> arrivals;
  network.RegisterNode(0, [](const Message&) {});
  network.RegisterNode(1, [&](const Message&) { arrivals.push_back(sim.Now()); });
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kUser;
    network.Send(std::move(m));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (SimTime t : arrivals) {
    EXPECT_GE(t, Millis(5));
    EXPECT_LE(t, Millis(5) + Micros(500));
  }
}

TEST(MessageTypeTest, NamesAreThe2pcVocabulary) {
  EXPECT_STREQ(MessageTypeName(MessageType::kVoteRequest), "VOTE-REQ");
  EXPECT_STREQ(MessageTypeName(MessageType::kVote), "VOTE");
  EXPECT_STREQ(MessageTypeName(MessageType::kDecision), "DECISION");
}

}  // namespace
}  // namespace o2pc::net
