// Unit tests for the compensation executor: persistence (retry until
// commit), semantic skip of moot counter-operations, SG attribution.

#include "core/compensation.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace o2pc::core {
namespace {

class CompensationTest : public ::testing::Test {
 protected:
  CompensationTest() : db_(&sim_, Options()), executor_(&sim_, &db_, &ids_, &stats_) {
    db_.Preload(1, 100);
    db_.Preload(2, 200);
  }

  static local::LocalDb::Options Options() {
    local::LocalDb::Options options;
    options.site = 0;
    options.op_cost = Micros(10);
    options.lock_wait_timeout = Millis(5);
    return options;
  }

  sim::Simulator sim_;
  local::LocalDb db_;
  TxnIdAllocator ids_;
  metrics::StatsCollector stats_;
  CompensationExecutor executor_;
};

TEST_F(CompensationTest, RunsPlanAndCommits) {
  bool done = false;
  CompensationExecutor::Request request;
  request.forward_id = 42;
  request.plan = {local::Operation{local::OpType::kIncrement, 1, -30},
                  local::Operation{local::OpType::kIncrement, 2, 30}};
  request.done = [&] { done = true; };
  executor_.Run(std::move(request));
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(db_.table().Get(1)->value, 70);
  EXPECT_EQ(db_.table().Get(2)->value, 230);
  EXPECT_EQ(executor_.completed(), 1u);
  EXPECT_EQ(stats_.Count("compensations_committed"), 1u);
  // The CT's writes carry CT provenance.
  EXPECT_EQ(db_.table().Get(1)->writer.kind, TxnKind::kCompensating);
  EXPECT_EQ(db_.table().Get(1)->writer.id, 42u);
}

TEST_F(CompensationTest, SkipsMootCounterOps) {
  // Erase of an already-missing key and insert of an already-present key
  // are semantically moot: compensation proceeds past them.
  bool done = false;
  CompensationExecutor::Request request;
  request.forward_id = 7;
  request.plan = {local::Operation{local::OpType::kErase, 99, 0},     // gone
                  local::Operation{local::OpType::kInsert, 1, 5},     // exists
                  local::Operation{local::OpType::kIncrement, 2, -1}};
  request.done = [&] { done = true; };
  executor_.Run(std::move(request));
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(db_.table().Get(2)->value, 199);
  EXPECT_EQ(stats_.Count("compensation_ops_skipped"), 2u);
}

TEST_F(CompensationTest, RetriesThroughLockTimeoutUntilCommit) {
  // A local transaction camps on key 1; the CT times out, rolls back its
  // attempt, and retries until the blocker leaves (persistence of
  // compensation).
  const TxnId blocker = ids_.Next();
  db_.Begin(blocker, TxnKind::kLocal);
  bool blocker_has_lock = false;
  db_.Execute(blocker, {local::OpType::kIncrement, 1, 1},
              [&](Result<Value> r) { blocker_has_lock = r.ok(); });
  sim_.Run();
  ASSERT_TRUE(blocker_has_lock);

  bool done = false;
  CompensationExecutor::Request request;
  request.forward_id = 42;
  request.plan = {local::Operation{local::OpType::kIncrement, 1, -10}};
  request.retry_backoff = Millis(2);
  request.done = [&] { done = true; };
  executor_.Run(std::move(request));
  // Let a few CT attempts fail, then release the blocker.
  sim_.RunUntil(Millis(40));
  EXPECT_FALSE(done);
  EXPECT_GT(stats_.Count("compensation_retries"), 0u);
  db_.CommitLocal(blocker);
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(db_.table().Get(1)->value, 91);  // 100 + 1 (blocker) - 10 (CT)
}

TEST_F(CompensationTest, EmptyPlanCommitsImmediately) {
  bool done = false;
  CompensationExecutor::Request request;
  request.forward_id = 9;
  request.done = [&] { done = true; };
  executor_.Run(std::move(request));
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(executor_.completed(), 1u);
}

TEST_F(CompensationTest, AbortedAttemptLeavesNoTrace) {
  // While the CT is retrying, its failed attempts must not appear in the
  // SG nor leave partial effects.
  const TxnId blocker = ids_.Next();
  db_.Begin(blocker, TxnKind::kLocal);
  db_.Execute(blocker, {local::OpType::kIncrement, 2, 1},
              [](Result<Value>) {});
  sim_.Run();

  bool done = false;
  CompensationExecutor::Request request;
  request.forward_id = 42;
  // First op succeeds, second blocks on key 2 -> attempt rolls back.
  request.plan = {local::Operation{local::OpType::kIncrement, 1, -10},
                  local::Operation{local::OpType::kIncrement, 2, -10}};
  request.retry_backoff = Millis(2);
  request.done = [&] { done = true; };
  executor_.Run(std::move(request));
  sim_.RunUntil(Millis(20));
  ASSERT_FALSE(done);
  // The partial increment on key 1 was rolled back between attempts...
  // (the current attempt may hold it mid-flight; after the blocker leaves
  // and the CT commits, exactly one -10 must be applied).
  db_.CommitLocal(blocker);
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(db_.table().Get(1)->value, 90);
  EXPECT_EQ(db_.table().Get(2)->value, 191);
}

}  // namespace
}  // namespace o2pc::core
