// Unit tests for workload generation: spec validity, zero-sum balancing,
// abort injection rates, scenario builders.

#include "workload/generator.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace o2pc::workload {
namespace {

WorkloadOptions BaseOptions() {
  WorkloadOptions options;
  options.min_sites_per_txn = 2;
  options.max_sites_per_txn = 3;
  options.ops_per_subtxn = 4;
  options.seed = 77;
  return options;
}

TEST(GeneratorTest, SpecsAreValid) {
  WorkloadGenerator generator(4, 64, BaseOptions());
  for (int i = 0; i < 100; ++i) {
    core::GlobalTxnSpec spec = generator.NextGlobal();
    EXPECT_TRUE(spec.Valid());
    EXPECT_GE(spec.subtxns.size(), 2u);
    EXPECT_LE(spec.subtxns.size(), 3u);
    for (const core::SubtxnSpec& sub : spec.subtxns) {
      EXPECT_LT(sub.site, 4u);
      EXPECT_EQ(sub.ops.size(), 4u);
      for (const local::Operation& op : sub.ops) EXPECT_LT(op.key, 64u);
    }
  }
}

TEST(GeneratorTest, SemanticTxnsAreZeroSum) {
  WorkloadGenerator generator(4, 64, BaseOptions());
  for (int i = 0; i < 200; ++i) {
    core::GlobalTxnSpec spec = generator.NextGlobal();
    Value sum = 0;
    for (const core::SubtxnSpec& sub : spec.subtxns) {
      for (const local::Operation& op : sub.ops) {
        if (op.type == local::OpType::kIncrement) sum += op.value;
      }
    }
    EXPECT_EQ(sum, 0) << "txn " << i;
  }
}

TEST(GeneratorTest, GenericModeUsesWrites) {
  WorkloadOptions options = BaseOptions();
  options.semantic_ops = false;
  options.read_ratio = 0.0;
  WorkloadGenerator generator(2, 16, options);
  core::GlobalTxnSpec spec = generator.NextGlobal();
  for (const core::SubtxnSpec& sub : spec.subtxns) {
    for (const local::Operation& op : sub.ops) {
      EXPECT_EQ(op.type, local::OpType::kWrite);
    }
  }
}

TEST(GeneratorTest, AbortInjectionRate) {
  WorkloadOptions options = BaseOptions();
  options.vote_abort_probability = 0.5;
  WorkloadGenerator generator(4, 64, options);
  int injected = 0;
  for (int i = 0; i < 1000; ++i) {
    core::GlobalTxnSpec spec = generator.NextGlobal();
    for (const core::SubtxnSpec& sub : spec.subtxns) {
      if (sub.force_abort_vote) {
        ++injected;
        break;
      }
    }
  }
  EXPECT_NEAR(injected, 500, 60);
}

TEST(GeneratorTest, DeterministicForSeed) {
  WorkloadGenerator a(4, 64, BaseOptions());
  WorkloadGenerator b(4, 64, BaseOptions());
  for (int i = 0; i < 20; ++i) {
    core::GlobalTxnSpec sa = a.NextGlobal();
    core::GlobalTxnSpec sb = b.NextGlobal();
    ASSERT_EQ(sa.subtxns.size(), sb.subtxns.size());
    for (std::size_t s = 0; s < sa.subtxns.size(); ++s) {
      EXPECT_EQ(sa.subtxns[s].site, sb.subtxns[s].site);
      for (std::size_t o = 0; o < sa.subtxns[s].ops.size(); ++o) {
        EXPECT_EQ(sa.subtxns[s].ops[o].key, sb.subtxns[s].ops[o].key);
        EXPECT_EQ(sa.subtxns[s].ops[o].value, sb.subtxns[s].ops[o].value);
      }
    }
  }
}

TEST(GeneratorTest, LocalsAreSingleSiteAndZeroSum) {
  WorkloadGenerator generator(4, 64, BaseOptions());
  for (int i = 0; i < 100; ++i) {
    auto [site, ops] = generator.NextLocal();
    EXPECT_LT(site, 4u);
    Value sum = 0;
    for (const local::Operation& op : ops) {
      if (op.type == local::OpType::kIncrement) sum += op.value;
    }
    EXPECT_EQ(sum, 0);
  }
}

TEST(GeneratorTest, SingleSiteSystemClampsSitesPerTxn) {
  WorkloadGenerator generator(1, 16, BaseOptions());
  core::GlobalTxnSpec spec = generator.NextGlobal();
  EXPECT_EQ(spec.subtxns.size(), 1u);
}

TEST(SpecTest, ValidityRules) {
  core::GlobalTxnSpec empty;
  EXPECT_FALSE(empty.Valid());
  core::GlobalTxnSpec dup;
  dup.subtxns.push_back({0, {local::Operation{}}, false});
  dup.subtxns.push_back({0, {local::Operation{}}, false});
  EXPECT_FALSE(dup.Valid());  // duplicate sites
  core::GlobalTxnSpec no_ops;
  no_ops.subtxns.push_back({0, {}, false});
  EXPECT_FALSE(no_ops.Valid());
}

TEST(ScenarioTest, TransferShape) {
  core::GlobalTxnSpec spec = MakeTransfer(0, 1, 1, 2, 100);
  ASSERT_TRUE(spec.Valid());
  ASSERT_EQ(spec.subtxns.size(), 2u);
  EXPECT_EQ(spec.subtxns[0].ops[1].value, -100);
  EXPECT_EQ(spec.subtxns[1].ops[0].value, 100);
}

TEST(ScenarioTest, TripBookingRealActionOnlyWhenRequested) {
  core::GlobalTxnSpec with = MakeTripBooking(0, 1, 1, 2, 2, 3, true);
  core::GlobalTxnSpec without = MakeTripBooking(0, 1, 1, 2, 2, 3, false);
  auto has_real = [](const core::GlobalTxnSpec& spec) {
    for (const auto& sub : spec.subtxns) {
      for (const auto& op : sub.ops) {
        if (op.type == local::OpType::kRealAction) return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_real(with));
  EXPECT_FALSE(has_real(without));
}

TEST(ScenarioTest, OrderUsesInsert) {
  core::GlobalTxnSpec spec = MakeOrder(0, 500, 1, 7, 3);
  EXPECT_EQ(spec.subtxns[0].ops[0].type, local::OpType::kInsert);
  EXPECT_EQ(spec.subtxns[1].ops[1].value, -3);
}

}  // namespace
}  // namespace o2pc::workload
