#include "common/retry_policy.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"

namespace o2pc::common {
namespace {

std::vector<Duration> Delays(const RetryPolicyConfig& config,
                             std::uint64_t seed, int n) {
  RetryPolicy policy(config, Rng(seed));
  std::vector<Duration> out;
  for (int i = 0; i < n; ++i) out.push_back(policy.NextDelay());
  return out;
}

TEST(RetryPolicyTest, FixedIntervalWhenMultiplierIsOne) {
  RetryPolicyConfig config;
  config.initial = Millis(100);
  config.multiplier = 1.0;
  RetryPolicy policy(config, Rng(1));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.NextDelay(), Millis(100)) << "attempt " << i;
  }
}

TEST(RetryPolicyTest, ExponentialGrowthUpToCap) {
  RetryPolicyConfig config;
  config.initial = Millis(10);
  config.multiplier = 2.0;
  config.cap = Millis(100);
  RetryPolicy policy(config, Rng(1));
  EXPECT_EQ(policy.NextDelay(), Millis(10));
  EXPECT_EQ(policy.NextDelay(), Millis(20));
  EXPECT_EQ(policy.NextDelay(), Millis(40));
  EXPECT_EQ(policy.NextDelay(), Millis(80));
  EXPECT_EQ(policy.NextDelay(), Millis(100));  // capped
  EXPECT_EQ(policy.NextDelay(), Millis(100));  // stays capped
}

TEST(RetryPolicyTest, CapBelowInitialIsRaisedToInitial) {
  RetryPolicyConfig config;
  config.initial = Millis(50);
  config.multiplier = 2.0;
  config.cap = Millis(10);
  RetryPolicy policy(config, Rng(1));
  EXPECT_EQ(policy.NextDelay(), Millis(50));
  EXPECT_EQ(policy.NextDelay(), Millis(50));
}

TEST(RetryPolicyTest, UncappedGrowthDoesNotOverflow) {
  RetryPolicyConfig config;
  config.initial = Seconds(10);
  config.multiplier = 10.0;
  config.cap = 0;  // uncapped
  RetryPolicy policy(config, Rng(1));
  Duration last = 0;
  for (int i = 0; i < 40; ++i) {
    const Duration delay = policy.NextDelay();
    EXPECT_GT(delay, 0) << "attempt " << i;
    EXPECT_GE(delay, last) << "attempt " << i;
    last = delay;
  }
}

TEST(RetryPolicyTest, BudgetExhaustsAfterExactlyBudgetDelays) {
  RetryPolicyConfig config;
  config.initial = Millis(5);
  config.budget = 3;
  RetryPolicy policy(config, Rng(1));
  EXPECT_FALSE(policy.Exhausted());
  policy.NextDelay();
  policy.NextDelay();
  EXPECT_FALSE(policy.Exhausted());
  policy.NextDelay();
  EXPECT_TRUE(policy.Exhausted());
}

TEST(RetryPolicyTest, ZeroBudgetNeverExhausts) {
  RetryPolicyConfig config;
  config.initial = Millis(5);
  config.budget = 0;
  RetryPolicy policy(config, Rng(1));
  for (int i = 0; i < 100; ++i) policy.NextDelay();
  EXPECT_FALSE(policy.Exhausted());
}

TEST(RetryPolicyTest, ResetRestartsScheduleAndBudget) {
  RetryPolicyConfig config;
  config.initial = Millis(10);
  config.multiplier = 2.0;
  config.budget = 2;
  RetryPolicy policy(config, Rng(1));
  EXPECT_EQ(policy.NextDelay(), Millis(10));
  EXPECT_EQ(policy.NextDelay(), Millis(20));
  EXPECT_TRUE(policy.Exhausted());
  policy.Reset();
  EXPECT_FALSE(policy.Exhausted());
  EXPECT_EQ(policy.NextDelay(), Millis(10));
  EXPECT_EQ(policy.attempt(), 1);
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredFraction) {
  RetryPolicyConfig config;
  config.initial = Millis(100);
  config.multiplier = 1.0;
  config.jitter = 0.25;
  RetryPolicy policy(config, Rng(77));
  for (int i = 0; i < 200; ++i) {
    const Duration delay = policy.NextDelay();
    EXPECT_GE(delay, Millis(100));
    EXPECT_LE(delay, Millis(125));
  }
}

TEST(RetryPolicyTest, SameSeedSameSchedule) {
  // Replay safety: the jittered schedule is a pure function of the seed.
  RetryPolicyConfig config;
  config.initial = Millis(30);
  config.multiplier = 2.0;
  config.cap = Millis(500);
  config.jitter = 0.5;
  const std::vector<Duration> a = Delays(config, 1234, 16);
  const std::vector<Duration> b = Delays(config, 1234, 16);
  EXPECT_EQ(a, b);
}

TEST(RetryPolicyTest, DifferentSeedsDecorrelate) {
  RetryPolicyConfig config;
  config.initial = Millis(30);
  config.jitter = 0.5;
  const std::vector<Duration> a = Delays(config, 1, 16);
  const std::vector<Duration> b = Delays(config, 2, 16);
  EXPECT_NE(a, b);
}

TEST(RetryPolicyTest, DelayIsAlwaysPositive) {
  RetryPolicyConfig config;
  config.initial = 0;  // clamped to 1us
  config.multiplier = 0.5;  // clamped to 1.0
  RetryPolicy policy(config, Rng(1));
  EXPECT_GE(policy.NextDelay(), 1);
  EXPECT_GE(policy.NextDelay(), 1);
}

}  // namespace
}  // namespace o2pc::common
