// World-reuse allocation tests (DESIGN §16): the monotonic run arena's
// bump/rewind/ownership mechanics, and the steady-state gate — a recycled
// campaign run performs exactly zero system-heap allocations.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "campaign/fault_plan.h"
#include "campaign/runner.h"
#include "common/arena.h"
#include "exec/world_pool.h"

namespace o2pc {
namespace {

TEST(MonotonicArenaTest, BumpsAlignedAndRewindsInPlace) {
  alignas(64) static char backing[4096];
  common::MonotonicArena arena;
  arena.AdoptReservation(backing, sizeof(backing));
  EXPECT_EQ(arena.capacity(), sizeof(backing));
  EXPECT_EQ(arena.bytes_used(), 0u);

  void* a = arena.TryAllocate(10, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  void* b = arena.TryAllocate(1, 64);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_TRUE(arena.Owns(a));
  EXPECT_TRUE(arena.Owns(b));
  EXPECT_FALSE(arena.Owns(&arena));
  EXPECT_GT(arena.bytes_used(), 0u);

  const std::size_t used = arena.bytes_used();
  arena.Rewind();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GE(arena.high_water(), used);
  // Ownership is by reservation, not live offset: a stale pointer from
  // before the rewind still tests as arena-owned (its free is a no-op).
  EXPECT_TRUE(arena.Owns(a));

  // Exhaustion degrades to nullptr (caller falls back to the heap).
  EXPECT_EQ(arena.TryAllocate(sizeof(backing) + 1, 8), nullptr);
  void* c = arena.TryAllocate(sizeof(backing), 1);
  EXPECT_NE(c, nullptr);
  EXPECT_EQ(arena.TryAllocate(1, 1), nullptr);
}

campaign::CampaignRunConfig StandardRun(std::uint64_t seed) {
  campaign::CampaignRunConfig config;
  config.seed = seed;
  config.template_name = "mixed";
  config.plan = campaign::GeneratePlan("mixed", seed, config.num_sites);
  return config;
}

// The acceptance gate: after warmup (payload-pool freelists filled, process
// statics constructed), a campaign run inside a recycled world performs 0
// system-heap allocations — every allocation the run makes is a bump into
// the worker's rewound arena.
TEST(WorldPoolTest, SteadyStateRecycledRunPerformsZeroHeapAllocations) {
  if (!exec::WorldPool::Enabled() || !common::HeapAllocCountingEnabled()) {
    GTEST_SKIP() << "arena machinery unavailable (sanitizer build or "
                    "O2PC_RUN_ARENA=off)";
  }
  const campaign::CampaignRunConfig config = StandardRun(11);

  std::uint64_t expected_fingerprint = 0;
  for (int warmup = 0; warmup < 3; ++warmup) {
    exec::WorldPool::ScopedRun scope;
    ASSERT_TRUE(scope.recycled());
    expected_fingerprint = campaign::RunOne(config).fingerprint;
  }

  for (int i = 0; i < 3; ++i) {
    exec::WorldPool::ScopedRun scope;
    const campaign::CampaignRunResult result = campaign::RunOne(config);
    EXPECT_EQ(result.fingerprint, expected_fingerprint);
    EXPECT_EQ(scope.heap_allocs(), 0u) << "steady-state run " << i;
    EXPECT_GT(scope.arena_allocs(), 0u);
    EXPECT_GT(scope.arena_bytes(), 0u);
  }
}

// A run armed into a recycled world must compute byte-identical artifacts;
// the full 3-seed fresh-vs-recycled equality (journals + telemetry JSON)
// lives in determinism_golden_test.cc. Here: the cheap always-on variant.
TEST(WorldPoolTest, RecycledRunFingerprintMatchesFreshRun) {
  const campaign::CampaignRunConfig config = StandardRun(23);
  const campaign::CampaignRunResult fresh = campaign::RunOne(config);
  std::optional<exec::WorldPool::ScopedRun> scope(std::in_place);
  const campaign::CampaignRunResult armed = campaign::RunOne(config);
  EXPECT_EQ(armed.fingerprint, fresh.fingerprint);
  EXPECT_EQ(armed.journal, fresh.journal);
  scope.reset();
}

}  // namespace
}  // namespace o2pc
