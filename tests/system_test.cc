// End-to-end tests of the DistributedSystem facade: commit path, abort +
// compensation path, semantic atomicity, conservation invariants, and the
// correctness analysis hookup.

#include "core/system.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace o2pc::core {
namespace {

SystemOptions BaseOptions() {
  SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 32;
  options.initial_value = 1000;
  options.seed = 7;
  return options;
}

TEST(SystemTest, SingleGlobalTransactionCommits) {
  DistributedSystem system(BaseOptions());
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 100);
  bool done = false;
  GlobalResult result;
  system.SubmitGlobal(spec, [&](const GlobalResult& r) {
    done = true;
    result = r;
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.num_sites, 2);
  EXPECT_EQ(result.compensations, 0);
  // The money moved.
  EXPECT_EQ(system.db(0).table().Get(1)->value, 900);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1100);
}

TEST(SystemTest, AbortVoteTriggersCompensation) {
  SystemOptions options = BaseOptions();
  options.protocol.protocol = CommitProtocol::kOptimistic;
  DistributedSystem system(options);
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 100);
  // The *second* site votes abort; the first has locally committed by then
  // and must be compensated.
  spec.subtxns[1].force_abort_vote = true;
  bool done = false;
  GlobalResult result;
  system.SubmitGlobal(spec, [&](const GlobalResult& r) {
    done = true;
    result = r;
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  EXPECT_FALSE(result.restartable);  // a genuine vote-abort
  EXPECT_EQ(result.compensations, 1);
  // Semantic atomicity: both balances are back to their initial values.
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1000);
  EXPECT_EQ(system.stats().Count("compensations_committed"), 1u);
}

TEST(SystemTest, TwoPhaseCommitAbortRollsBackWithoutCompensation) {
  SystemOptions options = BaseOptions();
  options.protocol.protocol = CommitProtocol::kTwoPhaseCommit;
  DistributedSystem system(options);
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 100);
  spec.subtxns[1].force_abort_vote = true;
  bool done = false;
  GlobalResult result;
  system.SubmitGlobal(spec, [&](const GlobalResult& r) {
    done = true;
    result = r;
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.compensations, 0);  // 2PC never exposes, never compensates
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1000);
}

TEST(SystemTest, ConservationAcrossCommitsAndAborts) {
  SystemOptions options = BaseOptions();
  DistributedSystem system(options);
  const Value before = system.TotalValue();
  for (int i = 0; i < 10; ++i) {
    GlobalTxnSpec spec =
        workload::MakeTransfer(static_cast<SiteId>(i % 3), i % 8,
                               static_cast<SiteId>((i + 1) % 3), (i + 3) % 8,
                               10 + i);
    if (i % 3 == 0) spec.subtxns[1].force_abort_vote = true;
    system.SubmitGlobal(spec);
  }
  system.Run();
  EXPECT_EQ(system.TotalValue(), before);
  EXPECT_EQ(system.globals_finished(), 10u);
}

TEST(SystemTest, LocalTransactionsRunAndCommit) {
  DistributedSystem system(BaseOptions());
  bool ok = false;
  system.SubmitLocal(0,
                     {local::Operation{local::OpType::kIncrement, 3, 5},
                      local::Operation{local::OpType::kIncrement, 4, -5}},
                     [&](bool committed) { ok = committed; });
  system.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(system.db(0).table().Get(3)->value, 1005);
  EXPECT_EQ(system.db(0).table().Get(4)->value, 995);
}

TEST(SystemTest, CommittedHistoryIsCorrectAndSerializable) {
  DistributedSystem system(BaseOptions());
  for (int i = 0; i < 20; ++i) {
    system.SubmitGlobal(workload::MakeTransfer(
        static_cast<SiteId>(i % 3), i % 5, static_cast<SiteId>((i + 1) % 3),
        (i + 2) % 5, 1));
  }
  system.Run();
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
  // No aborts happened, so the criterion collapses to serializability.
  EXPECT_TRUE(report.fully_serializable) << report.Summary();
  EXPECT_TRUE(report.atomic_compensation);
}

TEST(SystemTest, MessageCountsMatchTwoPhaseCommitPattern) {
  // O2PC must use exactly the standard message vocabulary: per committed
  // 2-site transaction: 2 invokes, 2 acks, 2 vote-reqs, 2 votes,
  // 2 decisions, 2 decision-acks.
  DistributedSystem system(BaseOptions());
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));
  system.Run();
  const net::NetworkStats& stats = system.network().stats();
  EXPECT_EQ(stats.sent(net::MessageType::kSubtxnInvoke), 2u);
  EXPECT_EQ(stats.sent(net::MessageType::kSubtxnAck), 2u);
  EXPECT_EQ(stats.sent(net::MessageType::kVoteRequest), 2u);
  EXPECT_EQ(stats.sent(net::MessageType::kVote), 2u);
  EXPECT_EQ(stats.sent(net::MessageType::kDecision), 2u);
  EXPECT_EQ(stats.sent(net::MessageType::kDecisionAck), 2u);
  EXPECT_EQ(stats.sent_total, 12u);
}

TEST(SystemTest, RealActionDeferredUntilCommitDecision) {
  SystemOptions options = BaseOptions();
  DistributedSystem system(options);
  GlobalTxnSpec spec =
      workload::MakeTripBooking(0, 1, 1, 2, 2, 3, /*print_ticket=*/true);
  bool done = false;
  GlobalResult result;
  system.SubmitGlobal(spec, [&](const GlobalResult& r) {
    done = true;
    result = r;
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.db(0).real_actions_performed(), 1u);
}

TEST(SystemTest, RealActionNotPerformedOnAbort) {
  DistributedSystem system(BaseOptions());
  GlobalTxnSpec spec =
      workload::MakeTripBooking(0, 1, 1, 2, 2, 3, /*print_ticket=*/true);
  spec.subtxns[2].force_abort_vote = true;
  system.SubmitGlobal(spec);
  system.Run();
  EXPECT_EQ(system.db(0).real_actions_performed(), 0u);
  // Inventory fully restored at every site.
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1000);
  EXPECT_EQ(system.db(2).table().Get(3)->value, 1000);
}

TEST(SystemTest, OrderScenarioInsertCompensatedByDelete) {
  DistributedSystem system(BaseOptions());
  const DataKey order_key = 500;  // not preloaded
  GlobalTxnSpec spec = workload::MakeOrder(0, order_key, 1, 7, 10);
  spec.subtxns[1].force_abort_vote = true;
  system.SubmitGlobal(spec);
  system.Run();
  // The inserted order row was compensated away.
  EXPECT_FALSE(system.db(0).table().Contains(order_key));
  EXPECT_EQ(system.db(1).table().Get(7)->value, 1000);
}

}  // namespace
}  // namespace o2pc::core
