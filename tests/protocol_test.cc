// Integration tests of the commit layer's failure paths: coordinator
// crash + recovery (the blocking window), lossy-network retransmission,
// compensation persistence under contention, and the early lock release
// that distinguishes O2PC from 2PC.

#include <gtest/gtest.h>

#include "core/system.h"
#include "harness/experiment.h"
#include "workload/scenarios.h"

namespace o2pc::core {
namespace {

SystemOptions BaseOptions() {
  SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 16;
  options.seed = 5;
  return options;
}

/// Max exclusive-lock hold time across all sites.
Duration MaxXHold(DistributedSystem& system, int num_sites) {
  Duration max_hold = 0;
  for (int i = 0; i < num_sites; ++i) {
    for (Duration d :
         system.db(static_cast<SiteId>(i)).lock_manager().stats()
             .exclusive_hold) {
      max_hold = std::max(max_hold, d);
    }
  }
  return max_hold;
}

TEST(CoordinatorCrashTest, DecisionDelayedButOutcomePreserved) {
  SystemOptions options = BaseOptions();
  options.protocol.coordinator_crash_probability = 1.0;  // always crash
  options.protocol.coordinator_recovery_delay = Millis(200);
  DistributedSystem system(options);
  bool committed = false;
  SimTime finish = 0;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10),
                      [&](const GlobalResult& r) {
                        committed = r.committed;
                        finish = r.finish_time;
                      });
  system.Run();
  EXPECT_TRUE(committed);  // crash-after-log: same outcome, only delayed
  EXPECT_GE(finish, Millis(200));
  EXPECT_EQ(system.stats().Count("coordinator_crashes"), 1u);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 990);
}

TEST(CoordinatorCrashTest, TwoPcBlocksThroughCrashO2pcDoesNot) {
  // The headline claim (E4 in miniature): during the crash window a 2PC
  // participant sits in prepared state holding exclusive locks; an O2PC
  // participant has already released everything.
  const Duration recovery = Millis(500);
  Duration hold_2pc = 0;
  Duration hold_o2pc = 0;
  for (CommitProtocol protocol :
       {CommitProtocol::kTwoPhaseCommit, CommitProtocol::kOptimistic}) {
    SystemOptions options = BaseOptions();
    options.protocol.protocol = protocol;
    options.protocol.coordinator_crash_probability = 1.0;
    options.protocol.coordinator_recovery_delay = recovery;
    // Keep the resend timer from interfering with the measurement.
    options.protocol.resend_timeout = Seconds(10);
    DistributedSystem system(options);
    system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));
    system.Run();
    const Duration hold = MaxXHold(system, options.num_sites);
    if (protocol == CommitProtocol::kTwoPhaseCommit) {
      hold_2pc = hold;
    } else {
      hold_o2pc = hold;
    }
  }
  EXPECT_GE(hold_2pc, recovery);          // blocked through the outage
  EXPECT_LT(hold_o2pc, Millis(50));       // released at vote time
}

TEST(LossyNetworkTest, RetransmissionDrivesProtocolToCompletion) {
  SystemOptions options = BaseOptions();
  options.network.drop_probability = 0.3;
  options.protocol.resend_timeout = Millis(30);
  options.protocol.max_resends = 200;
  DistributedSystem system(options);
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    system.SubmitGlobal(
        workload::MakeTransfer(0, static_cast<DataKey>(i), 1,
                               static_cast<DataKey>(i + 1), 1),
        [&](const GlobalResult& r) {
          if (r.committed) ++committed;
        });
  }
  system.Run();
  EXPECT_EQ(committed, 10);
  EXPECT_GT(system.network().stats().dropped, 0u);
}

TEST(CompensationPersistenceTest, CtRetriesThroughContentionUntilCommit) {
  SystemOptions options = BaseOptions();
  options.keys_per_site = 4;  // heavy contention on the compensated keys
  DistributedSystem system(options);
  // A transaction that will abort and need compensation at site 0.
  GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 50);
  spec.subtxns[1].force_abort_vote = true;
  system.SubmitGlobal(spec);
  // Competing local traffic on the same key.
  for (int i = 0; i < 30; ++i) {
    system.SubmitLocal(0, {local::Operation{local::OpType::kIncrement, 1, 1},
                           local::Operation{local::OpType::kIncrement, 2, -1}});
  }
  system.Run();
  EXPECT_EQ(system.stats().Count("compensations_committed"), 1u);
  // Initial 1000 - 50 (debit) + 50 (compensation) + 30 (locals) = 1030.
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1030);
}

TEST(EarlyReleaseTest, O2pcHoldsLocksForLessTimeThanTwoPc) {
  // Failure-free run: 2PC holds X locks across the full decision round
  // trip; O2PC releases them at the vote.
  Duration hold_2pc = 0;
  Duration hold_o2pc = 0;
  for (CommitProtocol protocol :
       {CommitProtocol::kTwoPhaseCommit, CommitProtocol::kOptimistic}) {
    SystemOptions options = BaseOptions();
    options.protocol.protocol = protocol;
    options.network.base_latency = Millis(20);
    options.network.jitter = 0;
    DistributedSystem system(options);
    system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));
    system.Run();
    const Duration hold = MaxXHold(system, options.num_sites);
    if (protocol == CommitProtocol::kTwoPhaseCommit) {
      hold_2pc = hold;
    } else {
      hold_o2pc = hold;
    }
  }
  // The 2PC hold spans roughly one extra network round trip (VOTE +
  // DECISION = 2 * 20ms, minus sub-millisecond processing offsets).
  EXPECT_GE(hold_2pc, hold_o2pc + Millis(35));
}

TEST(RealActionTest, RealActionSiteKeepsLocksEvenUnderO2pc) {
  SystemOptions options = BaseOptions();
  options.num_sites = 3;
  options.network.base_latency = Millis(20);
  options.network.jitter = 0;
  DistributedSystem system(options);
  system.SubmitGlobal(
      workload::MakeTripBooking(0, 1, 1, 2, 2, 3, /*print_ticket=*/true));
  system.Run();
  // The airline site (real action) behaves like 2PC: its exclusive hold
  // spans the decision round; the other sites released at the vote.
  Duration airline_hold = 0;
  for (Duration d : system.db(0).lock_manager().stats().exclusive_hold) {
    airline_hold = std::max(airline_hold, d);
  }
  Duration hotel_hold = 0;
  for (Duration d : system.db(1).lock_manager().stats().exclusive_hold) {
    hotel_hold = std::max(hotel_hold, d);
  }
  EXPECT_GT(airline_hold, hotel_hold + Millis(30));
}

TEST(RejectionRetryTest, MixedObservationRejectedUntilMarkRetires) {
  // Site 1 is undone w.r.t. an aborted transaction. A newcomer spanning
  // site 2 (unmarked) and then site 1 violates P1's uniformity and is
  // rejected — *strictly*, even though the aborted transaction never ran
  // at site 2, because danger can flow transitively through readers of the
  // exposed updates at third sites. Once witness traffic satisfies UDUM1
  // and the mark retires, a fresh incarnation commits.
  SystemOptions options = BaseOptions();
  options.num_sites = 3;
  options.protocol.governance = GovernancePolicy::kP1;
  // The mixed transaction never talks to site 0, so piggyback gossip alone
  // cannot ship site 0's witness fact to site 1; the oracle directory
  // stands in for the background traffic a real system would have.
  options.protocol.directory = DirectoryMode::kOracle;
  DistributedSystem system(options);
  GlobalTxnSpec aborting = workload::MakeTransfer(0, 1, 1, 2, 10);
  aborting.subtxns[1].force_abort_vote = true;
  system.SubmitGlobal(aborting);
  system.Run();
  ASSERT_FALSE(system.participant(1).marks().undone.empty());

  GlobalTxnSpec mixed = workload::MakeTransfer(2, 1, 1, 2, 5);
  bool committed = false;
  system.SubmitGlobal(mixed, [&](const GlobalResult& r) {
    committed = r.committed;
  });
  // While the mark is in force, the mixed transaction only collects
  // rejections.
  system.simulator().RunUntil(system.simulator().Now() + Millis(30));
  EXPECT_GT(system.stats().Count("r1_rejections"), 0u);
  EXPECT_FALSE(committed);

  // Witness traffic at the aborted transaction's execution sites retires
  // the mark; a restart of the mixed transaction then commits.
  system.SubmitLocal(0, {local::Operation{local::OpType::kIncrement, 1, 1},
                         local::Operation{local::OpType::kIncrement, 2, -1}});
  system.SubmitLocal(1, {local::Operation{local::OpType::kIncrement, 1, 1},
                         local::Operation{local::OpType::kIncrement, 2, -1}});
  system.Run();
  EXPECT_TRUE(committed);
  EXPECT_GT(system.stats().Count("udum_unmarks"), 0u);
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
}

TEST(RejectionRetryTest, StraddlingTransactionIsRejectedAndRestarts) {
  // Transaction B enters site 0 before A's rollback there, then queues
  // behind A's lock at site 1 and drains *after* A's rollback. B now sits
  // on both sides of CT_A — the straddle that builds a regular cycle. The
  // revalidation/backward checks must reject the incarnation; the restart
  // (which sees the marks consistently) commits.
  SystemOptions options = BaseOptions();
  options.protocol.governance = GovernancePolicy::kP1;
  DistributedSystem system(options);

  GlobalTxnSpec a;  // writes key 5 at both sites; votes abort at site 1
  a.subtxns.push_back(
      {0, {local::Operation{local::OpType::kIncrement, 5, 1}}, false});
  a.subtxns.push_back(
      {1, {local::Operation{local::OpType::kIncrement, 5, -1}}, true});
  GlobalTxnSpec b;  // disjoint key at site 0, contended key at site 1
  b.subtxns.push_back(
      {0, {local::Operation{local::OpType::kIncrement, 6, 1}}, false});
  b.subtxns.push_back(
      {1, {local::Operation{local::OpType::kIncrement, 5, -1},
           local::Operation{local::OpType::kIncrement, 6, 0},
           local::Operation{local::OpType::kIncrement, 5, 1}},
       false});
  bool a_done = false;
  bool b_committed = false;
  system.SubmitGlobal(a, [&](const GlobalResult&) { a_done = true; });
  system.SubmitGlobal(b, [&](const GlobalResult& r) {
    b_committed = r.committed;
  });
  system.Run();
  EXPECT_TRUE(a_done);
  EXPECT_TRUE(b_committed);
  // The straddling incarnation was caught by a marking check at least
  // once (rejection or revalidation failure) and restarted.
  EXPECT_GT(system.stats().Count("r1_rejections") +
                system.stats().Count("r1_revalidation_failures") +
                system.stats().Count("global_restarts"),
            0u);
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
}

TEST(GlobalRestartTest, DistributedDeadlockResolvedByTimeoutAndRestart) {
  SystemOptions options = BaseOptions();
  options.lock_wait_timeout = Millis(20);
  DistributedSystem system(options);
  // Two transactions locking (site0:key1, site1:key1) in opposite orders.
  GlobalTxnSpec a;
  a.subtxns.push_back(
      {0, {local::Operation{local::OpType::kIncrement, 1, 1}}, false});
  a.subtxns.push_back(
      {1, {local::Operation{local::OpType::kIncrement, 1, -1}}, false});
  GlobalTxnSpec b;
  b.subtxns.push_back(
      {1, {local::Operation{local::OpType::kIncrement, 1, 1}}, false});
  b.subtxns.push_back(
      {0, {local::Operation{local::OpType::kIncrement, 1, -1}}, false});
  int committed = 0;
  auto on_done = [&](const GlobalResult& r) {
    if (r.committed) ++committed;
  };
  system.SubmitGlobal(a, on_done);
  system.SubmitGlobal(b, on_done);
  system.Run();
  EXPECT_EQ(committed, 2);  // both eventually commit via restart
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
  EXPECT_EQ(system.db(1).table().Get(1)->value, 1000);
}

}  // namespace
}  // namespace o2pc::core
