// Unit tests for the strict-2PL lock manager: grant/queue semantics,
// upgrades, FIFO fairness, the early-release entry points O2PC relies on,
// deadlock detection with youngest-victim, and hold/wait statistics.

#include "lock/lock_manager.h"

#include <gtest/gtest.h>

#include "lock/waits_for.h"
#include "sim/simulator.h"

namespace o2pc::lock {
namespace {

class LockTest : public ::testing::Test {
 protected:
  LockTest() : locks_(&sim_, LockManager::Options{}) {}

  /// Issues an acquire and returns a pointer to a slot that receives the
  /// grant status (empty until the callback runs).
  std::shared_ptr<std::optional<Status>> Acquire(TxnId txn, DataKey key,
                                                 LockMode mode) {
    auto slot = std::make_shared<std::optional<Status>>();
    locks_.Acquire(txn, key, mode, [slot](const Status& s) { *slot = s; });
    return slot;
  }

  sim::Simulator sim_;
  LockManager locks_;
};

TEST_F(LockTest, ExclusiveGrantsImmediately) {
  auto granted = Acquire(1, 10, LockMode::kExclusive);
  sim_.Run();
  ASSERT_TRUE(granted->has_value());
  EXPECT_TRUE((*granted)->ok());
  EXPECT_TRUE(locks_.Holds(1, 10, LockMode::kExclusive));
}

TEST_F(LockTest, SharedLocksCoexist) {
  auto a = Acquire(1, 10, LockMode::kShared);
  auto b = Acquire(2, 10, LockMode::kShared);
  sim_.Run();
  EXPECT_TRUE((*a)->ok());
  EXPECT_TRUE((*b)->ok());
  EXPECT_EQ(locks_.QueueLength(10), 2u);
}

TEST_F(LockTest, ExclusiveWaitsForShared) {
  auto reader = Acquire(1, 10, LockMode::kShared);
  auto writer = Acquire(2, 10, LockMode::kExclusive);
  sim_.Run();
  EXPECT_TRUE((*reader)->ok());
  EXPECT_FALSE(writer->has_value());
  EXPECT_TRUE(locks_.IsWaiting(2));
  locks_.Release(1, 10);
  sim_.Run();
  ASSERT_TRUE(writer->has_value());
  EXPECT_TRUE((*writer)->ok());
}

TEST_F(LockTest, FifoFairnessSharedBehindExclusiveWaits) {
  Acquire(1, 10, LockMode::kShared);
  auto writer = Acquire(2, 10, LockMode::kExclusive);
  auto late_reader = Acquire(3, 10, LockMode::kShared);
  sim_.Run();
  // The late reader must not jump the queued writer.
  EXPECT_FALSE(late_reader->has_value());
  locks_.Release(1, 10);
  sim_.Run();
  EXPECT_TRUE(writer->has_value());
  EXPECT_FALSE(late_reader->has_value());
  locks_.Release(2, 10);
  sim_.Run();
  EXPECT_TRUE(late_reader->has_value());
}

TEST_F(LockTest, ReentrantAcquireIsImmediate) {
  Acquire(1, 10, LockMode::kExclusive);
  auto again = Acquire(1, 10, LockMode::kShared);
  sim_.Run();
  EXPECT_TRUE((*again)->ok());
  EXPECT_EQ(locks_.stats().immediate_grants, 2u);
}

TEST_F(LockTest, UpgradeWhenSoleHolder) {
  Acquire(1, 10, LockMode::kShared);
  sim_.Run();
  auto upgrade = Acquire(1, 10, LockMode::kExclusive);
  sim_.Run();
  EXPECT_TRUE((*upgrade)->ok());
  EXPECT_TRUE(locks_.Holds(1, 10, LockMode::kExclusive));
}

TEST_F(LockTest, UpgradeWaitsForOtherReadersAndHasPriority) {
  Acquire(1, 10, LockMode::kShared);
  Acquire(2, 10, LockMode::kShared);
  sim_.Run();
  auto upgrade = Acquire(1, 10, LockMode::kExclusive);
  auto writer = Acquire(3, 10, LockMode::kExclusive);
  sim_.Run();
  EXPECT_FALSE(upgrade->has_value());
  locks_.Release(2, 10);
  sim_.Run();
  // The upgrade wins over the queued writer.
  ASSERT_TRUE(upgrade->has_value());
  EXPECT_TRUE((*upgrade)->ok());
  EXPECT_FALSE(writer->has_value());
  locks_.ReleaseAll(1);
  sim_.Run();
  EXPECT_TRUE(writer->has_value());
}

TEST_F(LockTest, ReleaseAllFreesEverything) {
  Acquire(1, 10, LockMode::kExclusive);
  Acquire(1, 11, LockMode::kShared);
  sim_.Run();
  EXPECT_EQ(locks_.HeldKeys(1).size(), 2u);
  locks_.ReleaseAll(1);
  EXPECT_TRUE(locks_.HeldKeys(1).empty());
  EXPECT_FALSE(locks_.Holds(1, 10, LockMode::kShared));
}

TEST_F(LockTest, ReleaseSharedKeepsExclusive) {
  // The distributed-2PL refinement: shared locks go at VOTE-REQ, exclusive
  // locks stay until the decision.
  Acquire(1, 10, LockMode::kExclusive);
  Acquire(1, 11, LockMode::kShared);
  sim_.Run();
  locks_.ReleaseShared(1);
  EXPECT_TRUE(locks_.Holds(1, 10, LockMode::kExclusive));
  EXPECT_FALSE(locks_.Holds(1, 11, LockMode::kShared));
}

TEST_F(LockTest, CancelWaitsFailsPendingRequest) {
  Acquire(1, 10, LockMode::kExclusive);
  auto waiter = Acquire(2, 10, LockMode::kExclusive);
  sim_.Run();
  locks_.CancelWaits(2, Status::Aborted("test"));
  sim_.Run();
  ASSERT_TRUE(waiter->has_value());
  EXPECT_TRUE((*waiter)->IsAborted());
  EXPECT_FALSE(locks_.IsWaiting(2));
}

TEST_F(LockTest, DeadlockDetectedAndYoungestAborted) {
  // T1 holds 10, T2 holds 11; then T1 wants 11 and T2 wants 10.
  Acquire(1, 10, LockMode::kExclusive);
  Acquire(2, 11, LockMode::kExclusive);
  sim_.Run();
  auto t1_wait = Acquire(1, 11, LockMode::kExclusive);
  sim_.Run();
  auto t2_wait = Acquire(2, 10, LockMode::kExclusive);
  sim_.Run();
  // T2 is younger (larger id) and must be the victim.
  ASSERT_TRUE(t2_wait->has_value());
  EXPECT_TRUE((*t2_wait)->IsDeadlock());
  EXPECT_FALSE(t1_wait->has_value());
  EXPECT_EQ(locks_.stats().deadlocks, 1u);
  // Once the victim releases, T1 proceeds.
  locks_.ReleaseAll(2);
  sim_.Run();
  ASSERT_TRUE(t1_wait->has_value());
  EXPECT_TRUE((*t1_wait)->ok());
}

TEST_F(LockTest, ThreeWayDeadlock) {
  Acquire(1, 10, LockMode::kExclusive);
  Acquire(2, 11, LockMode::kExclusive);
  Acquire(3, 12, LockMode::kExclusive);
  sim_.Run();
  auto w1 = Acquire(1, 11, LockMode::kExclusive);
  auto w2 = Acquire(2, 12, LockMode::kExclusive);
  sim_.Run();
  auto w3 = Acquire(3, 10, LockMode::kExclusive);
  sim_.Run();
  ASSERT_TRUE(w3->has_value());  // youngest in the cycle
  EXPECT_TRUE((*w3)->IsDeadlock());
  EXPECT_FALSE(w1->has_value());
  EXPECT_FALSE(w2->has_value());
}

TEST_F(LockTest, HoldTimeSamplesRecorded) {
  Acquire(1, 10, LockMode::kExclusive);
  sim_.Run();
  sim_.Schedule(500, [this] { locks_.Release(1, 10); });
  sim_.Run();
  ASSERT_EQ(locks_.stats().exclusive_hold.size(), 1u);
  EXPECT_EQ(locks_.stats().exclusive_hold[0], 500);
}

TEST_F(LockTest, WaitTimeSamplesRecorded) {
  Acquire(1, 10, LockMode::kExclusive);
  auto waiter = Acquire(2, 10, LockMode::kShared);
  sim_.Run();
  sim_.Schedule(300, [this] { locks_.Release(1, 10); });
  sim_.Run();
  ASSERT_TRUE(waiter->has_value());
  ASSERT_EQ(locks_.stats().wait_time.size(), 1u);
  EXPECT_EQ(locks_.stats().wait_time[0], 300);
}

TEST(LockNoSamplesTest, RecordSamplesOffKeepsAllSampleVectorsEmpty) {
  sim::Simulator sim;
  LockManager::Options options;
  options.record_samples = false;
  LockManager locks(&sim, options);
  auto acquire = [&](TxnId txn, DataKey key, LockMode mode) {
    locks.Acquire(txn, key, mode, [](const Status&) {});
  };
  // Exercise every sampling site: exclusive hold, shared hold, a granted
  // wait, and both upgrade paths (sole-holder immediate and queued).
  acquire(1, 10, LockMode::kExclusive);
  acquire(2, 10, LockMode::kShared);  // waits, then is granted
  sim.Run();
  sim.Schedule(300, [&] { locks.Release(1, 10); });
  sim.Run();
  acquire(2, 10, LockMode::kExclusive);  // sole-holder upgrade
  sim.Run();
  acquire(3, 11, LockMode::kShared);
  acquire(4, 11, LockMode::kShared);
  sim.Run();
  acquire(3, 11, LockMode::kExclusive);  // queued upgrade
  sim.Run();
  locks.Release(4, 11);
  sim.Run();
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  locks.ReleaseAll(3);
  locks.ReleaseAll(4);
  EXPECT_GE(locks.stats().acquires, 5u);
  EXPECT_GE(locks.stats().waits, 2u);
  EXPECT_TRUE(locks.stats().exclusive_hold.empty());
  EXPECT_TRUE(locks.stats().shared_hold.empty());
  EXPECT_TRUE(locks.stats().wait_time.empty());
  // With sampling off, the lazy reserve must never fire either.
  EXPECT_EQ(locks.stats().exclusive_hold.capacity(), 0u);
  EXPECT_EQ(locks.stats().shared_hold.capacity(), 0u);
  EXPECT_EQ(locks.stats().wait_time.capacity(), 0u);
}

TEST(WaitsForTest, FindsSimpleCycle) {
  WaitsForGraph graph;
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 1);
  EXPECT_EQ(graph.FindCycleFrom(1).size(), 2u);
  EXPECT_TRUE(graph.HasAnyCycle());
}

TEST(WaitsForTest, NoCycleInDag) {
  WaitsForGraph graph;
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  graph.AddEdge(1, 3);
  EXPECT_TRUE(graph.FindCycleFrom(1).empty());
  EXPECT_FALSE(graph.HasAnyCycle());
}

TEST(WaitsForTest, SelfEdgesIgnored) {
  WaitsForGraph graph;
  graph.AddEdge(1, 1);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(WaitsForTest, ClearWaiterBreaksCycle) {
  WaitsForGraph graph;
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  graph.AddEdge(3, 1);
  EXPECT_TRUE(graph.HasAnyCycle());
  graph.ClearWaiter(2);
  EXPECT_FALSE(graph.HasAnyCycle());
}

TEST(WaitsForTest, RemoveTxnDropsBothDirections) {
  WaitsForGraph graph;
  graph.AddEdge(1, 2);
  graph.AddEdge(3, 1);
  graph.RemoveTxn(1);
  EXPECT_EQ(graph.edge_count(), 0u);
}

}  // namespace
}  // namespace o2pc::lock
