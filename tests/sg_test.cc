// Unit tests for the serialization-graph toolkit, including executable
// reproductions of the paper's Figure 1 (regular cycles) and Example 1
// (minimal representations dropping interior transactions).

#include <gtest/gtest.h>

#include "sg/conflict_tracker.h"
#include "sg/correctness.h"
#include "sg/regular_cycle.h"
#include "sg/serialization_graph.h"

namespace o2pc::sg {
namespace {

TEST(SerializationGraphTest, AddAndQueryEdges) {
  SerializationGraph graph;
  graph.AddEdge(GlobalNode(1), GlobalNode(2), 0);
  EXPECT_TRUE(graph.HasEdge(GlobalNode(1), GlobalNode(2)));
  EXPECT_FALSE(graph.HasEdge(GlobalNode(2), GlobalNode(1)));
  EXPECT_EQ(graph.nodes().size(), 2u);
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(SerializationGraphTest, SelfEdgesIgnored) {
  SerializationGraph graph;
  graph.AddEdge(GlobalNode(1), GlobalNode(1), 0);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(SerializationGraphTest, CycleDetection) {
  SerializationGraph graph;
  graph.AddEdge(GlobalNode(1), GlobalNode(2), 0);
  graph.AddEdge(GlobalNode(2), GlobalNode(3), 0);
  EXPECT_FALSE(graph.HasCycle());
  graph.AddEdge(GlobalNode(3), GlobalNode(1), 1);
  EXPECT_TRUE(graph.HasCycle());
  EXPECT_EQ(graph.FindCycle().size(), 3u);
}

TEST(SerializationGraphTest, TAndCtAreDistinctNodes) {
  SerializationGraph graph;
  graph.AddEdge(GlobalNode(1), CompNode(1), 0);
  EXPECT_EQ(graph.nodes().size(), 2u);
  EXPECT_FALSE(graph.HasCycle());
}

TEST(SerializationGraphTest, MergeUnionsEdgesAndSites) {
  SerializationGraph a;
  a.AddEdge(GlobalNode(1), GlobalNode(2), 0);
  SerializationGraph b;
  b.AddEdge(GlobalNode(1), GlobalNode(2), 1);
  b.AddEdge(GlobalNode(2), GlobalNode(3), 1);
  a.Merge(b);
  EXPECT_EQ(a.edge_count(), 2u);
  EXPECT_EQ(a.adjacency().at(GlobalNode(1)).at(GlobalNode(2)).size(), 2u);
}

// --- Figure 1: regular cycles -------------------------------------------

TEST(RegularCycleTest, FigureOneA_TwoSiteCycleThroughRegularPivot) {
  // SG1: CT1 -> T2 ;  SG2: T2 -> CT1. The cyclic path switches sites at
  // T2 (a regular transaction), so this is a regular cycle.
  SerializationGraph global;
  global.AddEdge(CompNode(1), GlobalNode(2), 1);
  global.AddEdge(GlobalNode(2), CompNode(1), 2);
  RegularCycleDetector detector(global);
  EXPECT_TRUE(detector.HasRegularCycle());
  ASSERT_EQ(detector.pivots().size(), 1u);
  EXPECT_EQ(detector.pivots()[0], GlobalNode(2));
  auto witness = detector.FindWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->pivot, GlobalNode(2));
  EXPECT_NE(witness->in_site, witness->out_site);
}

TEST(RegularCycleTest, FigureOneB_ThreeSiteCycleWithTwoRegulars) {
  // SG1: T2 -> CT1 ; SG2: CT1 -> T3 ; SG3: T3 -> T2.
  SerializationGraph global;
  global.AddEdge(GlobalNode(2), CompNode(1), 1);
  global.AddEdge(CompNode(1), GlobalNode(3), 2);
  global.AddEdge(GlobalNode(3), GlobalNode(2), 3);
  RegularCycleDetector detector(global);
  EXPECT_TRUE(detector.HasRegularCycle());
  EXPECT_EQ(detector.pivots().size(), 2u);  // T2 and T3 both pivot
}

TEST(RegularCycleTest, FigureOneC_CycleThroughForwardAndItsCt) {
  // SG1: T1 -> T2 ; SG2: T2 -> T1 -> CT1 (T2 ran between T1 and its CT at
  // site 2). Cyclic path T1 -> T2 -> T1 pivots at both regulars.
  SerializationGraph global;
  global.AddEdge(GlobalNode(1), GlobalNode(2), 1);
  global.AddEdge(GlobalNode(2), GlobalNode(1), 2);
  global.AddEdge(GlobalNode(1), CompNode(1), 2);
  RegularCycleDetector detector(global);
  EXPECT_TRUE(detector.HasRegularCycle());
}

TEST(RegularCycleTest, CompensationOnlyCycleIsAllowed) {
  // Cycles whose only global transactions are CTs are explicitly allowed
  // (§4: compensating subtransactions are independent).
  SerializationGraph global;
  global.AddEdge(CompNode(1), CompNode(2), 1);
  global.AddEdge(CompNode(2), CompNode(1), 2);
  RegularCycleDetector detector(global);
  EXPECT_FALSE(detector.HasRegularCycle());
  EXPECT_TRUE(global.HasCycle());  // but it is a cycle
}

TEST(RegularCycleTest, CtCycleThroughLocalsIsAllowed) {
  SerializationGraph global;
  global.AddEdge(CompNode(1), LocalNode(7), 1);
  global.AddEdge(LocalNode(7), CompNode(2), 1);
  global.AddEdge(CompNode(2), CompNode(1), 2);
  RegularCycleDetector detector(global);
  EXPECT_FALSE(detector.HasRegularCycle());
}

// --- Example 1: minimal representations ---------------------------------

TEST(RegularCycleTest, ExampleOne_InteriorRegularNotIncluded) {
  // Local paths (paper Example 1):
  //   CT1 -> T2            in SG1
  //   CT1 -> T2 -> CT3     in SG2
  //   CT3 -> CT1           in SG3
  // The global cyclic path CT1 -> CT3 -> CT1 exists, but its minimal
  // representation uses the direct SG2 segment CT1 -> CT3, which does NOT
  // include the interior T2 — so there is no regular cycle.
  SerializationGraph global;
  global.AddEdge(CompNode(1), GlobalNode(2), 1);
  global.AddEdge(CompNode(1), GlobalNode(2), 2);
  global.AddEdge(GlobalNode(2), CompNode(3), 2);
  global.AddEdge(CompNode(3), CompNode(1), 3);
  RegularCycleDetector detector(global);
  EXPECT_TRUE(global.HasCycle());
  EXPECT_FALSE(detector.HasRegularCycle())
      << "T2 is interior to a single-site segment and must be dropped by "
         "the minimal representation";
  // The reduced graph has the direct closure edge CT1 -> CT3 at site 2.
  EXPECT_TRUE(detector.reduced().at(CompNode(1)).contains(CompNode(3)));
}

TEST(RegularCycleTest, SameSiteInOutDoesNotPivot) {
  // X -> T and T -> Y both inside site 1 merge into one segment; the
  // return path Y -> X at site 2 closes a cycle that never switches sites
  // at T.
  SerializationGraph global;
  global.AddEdge(CompNode(1), GlobalNode(5), 1);
  global.AddEdge(GlobalNode(5), CompNode(2), 1);
  global.AddEdge(CompNode(2), CompNode(1), 2);
  RegularCycleDetector detector(global);
  EXPECT_FALSE(detector.HasRegularCycle());
}

TEST(RegularCycleTest, DifferentSiteInOutPivots) {
  SerializationGraph global;
  global.AddEdge(CompNode(1), GlobalNode(5), 1);
  global.AddEdge(GlobalNode(5), CompNode(2), 2);  // note: site 2
  global.AddEdge(CompNode(2), CompNode(1), 3);
  RegularCycleDetector detector(global);
  EXPECT_TRUE(detector.HasRegularCycle());
  ASSERT_EQ(detector.pivots().size(), 1u);
  EXPECT_EQ(detector.pivots()[0], GlobalNode(5));
}

TEST(RegularCycleTest, ClosureWalksThroughLocalTransactions) {
  // CT1 -> L9 -> T2 within site 1 yields reduced edge CT1 -> T2.
  SerializationGraph global;
  global.AddEdge(CompNode(1), LocalNode(9), 1);
  global.AddEdge(LocalNode(9), GlobalNode(2), 1);
  global.AddEdge(GlobalNode(2), CompNode(1), 2);
  RegularCycleDetector detector(global);
  EXPECT_TRUE(detector.HasRegularCycle());
  EXPECT_EQ(detector.pivots()[0], GlobalNode(2));
}

TEST(RegularCycleTest, AcyclicGraphHasNoPivots) {
  SerializationGraph global;
  global.AddEdge(GlobalNode(1), GlobalNode(2), 1);
  global.AddEdge(GlobalNode(2), CompNode(3), 2);
  RegularCycleDetector detector(global);
  EXPECT_FALSE(detector.HasRegularCycle());
  EXPECT_FALSE(detector.FindWitness().has_value());
}

TEST(RegularCycleTest, WitnessDescribesTheCycle) {
  SerializationGraph global;
  global.AddEdge(CompNode(1), GlobalNode(2), 1);
  global.AddEdge(GlobalNode(2), CompNode(1), 2);
  RegularCycleDetector detector(global);
  auto witness = detector.FindWitness();
  ASSERT_TRUE(witness.has_value());
  const std::string text = witness->ToString();
  EXPECT_NE(text.find("T2"), std::string::npos);
  EXPECT_NE(text.find("CT1"), std::string::npos);
}

// --- ConflictTracker -----------------------------------------------------

TEST(ConflictTrackerTest, WriteWriteChain) {
  ConflictTracker tracker(0);
  tracker.RecordAccess(GlobalNode(1), 5, true);
  tracker.RecordAccess(GlobalNode(2), 5, true);
  tracker.RecordAccess(GlobalNode(3), 5, true);
  SerializationGraph graph = tracker.BuildGraph();
  EXPECT_TRUE(graph.HasEdge(GlobalNode(1), GlobalNode(2)));
  EXPECT_TRUE(graph.HasEdge(GlobalNode(2), GlobalNode(3)));
  // Transitive reduction: no direct 1 -> 3 edge needed.
  EXPECT_FALSE(graph.HasEdge(GlobalNode(1), GlobalNode(3)));
}

TEST(ConflictTrackerTest, ReadersHangBetweenWrites) {
  ConflictTracker tracker(0);
  tracker.RecordAccess(GlobalNode(1), 5, true);
  tracker.RecordAccess(GlobalNode(2), 5, false);
  tracker.RecordAccess(GlobalNode(3), 5, false);
  tracker.RecordAccess(GlobalNode(4), 5, true);
  SerializationGraph graph = tracker.BuildGraph();
  EXPECT_TRUE(graph.HasEdge(GlobalNode(1), GlobalNode(2)));
  EXPECT_TRUE(graph.HasEdge(GlobalNode(1), GlobalNode(3)));
  EXPECT_TRUE(graph.HasEdge(GlobalNode(2), GlobalNode(4)));
  EXPECT_TRUE(graph.HasEdge(GlobalNode(3), GlobalNode(4)));
  // Two reads do not conflict.
  EXPECT_FALSE(graph.HasEdge(GlobalNode(2), GlobalNode(3)));
}

TEST(ConflictTrackerTest, UncommittedLocalsExcluded) {
  ConflictTracker tracker(0);
  tracker.RecordAccess(GlobalNode(1), 5, true);
  tracker.RecordAccess(LocalNode(9), 5, true);   // never commits
  tracker.RecordAccess(GlobalNode(2), 5, true);
  SerializationGraph graph = tracker.BuildGraph();
  EXPECT_FALSE(graph.HasNode(LocalNode(9)));
  // The chain closes over the dropped local.
  EXPECT_TRUE(graph.HasEdge(GlobalNode(1), GlobalNode(2)));
}

TEST(ConflictTrackerTest, CommittedLocalsIncluded) {
  ConflictTracker tracker(0);
  tracker.RecordAccess(GlobalNode(1), 5, true);
  tracker.RecordAccess(LocalNode(9), 5, true);
  tracker.MarkLocalCommitted(9);
  SerializationGraph graph = tracker.BuildGraph();
  EXPECT_TRUE(graph.HasEdge(GlobalNode(1), LocalNode(9)));
}

TEST(ConflictTrackerTest, ReadsFromFiltering) {
  ConflictTracker tracker(0);
  tracker.RecordReadFrom(LocalNode(9), GlobalNode(1));   // reader uncommitted
  tracker.RecordReadFrom(GlobalNode(2), GlobalNode(1));
  tracker.RecordReadFrom(GlobalNode(2), NodeRef{kInvalidTxn, TxnKind::kLocal});
  EXPECT_EQ(tracker.CommittedReadsFrom().size(), 1u);
  tracker.MarkLocalCommitted(9);
  EXPECT_EQ(tracker.CommittedReadsFrom().size(), 2u);
}

// --- Correctness oracle ---------------------------------------------------

TEST(CorrectnessTest, LocalCycleMakesHistoryIncorrect) {
  ConflictTracker tracker(0);
  // Artificial local cycle between two globals at one site (cannot occur
  // under 2PL, but the oracle must catch it).
  tracker.RecordAccess(GlobalNode(1), 5, true);
  tracker.RecordAccess(GlobalNode(2), 5, true);
  tracker.RecordAccess(GlobalNode(2), 6, true);
  tracker.RecordAccess(GlobalNode(1), 6, true);
  CorrectnessReport report = AnalyzeHistory({&tracker});
  EXPECT_FALSE(report.locally_serializable);
  EXPECT_FALSE(report.correct);
  EXPECT_FALSE(report.violations.empty());
}

TEST(CorrectnessTest, DualReadViolatesAtomicityOfCompensation) {
  ConflictTracker site0(0);
  ConflictTracker site1(1);
  site0.RecordReadFrom(GlobalNode(5), GlobalNode(1));  // T5 reads from T1
  site1.RecordReadFrom(GlobalNode(5), CompNode(1));    // and from CT1
  CorrectnessReport report = AnalyzeHistory({&site0, &site1});
  EXPECT_FALSE(report.atomic_compensation);
}

TEST(CorrectnessTest, CleanHistoryPassesEverything) {
  ConflictTracker site0(0);
  site0.RecordAccess(GlobalNode(1), 5, true);
  site0.RecordAccess(GlobalNode(2), 5, false);
  site0.RecordReadFrom(GlobalNode(2), GlobalNode(1));
  CorrectnessReport report = AnalyzeHistory({&site0});
  EXPECT_TRUE(report.correct);
  EXPECT_TRUE(report.fully_serializable);
  EXPECT_TRUE(report.atomic_compensation);
  EXPECT_NE(report.Summary().find("correct=yes"), std::string::npos);
}

}  // namespace
}  // namespace o2pc::sg
