// Property suite for the paper's central theorems, swept over seeds and
// configurations:
//
//  * Theorem 1 via P1/P2/Simple: governed O2PC histories contain no
//    regular cycles (and are locally serializable).
//  * The criterion collapses to serializability when nothing aborts.
//  * Theorem 2: in correct histories, no transaction reads from both T_i
//    and CT_i.
//  * Ungoverned O2PC (the saga mode) does violate the criterion under
//    contention — the criterion is not vacuously satisfied.
//  * Conservation: zero-sum workloads preserve total value under commits,
//    rollbacks and compensations alike.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace o2pc::harness {
namespace {

ExperimentConfig ContentiousConfig(std::uint64_t seed,
                                   core::GovernancePolicy policy) {
  ExperimentConfig config;
  config.label = "property";
  config.system.num_sites = 3;
  config.system.keys_per_site = 8;  // hot keys => real interleavings
  config.system.seed = seed;
  config.system.protocol.protocol = core::CommitProtocol::kOptimistic;
  config.system.protocol.governance = policy;
  config.workload.num_global_txns = 60;
  config.workload.num_local_txns = 60;
  config.workload.ops_per_subtxn = 3;
  config.workload.vote_abort_probability = 0.25;
  config.workload.zipf_theta = 0.9;
  config.workload.mean_global_interarrival = Millis(1);
  config.workload.mean_local_interarrival = Millis(1);
  config.workload.seed = seed * 31 + 7;
  return config;
}

class GovernedPolicyTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, core::GovernancePolicy>> {};

TEST_P(GovernedPolicyTest, NoRegularCyclesAndTheorem2Holds) {
  const auto [seed, policy] = GetParam();
  ExperimentConfig config = ContentiousConfig(seed, policy);
  RunResult result = RunExperiment(config);
  EXPECT_TRUE(result.report.locally_serializable)
      << result.report.Summary();
  EXPECT_FALSE(result.report.has_regular_cycle)
      << "policy " << core::GovernancePolicyName(policy) << " seed " << seed
      << ": " << result.report.Summary()
      << (result.report.witness ? "\n" + result.report.witness->ToString()
                                : "");
  EXPECT_TRUE(result.report.correct);
  // Theorem 2: correct history + CT writes >= T writes => atomicity of
  // compensation.
  EXPECT_TRUE(result.report.atomic_compensation) << result.report.Summary();
  // Someone actually aborted and got compensated, or this sweep tests
  // nothing.
  EXPECT_GT(result.aborted + result.compensations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GovernedPolicyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(core::GovernancePolicy::kP1,
                                         core::GovernancePolicy::kP2,
                                         core::GovernancePolicy::kSimple)),
    [](const auto& info) {
      return std::string("seed") +
             std::to_string(std::get<0>(info.param)) + "_" +
             core::GovernancePolicyName(std::get<1>(info.param));
    });

class SeedOnlyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedOnlyTest, TwoPhaseCommitIsFullySerializable) {
  ExperimentConfig config =
      ContentiousConfig(GetParam(), core::GovernancePolicy::kNone);
  config.system.protocol.protocol = core::CommitProtocol::kTwoPhaseCommit;
  RunResult result = RunExperiment(config);
  EXPECT_TRUE(result.report.fully_serializable) << result.report.Summary();
  EXPECT_TRUE(result.report.correct);
  EXPECT_EQ(result.compensations, 0u);
}

TEST_P(SeedOnlyTest, NoAbortsMeansSerializableUnderAnyPolicy) {
  ExperimentConfig config =
      ContentiousConfig(GetParam(), core::GovernancePolicy::kNone);
  config.workload.vote_abort_probability = 0.0;
  RunResult result = RunExperiment(config);
  // Restarted transactions still roll back (deadlock timeouts), so only
  // claim the full collapse when truly nothing aborted.
  if (result.aborted == 0 && result.restarts == 0 &&
      result.deadlocks == 0) {
    EXPECT_TRUE(result.report.fully_serializable) << result.report.Summary();
  }
  EXPECT_TRUE(result.report.correct) << result.report.Summary();
}

TEST_P(SeedOnlyTest, ConservationUnderEveryPolicy) {
  for (core::GovernancePolicy policy :
       {core::GovernancePolicy::kNone, core::GovernancePolicy::kP1,
        core::GovernancePolicy::kP2, core::GovernancePolicy::kSimple}) {
    ExperimentConfig config = ContentiousConfig(GetParam(), policy);
    core::DistributedSystem system(config.system);
    const Value before = system.TotalValue();
    workload::WorkloadGenerator generator(config.system.num_sites,
                                          config.system.keys_per_site,
                                          config.workload);
    generator.Drive(system);
    system.Run();
    EXPECT_EQ(system.TotalValue(), before)
        << "policy " << core::GovernancePolicyName(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeedOnlyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(UngovernedO2pc, ProducesRegularCyclesUnderContention) {
  // The saga mode must eventually violate the criterion, otherwise the
  // governance protocols (and the whole of §5/§6) would be untestable
  // against a vacuous oracle. Scan seeds; at least one must exhibit a
  // regular cycle.
  int cycles = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ExperimentConfig config =
        ContentiousConfig(seed, core::GovernancePolicy::kNone);
    RunResult result = RunExperiment(config);
    if (result.report.has_regular_cycle) ++cycles;
  }
  EXPECT_GT(cycles, 0) << "no seed produced a regular cycle; the oracle "
                          "or the workload is too weak";
}

}  // namespace
}  // namespace o2pc::harness
