// Unit tests for one site's DBMS: operation semantics, undo/compensation
// bookkeeping, the subtransaction verbs (prepare / locally-commit /
// finalize / rollback), and SG record flushing rules.

#include "local/local_db.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace o2pc::local {
namespace {

class LocalDbTest : public ::testing::Test {
 protected:
  LocalDbTest() : db_(&sim_, Options()) {
    db_.Preload(1, 100);
    db_.Preload(2, 200);
  }

  static LocalDb::Options Options() {
    LocalDb::Options options;
    options.site = 0;
    options.op_cost = Micros(10);
    return options;
  }

  /// Runs one op to completion and returns its result.
  Result<Value> Exec(TxnId txn, Operation op) {
    std::optional<Result<Value>> out;
    db_.Execute(txn, op, [&](Result<Value> r) { out = std::move(r); });
    sim_.Run();
    if (!out.has_value()) return Status::Internal("op never completed");
    return *out;
  }

  sim::Simulator sim_;
  LocalDb db_;
};

TEST_F(LocalDbTest, ReadReturnsValueAndProvenance) {
  db_.Begin(10, TxnKind::kLocal);
  Result<Value> value = Exec(10, {OpType::kRead, 1, 0});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 100);
}

TEST_F(LocalDbTest, ReadMissingKeyIsNotFound) {
  db_.Begin(10, TxnKind::kLocal);
  EXPECT_TRUE(Exec(10, {OpType::kRead, 99, 0}).status().IsNotFound());
}

TEST_F(LocalDbTest, WriteAndIncrementApply) {
  db_.Begin(10, TxnKind::kLocal);
  EXPECT_EQ(*Exec(10, {OpType::kWrite, 1, 500}), 500);
  EXPECT_EQ(*Exec(10, {OpType::kIncrement, 2, -50}), 150);
  db_.CommitLocal(10);
  EXPECT_EQ(db_.table().Get(1)->value, 500);
  EXPECT_EQ(db_.table().Get(2)->value, 150);
}

TEST_F(LocalDbTest, InsertEraseSemantics) {
  db_.Begin(10, TxnKind::kLocal);
  EXPECT_TRUE(Exec(10, {OpType::kInsert, 5, 7}).ok());
  EXPECT_TRUE(Exec(10, {OpType::kInsert, 5, 8}).status().IsConflict());
  EXPECT_EQ(*Exec(10, {OpType::kErase, 5, 0}), 7);
  EXPECT_TRUE(Exec(10, {OpType::kErase, 5, 0}).status().IsNotFound());
}

TEST_F(LocalDbTest, AbortLocalRestoresStateExactly) {
  db_.Begin(10, TxnKind::kLocal);
  Exec(10, {OpType::kWrite, 1, 999});
  Exec(10, {OpType::kInsert, 5, 7});
  db_.AbortLocal(10);
  EXPECT_EQ(db_.table().Get(1)->value, 100);
  EXPECT_FALSE(db_.table().Contains(5));
  EXPECT_EQ(db_.TxnState(10), LocalTxnState::kAborted);
  // No SG trace.
  EXPECT_FALSE(db_.tracker().BuildGraph().HasNode(sg::LocalNode(10)));
}

TEST_F(LocalDbTest, CompensationPlanReversesCounterOps) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kIncrement, 1, 30});
  Exec(10, {OpType::kInsert, 5, 7});
  std::vector<Operation> plan = db_.CompensationPlan(10);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].type, OpType::kErase);   // undo insert first
  EXPECT_EQ(plan[0].key, 5u);
  EXPECT_EQ(plan[1].type, OpType::kIncrement);
  EXPECT_EQ(plan[1].value, -30);
}

TEST_F(LocalDbTest, WriteCompensatedByBeforeImage) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kWrite, 1, 555});
  std::vector<Operation> plan = db_.CompensationPlan(10);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].type, OpType::kWrite);
  EXPECT_EQ(plan[0].value, 100);  // the before-image
}

TEST_F(LocalDbTest, LocallyCommitReleasesAllLocks) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kIncrement, 1, 5});
  Exec(10, {OpType::kRead, 2, 0});
  EXPECT_EQ(db_.lock_manager().HeldKeys(10).size(), 2u);
  db_.LocallyCommit(10);
  EXPECT_TRUE(db_.lock_manager().HeldKeys(10).empty());
  EXPECT_EQ(db_.TxnState(10), LocalTxnState::kLocallyCommitted);
  // The updates are exposed.
  EXPECT_EQ(db_.table().Get(1)->value, 105);
}

TEST_F(LocalDbTest, PrepareReleasesOnlySharedLocks) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kIncrement, 1, 5});
  Exec(10, {OpType::kRead, 2, 0});
  db_.PrepareAndReleaseShared(10);
  EXPECT_TRUE(db_.lock_manager().Holds(10, 1, lock::LockMode::kExclusive));
  EXPECT_FALSE(db_.lock_manager().Holds(10, 2, lock::LockMode::kShared));
  EXPECT_EQ(db_.TxnState(10), LocalTxnState::kPrepared);
}

TEST_F(LocalDbTest, RollbackSubtxnIsAnInvisibleExactRestore) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kIncrement, 1, 5});
  db_.RollbackSubtxn(10);
  // The undo happened behind T10's own exclusive locks: value and
  // provenance are exactly the pre-T10 cell, and no CT node enters the SG
  // (a phantom CT10 here could close regular cycles the observable
  // history never exhibits). The forward accesses stay — aborted globals
  // are §5 nodes.
  EXPECT_EQ(db_.table().Get(1)->value, 100);
  EXPECT_EQ(db_.table().Get(1)->writer.kind, TxnKind::kLocal);
  EXPECT_EQ(db_.table().Get(1)->writer.id, 0u);  // original provenance
  sg::SerializationGraph graph = db_.tracker().BuildGraph();
  EXPECT_TRUE(graph.HasNode(sg::GlobalNode(10)));
  EXPECT_FALSE(graph.HasNode(sg::CompNode(10)));
}

TEST_F(LocalDbTest, FinalizeCommitRunsDeferredRealActions) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kRealAction, 1, 0});
  EXPECT_TRUE(db_.HasRealAction(10));
  EXPECT_EQ(db_.real_actions_performed(), 0u);
  std::vector<Operation> actions = db_.FinalizeCommit(10);
  EXPECT_EQ(actions.size(), 1u);
  EXPECT_EQ(db_.real_actions_performed(), 1u);
}

TEST_F(LocalDbTest, RollbackDropsRealActions) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kRealAction, 1, 0});
  db_.RollbackSubtxn(10);
  EXPECT_EQ(db_.real_actions_performed(), 0u);
}

TEST_F(LocalDbTest, CompensatingTxnWritesTaggedAsCt) {
  db_.Begin(20, TxnKind::kCompensating, /*global_id=*/7);
  Exec(20, {OpType::kIncrement, 1, -5});
  db_.CommitLocal(20);
  EXPECT_EQ(db_.table().Get(1)->writer.kind, TxnKind::kCompensating);
  EXPECT_EQ(db_.table().Get(1)->writer.id, 7u);
  sg::SerializationGraph graph = db_.tracker().BuildGraph();
  EXPECT_TRUE(graph.HasNode(sg::CompNode(7)));
}

TEST_F(LocalDbTest, SgRecordsFlushOnlyAtTerminalEvents) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kIncrement, 1, 5});
  // Still buffered.
  EXPECT_FALSE(db_.tracker().BuildGraph().HasNode(sg::GlobalNode(10)));
  db_.LocallyCommit(10);
  EXPECT_TRUE(db_.tracker().BuildGraph().HasNode(sg::GlobalNode(10)));
}

TEST_F(LocalDbTest, LockWaitTimeoutFiresDeadlock) {
  LocalDb::Options options = Options();
  options.lock_wait_timeout = Millis(5);
  LocalDb db(&sim_, options);
  db.Preload(1, 0);
  db.Begin(1, TxnKind::kLocal);
  db.Begin(2, TxnKind::kLocal);
  std::optional<Result<Value>> first;
  std::optional<Result<Value>> second;
  db.Execute(1, {OpType::kIncrement, 1, 1},
             [&](Result<Value> r) { first = std::move(r); });
  db.Execute(2, {OpType::kIncrement, 1, 1},
             [&](Result<Value> r) { second = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->status().IsDeadlock());  // timed out behind txn 1
}

TEST_F(LocalDbTest, WalRecordsBeginCommitPerTxn) {
  db_.Begin(10, TxnKind::kLocal);
  Exec(10, {OpType::kIncrement, 1, 5});
  db_.CommitLocal(10);
  EXPECT_TRUE(db_.wal().Committed(10));
  EXPECT_EQ(db_.wal().TxnUpdates(10).size(), 1u);
}

TEST_F(LocalDbTest, MarkCompensatedTransitionsToAborted) {
  db_.Begin(10, TxnKind::kGlobal);
  Exec(10, {OpType::kIncrement, 1, 5});
  db_.LocallyCommit(10);
  db_.MarkCompensated(10);
  EXPECT_EQ(db_.TxnState(10), LocalTxnState::kAborted);
}

}  // namespace
}  // namespace o2pc::local
