// Edge-case and failure-injection tests that cut across modules: upgrade
// deadlocks, network partitions mid-protocol, detector option
// monotonicity, workload driving, and the logging layer.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/system.h"
#include "harness/experiment.h"
#include "lock/lock_manager.h"
#include "sg/regular_cycle.h"
#include "workload/generator.h"
#include "workload/scenarios.h"

namespace o2pc {
namespace {

TEST(UpgradeDeadlockTest, TwoReadersUpgradingDeadlock) {
  // The classic: both hold S, both request X. The younger must die.
  sim::Simulator sim;
  lock::LockManager locks(&sim, {});
  std::optional<Status> first;
  std::optional<Status> second;
  locks.Acquire(1, 9, lock::LockMode::kShared, [](const Status&) {});
  locks.Acquire(2, 9, lock::LockMode::kShared, [](const Status&) {});
  sim.Run();
  locks.Acquire(1, 9, lock::LockMode::kExclusive,
                [&](const Status& s) { first = s; });
  sim.Run();
  locks.Acquire(2, 9, lock::LockMode::kExclusive,
                [&](const Status& s) { second = s; });
  sim.Run();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->IsDeadlock());
  // Victim still holds its S lock until its owner aborts it; release all:
  locks.ReleaseAll(2);
  sim.Run();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok());
}

TEST(PartitionTest, ProtocolSurvivesTransientPartition) {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 8;
  options.seed = 3;
  options.protocol.resend_timeout = Millis(50);
  options.protocol.max_resends = 100;
  core::DistributedSystem system(options);

  bool committed = false;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10),
                      [&](const core::GlobalResult& r) {
                        committed = r.committed;
                      });
  // Partition the link just after the protocol starts; heal it later.
  system.simulator().Schedule(Millis(2), [&] {
    system.network().SeverLink(0, 1);
  });
  system.simulator().Schedule(Millis(400), [&] {
    system.network().HealLink(0, 1);
  });
  system.Run();
  EXPECT_TRUE(committed);
  EXPECT_GT(system.network().stats().dropped, 0u);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 990);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1010);
}

TEST(DetectorOptionsTest, StrictModeDetectsAtLeastAsMuch) {
  // Property over random graphs: with drop_bypassable_pivots = false the
  // detector's pivot set is a superset of the default's.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    sg::SerializationGraph graph;
    for (int i = 0; i < 40; ++i) {
      const TxnId a = static_cast<TxnId>(rng.Uniform(1, 12));
      const TxnId b = static_cast<TxnId>(rng.Uniform(1, 12));
      const SiteId site = static_cast<SiteId>(rng.Uniform(0, 2));
      graph.AddEdge(rng.Bernoulli(0.3) ? sg::CompNode(a) : sg::GlobalNode(a),
                    rng.Bernoulli(0.3) ? sg::CompNode(b) : sg::GlobalNode(b),
                    site);
    }
    sg::RegularCycleDetector default_detector(graph);
    sg::RegularCycleDetector::Options strict;
    strict.drop_bypassable_pivots = false;
    sg::RegularCycleDetector strict_detector(graph, strict);
    for (const sg::NodeRef& pivot : default_detector.pivots()) {
      EXPECT_NE(std::find(strict_detector.pivots().begin(),
                          strict_detector.pivots().end(), pivot),
                strict_detector.pivots().end())
          << "seed " << seed << ": default pivot " << sg::NodeName(pivot)
          << " missing from strict set";
    }
    if (default_detector.HasRegularCycle()) {
      EXPECT_TRUE(strict_detector.HasRegularCycle());
    }
  }
}

TEST(WorkloadDriveTest, SchedulesEveryTransaction) {
  core::SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 64;
  options.seed = 8;
  core::DistributedSystem system(options);
  workload::WorkloadOptions wopts;
  wopts.num_global_txns = 25;
  wopts.num_local_txns = 15;
  wopts.seed = 99;
  workload::WorkloadGenerator generator(3, 64, wopts);
  generator.Drive(system);
  system.Run();
  EXPECT_EQ(system.globals_submitted(), 25u);
  EXPECT_EQ(system.globals_finished(), 25u);
  EXPECT_EQ(system.stats().Count("locals_submitted"), 15u);
}

TEST(LoggingTest, SinkCapturesAtConfiguredLevel) {
  std::vector<LogRecord> records;
  Logger::Global().set_sink(
      [&](const LogRecord& record) { records.push_back(record); });
  Logger::Global().set_level(LogLevel::kInfo);
  O2PC_LOG(kInfo) << "visible " << 42;
  const int log_line = __LINE__ - 1;
  O2PC_LOG(kDebug) << "hidden";
  Logger::Global().set_sink(nullptr);
  Logger::Global().set_level(LogLevel::kWarn);
  ASSERT_EQ(records.size(), 1u);
  // The record carries the call site structurally — no prefix parsing.
  EXPECT_EQ(records[0].message, "visible 42");
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_EQ(std::string(records[0].file), "edge_cases_test.cc");
  EXPECT_EQ(records[0].line, log_line);
}

TEST(LoggingTest, LogLevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(SingleSiteGlobalTest, DegenerateGlobalStillRunsProtocol) {
  // A "global" transaction with one subtransaction: the full 2PC exchange
  // still runs (over loopback), and O2PC semantics hold.
  core::SystemOptions options;
  options.num_sites = 1;
  options.keys_per_site = 4;
  core::DistributedSystem system(options);
  core::GlobalTxnSpec spec;
  spec.subtxns.push_back(
      {0, {local::Operation{local::OpType::kIncrement, 1, 7}}, false});
  bool committed = false;
  system.SubmitGlobal(spec, [&](const core::GlobalResult& r) {
    committed = r.committed;
  });
  system.Run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1007);
  EXPECT_EQ(system.network().stats().sent(net::MessageType::kVoteRequest),
            1u);
}

TEST(GenericModelTest, BeforeImageCompensationRestoresValues) {
  // The generic model: blind writes compensated by before-images.
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 8;
  core::DistributedSystem system(options);
  core::GlobalTxnSpec spec;
  spec.subtxns.push_back(
      {0, {local::Operation{local::OpType::kWrite, 1, 555}}, false});
  spec.subtxns.push_back(
      {1, {local::Operation{local::OpType::kWrite, 2, 777}}, true});
  system.SubmitGlobal(spec);
  system.Run();
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);  // compensated
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1000);  // rolled back
}

TEST(RepeatedAbortsTest, MarksAccumulateAndRetireAcrossMany) {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 32;
  options.protocol.governance = core::GovernancePolicy::kP1;
  core::DistributedSystem system(options);
  for (int i = 0; i < 10; ++i) {
    core::GlobalTxnSpec spec = workload::MakeTransfer(
        0, static_cast<DataKey>(i), 1, static_cast<DataKey>(i + 1), 5);
    spec.subtxns[1].force_abort_vote = true;
    system.SubmitGlobal(spec);
    system.Run();
  }
  // Follow-on traffic retires the marks and commits.
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    system.SubmitGlobal(
        workload::MakeTransfer(0, static_cast<DataKey>(i), 1,
                               static_cast<DataKey>(i + 1), 5),
        [&](const core::GlobalResult& r) {
          if (r.committed) ++committed;
        });
  }
  system.Run();
  EXPECT_EQ(committed, 10);
  EXPECT_TRUE(system.Analyze().correct);
  EXPECT_GT(system.stats().Count("udum_unmarks"), 0u);
}

TEST(AutonomyTest, UnilateralAbortMidExecution) {
  // Local autonomy ([BST90]): a site may abort its subtransaction any time
  // before it terminates. Mid-execution, the global transaction fails and
  // (being a non-business abort) restarts; the retry commits.
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 8;
  core::DistributedSystem system(options);
  bool committed = false;
  int attempts = 0;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10),
                      [&](const core::GlobalResult& r) {
                        committed = r.committed;
                      });
  // Site 0 is the coordinator's home: its subtransaction arrives over
  // loopback (~10us) and runs its ops at ~100us intervals. Abort it
  // mid-execution, deterministically.
  system.simulator().ScheduleAt(Micros(150), [&] {
    attempts += system.participant(0).UnilateralAbort(1) ? 1 : 0;
  });
  system.Run();
  EXPECT_EQ(attempts, 1);
  EXPECT_GT(system.stats().Count("unilateral_aborts"), 0u);
  EXPECT_TRUE(committed);  // restart succeeded
  EXPECT_EQ(system.db(0).table().Get(1)->value, 990);
}

TEST(AutonomyTest, UnilateralAbortAfterExecutionBecomesAbortVote) {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 8;
  options.max_global_restarts = 0;  // observe the raw abort
  core::DistributedSystem system(options);
  core::GlobalResult result;
  const TxnId id = system.SubmitGlobal(
      workload::MakeTransfer(0, 1, 1, 2, 10),
      [&](const core::GlobalResult& r) { result = r; });
  // Site 0 completes its subtransaction quickly (loopback); withdraw
  // before the votes.
  system.simulator().ScheduleAt(Millis(2), [&] {
    EXPECT_TRUE(system.participant(0).UnilateralAbort(id));
  });
  system.Run();
  EXPECT_FALSE(result.committed);
  // It aborted through a regular abort VOTE (autonomy preserved without
  // extra message machinery).
  EXPECT_EQ(system.stats().Count("votes_abort"), 1u);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
}

TEST(AutonomyTest, TooLateAfterLocalCommit) {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 8;
  core::DistributedSystem system(options);
  const TxnId id =
      system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 10));
  system.Run();  // fully committed
  // After termination the right to unilaterally abort is gone.
  EXPECT_FALSE(system.participant(0).UnilateralAbort(id));
  EXPECT_FALSE(system.participant(0).UnilateralAbort(9999));  // unknown
}

TEST(DotExportTest, RendersNodesAndLabeledEdges) {
  sg::SerializationGraph graph;
  graph.AddEdge(sg::GlobalNode(1), sg::CompNode(2), 3);
  graph.AddEdge(sg::GlobalNode(1), sg::CompNode(2), 4);
  graph.AddNode(sg::LocalNode(9));
  const std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("digraph SG"), std::string::npos);
  EXPECT_NE(dot.find("\"T1\" -> \"CT2\""), std::string::npos);
  EXPECT_NE(dot.find("S3,S4"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("color=gray"), std::string::npos);
}

}  // namespace
}  // namespace o2pc
