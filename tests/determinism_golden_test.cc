// Golden determinism regression — the container-swap gate.
//
// The per-run hot path runs on insertion-ordered flat containers
// (common/flat_hash.h); the contract is that the swap away from
// `std::map`/`std::set` changed *nothing observable*. These tests pin the
// two artifacts the campaign infrastructure fingerprints — a campaign
// sweep's combined journal fingerprint and a single run's trace-journal
// FNV-1a — as golden constants measured on the tree-container engine.
// Any future change that silently reorders lock grants, waits-for victim
// selection, marking-set iteration, or SG construction shows up here as a
// changed constant, byte-for-byte.
//
// The constants are independent of job count (asserted below) and of the
// host machine: simulated time has no relation to wall clock.

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "campaign/fault_plan.h"
#include "campaign/runner.h"
#include "exec/world_pool.h"
#include "telemetry/report.h"

namespace o2pc {
namespace {

#ifndef O2PC_TRACE_DISABLED

// Golden values measured on the seed engine (std::map/std::set containers)
// and required of every engine since. The sweep constant was re-pinned
// (serial == parallel before and after) when the "crashes" template began
// splitting draws between step- and time-pinned crashes so the telemetry
// coverage gate's crash_at production is exercised — a deliberate plan
// change, verified byte-identical across --jobs at the new value. The
// journal constant was re-pinned when site crashes became full recovery
// phases: every crash-bearing journal gained recovery_begin/recovery_end
// events — a deliberate trace change, verified byte-identical across
// --jobs at the new value.
constexpr std::uint64_t kGoldenSweepFingerprint = 0xdb2dfdd08573ea39ULL;
constexpr std::uint64_t kGoldenJournalFingerprint = 0xdf08f680f574b319ULL;

campaign::CampaignOptions GoldenSweep(int jobs) {
  campaign::CampaignOptions options;
  options.runs = 10;
  options.base_seed = 1;
  options.jobs = jobs;
  options.num_sites = 4;
  options.num_globals = 24;
  options.num_locals = 12;
  options.shrink_failures = false;
  return options;
}

TEST(DeterminismGoldenTest, CampaignSweepFingerprintPinned) {
  const campaign::CampaignReport serial =
      campaign::RunCampaign(GoldenSweep(1));
  ASSERT_EQ(serial.runs_completed, 10);
  EXPECT_EQ(serial.CombinedFingerprint(), kGoldenSweepFingerprint)
      << "actual: " << std::hex << serial.CombinedFingerprint();

  const campaign::CampaignReport parallel =
      campaign::RunCampaign(GoldenSweep(8));
  EXPECT_EQ(parallel.CombinedFingerprint(), kGoldenSweepFingerprint)
      << "actual: " << std::hex << parallel.CombinedFingerprint();
}

TEST(DeterminismGoldenTest, TraceJournalFingerprintPinned) {
  campaign::CampaignRunConfig config;
  config.protocol = core::CommitProtocol::kOptimistic;
  config.seed = 7;
  config.plan = campaign::GeneratePlan("mixed", 7, config.num_sites);
  config.template_name = "mixed";
  const campaign::CampaignRunResult result = campaign::RunOne(config);
  EXPECT_EQ(result.fingerprint, campaign::Fingerprint(result.journal));
  EXPECT_EQ(result.fingerprint, kGoldenJournalFingerprint)
      << "actual: " << std::hex << result.fingerprint;
}

// World-reuse gate (DESIGN §16): a run executed inside a recycled
// thread-local world — the worker's arena rewound over a previous,
// *different* run's world — must be byte-identical to the same run from a
// freshly constructed world: journal bytes, journal fingerprint, and the
// telemetry JSON rendered from the run. Three seeds, including a
// crash_restarts plan (recovery is the deepest state machine a recycled
// world replays).
TEST(DeterminismGoldenTest, RecycledWorldByteIdenticalToFreshWorld) {
  if (!exec::WorldPool::Enabled()) {
    GTEST_SKIP() << "arena machinery unavailable (sanitizer build or "
                    "O2PC_RUN_ARENA=off)";
  }
  struct Case {
    std::uint64_t seed;
    const char* template_name;
  };
  const Case cases[] = {
      {3, "mixed"}, {17, "crash_restarts"}, {29, "drops"}};
  for (const Case& c : cases) {
    campaign::CampaignRunConfig config;
    config.seed = c.seed;
    config.template_name = c.template_name;
    config.plan =
        campaign::GeneratePlan(c.template_name, c.seed, config.num_sites);
    config.collect_telemetry = true;

    // Fresh world: plain heap construction, no arena involved.
    const campaign::CampaignRunResult fresh = campaign::RunOne(config);

    // Dirty the worker's arena with a different run, then recycle it (the
    // ScopedRun below rewinds that world) for the run under test.
    {
      exec::WorldPool::ScopedRun dirty;
      campaign::CampaignRunConfig other = config;
      other.seed = c.seed + 1000;
      other.plan = campaign::GeneratePlan(c.template_name, other.seed,
                                          other.num_sites);
      (void)campaign::RunOne(other);
    }
    std::optional<exec::WorldPool::ScopedRun> scope(std::in_place);
    ASSERT_TRUE(scope->recycled());
    const campaign::CampaignRunResult armed = campaign::RunOne(config);
    scope.reset();  // disarm; arena stays readable until the next open
    const campaign::CampaignRunResult recycled(armed);  // deep copy off-arena

    EXPECT_EQ(recycled.fingerprint, fresh.fingerprint)
        << c.template_name << " seed " << c.seed;
    EXPECT_EQ(recycled.journal, fresh.journal);
    EXPECT_EQ(recycled.committed, fresh.committed);
    EXPECT_EQ(recycled.aborted, fresh.aborted);

    // Telemetry JSON: render both runs through the sweep serializer.
    telemetry::TelemetryAccumulator fresh_acc, recycled_acc;
    fresh_acc.AddRun("o2pc", fresh.telemetry);
    recycled_acc.AddRun("o2pc", recycled.telemetry);
    EXPECT_EQ(recycled_acc.Build().ToJson(), fresh_acc.Build().ToJson())
        << c.template_name << " seed " << c.seed;
  }
}

#endif  // O2PC_TRACE_DISABLED

}  // namespace
}  // namespace o2pc
