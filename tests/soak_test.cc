// Soak: one big adversarial run per protocol mixing everything at once —
// contention, vote-aborts, coordinator crashes, site crashes, local
// traffic — asserting the end-to-end invariants: every transaction
// resolves, value is conserved, the history satisfies the §5 criterion,
// and atomicity of compensation holds.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/generator.h"

namespace o2pc {
namespace {

struct SoakParam {
  core::CommitProtocol protocol;
  core::GovernancePolicy governance;
  const char* name;
};

class SoakTest : public ::testing::TestWithParam<SoakParam> {};

TEST_P(SoakTest, EverythingAtOnce) {
  const SoakParam& param = GetParam();
  core::SystemOptions options;
  options.num_sites = 5;
  options.keys_per_site = 64;
  options.seed = 4242;
  options.protocol.protocol = param.protocol;
  options.protocol.governance = param.governance;
  options.protocol.coordinator_crash_probability = 0.03;
  options.protocol.coordinator_recovery_delay = Millis(60);
  options.protocol.resend_timeout = Millis(50);
  options.protocol.max_resends = 200;
  options.checkpoint_interval = Millis(50);
  core::DistributedSystem system(options);
  const Value before = system.TotalValue();

  workload::WorkloadOptions wopts;
  wopts.num_global_txns = 150;
  wopts.num_local_txns = 150;
  wopts.min_sites_per_txn = 2;
  wopts.max_sites_per_txn = 3;
  wopts.ops_per_subtxn = 3;
  wopts.vote_abort_probability = 0.08;
  wopts.zipf_theta = 0.6;
  wopts.mean_global_interarrival = Millis(6);
  wopts.mean_local_interarrival = Millis(3);
  wopts.seed = 99;
  workload::WorkloadGenerator generator(options.num_sites,
                                        options.keys_per_site, wopts);
  generator.Drive(system);

  // Two site crashes while traffic is flowing.
  system.simulator().ScheduleAt(Millis(150), [&] {
    system.CrashSite(2, Millis(80));
  });
  system.simulator().ScheduleAt(Millis(500), [&] {
    system.CrashSite(4, Millis(80));
  });

  system.Run();

  // Every global transaction resolved one way or the other.
  EXPECT_EQ(system.globals_finished(), 150u);
  // Conservation across commits, aborts, compensations and crashes.
  EXPECT_EQ(system.TotalValue(), before) << param.name;
  // Work actually flowed.
  EXPECT_GT(system.stats().Count("globals_committed"), 75u);
  EXPECT_GT(system.stats().Count("checkpoints"), 0u);
  EXPECT_EQ(system.stats().Count("site_crashes"), 2u);

  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.locally_serializable) << report.Summary();
  EXPECT_TRUE(report.atomic_compensation) << report.Summary();
  if (param.governance != core::GovernancePolicy::kNone) {
    EXPECT_TRUE(report.correct) << param.name << ": " << report.Summary();
  }
  if (param.protocol == core::CommitProtocol::kTwoPhaseCommit) {
    EXPECT_EQ(system.stats().Count("compensations_committed"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, SoakTest,
    ::testing::Values(
        SoakParam{core::CommitProtocol::kTwoPhaseCommit,
                  core::GovernancePolicy::kNone, "2pc"},
        SoakParam{core::CommitProtocol::kOptimistic,
                  core::GovernancePolicy::kP1, "o2pc_p1"},
        SoakParam{core::CommitProtocol::kOptimistic,
                  core::GovernancePolicy::kNone, "o2pc_saga"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace o2pc
