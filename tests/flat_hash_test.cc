// Property tests for the flat hot-path containers (common/flat_hash.h):
// FlatMap / FlatSet / SmallSet / SmallMap checked against std::map /
// std::set references over randomized operation sequences. The extra
// invariant beyond map equivalence is the determinism contract:
//
//  * FlatMap / FlatSet iterate in *insertion order* of the live elements —
//    a pure function of the operation sequence, stable across rehashes;
//  * SmallSet / SmallMap iterate in *sorted order*, element-for-element
//    identical to the std::set / std::map they replace.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/types.h"

namespace o2pc {
namespace {

using common::FlatMap;
using common::FlatSet;
using common::SmallMap;
using common::SmallSet;

// ---------------------------------------------------------------------------
// FlatMap vs std::map + insertion-order reference.

TEST(FlatMapTest, RandomizedOpsMatchStdMap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    FlatMap<TxnId, int> flat;
    std::map<TxnId, int> reference;
    std::vector<TxnId> order;  // expected iteration order (live, inserted)

    for (int step = 0; step < 4000; ++step) {
      const TxnId key = static_cast<TxnId>(rng.Uniform(1, 120));
      const int op = static_cast<int>(rng.Uniform(0, 9));
      if (op < 5) {  // insert-or-assign via operator[]
        const int value = static_cast<int>(step);
        if (!reference.contains(key)) order.push_back(key);
        flat[key] = value;
        reference[key] = value;
      } else if (op < 7) {  // erase
        const std::size_t erased_flat = flat.erase(key);
        const std::size_t erased_ref = reference.erase(key);
        EXPECT_EQ(erased_flat, erased_ref) << "key " << key;
        if (erased_ref != 0) {
          order.erase(std::find(order.begin(), order.end(), key));
        }
      } else {  // lookup
        auto it = flat.find(key);
        auto ref_it = reference.find(key);
        ASSERT_EQ(it != flat.end(), ref_it != reference.end()) << key;
        if (ref_it != reference.end()) {
          EXPECT_EQ(it->second, ref_it->second);
        }
        EXPECT_EQ(flat.contains(key), reference.contains(key));
      }
      ASSERT_EQ(flat.size(), reference.size());
    }

    // Iteration: exactly the live keys, in insertion order.
    std::vector<TxnId> iterated;
    for (const auto& [key, value] : flat) {
      iterated.push_back(key);
      EXPECT_EQ(value, reference.at(key));
    }
    EXPECT_EQ(iterated, order) << "seed " << seed;
  }
}

TEST(FlatMapTest, IterationOrderSurvivesRehashes) {
  FlatMap<DataKey, int> flat;
  std::vector<DataKey> order;
  // Far past several growth/compaction cycles, with interleaved erases.
  for (DataKey key = 1; key <= 2000; ++key) {
    flat[key * 7919] = static_cast<int>(key);
    order.push_back(key * 7919);
    if (key % 3 == 0) {
      flat.erase((key / 2) * 7919);
      auto it = std::find(order.begin(), order.end(), (key / 2) * 7919);
      if (it != order.end()) order.erase(it);
    }
  }
  std::vector<DataKey> iterated;
  for (const auto& [key, value] : flat) iterated.push_back(key);
  EXPECT_EQ(iterated, order);
}

TEST(FlatMapTest, EraseThenReinsertMovesToEnd) {
  FlatMap<TxnId, int> flat;
  flat[1] = 10;
  flat[2] = 20;
  flat[3] = 30;
  flat.erase(2);
  flat[2] = 21;  // re-inserted: now youngest
  std::vector<TxnId> iterated;
  for (const auto& [key, value] : flat) iterated.push_back(key);
  EXPECT_EQ(iterated, (std::vector<TxnId>{1, 3, 2}));
  EXPECT_EQ(flat.find(2)->second, 21);
}

TEST(FlatMapTest, MoveOnlyValues) {
  struct MoveOnly {
    MoveOnly() = default;
    explicit MoveOnly(int v) : value(v) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    MoveOnly(const MoveOnly&) = delete;
    int value = 0;
  };
  FlatMap<TxnId, MoveOnly> flat;
  for (TxnId key = 1; key <= 100; ++key) {
    flat.try_emplace(key, static_cast<int>(key) * 2);
  }
  flat.erase(50);
  for (TxnId key = 101; key <= 200; ++key) flat[key];  // forces compaction
  EXPECT_EQ(flat.find(7)->second.value, 14);
  EXPECT_FALSE(flat.contains(50));
  EXPECT_EQ(flat.size(), 199u);
}

// ---------------------------------------------------------------------------
// FlatSet vs std::set.

TEST(FlatSetTest, RandomizedOpsMatchStdSet) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    Rng rng(seed);
    FlatSet<TxnId> flat;
    std::set<TxnId> reference;
    std::vector<TxnId> order;

    for (int step = 0; step < 4000; ++step) {
      const TxnId key = static_cast<TxnId>(rng.Uniform(1, 90));
      const int op = static_cast<int>(rng.Uniform(0, 9));
      if (op < 5) {
        const bool inserted = flat.insert(key).second;
        EXPECT_EQ(inserted, reference.insert(key).second) << key;
        if (inserted) order.push_back(key);
      } else if (op < 7) {
        EXPECT_EQ(flat.erase(key), reference.erase(key)) << key;
        auto it = std::find(order.begin(), order.end(), key);
        if (it != order.end()) order.erase(it);
      } else {
        EXPECT_EQ(flat.contains(key), reference.contains(key)) << key;
      }
      ASSERT_EQ(flat.size(), reference.size());
    }

    std::vector<TxnId> iterated(flat.begin(), flat.end());
    EXPECT_EQ(iterated, order) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// SmallSet vs std::set — identical sorted iteration.

TEST(SmallSetTest, RandomizedOpsMatchStdSetIncludingOrder) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    Rng rng(seed);
    SmallSet<TxnId> small;
    std::set<TxnId> reference;

    for (int step = 0; step < 2000; ++step) {
      const TxnId key = static_cast<TxnId>(rng.Uniform(1, 60));
      const int op = static_cast<int>(rng.Uniform(0, 9));
      if (op < 5) {
        EXPECT_EQ(small.insert(key).second, reference.insert(key).second);
      } else if (op < 7) {
        EXPECT_EQ(small.erase(key), reference.erase(key));
      } else {
        EXPECT_EQ(small.contains(key), reference.contains(key));
      }
      ASSERT_EQ(small.size(), reference.size());
    }

    // Sorted iteration, element-for-element.
    const std::vector<TxnId> small_order(small.begin(), small.end());
    const std::vector<TxnId> ref_order(reference.begin(), reference.end());
    EXPECT_EQ(small_order, ref_order) << "seed " << seed;
  }
}

TEST(SmallSetTest, RangeConstructorSortsAndDedups) {
  const std::vector<TxnId> input = {5, 3, 9, 3, 1, 5};
  const SmallSet<TxnId> small(input.begin(), input.end());
  const std::vector<TxnId> order(small.begin(), small.end());
  EXPECT_EQ(order, (std::vector<TxnId>{1, 3, 5, 9}));
}

struct Fact {
  TxnId ti;
  SiteId site;
  friend auto operator<=>(const Fact&, const Fact&) = default;
};

TEST(SmallSetTest, WorksForOrderedStructTypes) {
  SmallSet<Fact> facts;
  facts.insert({7, 2});
  facts.insert({7, 1});
  facts.insert({3, 9});
  facts.insert({7, 2});  // duplicate
  EXPECT_EQ(facts.size(), 3u);
  EXPECT_TRUE(facts.contains({7, 1}));
  EXPECT_FALSE(facts.contains({7, 3}));
  std::vector<Fact> order(facts.begin(), facts.end());
  EXPECT_EQ(order.front(), (Fact{3, 9}));
  EXPECT_EQ(order.back(), (Fact{7, 2}));
}

// ---------------------------------------------------------------------------
// SmallMap vs std::map — identical sorted iteration.

TEST(SmallMapTest, RandomizedOpsMatchStdMapIncludingOrder) {
  for (std::uint64_t seed = 31; seed <= 36; ++seed) {
    Rng rng(seed);
    SmallMap<TxnId, std::string> small;
    std::map<TxnId, std::string> reference;

    for (int step = 0; step < 2000; ++step) {
      const TxnId key = static_cast<TxnId>(rng.Uniform(1, 50));
      const int op = static_cast<int>(rng.Uniform(0, 9));
      if (op < 5) {
        const std::string value = "v" + std::to_string(step);
        small[key] = value;
        reference[key] = value;
      } else if (op < 7) {
        EXPECT_EQ(small.erase(key), reference.erase(key));
      } else {
        auto it = small.find(key);
        auto ref_it = reference.find(key);
        ASSERT_EQ(it != small.end(), ref_it != reference.end());
        if (ref_it != reference.end()) EXPECT_EQ(it->second, ref_it->second);
      }
      ASSERT_EQ(small.size(), reference.size());
    }

    std::vector<std::pair<TxnId, std::string>> small_order(small.begin(),
                                                           small.end());
    std::vector<std::pair<TxnId, std::string>> ref_order(reference.begin(),
                                                         reference.end());
    EXPECT_EQ(small_order, ref_order) << "seed " << seed;
  }
}

TEST(SmallMapTest, EmplaceDoesNotOverwrite) {
  SmallMap<TxnId, int> small;
  EXPECT_TRUE(small.emplace(4, 40).second);
  EXPECT_FALSE(small.emplace(4, 41).second);
  EXPECT_EQ(small.find(4)->second, 40);
}

}  // namespace
}  // namespace o2pc
