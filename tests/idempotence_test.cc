// Idempotence-under-duplication property tests (PR 7 acceptance gate).
//
// The protocol's at-least-once contract: every handler must absorb a
// redelivered message — duplicate VOTE-REQ after the vote, a DECISION
// re-delivered after its ack, a TERM-REQ from a ghost round — by
// re-answering from recorded state, never by re-executing the transition.
// These tests enforce the contract at the net layer: for every
// MessageType, a seeded campaign sweep is replayed with that type (and
// then with all types) delivered twice, and the oracle verdicts must
// match the duplicate-free baseline — no double-commit, no
// double-compensation, conservation clean, every transaction still
// terminating. tools/o2pc_campaign --duplicate-all runs the same gate at
// 10k-run volume in CI.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/runner.h"
#include "core/messages.h"
#include "core/system.h"
#include "net/message.h"
#include "net/network.h"
#include "net/payload_pool.h"
#include "trace/trace.h"
#include "workload/scenarios.h"

namespace o2pc::campaign {
namespace {

CampaignRunConfig BaseConfig(core::CommitProtocol protocol, std::uint64_t seed,
                             const char* template_name) {
  CampaignRunConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.num_sites = 3;
  config.keys_per_site = 16;
  config.num_globals = 12;
  config.num_locals = 6;
  config.vote_abort_probability = 0.15;
  config.template_name = template_name;
  config.plan = GeneratePlan(template_name, seed, config.num_sites);
  return config;
}

/// Runs `config` duplicate-free and with `1 + copies` deliveries of every
/// message matching `filter`, and asserts the duplicated run passes the
/// oracle battery exactly like the baseline. Duplication shifts message
/// timing (each copy draws its own latency), so journals legitimately
/// differ — the contract is on verdicts and conservation, not on bytes.
void ExpectIdempotentUnderDuplication(CampaignRunConfig config, int filter,
                                      int copies,
                                      const std::string& label) {
  const CampaignRunResult baseline = RunOne(config);
  ASSERT_TRUE(baseline.ok()) << label << ": baseline run failed the "
                             << "oracles: " << baseline.oracle.Summary();

  config.duplicate_copies = copies;
  config.duplicate_filter = filter;
  const CampaignRunResult duplicated = RunOne(config);
  EXPECT_TRUE(duplicated.ok())
      << label << ": idempotence violation under duplication: "
      << duplicated.oracle.Summary();
  // Every transaction still reaches exactly one outcome — redelivery must
  // not manufacture or lose terminations.
  EXPECT_EQ(duplicated.committed + duplicated.aborted,
            baseline.committed + baseline.aborted)
      << label;

  // And the duplicated run is itself seed-deterministic.
  const CampaignRunResult again = RunOne(config);
  EXPECT_EQ(duplicated.fingerprint, again.fingerprint) << label;
  EXPECT_EQ(duplicated.journal, again.journal) << label;
}

TEST(IdempotenceTest, EveryMessageTypeSurvivesDoubleDelivery) {
  // Per-type sweep: each MessageType in turn is delivered twice for every
  // occurrence, across seeds and both protocols, over a fault-free plan.
  for (int type = 0; type < net::kNumMessageTypes; ++type) {
    for (const core::CommitProtocol protocol :
         {core::CommitProtocol::kOptimistic,
          core::CommitProtocol::kTwoPhaseCommit}) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        ExpectIdempotentUnderDuplication(
            BaseConfig(protocol, seed, "none"), type, /*copies=*/1,
            std::string("type ") +
                net::MessageTypeName(static_cast<net::MessageType>(type)));
      }
    }
  }
}

TEST(IdempotenceTest, BlanketDuplicationSurvivesEveryFaultTemplate) {
  // All message types duplicated at once, on top of every fault template:
  // duplicates race crashes, partitions, gray-slow peers, and the
  // retransmission machinery itself.
  for (const std::string& name : DefaultTemplateNames()) {
    for (const core::CommitProtocol protocol :
         {core::CommitProtocol::kOptimistic,
          core::CommitProtocol::kTwoPhaseCommit}) {
      ExpectIdempotentUnderDuplication(BaseConfig(protocol, 61, name.c_str()),
                                       /*filter=*/-1, /*copies=*/1,
                                       "template " + name);
    }
  }
}

TEST(IdempotenceTest, TripleDeliveryOfDecisionPathMessages) {
  // The decision path (DECISION, DECISION-ACK, DECISION-REQ) is where
  // double-apply would corrupt money: triple-deliver each under both
  // protocols with the adversarial mix active.
  for (const net::MessageType type :
       {net::MessageType::kDecision, net::MessageType::kDecisionAck,
        net::MessageType::kDecisionReq}) {
    for (const core::CommitProtocol protocol :
         {core::CommitProtocol::kOptimistic,
          core::CommitProtocol::kTwoPhaseCommit}) {
      ExpectIdempotentUnderDuplication(
          BaseConfig(protocol, 71, "mixed_adversarial"),
          static_cast<int>(type), /*copies=*/2,
          std::string("decision-path ") + net::MessageTypeName(type));
    }
  }
}

TEST(IdempotenceTest, GhostRoundInvokeReAnswersFromRecordedState) {
  // Regression pin for the ghost-round redelivery bug: a duplicated
  // SUBTXN-INVOKE carrying a *higher* attempt number used to reinitialize
  // a subtransaction that had already voted (or decided), wiping the
  // recorded vote and letting a cooperative-termination peer resolve a
  // different outcome than the one the participant had bound itself to.
  // The handler now re-answers from recorded state. Duplicating INVOKE and
  // TERM-REQ together across retry-heavy templates exercises exactly that
  // window: a retransmitted round's INVOKE landing after the vote.
  for (const char* name : {"drops", "coordinator_outage", "gray"}) {
    for (const std::uint64_t seed : {5ull, 17ull, 29ull}) {
      CampaignRunConfig config =
          BaseConfig(core::CommitProtocol::kOptimistic, seed, name);
      ExpectIdempotentUnderDuplication(
          config, static_cast<int>(net::MessageType::kSubtxnInvoke),
          /*copies=*/2, std::string("ghost-invoke ") + name);
      ExpectIdempotentUnderDuplication(
          config, static_cast<int>(net::MessageType::kTermReq),
          /*copies=*/2, std::string("ghost-termreq ") + name);
    }
  }
}

TEST(IdempotenceTest, GhostInvokeAfterTermRenouncementDoesNotReadmit) {
  // Directed regression for the ghost-round bug the duplication sweep
  // predicts. Site 2's SUBTXN-INVOKE is lost, so when a cooperative-
  // termination probe asks it about the transaction, site 2 — knowing
  // nothing and with a WAL that vouches for nothing — records a
  // renouncement stub (attempt -1): a *binding* promise that it will
  // never vote commit, which lets the asker resolve abort. A duplicated /
  // reordered copy of the original INVOKE (attempt > -1) then finally
  // lands. The old handler fell through the stale-attempt check,
  // reinitialized the stub, executed the settled subtransaction, and
  // voted commit — diverging from the abort the CTP peer already acted
  // on. The handler must instead re-answer from the recorded binding
  // state: zero SUBTXN-ADMITs at site 2, ever, and never a commit vote.
  core::SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.seed = 13;
  options.protocol.protocol = core::CommitProtocol::kOptimistic;
  options.protocol.decision_timeout = Millis(20);
  options.protocol.decision_req_attempts = 2;
  options.protocol.termination_budget = 12;
  core::DistributedSystem system(options);
  const Value initial_total = system.TotalValue();
  trace::TraceRecorder recorder;
  trace::ScopedTrace scope(&recorder, &system.simulator());

  // Lose every SUBTXN-INVOKE to site 2 for the first 60ms (capturing the
  // first for redelivery) — site 2 must stay ignorant until renouncing.
  auto captured = std::make_shared<net::Message>();
  auto have_captured = std::make_shared<bool>(false);
  system.network().SetFaultHook(
      [&system, captured, have_captured](const net::Message& m) {
        net::FaultDecision decision;
        if (m.type == net::MessageType::kSubtxnInvoke && m.to == 2 &&
            system.simulator().Now() < Millis(60)) {
          if (!*have_captured) {
            *captured = m;
            *have_captured = true;
          }
          decision.drop = true;
        }
        return decision;
      });

  const TxnId id =
      system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10));
  // t=40ms: a termination probe from an uncertain peer reaches site 2,
  // which has never heard of the transaction and renounces.
  system.simulator().Schedule(Millis(40), [&] {
    auto payload = net::MakePayload<core::TermRequestPayload>();
    net::Message probe;
    probe.from = 0;
    probe.to = 2;
    probe.type = net::MessageType::kTermReq;
    probe.txn = id;
    probe.payload = std::move(payload);
    system.network().Send(std::move(probe));
  });
  // t=60ms: the ghost INVOKE finally arrives.
  system.simulator().Schedule(Millis(60), [&] {
    ASSERT_TRUE(*have_captured);
    system.network().Send(*captured);
  });
  system.Run();

  // The renouncement is binding: the transaction aborted and the books
  // balance (any exposed sibling work was compensated).
  EXPECT_EQ(system.TotalValue(), initial_total);
#ifndef O2PC_TRACE_DISABLED
  int admits_site2 = 0;
  bool commit_vote_site2 = false;
  bool abort_vote_site2 = false;
  bool committed = false;
  for (const trace::TraceEvent& event : recorder.events()) {
    if (event.txn != id) continue;
    if (event.type == trace::EventType::kTxnFinish && event.a == 1) {
      committed = true;
    }
    if (event.site != 2) continue;
    if (event.type == trace::EventType::kSubtxnAdmit) ++admits_site2;
    if (event.type == trace::EventType::kVote) {
      (event.a == 1 ? commit_vote_site2 : abort_vote_site2) = true;
    }
  }
  // The ghost INVOKE was absorbed by the stub, never re-admitted or
  // executed, and site 2 re-answered its binding abort instead of
  // contradicting the renouncement with a commit vote.
  EXPECT_EQ(admits_site2, 0);
  EXPECT_FALSE(commit_vote_site2);
  EXPECT_TRUE(abort_vote_site2);
  EXPECT_FALSE(committed);
#endif
}

}  // namespace
}  // namespace o2pc::campaign
