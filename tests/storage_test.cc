// Unit tests for the per-site storage engine: versioned table with writer
// provenance, WAL, undo rollback, crash recovery.

#include <gtest/gtest.h>

#include "storage/recovery.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace o2pc::storage {
namespace {

WriterTag Tag(TxnId id, TxnKind kind = TxnKind::kLocal) {
  return WriterTag{id, kind};
}

TEST(TableTest, PutGetRoundTrip) {
  Table table;
  table.Put(1, 42, Tag(7));
  Result<Cell> cell = table.Get(1);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(cell->value, 42);
  EXPECT_EQ(cell->writer.id, 7u);
}

TEST(TableTest, GetMissingIsNotFound) {
  Table table;
  EXPECT_TRUE(table.Get(5).status().IsNotFound());
  EXPECT_FALSE(table.Contains(5));
}

TEST(TableTest, VersionsAreMonotone) {
  Table table;
  table.Put(1, 1, Tag(1));
  const std::uint64_t v1 = table.Get(1)->version;
  table.Put(1, 2, Tag(2));
  EXPECT_GT(table.Get(1)->version, v1);
}

TEST(TableTest, InsertRejectsExisting) {
  Table table;
  EXPECT_TRUE(table.Insert(1, 10, Tag(1)).ok());
  EXPECT_TRUE(table.Insert(1, 20, Tag(2)).IsConflict());
  EXPECT_EQ(table.Get(1)->value, 10);
}

TEST(TableTest, EraseRemovesAndFailsOnMissing) {
  Table table;
  table.Put(1, 10, Tag(1));
  EXPECT_TRUE(table.Erase(1, Tag(2)).ok());
  EXPECT_FALSE(table.Contains(1));
  EXPECT_TRUE(table.Erase(1, Tag(2)).IsNotFound());
}

TEST(TableTest, RestorePutsBackExactCell) {
  Table table;
  table.Put(1, 10, Tag(1));
  Cell before = *table.Get(1);
  table.Put(1, 20, Tag(2));
  table.Restore(1, before);
  EXPECT_EQ(table.Get(1)->value, 10);
  EXPECT_EQ(table.Get(1)->writer.id, 1u);
  table.Restore(1, std::nullopt);
  EXPECT_FALSE(table.Contains(1));
}

TEST(TableTest, SumValues) {
  Table table;
  table.Put(1, 10, Tag(1));
  table.Put(2, -3, Tag(1));
  EXPECT_EQ(table.SumValues(), 7);
}

TEST(WalTest, LsnsAreMonotone) {
  Wal wal;
  const std::uint64_t a = wal.LogBegin(1);
  const std::uint64_t b = wal.LogCommit(1);
  EXPECT_LT(a, b);
  EXPECT_EQ(wal.size(), 2u);
}

TEST(WalTest, TxnIndexFindsRecords) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogBegin(2);
  wal.LogUpdate(1, 5, std::nullopt, Cell{10, Tag(1), 1});
  wal.LogCommit(1);
  EXPECT_EQ(wal.TxnRecords(1).size(), 3u);
  EXPECT_EQ(wal.TxnRecords(2).size(), 1u);
  EXPECT_EQ(wal.TxnUpdates(1).size(), 1u);
  EXPECT_TRUE(wal.Committed(1));
  EXPECT_FALSE(wal.Committed(2));
}

TEST(WalTest, DecisionForReturnsLastDecision) {
  Wal wal;
  EXPECT_FALSE(wal.DecisionFor(9).has_value());
  wal.LogDecision(9, true);
  ASSERT_TRUE(wal.DecisionFor(9).has_value());
  EXPECT_TRUE(*wal.DecisionFor(9));
  wal.LogDecision(9, false);
  EXPECT_FALSE(*wal.DecisionFor(9));
}

TEST(RecoveryTest, RollbackRestoresBeforeImagesInReverse) {
  Table table;
  Wal wal;
  table.Put(1, 100, Tag(0));
  wal.LogBegin(5);
  // txn 5 writes key 1 twice and inserts key 2.
  Cell before1 = *table.Get(1);
  table.Put(1, 200, Tag(5));
  wal.LogUpdate(5, 1, before1, *table.Get(1));
  Cell mid = *table.Get(1);
  table.Put(1, 300, Tag(5));
  wal.LogUpdate(5, 1, mid, *table.Get(1));
  table.Put(2, 7, Tag(5));
  wal.LogUpdate(5, 2, std::nullopt, *table.Get(2));

  auto undone = RollbackTxn(wal, table, 5, Tag(5, TxnKind::kCompensating));
  EXPECT_EQ(undone.size(), 3u);
  EXPECT_EQ(table.Get(1)->value, 100);
  EXPECT_FALSE(table.Contains(2));
  // Undo writes are attributed to the compensating node.
  EXPECT_EQ(table.Get(1)->writer.kind, TxnKind::kCompensating);
  // An abort record was appended.
  EXPECT_EQ(wal.records().back().kind, LogRecordKind::kAbort);
}

TEST(RecoveryTest, RollbackWithInvalidWriterRestoresProvenance) {
  Table table;
  Wal wal;
  table.Put(1, 100, Tag(3));
  wal.LogBegin(5);
  Cell before = *table.Get(1);
  table.Put(1, 200, Tag(5));
  wal.LogUpdate(5, 1, before, *table.Get(1));
  RollbackTxn(wal, table, 5, WriterTag{});  // exact restore (local abort)
  EXPECT_EQ(table.Get(1)->value, 100);
  EXPECT_EQ(table.Get(1)->writer.id, 3u);  // original writer kept
}

TEST(RecoveryTest, RecoverSiteRollsBackLosersOnly) {
  Table table;
  Wal wal;
  table.Put(1, 10, Tag(0));
  table.Put(2, 20, Tag(0));
  // txn 1 commits; txn 2 is a loser.
  wal.LogBegin(1);
  Cell b1 = *table.Get(1);
  table.Put(1, 11, Tag(1));
  wal.LogUpdate(1, 1, b1, *table.Get(1));
  wal.LogCommit(1);
  wal.LogBegin(2);
  Cell b2 = *table.Get(2);
  table.Put(2, 22, Tag(2));
  wal.LogUpdate(2, 2, b2, *table.Get(2));

  auto losers = RecoverSite(wal, table);
  ASSERT_EQ(losers.size(), 1u);
  EXPECT_EQ(losers[0], 2u);
  EXPECT_EQ(table.Get(1)->value, 11);  // winner preserved
  EXPECT_EQ(table.Get(2)->value, 20);  // loser undone
}

TEST(RecoveryTest, RecoverSiteHandlesInterleavedLosers) {
  Table table;
  Wal wal;
  table.Put(1, 1, Tag(0));
  table.Put(2, 2, Tag(0));
  wal.LogBegin(10);
  wal.LogBegin(11);
  Cell b1 = *table.Get(1);
  table.Put(1, 100, Tag(10));
  wal.LogUpdate(10, 1, b1, *table.Get(1));
  Cell b2 = *table.Get(2);
  table.Put(2, 200, Tag(11));
  wal.LogUpdate(11, 2, b2, *table.Get(2));
  auto losers = RecoverSite(wal, table);
  EXPECT_EQ(losers.size(), 2u);
  EXPECT_EQ(table.Get(1)->value, 1);
  EXPECT_EQ(table.Get(2)->value, 2);
}

LogRecord VoteRecord(LogRecordKind kind, TxnId txn, TxnId global,
                     SiteId coordinator, std::vector<SiteId> peers) {
  LogRecord record;
  record.kind = kind;
  record.txn = txn;
  record.aux = static_cast<std::int64_t>(global);
  record.coordinator = coordinator;
  record.peers = std::move(peers);
  return record;
}

TEST(RecoveryTest, PreparedTransactionSurvivesRecoverSite) {
  // The Gray & Lamport contract: a prepared participant survives a crash
  // still prepared — its updates stay in place, it is never unilaterally
  // rolled back, and analysis reconstructs it as in-doubt with the
  // force-logged coordinator and peer set.
  Table table;
  Wal wal;
  table.Put(1, 10, Tag(0));
  wal.LogBegin(7);
  Cell before = *table.Get(1);
  table.Put(1, 99, Tag(7));
  wal.LogUpdate(7, 1, before, *table.Get(1));
  wal.Append(VoteRecord(LogRecordKind::kPrepared, 7, /*global=*/70,
                        /*coordinator=*/2, /*peers=*/{1, 3}));

  const RecoveryResult analysis = AnalyzeWal(wal);
  EXPECT_TRUE(analysis.losers.empty());
  ASSERT_EQ(analysis.in_doubt.size(), 1u);
  EXPECT_EQ(analysis.in_doubt[0].txn, 7u);
  EXPECT_EQ(analysis.in_doubt[0].global, 70u);
  EXPECT_EQ(analysis.in_doubt[0].coordinator, 2u);
  EXPECT_EQ(analysis.in_doubt[0].participants, (std::vector<SiteId>{1, 3}));
  EXPECT_TRUE(analysis.in_doubt[0].prepared);

  const auto losers = RecoverSite(wal, table);
  EXPECT_TRUE(losers.empty());
  EXPECT_EQ(table.Get(1)->value, 99);  // prepared update survives
}

TEST(RecoveryTest, ExposedSubtxnSurvivesRecoverSiteAsInDoubt) {
  // An O2PC locally-committed (exposed) subtransaction likewise survives:
  // kLocallyCommitted closes the loser window even though no kCommit was
  // written, and analysis reports it as in-doubt (prepared = false).
  Table table;
  Wal wal;
  table.Put(1, 10, Tag(0));
  wal.LogBegin(8);
  Cell before = *table.Get(1);
  table.Put(1, 55, Tag(8));
  wal.LogUpdate(8, 1, before, *table.Get(1));
  wal.Append(VoteRecord(LogRecordKind::kLocallyCommitted, 8, /*global=*/80,
                        /*coordinator=*/1, /*peers=*/{2}));

  const RecoveryResult analysis = AnalyzeWal(wal);
  ASSERT_EQ(analysis.in_doubt.size(), 1u);
  EXPECT_FALSE(analysis.in_doubt[0].prepared);
  EXPECT_EQ(analysis.in_doubt[0].coordinator, 1u);

  EXPECT_TRUE(RecoverSite(wal, table).empty());
  EXPECT_EQ(table.Get(1)->value, 55);
  // A terminal kGlobalFinal closes the in-doubt window.
  LogRecord final_record;
  final_record.kind = LogRecordKind::kGlobalFinal;
  final_record.txn = 8;
  wal.Append(final_record);
  EXPECT_TRUE(AnalyzeWal(wal).in_doubt.empty());
}

TEST(RecoveryTest, CrashDuringRecoveryIsIdempotent) {
  // A second crash mid-recovery replays the WAL from the top: losers
  // already undone (and abort-logged) must not be undone again, the
  // prepared in-doubt set must come out identical, and the table must not
  // move. Running RecoverSite twice models the double fault exactly.
  Table table;
  Wal wal;
  table.Put(1, 10, Tag(0));
  table.Put(2, 20, Tag(0));
  // txn 3: loser. txn 4: prepared in-doubt.
  wal.LogBegin(3);
  Cell b1 = *table.Get(1);
  table.Put(1, 111, Tag(3));
  wal.LogUpdate(3, 1, b1, *table.Get(1));
  wal.LogBegin(4);
  Cell b2 = *table.Get(2);
  table.Put(2, 222, Tag(4));
  wal.LogUpdate(4, 2, b2, *table.Get(2));
  wal.Append(VoteRecord(LogRecordKind::kPrepared, 4, /*global=*/40,
                        /*coordinator=*/0, /*peers=*/{1}));

  const auto first = RecoverSite(wal, table);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 3u);
  EXPECT_EQ(table.Get(1)->value, 10);
  EXPECT_EQ(table.Get(2)->value, 222);
  const RecoveryResult analysis_first = AnalyzeWal(wal);

  const auto second = RecoverSite(wal, table);
  EXPECT_TRUE(second.empty());  // the abort record closed the loser window
  EXPECT_EQ(table.Get(1)->value, 10);   // not undone twice
  EXPECT_EQ(table.Get(2)->value, 222);  // still prepared in place
  const RecoveryResult analysis_second = AnalyzeWal(wal);
  ASSERT_EQ(analysis_second.in_doubt.size(), 1u);
  EXPECT_EQ(analysis_second.in_doubt[0].txn, analysis_first.in_doubt[0].txn);
  EXPECT_EQ(analysis_second.in_doubt[0].prepared,
            analysis_first.in_doubt[0].prepared);
}

TEST(WalTest, TruncateBelowDropsOldRecords) {
  Wal wal;
  wal.LogBegin(1);                                   // lsn 1
  wal.LogUpdate(1, 5, std::nullopt, Cell{1, Tag(1), 1});  // lsn 2
  wal.LogCommit(1);                                  // lsn 3
  wal.LogBegin(2);                                   // lsn 4
  EXPECT_EQ(wal.TruncateBelow(4), 3u);
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.base_lsn(), 4u);
  // Txn 1's records are gone; txn 2's survive.
  EXPECT_TRUE(wal.TxnRecords(1).empty());
  EXPECT_EQ(wal.TxnRecords(2).size(), 1u);
  EXPECT_FALSE(wal.Committed(1));
  // Appends continue with monotone LSNs.
  EXPECT_EQ(wal.LogCommit(2), 5u);
  EXPECT_TRUE(wal.Committed(2));
}

TEST(WalTest, TruncateIsBoundedAndIdempotent) {
  Wal wal;
  wal.LogBegin(1);
  EXPECT_EQ(wal.TruncateBelow(1), 0u);    // nothing below base
  EXPECT_EQ(wal.TruncateBelow(999), 1u);  // clamped to next_lsn
  EXPECT_EQ(wal.size(), 0u);
  EXPECT_EQ(wal.TruncateBelow(999), 0u);
}

TEST(WalTest, LowWatermarkTracksOldestNeeded) {
  Wal wal;
  wal.LogBegin(1);  // lsn 1
  wal.LogBegin(2);  // lsn 2
  wal.LogUpdate(2, 5, std::nullopt, Cell{1, Tag(2), 1});  // lsn 3
  EXPECT_EQ(wal.LowWatermark({2}), 2u);
  EXPECT_EQ(wal.LowWatermark({1, 2}), 1u);
  EXPECT_EQ(wal.LowWatermark({}), wal.next_lsn());
  EXPECT_EQ(wal.LowWatermark({42}), wal.next_lsn());
}

TEST(WalTest, CheckpointRecordCarriesActiveSet) {
  Wal wal;
  wal.LogCheckpoint({7, 9});
  ASSERT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.records()[0].kind, LogRecordKind::kCheckpoint);
  EXPECT_EQ(wal.records()[0].active, (std::vector<TxnId>{7, 9}));
}

TEST(WalTest, UpdateRecordsCarryCounterOps) {
  Wal wal;
  wal.LogUpdate(1, 5, std::nullopt, Cell{10, Tag(1), 1},
                /*comp_kind=*/3, /*comp_key=*/5, /*comp_value=*/-10);
  const LogRecord& r = wal.records()[0];
  EXPECT_EQ(r.comp_kind, 3);
  EXPECT_EQ(r.comp_key, 5u);
  EXPECT_EQ(r.comp_value, -10);
}

TEST(WalTest, RecordKindNames) {
  EXPECT_STREQ(LogRecordKindName(LogRecordKind::kCompensationBegin),
               "COMP-BEGIN");
  EXPECT_STREQ(LogRecordKindName(LogRecordKind::kDecision), "DECISION");
  EXPECT_STREQ(LogRecordKindName(LogRecordKind::kCheckpoint), "CHECKPOINT");
  EXPECT_STREQ(LogRecordKindName(LogRecordKind::kPrepared), "PREPARED");
  EXPECT_STREQ(LogRecordKindName(LogRecordKind::kLocallyCommitted),
               "LOCAL-COMMIT");
}

}  // namespace
}  // namespace o2pc::storage
