// Site crash & recovery: WAL-driven rollback of losers, survival of
// prepared (2PC) subtransactions with recovery locks, persistence of
// compensation across crashes (plans rebuilt from logged
// counter-operations), checkpoint/truncation, and whole-protocol recovery
// through coordinator retransmission.

#include <gtest/gtest.h>

#include "campaign/fault_plan.h"
#include "campaign/injector.h"
#include "core/system.h"
#include "local/local_db.h"
#include "sim/simulator.h"
#include "workload/scenarios.h"

namespace o2pc {
namespace {

// --- LocalDb-level recovery ------------------------------------------------

class LocalCrashTest : public ::testing::Test {
 protected:
  LocalCrashTest() : db_(&sim_, Options()) {
    db_.Preload(1, 100);
    db_.Preload(2, 200);
  }

  static local::LocalDb::Options Options() {
    local::LocalDb::Options options;
    options.site = 0;
    options.op_cost = Micros(10);
    return options;
  }

  void Exec(TxnId txn, local::Operation op) {
    bool ok = false;
    db_.Execute(txn, op, [&](Result<Value> r) { ok = r.ok(); });
    sim_.Run();
    ASSERT_TRUE(ok);
  }

  sim::Simulator sim_;
  local::LocalDb db_;
};

TEST_F(LocalCrashTest, ActiveTransactionsRollBack) {
  db_.Begin(10, TxnKind::kLocal);
  Exec(10, {local::OpType::kWrite, 1, 999});
  const std::uint64_t epoch_before = db_.epoch();
  std::vector<TxnId> losers = db_.Crash();
  EXPECT_EQ(losers, std::vector<TxnId>{10});
  EXPECT_EQ(db_.table().Get(1)->value, 100);
  EXPECT_EQ(db_.TxnState(10), local::LocalTxnState::kAborted);
  EXPECT_GT(db_.epoch(), epoch_before);
}

TEST_F(LocalCrashTest, ActiveGlobalSubtxnRollsBackInvisibly) {
  db_.Begin(10, TxnKind::kGlobal, 7);
  Exec(10, {local::OpType::kIncrement, 1, 50});
  db_.Crash();
  EXPECT_EQ(db_.table().Get(1)->value, 100);
  // A crash-time loser is pre-vote: its locks covered everything, nothing
  // was exposed, and it must leave no SG trace (the coordinator may
  // re-execute the same global transaction here after its resend).
  EXPECT_EQ(db_.table().Get(1)->writer.id, 0u);  // original provenance
  sg::SerializationGraph graph = db_.tracker().BuildGraph();
  EXPECT_FALSE(graph.HasNode(sg::GlobalNode(7)));
  EXPECT_FALSE(graph.HasNode(sg::CompNode(7)));
}

TEST_F(LocalCrashTest, PreparedSubtxnSurvivesWithRecoveryLocks) {
  db_.Begin(10, TxnKind::kGlobal, 7);
  Exec(10, {local::OpType::kIncrement, 1, 50});
  db_.PrepareAndReleaseShared(10);
  db_.Crash();
  // The update survives, the state survives, and the key is re-locked.
  EXPECT_EQ(db_.table().Get(1)->value, 150);
  EXPECT_EQ(db_.TxnState(10), local::LocalTxnState::kPrepared);
  sim_.Run();  // drain recovery-lock grants
  EXPECT_TRUE(db_.lock_manager().Holds(10, 1, lock::LockMode::kExclusive));
  // A commit decision later finalizes it.
  db_.FinalizeCommit(10);
  EXPECT_EQ(db_.TxnState(10), local::LocalTxnState::kCommitted);
  EXPECT_FALSE(db_.lock_manager().Holds(10, 1, lock::LockMode::kShared));
}

TEST_F(LocalCrashTest, LocallyCommittedPendingSurvives) {
  db_.Begin(10, TxnKind::kGlobal, 7);
  Exec(10, {local::OpType::kIncrement, 1, 50});
  Exec(10, {local::OpType::kInsert, 5, 11});
  db_.LocallyCommit(10);
  db_.Crash();
  // Exposed updates survive; the pending window is visible in the WAL.
  EXPECT_EQ(db_.table().Get(1)->value, 150);
  auto pending = db_.PendingExposedSubtxns();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].local_id, 10u);
  EXPECT_EQ(pending[0].global_id, 7u);
  // The compensation plan rebuilds from the WAL (the in-memory log was
  // wiped by the crash) in reverse order.
  std::vector<local::Operation> plan = db_.CompensationPlan(10);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].type, local::OpType::kErase);
  EXPECT_EQ(plan[0].key, 5u);
  EXPECT_EQ(plan[1].type, local::OpType::kIncrement);
  EXPECT_EQ(plan[1].value, -50);
}

TEST_F(LocalCrashTest, PendingWindowClosesOnFinalization) {
  db_.Begin(10, TxnKind::kGlobal, 7);
  Exec(10, {local::OpType::kIncrement, 1, 50});
  db_.LocallyCommit(10);
  db_.FinalizeCommit(10);
  db_.Crash();
  EXPECT_TRUE(db_.PendingExposedSubtxns().empty());
}

TEST_F(LocalCrashTest, CommittedWorkUntouchedByCrash) {
  db_.Begin(10, TxnKind::kLocal);
  Exec(10, {local::OpType::kWrite, 1, 777});
  db_.CommitLocal(10);
  db_.Crash();
  EXPECT_EQ(db_.table().Get(1)->value, 777);
}

TEST_F(LocalCrashTest, CheckpointTruncatesSettledHistory) {
  for (int i = 0; i < 5; ++i) {
    const TxnId txn = 100 + i;
    db_.Begin(txn, TxnKind::kLocal);
    Exec(txn, {local::OpType::kIncrement, 1, 1});
    db_.CommitLocal(txn);
  }
  const std::size_t before = db_.wal().size();
  db_.Checkpoint();
  EXPECT_LT(db_.wal().size(), before);
  // Everything settled: only the checkpoint record remains.
  EXPECT_EQ(db_.wal().size(), 1u);
  EXPECT_EQ(db_.wal().records().front().kind,
            storage::LogRecordKind::kCheckpoint);
}

TEST_F(LocalCrashTest, CheckpointRetainsInFlightUndo) {
  db_.Begin(10, TxnKind::kLocal);
  Exec(10, {local::OpType::kWrite, 1, 999});
  db_.Checkpoint();
  // The in-flight transaction's records must survive truncation so a
  // crash can still undo it.
  EXPECT_FALSE(db_.wal().TxnUpdates(10).empty());
  db_.Crash();
  EXPECT_EQ(db_.table().Get(1)->value, 100);
}

TEST_F(LocalCrashTest, CheckpointRetainsPendingCompensationInfo) {
  db_.Begin(10, TxnKind::kGlobal, 7);
  Exec(10, {local::OpType::kIncrement, 1, 50});
  db_.LocallyCommit(10);
  db_.Checkpoint();
  db_.Crash();
  std::vector<local::Operation> plan = db_.CompensationPlan(10);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].value, -50);
}

// --- System-level crash recovery -------------------------------------------

core::SystemOptions CrashSystemOptions() {
  core::SystemOptions options;
  options.num_sites = 2;
  options.keys_per_site = 16;
  options.seed = 77;
  options.protocol.resend_timeout = Millis(40);
  options.protocol.max_resends = 100;
  return options;
}

TEST(SystemCrashTest, ExposedSubtxnCompensatedAfterCrash) {
  // Site 0 locally commits, then crashes before the abort decision (site 1
  // votes abort) can be processed. After recovery the resent DECISION
  // finds no runtime, rebuilds the pending subtransaction from the WAL,
  // and compensates using the logged counter-operations.
  core::SystemOptions options = CrashSystemOptions();
  core::DistributedSystem system(options);
  core::GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 100);
  spec.subtxns[1].force_abort_vote = true;
  bool done = false;
  core::GlobalResult result;
  system.SubmitGlobal(spec, [&](const core::GlobalResult& r) {
    done = true;
    result = r;
  });
  // Crash site 0 right after its vote (it votes at ~11ms with default 5ms
  // latency); recover after 100ms.
  system.simulator().ScheduleAt(Millis(13), [&] {
    system.CrashSite(0, Millis(100));
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  // Semantic atomicity across the crash: the debit was compensated.
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1000);
  EXPECT_EQ(system.stats().Count("site_crashes"), 1u);
  EXPECT_GE(system.stats().Count("compensations_committed"), 1u);
}

TEST(SystemCrashTest, CommitSurvivesParticipantCrashAfterVote) {
  // Site 0 locally commits (O2PC), crashes, and the decision is COMMIT:
  // recovery finds the pending-exposed subtransaction and finalizes it.
  core::SystemOptions options = CrashSystemOptions();
  core::DistributedSystem system(options);
  bool done = false;
  core::GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 100),
                      [&](const core::GlobalResult& r) {
                        done = true;
                        result = r;
                      });
  system.simulator().ScheduleAt(Millis(13), [&] {
    system.CrashSite(0, Millis(100));
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 900);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1100);
}

TEST(SystemCrashTest, TwoPcPreparedSurvivesCrashAndCommits) {
  core::SystemOptions options = CrashSystemOptions();
  options.protocol.protocol = core::CommitProtocol::kTwoPhaseCommit;
  core::DistributedSystem system(options);
  bool done = false;
  core::GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 100),
                      [&](const core::GlobalResult& r) {
                        done = true;
                        result = r;
                      });
  system.simulator().ScheduleAt(Millis(13), [&] {
    system.CrashSite(0, Millis(100));
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 900);
}

TEST(SystemCrashTest, CrashDuringExecutionRestartsAndCommits) {
  // Crash site 1 while the transaction is still executing there: the
  // in-flight subtransaction is a loser; the coordinator's retries /
  // the system's restart eventually push the work through.
  core::SystemOptions options = CrashSystemOptions();
  core::DistributedSystem system(options);
  bool done = false;
  core::GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 100),
                      [&](const core::GlobalResult& r) {
                        done = true;
                        result = r;
                      });
  // The invoke reaches site 1 at ~10.5ms; crash it mid-execution.
  system.simulator().ScheduleAt(Micros(10'700), [&] {
    system.CrashSite(1, Millis(80));
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 900);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1100);
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
}

TEST(SystemCrashTest, ConservationHoldsAcrossRandomCrashes) {
  core::SystemOptions options = CrashSystemOptions();
  options.num_sites = 3;
  core::DistributedSystem system(options);
  const Value before = system.TotalValue();
  for (int i = 0; i < 12; ++i) {
    core::GlobalTxnSpec spec = workload::MakeTransfer(
        static_cast<SiteId>(i % 3), i % 8, static_cast<SiteId>((i + 1) % 3),
        (i + 3) % 8, 10 + i);
    if (i % 4 == 0) spec.subtxns[1].force_abort_vote = true;
    system.SubmitGlobal(spec);
  }
  // Two staggered crashes while traffic flows.
  system.simulator().ScheduleAt(Millis(9), [&] {
    system.CrashSite(1, Millis(60));
  });
  system.simulator().ScheduleAt(Millis(30), [&] {
    system.CrashSite(2, Millis(60));
  });
  system.Run();
  EXPECT_EQ(system.TotalValue(), before);
  EXPECT_EQ(system.globals_finished(), 12u);
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
}

TEST(SystemCrashTest, PeriodicCheckpointsTruncateAndStaySafe) {
  core::SystemOptions options = CrashSystemOptions();
  options.checkpoint_interval = Millis(20);
  core::DistributedSystem system(options);
  const Value before = system.TotalValue();
  for (int i = 0; i < 10; ++i) {
    core::GlobalTxnSpec spec = workload::MakeTransfer(
        0, static_cast<DataKey>(i), 1, static_cast<DataKey>(i + 1), 5);
    if (i % 3 == 0) spec.subtxns[1].force_abort_vote = true;
    system.SubmitGlobal(spec);
  }
  system.simulator().ScheduleAt(Millis(25), [&] {
    system.CrashSite(0, Millis(40));
  });
  system.Run();
  EXPECT_GT(system.stats().Count("checkpoints"), 0u);
  // Truncation really happened (the retained log is a suffix).
  EXPECT_GT(system.db(0).wal().base_lsn(), 1u);
  EXPECT_EQ(system.TotalValue(), before);
  EXPECT_EQ(system.globals_finished(), 10u);
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
}

// --- Step-indexed crash points (via the fault-campaign injector) -----------

TEST(SystemCrashTest, CoordinatorCrashBeforeDecisionViaStepPoint) {
  // The coordinator reaches its decision, force-logs it, and crashes
  // before broadcasting (the classic in-doubt window). Recovery re-reads
  // the log and rebroadcasts; the participants were never told anything
  // contradictory, so the transfer still commits exactly once.
  core::SystemOptions options = CrashSystemOptions();
  core::DistributedSystem system(options);
  campaign::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(
      campaign::FaultPlan::Parse("coordinator_crash occurrence=0\n", &plan,
                                 &error))
      << error;
  campaign::FaultInjector injector(&system, plan);
  injector.Arm();
  const Value before = system.TotalValue();
  bool done = false;
  core::GlobalResult result;
  system.SubmitGlobal(workload::MakeTransfer(0, 1, 1, 2, 100),
                      [&](const core::GlobalResult& r) {
                        done = true;
                        result = r;
                      });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(injector.faults_triggered(), 1);
  EXPECT_EQ(system.stats().Count("coordinator_crashes"), 1u);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 900);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1100);
  EXPECT_EQ(system.TotalValue(), before);
}

TEST(SystemCrashTest, CrashDuringCompensationViaStepPoint) {
  // Site 0 exposes its debit, the decision is ABORT (site 1 votes no),
  // and the site crashes the instant its compensating transaction starts.
  // Recovery must rebuild the CT from the WAL's counter-operations and
  // run it to completion: conservation holds despite the crash landing
  // inside the compensation window.
  core::SystemOptions options = CrashSystemOptions();
  core::DistributedSystem system(options);
  campaign::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(campaign::FaultPlan::Parse(
      "crash site=0 step=compensation_begin occurrence=0 outage_us=60000\n",
      &plan, &error))
      << error;
  campaign::FaultInjector injector(&system, plan);
  injector.Arm();
  const Value before = system.TotalValue();
  core::GlobalTxnSpec spec = workload::MakeTransfer(0, 1, 1, 2, 100);
  spec.subtxns[1].force_abort_vote = true;
  bool done = false;
  core::GlobalResult result;
  system.SubmitGlobal(spec, [&](const core::GlobalResult& r) {
    done = true;
    result = r;
  });
  system.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(injector.faults_triggered(), 1);
  EXPECT_EQ(system.stats().Count("site_crashes"), 1u);
  EXPECT_FALSE(result.committed);
  EXPECT_GE(system.stats().Count("compensations_committed"), 1u);
  EXPECT_EQ(system.db(0).table().Get(1)->value, 1000);
  EXPECT_EQ(system.db(1).table().Get(2)->value, 1000);
  EXPECT_EQ(system.TotalValue(), before);
  sg::CorrectnessReport report = system.Analyze();
  EXPECT_TRUE(report.correct) << report.Summary();
}

}  // namespace
}  // namespace o2pc
