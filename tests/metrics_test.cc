// Unit tests for histograms, the stats collector, and table rendering.

#include <gtest/gtest.h>

#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace o2pc::metrics {
namespace {

TEST(HistogramTest, EmptyIsSafe) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Percentile(0.99), 0.0);
  EXPECT_EQ(hist.Summary(), "n=0");
}

TEST(HistogramTest, BasicMoments) {
  Histogram hist;
  for (double v : {1.0, 2.0, 3.0, 4.0}) hist.Add(v);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(hist.Min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 4.0);
  EXPECT_DOUBLE_EQ(hist.Sum(), 10.0);
  EXPECT_NEAR(hist.StdDev(), 1.2909944, 1e-6);
}

TEST(HistogramTest, PercentilesInterpolate) {
  Histogram hist;
  for (int i = 1; i <= 100; ++i) hist.Add(i);
  EXPECT_NEAR(hist.Median(), 50.5, 0.01);
  EXPECT_NEAR(hist.Percentile(0.0), 1.0, 0.01);
  EXPECT_NEAR(hist.Percentile(1.0), 100.0, 0.01);
  EXPECT_NEAR(hist.Percentile(0.99), 99.01, 0.1);
}

TEST(HistogramTest, AddAllFromInt64Samples) {
  Histogram hist;
  hist.AddAll({100, 200, 300});
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 200.0);
  hist.Clear();
  EXPECT_TRUE(hist.empty());
}

TEST(StatsCollectorTest, CountersAccumulate) {
  StatsCollector stats;
  stats.Incr("x");
  stats.Incr("x", 4);
  EXPECT_EQ(stats.Count("x"), 5u);
  EXPECT_EQ(stats.Count("missing"), 0u);
}

TEST(StatsCollectorTest, ThroughputCountsCommittedOnly) {
  StatsCollector stats;
  GlobalTxnRecord committed;
  committed.committed = true;
  committed.submit_time = 0;
  committed.finish_time = Millis(10);
  GlobalTxnRecord aborted;
  aborted.committed = false;
  stats.AddGlobalTxn(committed);
  stats.AddGlobalTxn(committed);
  stats.AddGlobalTxn(aborted);
  EXPECT_DOUBLE_EQ(stats.Throughput(Seconds(1)), 2.0);
  EXPECT_EQ(stats.CommitLatency().count(), 2u);
  EXPECT_DOUBLE_EQ(stats.CommitLatency().Mean(), Millis(10));
}

TEST(StatsCollectorTest, NamedHistograms) {
  StatsCollector stats;
  stats.Hist("wait").Add(5.0);
  ASSERT_NE(stats.FindHist("wait"), nullptr);
  EXPECT_EQ(stats.FindHist("wait")->count(), 1u);
  EXPECT_EQ(stats.FindHist("other"), nullptr);
}

TEST(StatsCollectorTest, FindCounterDistinguishesAbsentFromZero) {
  StatsCollector stats;
  EXPECT_EQ(stats.FindCounter("commits"), nullptr);
  EXPECT_EQ(stats.Count("commits"), 0u);  // Count() hides absence

  stats.Incr("commits", 0);  // touch without incrementing
  ASSERT_NE(stats.FindCounter("commits"), nullptr);
  EXPECT_EQ(*stats.FindCounter("commits"), 0u);

  stats.Incr("commits", 3);
  EXPECT_EQ(*stats.FindCounter("commits"), 3u);
}

TEST(HistogramTest, MergeAppendsSamples) {
  Histogram a;
  a.Add(1.0);
  a.Add(3.0);
  Histogram b;
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.Max(), 5.0);
  EXPECT_EQ(b.count(), 1u);  // source untouched

  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(StatsCollectorTest, MergeFoldsCountersHistogramsAndTxns) {
  StatsCollector a;
  a.Incr("commits", 2);
  a.Incr("aborts", 1);
  a.Hist("wait").Add(10.0);
  GlobalTxnRecord txn_a;
  txn_a.id = 1;
  txn_a.committed = true;
  txn_a.finish_time = Millis(4);
  a.AddGlobalTxn(txn_a);

  StatsCollector b;
  b.Incr("commits", 3);
  b.Incr("deadlocks", 7);
  b.Hist("wait").Add(30.0);
  b.Hist("hold").Add(2.0);
  GlobalTxnRecord txn_b;
  txn_b.id = 2;
  b.AddGlobalTxn(txn_b);

  a.Merge(b);
  EXPECT_EQ(a.Count("commits"), 5u);
  EXPECT_EQ(a.Count("aborts"), 1u);
  EXPECT_EQ(a.Count("deadlocks"), 7u);
  ASSERT_NE(a.FindHist("wait"), nullptr);
  EXPECT_EQ(a.FindHist("wait")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.FindHist("wait")->Mean(), 20.0);
  ASSERT_NE(a.FindHist("hold"), nullptr);
  EXPECT_EQ(a.FindHist("hold")->count(), 1u);
  ASSERT_EQ(a.global_txns().size(), 2u);
  EXPECT_EQ(a.global_txns()[0].id, 1u);
  EXPECT_EQ(a.global_txns()[1].id, 2u);

  // Merging b is additive, not destructive: b is unchanged.
  EXPECT_EQ(b.Count("commits"), 3u);
  EXPECT_EQ(b.global_txns().size(), 1u);
}

TEST(HistogramTest, MergeWithEmptyEitherSide) {
  Histogram a;
  a.Add(2.0);
  Histogram empty;
  empty.Merge(a);  // empty target absorbs the source
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);

  Histogram still_empty;
  a.Merge(still_empty);  // empty source is a no-op
  EXPECT_EQ(a.count(), 1u);

  Histogram e1, e2;
  e1.Merge(e2);
  EXPECT_TRUE(e1.empty());
  EXPECT_EQ(e1.Percentile(0.5), 0.0);
}

TEST(StatsCollectorTest, MergeWithEmptyCollector) {
  StatsCollector a;
  a.Incr("commits", 2);
  a.Hist("wait").Add(10.0);
  GlobalTxnRecord txn;
  txn.id = 1;
  a.AddGlobalTxn(txn);

  StatsCollector empty;
  a.Merge(empty);  // merging an empty collector changes nothing
  EXPECT_EQ(a.Count("commits"), 2u);
  EXPECT_EQ(a.FindHist("wait")->count(), 1u);
  EXPECT_EQ(a.global_txns().size(), 1u);

  StatsCollector target;
  target.Merge(a);  // an empty target becomes a copy
  EXPECT_EQ(target.Count("commits"), 2u);
  ASSERT_NE(target.FindHist("wait"), nullptr);
  EXPECT_EQ(target.FindHist("wait")->count(), 1u);
  EXPECT_EQ(target.global_txns().size(), 1u);
}

TEST(BucketHistogramTest, InclusiveUpperEdges) {
  BucketHistogram hist({1.0, 2.0, 4.0});
  hist.Add(1.0);  // lands in bucket 0 (edges inclusive)
  hist.Add(1.5);  // bucket 1
  hist.Add(4.0);  // bucket 2
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.counts()[0], 1u);
  EXPECT_EQ(hist.counts()[1], 1u);
  EXPECT_EQ(hist.counts()[2], 1u);
  EXPECT_EQ(hist.overflow(), 0u);
}

TEST(BucketHistogramTest, OverflowBucketCatchesOutOfRange) {
  BucketHistogram hist({1.0, 2.0});
  hist.Add(2.5);
  hist.Add(1000.0);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.overflow(), 2u);
  // All mass in overflow: the estimate saturates at the last bound.
  EXPECT_DOUBLE_EQ(hist.PercentileEstimate(0.5), 2.0);
  EXPECT_DOUBLE_EQ(hist.PercentileEstimate(0.99), 2.0);
}

TEST(BucketHistogramTest, MergeAddsCountsIncludingOverflow) {
  BucketHistogram a({1.0, 2.0});
  a.Add(0.5);
  a.Add(9.0);  // overflow
  BucketHistogram b({1.0, 2.0});
  b.Add(1.5);
  b.Add(9.0);  // overflow
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.overflow(), 2u);
  EXPECT_EQ(b.count(), 2u);  // source untouched
}

TEST(BucketHistogramTest, MergeWithEmptySameLayout) {
  BucketHistogram a = BucketHistogram::DefaultLatencyLayout();
  a.Add(100.0);
  BucketHistogram empty = BucketHistogram::DefaultLatencyLayout();
  ASSERT_TRUE(a.Merge(empty));
  EXPECT_EQ(a.count(), 1u);
  ASSERT_TRUE(empty.Merge(a));
  EXPECT_EQ(empty.count(), 1u);
}

TEST(BucketHistogramTest, MergeRejectsMismatchedLayouts) {
  BucketHistogram a({1.0, 2.0, 4.0});
  a.Add(1.5);
  BucketHistogram b({1.0, 3.0, 4.0});
  b.Add(2.5);
  EXPECT_FALSE(a.Merge(b));
  // Target untouched by the failed merge.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.counts()[1], 1u);

  BucketHistogram shorter({1.0, 2.0});
  EXPECT_FALSE(a.Merge(shorter));
  EXPECT_EQ(a.count(), 1u);
}

TEST(BucketHistogramTest, PercentileEstimateInterpolates) {
  BucketHistogram hist({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) hist.Add(5.0);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) hist.Add(15.0);  // bucket (10, 20]
  // p50 = 10th of 20 samples: the last sample of bucket 0.
  EXPECT_DOUBLE_EQ(hist.PercentileEstimate(0.5), 10.0);
  // p100 lands at the top of bucket 1.
  EXPECT_DOUBLE_EQ(hist.PercentileEstimate(1.0), 20.0);
  // q=0 targets the first sample: 1/10th of the way through bucket (0,10].
  EXPECT_DOUBLE_EQ(hist.PercentileEstimate(0.0), 1.0);
}

TEST(BucketHistogramTest, FromPartsRoundTrip) {
  BucketHistogram original({1.0, 2.0, 4.0});
  original.Add(0.5);
  original.Add(3.0);
  original.Add(100.0);  // overflow
  BucketHistogram rebuilt = BucketHistogram::FromParts(
      original.bounds(), original.counts(), original.overflow());
  EXPECT_EQ(rebuilt.count(), original.count());
  EXPECT_EQ(rebuilt.counts(), original.counts());
  EXPECT_EQ(rebuilt.overflow(), original.overflow());
  EXPECT_DOUBLE_EQ(rebuilt.PercentileEstimate(0.5),
                   original.PercentileEstimate(0.5));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.ToCsv(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace o2pc::metrics
