// Unit tests for histograms, the stats collector, and table rendering.

#include <gtest/gtest.h>

#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace o2pc::metrics {
namespace {

TEST(HistogramTest, EmptyIsSafe) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Percentile(0.99), 0.0);
  EXPECT_EQ(hist.Summary(), "n=0");
}

TEST(HistogramTest, BasicMoments) {
  Histogram hist;
  for (double v : {1.0, 2.0, 3.0, 4.0}) hist.Add(v);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(hist.Min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 4.0);
  EXPECT_DOUBLE_EQ(hist.Sum(), 10.0);
  EXPECT_NEAR(hist.StdDev(), 1.2909944, 1e-6);
}

TEST(HistogramTest, PercentilesInterpolate) {
  Histogram hist;
  for (int i = 1; i <= 100; ++i) hist.Add(i);
  EXPECT_NEAR(hist.Median(), 50.5, 0.01);
  EXPECT_NEAR(hist.Percentile(0.0), 1.0, 0.01);
  EXPECT_NEAR(hist.Percentile(1.0), 100.0, 0.01);
  EXPECT_NEAR(hist.Percentile(0.99), 99.01, 0.1);
}

TEST(HistogramTest, AddAllFromInt64Samples) {
  Histogram hist;
  hist.AddAll({100, 200, 300});
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 200.0);
  hist.Clear();
  EXPECT_TRUE(hist.empty());
}

TEST(StatsCollectorTest, CountersAccumulate) {
  StatsCollector stats;
  stats.Incr("x");
  stats.Incr("x", 4);
  EXPECT_EQ(stats.Count("x"), 5u);
  EXPECT_EQ(stats.Count("missing"), 0u);
}

TEST(StatsCollectorTest, ThroughputCountsCommittedOnly) {
  StatsCollector stats;
  GlobalTxnRecord committed;
  committed.committed = true;
  committed.submit_time = 0;
  committed.finish_time = Millis(10);
  GlobalTxnRecord aborted;
  aborted.committed = false;
  stats.AddGlobalTxn(committed);
  stats.AddGlobalTxn(committed);
  stats.AddGlobalTxn(aborted);
  EXPECT_DOUBLE_EQ(stats.Throughput(Seconds(1)), 2.0);
  EXPECT_EQ(stats.CommitLatency().count(), 2u);
  EXPECT_DOUBLE_EQ(stats.CommitLatency().Mean(), Millis(10));
}

TEST(StatsCollectorTest, NamedHistograms) {
  StatsCollector stats;
  stats.Hist("wait").Add(5.0);
  ASSERT_NE(stats.FindHist("wait"), nullptr);
  EXPECT_EQ(stats.FindHist("wait")->count(), 1u);
  EXPECT_EQ(stats.FindHist("other"), nullptr);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.ToCsv(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace o2pc::metrics
