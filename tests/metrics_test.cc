// Unit tests for histograms, the stats collector, and table rendering.

#include <gtest/gtest.h>

#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace o2pc::metrics {
namespace {

TEST(HistogramTest, EmptyIsSafe) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Percentile(0.99), 0.0);
  EXPECT_EQ(hist.Summary(), "n=0");
}

TEST(HistogramTest, BasicMoments) {
  Histogram hist;
  for (double v : {1.0, 2.0, 3.0, 4.0}) hist.Add(v);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(hist.Min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 4.0);
  EXPECT_DOUBLE_EQ(hist.Sum(), 10.0);
  EXPECT_NEAR(hist.StdDev(), 1.2909944, 1e-6);
}

TEST(HistogramTest, PercentilesInterpolate) {
  Histogram hist;
  for (int i = 1; i <= 100; ++i) hist.Add(i);
  EXPECT_NEAR(hist.Median(), 50.5, 0.01);
  EXPECT_NEAR(hist.Percentile(0.0), 1.0, 0.01);
  EXPECT_NEAR(hist.Percentile(1.0), 100.0, 0.01);
  EXPECT_NEAR(hist.Percentile(0.99), 99.01, 0.1);
}

TEST(HistogramTest, AddAllFromInt64Samples) {
  Histogram hist;
  hist.AddAll({100, 200, 300});
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 200.0);
  hist.Clear();
  EXPECT_TRUE(hist.empty());
}

TEST(StatsCollectorTest, CountersAccumulate) {
  StatsCollector stats;
  stats.Incr("x");
  stats.Incr("x", 4);
  EXPECT_EQ(stats.Count("x"), 5u);
  EXPECT_EQ(stats.Count("missing"), 0u);
}

TEST(StatsCollectorTest, ThroughputCountsCommittedOnly) {
  StatsCollector stats;
  GlobalTxnRecord committed;
  committed.committed = true;
  committed.submit_time = 0;
  committed.finish_time = Millis(10);
  GlobalTxnRecord aborted;
  aborted.committed = false;
  stats.AddGlobalTxn(committed);
  stats.AddGlobalTxn(committed);
  stats.AddGlobalTxn(aborted);
  EXPECT_DOUBLE_EQ(stats.Throughput(Seconds(1)), 2.0);
  EXPECT_EQ(stats.CommitLatency().count(), 2u);
  EXPECT_DOUBLE_EQ(stats.CommitLatency().Mean(), Millis(10));
}

TEST(StatsCollectorTest, NamedHistograms) {
  StatsCollector stats;
  stats.Hist("wait").Add(5.0);
  ASSERT_NE(stats.FindHist("wait"), nullptr);
  EXPECT_EQ(stats.FindHist("wait")->count(), 1u);
  EXPECT_EQ(stats.FindHist("other"), nullptr);
}

TEST(StatsCollectorTest, FindCounterDistinguishesAbsentFromZero) {
  StatsCollector stats;
  EXPECT_EQ(stats.FindCounter("commits"), nullptr);
  EXPECT_EQ(stats.Count("commits"), 0u);  // Count() hides absence

  stats.Incr("commits", 0);  // touch without incrementing
  ASSERT_NE(stats.FindCounter("commits"), nullptr);
  EXPECT_EQ(*stats.FindCounter("commits"), 0u);

  stats.Incr("commits", 3);
  EXPECT_EQ(*stats.FindCounter("commits"), 3u);
}

TEST(HistogramTest, MergeAppendsSamples) {
  Histogram a;
  a.Add(1.0);
  a.Add(3.0);
  Histogram b;
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.Max(), 5.0);
  EXPECT_EQ(b.count(), 1u);  // source untouched

  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(StatsCollectorTest, MergeFoldsCountersHistogramsAndTxns) {
  StatsCollector a;
  a.Incr("commits", 2);
  a.Incr("aborts", 1);
  a.Hist("wait").Add(10.0);
  GlobalTxnRecord txn_a;
  txn_a.id = 1;
  txn_a.committed = true;
  txn_a.finish_time = Millis(4);
  a.AddGlobalTxn(txn_a);

  StatsCollector b;
  b.Incr("commits", 3);
  b.Incr("deadlocks", 7);
  b.Hist("wait").Add(30.0);
  b.Hist("hold").Add(2.0);
  GlobalTxnRecord txn_b;
  txn_b.id = 2;
  b.AddGlobalTxn(txn_b);

  a.Merge(b);
  EXPECT_EQ(a.Count("commits"), 5u);
  EXPECT_EQ(a.Count("aborts"), 1u);
  EXPECT_EQ(a.Count("deadlocks"), 7u);
  ASSERT_NE(a.FindHist("wait"), nullptr);
  EXPECT_EQ(a.FindHist("wait")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.FindHist("wait")->Mean(), 20.0);
  ASSERT_NE(a.FindHist("hold"), nullptr);
  EXPECT_EQ(a.FindHist("hold")->count(), 1u);
  ASSERT_EQ(a.global_txns().size(), 2u);
  EXPECT_EQ(a.global_txns()[0].id, 1u);
  EXPECT_EQ(a.global_txns()[1].id, 2u);

  // Merging b is additive, not destructive: b is unchanged.
  EXPECT_EQ(b.Count("commits"), 3u);
  EXPECT_EQ(b.global_txns().size(), 1u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.ToCsv(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace o2pc::metrics
