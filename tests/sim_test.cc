// Unit tests for the discrete-event kernel: ordering, FIFO stability,
// cancellation, bounded runs.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace o2pc::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.empty()) queue.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Push(100, [&, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue queue;
  int fired = 0;
  EventId id = queue.Push(10, [&] { ++fired; });
  queue.Push(20, [&] { ++fired; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.Pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue queue;
  EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(kInvalidEvent));
  EXPECT_FALSE(queue.Cancel(9999));
}

TEST(EventQueueTest, CancelAfterPopFails) {
  EventQueue queue;
  EventId id = queue.Push(10, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, PeekTimeSkipsCancelled) {
  EventQueue queue;
  EventId early = queue.Push(5, [] {});
  queue.Push(10, [] {});
  queue.Cancel(early);
  EXPECT_EQ(queue.PeekTime(), 10);
}

TEST(SimulatorTest, TimeAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, NestedSchedulingRunsRelativeToFiringTime) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunStepsBoundsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [&] { ++fired; });
  EXPECT_EQ(sim.RunSteps(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, ZeroDelayRunsAfterPendingSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(0, [&] {
    order.push_back(1);
    sim.Schedule(0, [&] { order.push_back(3); });
  });
  sim.Schedule(0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace o2pc::sim
