// Unit tests for the discrete-event kernel: ordering, FIFO stability,
// cancellation, bounded runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace o2pc::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.empty()) queue.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Push(100, [&, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue queue;
  int fired = 0;
  EventId id = queue.Push(10, [&] { ++fired; });
  queue.Push(20, [&] { ++fired; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.Pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue queue;
  EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(kInvalidEvent));
  EXPECT_FALSE(queue.Cancel(9999));
}

TEST(EventQueueTest, CancelAfterPopFails) {
  EventQueue queue;
  EventId id = queue.Push(10, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, PeekTimeSkipsCancelled) {
  EventQueue queue;
  EventId early = queue.Push(5, [] {});
  queue.Push(10, [] {});
  queue.Cancel(early);
  EXPECT_EQ(queue.PeekTime(), 10);
}

TEST(SimulatorTest, TimeAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, NestedSchedulingRunsRelativeToFiringTime) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunStepsBoundsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [&] { ++fired; });
  EXPECT_EQ(sim.RunSteps(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// Model-based property test: interleave Push/Cancel/Pop under a seeded RNG
// against a reference model (a sorted list of live (time, id) pairs) and
// check that pops come out in time-then-FIFO order and that size()/empty()
// account for cancellations exactly.
TEST(EventQueueTest, RandomizedPushCancelPopMatchesReferenceModel) {
  for (std::uint64_t seed : {1u, 7u, 1234u, 987654u}) {
    Rng rng(seed);
    EventQueue queue;
    // Live events the queue must still deliver, keyed (time, id).
    std::vector<std::pair<SimTime, EventId>> model;
    std::vector<EventId> cancellable;
    std::uint64_t popped = 0;

    for (int step = 0; step < 2000; ++step) {
      const int op = rng.Uniform(0, 9);
      if (op <= 5) {
        // Push, with deliberate time collisions to exercise FIFO ties.
        const SimTime time = rng.Uniform(0, 49);
        const EventId id = queue.Push(time, [] {});
        model.emplace_back(time, id);
        cancellable.push_back(id);
      } else if (op <= 7) {
        if (cancellable.empty()) continue;
        const std::size_t pick = static_cast<std::size_t>(rng.Uniform(
            0, static_cast<std::int64_t>(cancellable.size()) - 1));
        const EventId id = cancellable[pick];
        cancellable.erase(cancellable.begin() + pick);
        const auto it = std::find_if(
            model.begin(), model.end(),
            [id](const auto& entry) { return entry.second == id; });
        // Cancel succeeds iff the event is still live; a second cancel or a
        // cancel of an already-popped event reports false.
        EXPECT_EQ(queue.Cancel(id), it != model.end());
        if (it != model.end()) model.erase(it);
        EXPECT_FALSE(queue.Cancel(id));
      } else {
        if (queue.empty()) {
          EXPECT_TRUE(model.empty());
          continue;
        }
        const auto expect =
            std::min_element(model.begin(), model.end());
        EXPECT_EQ(queue.PeekTime(), expect->first);
        Event event = queue.Pop();
        EXPECT_EQ(event.time, expect->first);
        EXPECT_EQ(event.id, expect->second);
        model.erase(expect);
        cancellable.erase(
            std::remove(cancellable.begin(), cancellable.end(), event.id),
            cancellable.end());
        ++popped;
      }
      EXPECT_EQ(queue.size(), model.size());
      EXPECT_EQ(queue.empty(), model.empty());
    }

    // Drain: the remaining events surface in exact (time, id) order.
    std::sort(model.begin(), model.end());
    for (const auto& [time, id] : model) {
      ASSERT_FALSE(queue.empty());
      Event event = queue.Pop();
      EXPECT_EQ(event.time, time);
      EXPECT_EQ(event.id, id);
      ++popped;
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_GT(popped, 0u) << "seed " << seed;
  }
}

// Cross-implementation property test: the calendar queue and the binary
// heap must pop the exact same (time, id) sequence on protocol-shaped
// schedules — dense near-future op/hop timers, retransmit spikes a few
// milliseconds out, and a long recovery tail that lives in the far heap —
// with cancels mixed in. This is the invariant that makes
// O2PC_EVENTQUEUE=heap a byte-identical A/B switch.
TEST(EventQueueTest, CalendarAndHeapPopIdenticallyOnProtocolShapedLoad) {
  for (std::uint64_t seed : {2u, 42u, 777u}) {
    Rng rng(seed);
    EventQueue calendar;
    EventQueue heap;
    calendar.ForceImplementation(true);
    heap.ForceImplementation(false);
    ASSERT_TRUE(calendar.using_calendar());
    ASSERT_FALSE(heap.using_calendar());
    std::vector<EventId> live;
    SimTime now = 0;
    for (int step = 0; step < 4000; ++step) {
      const int op = static_cast<int>(rng.Uniform(0, 9));
      if (op <= 5) {
        const int shape = static_cast<int>(rng.Uniform(0, 9));
        Duration delta = 0;
        if (shape <= 6) {
          delta = rng.Uniform(0, 200);  // op costs and network hops
        } else if (shape <= 8) {
          delta = rng.Uniform(1000, 20000);  // retransmit spikes
        } else {
          delta = rng.Uniform(50000, 500000);  // recovery windows
        }
        const SimTime time = now + delta;
        const EventId a = calendar.Push(time, [] {});
        const EventId b = heap.Push(time, [] {});
        ASSERT_EQ(a, b);
        live.push_back(a);
      } else if (op <= 7) {
        if (live.empty()) continue;
        const std::size_t pick = static_cast<std::size_t>(
            rng.Uniform(0, static_cast<std::int64_t>(live.size()) - 1));
        const EventId id = live[pick];
        live.erase(live.begin() + pick);
        EXPECT_EQ(calendar.Cancel(id), heap.Cancel(id));
      } else {
        if (calendar.empty()) {
          EXPECT_TRUE(heap.empty());
          continue;
        }
        ASSERT_FALSE(heap.empty());
        EXPECT_EQ(calendar.PeekTime(), heap.PeekTime());
        const Event a = calendar.Pop();
        const Event b = heap.Pop();
        ASSERT_EQ(a.time, b.time);
        ASSERT_EQ(a.id, b.id);
        now = a.time;
        live.erase(std::remove(live.begin(), live.end(), a.id), live.end());
      }
      ASSERT_EQ(calendar.size(), heap.size());
    }
    while (!calendar.empty()) {
      ASSERT_FALSE(heap.empty());
      const Event a = calendar.Pop();
      const Event b = heap.Pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.id, b.id);
    }
    EXPECT_TRUE(heap.empty());
  }
}

// ResetForRun keeps buffers and adapted calendar geometry but must make a
// recycled queue behave exactly like a fresh one: the same drive sequence
// pops the same (time, id) pairs (ids restart at 1).
TEST(EventQueueTest, ResetForRunReplaysIdentically) {
  EventQueue queue;
  const auto drive = [&queue] {
    std::vector<std::pair<SimTime, EventId>> pops;
    Rng rng(99);
    std::vector<EventId> live;
    SimTime now = 0;
    for (int step = 0; step < 1500; ++step) {
      const int op = static_cast<int>(rng.Uniform(0, 9));
      if (op <= 5) {
        const SimTime time = now + rng.Uniform(0, 30000);
        live.push_back(queue.Push(time, [] {}));
      } else if (op <= 7) {
        if (live.empty()) continue;
        const std::size_t pick = static_cast<std::size_t>(
            rng.Uniform(0, static_cast<std::int64_t>(live.size()) - 1));
        queue.Cancel(live[pick]);
        live.erase(live.begin() + pick);
      } else if (!queue.empty()) {
        const Event event = queue.Pop();
        pops.emplace_back(event.time, event.id);
        now = event.time;
        live.erase(std::remove(live.begin(), live.end(), event.id),
                   live.end());
      }
    }
    while (!queue.empty()) {
      const Event event = queue.Pop();
      pops.emplace_back(event.time, event.id);
    }
    return pops;
  };
  const auto fresh = drive();
  queue.ResetForRun();
  const auto recycled = drive();
  EXPECT_EQ(fresh, recycled);
  EXPECT_FALSE(fresh.empty());
}

TEST(SimulatorTest, ResetForRunRestartsTheClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(25, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(sim.Now(), 25);
  sim.ResetForRun();
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Idle());
  EXPECT_EQ(sim.events_executed(), 0u);
  sim.Schedule(10, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulatorTest, ZeroDelayRunsAfterPendingSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(0, [&] {
    order.push_back(1);
    sim.Schedule(0, [&] { order.push_back(3); });
  });
  sim.Schedule(0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace o2pc::sim
