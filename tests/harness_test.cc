// Tests of the experiment harness: aggregate sanity, determinism, and the
// kP2Literal soundness-gap demonstration (reproduction finding F-1).

#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace o2pc::harness {
namespace {

ExperimentConfig SmallConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.label = "smoke";
  config.system.num_sites = 3;
  config.system.keys_per_site = 32;
  config.system.seed = seed;
  config.workload.num_global_txns = 40;
  config.workload.num_local_txns = 40;
  config.workload.vote_abort_probability = 0.25;
  config.workload.seed = seed + 1;
  return config;
}

TEST(HarnessTest, AggregatesAreConsistent) {
  RunResult result = RunExperiment(SmallConfig(3));
  EXPECT_EQ(result.label, "smoke");
  EXPECT_GT(result.makespan, 0);
  EXPECT_EQ(result.committed + result.aborted, 40u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_GT(result.mean_latency_us, 0.0);
  EXPECT_GE(result.p99_latency_us, result.mean_latency_us);
  EXPECT_GT(result.messages_total, 0u);
  EXPECT_GT(result.locals_committed, 0u);
  // 25% abort injection over 40 txns: some compensation happened.
  EXPECT_GT(result.compensations, 0u);
  EXPECT_TRUE(result.report.correct) << result.report.Summary();
}

TEST(HarnessTest, DeterministicForIdenticalConfig) {
  RunResult a = RunExperiment(SmallConfig(9));
  RunResult b = RunExperiment(SmallConfig(9));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.compensations, b.compensations);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
}

TEST(HarnessTest, SeedsChangeTheRun) {
  RunResult a = RunExperiment(SmallConfig(10));
  RunResult b = RunExperiment(SmallConfig(11));
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(HarnessTest, AnalyzeFlagSkipsSgWork) {
  ExperimentConfig config = SmallConfig(4);
  config.analyze = false;
  RunResult result = RunExperiment(config);
  EXPECT_EQ(result.regular_cycle_pivots, 0);
  EXPECT_TRUE(result.report.correct);  // default-constructed report
}

TEST(HarnessTest, MessageTallyMatchesNetworkTotals) {
  RunResult result = RunExperiment(SmallConfig(5));
  std::uint64_t sum = 0;
  for (std::uint64_t n : result.messages_by_type) sum += n;
  EXPECT_EQ(sum, result.messages_total);
}

// Reproduction finding F-1: the paper's literal P2 rule admits regular
// cycles (see DESIGN.md). This is the executable witness.
TEST(P2LiteralGapTest, LiteralRuleAdmitsRegularCycles) {
  int cycle_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExperimentConfig config;
    config.system.num_sites = 3;
    config.system.keys_per_site = 8;
    config.system.seed = seed;
    config.system.protocol.governance = core::GovernancePolicy::kP2Literal;
    config.workload.num_global_txns = 60;
    config.workload.num_local_txns = 60;
    config.workload.ops_per_subtxn = 3;
    config.workload.vote_abort_probability = 0.25;
    config.workload.zipf_theta = 0.9;
    config.workload.mean_global_interarrival = Millis(1);
    config.workload.mean_local_interarrival = Millis(1);
    config.workload.seed = seed * 31 + 7;
    RunResult result = RunExperiment(config);
    if (result.report.has_regular_cycle) ++cycle_seeds;
  }
  EXPECT_GT(cycle_seeds, 0)
      << "kP2Literal unexpectedly produced no regular cycles — the "
         "soundness-gap demonstration has lost its witness";
}

// ---------------------------------------------------------------------------
// RunResult::ToJson round-trip: parse the emitted JSON back with a minimal
// flat-object parser and compare field-by-field against the source result.
// Guards the bench artifact format (BENCH_*.json) against silent drift.

/// Parses ToJson()'s output shape: one flat object of scalar fields plus one
/// flat array of unsigned integers. No nesting, escapes, or spaces in keys —
/// exactly what ToJson emits, and the test fails loudly on anything else.
struct FlatJson {
  std::map<std::string, std::string> scalars;
  std::map<std::string, std::vector<std::uint64_t>> arrays;
  bool ok = false;
};

FlatJson ParseFlatJson(const std::string& text) {
  FlatJson parsed;
  std::size_t pos = text.find('{');
  if (pos == std::string::npos) return parsed;
  ++pos;
  while (true) {
    const std::size_t key_start = text.find('"', pos);
    if (key_start == std::string::npos) break;
    const std::size_t key_end = text.find('"', key_start + 1);
    if (key_end == std::string::npos) return parsed;
    const std::string key = text.substr(key_start + 1,
                                        key_end - key_start - 1);
    const std::size_t colon = text.find(':', key_end);
    if (colon == std::string::npos) return parsed;
    std::size_t value_start = text.find_first_not_of(" \n", colon + 1);
    if (value_start == std::string::npos) return parsed;
    if (text[value_start] == '[') {
      const std::size_t close = text.find(']', value_start);
      if (close == std::string::npos) return parsed;
      std::vector<std::uint64_t>& values = parsed.arrays[key];
      std::size_t cursor = value_start + 1;
      while (cursor < close) {
        values.push_back(std::strtoull(text.c_str() + cursor, nullptr, 10));
        const std::size_t comma = text.find(',', cursor);
        if (comma == std::string::npos || comma > close) break;
        cursor = comma + 1;
      }
      pos = close + 1;
    } else if (text[value_start] == '"') {
      const std::size_t close = text.find('"', value_start + 1);
      if (close == std::string::npos) return parsed;
      parsed.scalars[key] =
          text.substr(value_start + 1, close - value_start - 1);
      pos = close + 1;
    } else {
      const std::size_t close = text.find_first_of(",\n}", value_start);
      if (close == std::string::npos) return parsed;
      parsed.scalars[key] = text.substr(value_start, close - value_start);
      pos = close;
    }
    pos = text.find_first_not_of(", \n", pos);
    if (pos == std::string::npos || text[pos] == '}') {
      parsed.ok = true;
      break;
    }
  }
  return parsed;
}

TEST(RunResultJsonTest, RoundTripsEveryField) {
  ExperimentConfig config = SmallConfig(11);
  config.label = "roundtrip";
  const RunResult result = RunExperiment(config);
  const FlatJson parsed = ParseFlatJson(result.ToJson());
  ASSERT_TRUE(parsed.ok) << result.ToJson();

  auto u64 = [&](const char* key) {
    const auto it = parsed.scalars.find(key);
    EXPECT_NE(it, parsed.scalars.end()) << key;
    return it == parsed.scalars.end()
               ? 0
               : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  auto dbl = [&](const char* key) {
    const auto it = parsed.scalars.find(key);
    EXPECT_NE(it, parsed.scalars.end()) << key;
    return it == parsed.scalars.end() ? 0.0 : std::atof(it->second.c_str());
  };
  auto boolean = [&](const char* key) {
    const auto it = parsed.scalars.find(key);
    EXPECT_NE(it, parsed.scalars.end()) << key;
    return it != parsed.scalars.end() && it->second == "true";
  };

  EXPECT_EQ(parsed.scalars.at("label"), "roundtrip");
  EXPECT_EQ(u64("makespan_us"), static_cast<std::uint64_t>(result.makespan));
  EXPECT_EQ(u64("committed"), result.committed);
  EXPECT_EQ(u64("aborted"), result.aborted);
  EXPECT_EQ(u64("compensations"), result.compensations);
  EXPECT_EQ(u64("compensation_retries"), result.compensation_retries);
  EXPECT_EQ(u64("r1_rejections"), result.r1_rejections);
  EXPECT_EQ(u64("restarts"), result.restarts);
  EXPECT_EQ(u64("deadlocks"), result.deadlocks);
  EXPECT_EQ(u64("coordinator_crashes"), result.coordinator_crashes);
  EXPECT_EQ(u64("udum_unmarks"), result.udum_unmarks);
  EXPECT_EQ(u64("locals_committed"), result.locals_committed);
  EXPECT_EQ(u64("blocked_prepared_ns"), result.blocked_prepared_ns);
  EXPECT_EQ(u64("decision_reqs"), result.decision_reqs);
  EXPECT_EQ(u64("ctp_resolutions"), result.ctp_resolutions);
  EXPECT_EQ(u64("messages_total"), result.messages_total);
  EXPECT_EQ(u64("trace_events"), result.trace_events);
  EXPECT_EQ(u64("regular_cycle_pivots"),
            static_cast<std::uint64_t>(result.regular_cycle_pivots));

  // Doubles survive the ostream default precision (6 significant digits);
  // compare with a matching relative tolerance.
  auto near = [](double parsed_value, double expected) {
    const double tolerance = 1e-4 * std::max(1.0, std::abs(expected));
    return std::abs(parsed_value - expected) <= tolerance;
  };
  EXPECT_TRUE(near(dbl("throughput_tps"), result.throughput_tps));
  EXPECT_TRUE(near(dbl("mean_latency_us"), result.mean_latency_us));
  EXPECT_TRUE(near(dbl("p99_latency_us"), result.p99_latency_us));
  EXPECT_TRUE(near(dbl("mean_xlock_hold_us"), result.mean_xlock_hold_us));
  EXPECT_TRUE(near(dbl("p99_xlock_hold_us"), result.p99_xlock_hold_us));
  EXPECT_TRUE(near(dbl("max_xlock_hold_us"), result.max_xlock_hold_us));
  EXPECT_TRUE(near(dbl("mean_lock_wait_us"), result.mean_lock_wait_us));
  EXPECT_TRUE(near(dbl("mean_blocked_prepared_us"),
                   result.mean_blocked_prepared_us));
  EXPECT_TRUE(near(dbl("max_blocked_prepared_us"),
                   result.max_blocked_prepared_us));

  EXPECT_EQ(boolean("locally_serializable"),
            result.report.locally_serializable);
  EXPECT_EQ(boolean("has_regular_cycle"), result.report.has_regular_cycle);
  EXPECT_EQ(boolean("correct"), result.report.correct);
  EXPECT_EQ(boolean("atomic_compensation"),
            result.report.atomic_compensation);

  const auto by_type = parsed.arrays.find("messages_by_type");
  ASSERT_NE(by_type, parsed.arrays.end());
  ASSERT_EQ(by_type->second.size(), result.messages_by_type.size());
  for (std::size_t i = 0; i < result.messages_by_type.size(); ++i) {
    EXPECT_EQ(by_type->second[i], result.messages_by_type[i]) << i;
  }
}

}  // namespace
}  // namespace o2pc::harness
