// Tests of the experiment harness: aggregate sanity, determinism, and the
// kP2Literal soundness-gap demonstration (reproduction finding F-1).

#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace o2pc::harness {
namespace {

ExperimentConfig SmallConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.label = "smoke";
  config.system.num_sites = 3;
  config.system.keys_per_site = 32;
  config.system.seed = seed;
  config.workload.num_global_txns = 40;
  config.workload.num_local_txns = 40;
  config.workload.vote_abort_probability = 0.25;
  config.workload.seed = seed + 1;
  return config;
}

TEST(HarnessTest, AggregatesAreConsistent) {
  RunResult result = RunExperiment(SmallConfig(3));
  EXPECT_EQ(result.label, "smoke");
  EXPECT_GT(result.makespan, 0);
  EXPECT_EQ(result.committed + result.aborted, 40u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_GT(result.mean_latency_us, 0.0);
  EXPECT_GE(result.p99_latency_us, result.mean_latency_us);
  EXPECT_GT(result.messages_total, 0u);
  EXPECT_GT(result.locals_committed, 0u);
  // 25% abort injection over 40 txns: some compensation happened.
  EXPECT_GT(result.compensations, 0u);
  EXPECT_TRUE(result.report.correct) << result.report.Summary();
}

TEST(HarnessTest, DeterministicForIdenticalConfig) {
  RunResult a = RunExperiment(SmallConfig(9));
  RunResult b = RunExperiment(SmallConfig(9));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.compensations, b.compensations);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
}

TEST(HarnessTest, SeedsChangeTheRun) {
  RunResult a = RunExperiment(SmallConfig(10));
  RunResult b = RunExperiment(SmallConfig(11));
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(HarnessTest, AnalyzeFlagSkipsSgWork) {
  ExperimentConfig config = SmallConfig(4);
  config.analyze = false;
  RunResult result = RunExperiment(config);
  EXPECT_EQ(result.regular_cycle_pivots, 0);
  EXPECT_TRUE(result.report.correct);  // default-constructed report
}

TEST(HarnessTest, MessageTallyMatchesNetworkTotals) {
  RunResult result = RunExperiment(SmallConfig(5));
  std::uint64_t sum = 0;
  for (std::uint64_t n : result.messages_by_type) sum += n;
  EXPECT_EQ(sum, result.messages_total);
}

// Reproduction finding F-1: the paper's literal P2 rule admits regular
// cycles (see DESIGN.md). This is the executable witness.
TEST(P2LiteralGapTest, LiteralRuleAdmitsRegularCycles) {
  int cycle_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExperimentConfig config;
    config.system.num_sites = 3;
    config.system.keys_per_site = 8;
    config.system.seed = seed;
    config.system.protocol.governance = core::GovernancePolicy::kP2Literal;
    config.workload.num_global_txns = 60;
    config.workload.num_local_txns = 60;
    config.workload.ops_per_subtxn = 3;
    config.workload.vote_abort_probability = 0.25;
    config.workload.zipf_theta = 0.9;
    config.workload.mean_global_interarrival = Millis(1);
    config.workload.mean_local_interarrival = Millis(1);
    config.workload.seed = seed * 31 + 7;
    RunResult result = RunExperiment(config);
    if (result.report.has_regular_cycle) ++cycle_seeds;
  }
  EXPECT_GT(cycle_seeds, 0)
      << "kP2Literal unexpectedly produced no regular cycles — the "
         "soundness-gap demonstration has lost its witness";
}

}  // namespace
}  // namespace o2pc::harness
