// Tests for the fault-campaign harness: plan grammar round-trips, the
// injector's step/message pins, oracle detection of a known-bad plan,
// fault-plan shrinking, bit-identical seed replay, and a small healthy
// campaign sweep.

#include "campaign/runner.h"

#include <gtest/gtest.h>

#include "campaign/audit.h"
#include "campaign/shrink.h"
#include "core/system.h"
#include "trace/trace.h"
#include "workload/scenarios.h"

namespace o2pc::campaign {
namespace {

CampaignRunConfig SmallConfig(core::CommitProtocol protocol,
                              std::uint64_t seed) {
  CampaignRunConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.num_sites = 3;
  config.keys_per_site = 16;
  config.num_globals = 12;
  config.num_locals = 6;
  config.vote_abort_probability = 0.15;
  return config;
}

TEST(FaultPlanTest, RoundTripsThroughGrammar) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kSiteCrashAtStep;
  crash.site = 2;
  crash.step = core::ProtocolStep::kCompensationBegin;
  crash.occurrence = 1;
  crash.duration = Millis(40);
  plan.events.push_back(crash);
  FaultEvent timed;
  timed.kind = FaultKind::kSiteCrashAtTime;
  timed.site = 0;
  timed.at = Millis(12);
  timed.duration = Millis(30);
  plan.events.push_back(timed);
  FaultEvent partition;
  partition.kind = FaultKind::kPartition;
  partition.site = 0;
  partition.peer = 1;
  partition.at = Millis(8);
  partition.duration = Millis(50);
  plan.events.push_back(partition);
  FaultEvent drop;
  drop.kind = FaultKind::kDropMessage;
  drop.msg_type = static_cast<int>(net::MessageType::kDecision);
  drop.msg_from = kInvalidSite;
  drop.msg_to = 2;
  drop.occurrence = 1;
  plan.events.push_back(drop);
  FaultEvent delay;
  delay.kind = FaultKind::kDelayMessage;
  delay.msg_type = -1;
  delay.msg_from = 1;
  delay.msg_to = kInvalidSite;
  delay.occurrence = 0;
  delay.duration = Millis(20);
  plan.events.push_back(delay);
  FaultEvent coordinator;
  coordinator.kind = FaultKind::kCoordinatorCrash;
  coordinator.occurrence = 2;
  plan.events.push_back(coordinator);

  const std::string text = plan.ToString();
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.ToString(), text);
}

TEST(FaultPlanTest, ParserIgnoresCommentsAndRejectsGarbage) {
  FaultPlan parsed;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(
      "# a comment\n\ncoordinator_crash occurrence=0\n", &parsed, &error))
      << error;
  EXPECT_EQ(parsed.events.size(), 1u);

  EXPECT_FALSE(FaultPlan::Parse("explode site=1\n", &parsed, &error));
  EXPECT_FALSE(FaultPlan::Parse("crash site=1\n", &parsed, &error));
  EXPECT_FALSE(
      FaultPlan::Parse("crash site=1 step=bogus occurrence=0 outage_us=1\n",
                       &parsed, &error));
}

TEST(FaultPlanTest, TemplatesAreDeterministicPerSeed) {
  for (const std::string& name : DefaultTemplateNames()) {
    const FaultPlan a = GeneratePlan(name, 99, 4);
    const FaultPlan b = GeneratePlan(name, 99, 4);
    EXPECT_EQ(a.ToString(), b.ToString()) << name;
    if (name != "none") {
      EXPECT_FALSE(a.empty()) << name;
    } else {
      EXPECT_TRUE(a.empty());
    }
  }
  // Different seeds draw different schedules (for at least one template).
  EXPECT_NE(GeneratePlan("mixed", 1, 4).ToString(),
            GeneratePlan("mixed", 2, 4).ToString());
}

TEST(ArtifactTest, RoundTripsConfigAndPlan) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 7);
  config.template_name = "mixed";
  config.plan = GeneratePlan("mixed", 7, config.num_sites);
  const std::string text = ArtifactToString(config);
  CampaignRunConfig parsed;
  std::string error;
  ASSERT_TRUE(ParseArtifact(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.protocol, config.protocol);
  EXPECT_EQ(parsed.seed, config.seed);
  EXPECT_EQ(parsed.num_sites, config.num_sites);
  EXPECT_EQ(parsed.keys_per_site, config.keys_per_site);
  EXPECT_EQ(parsed.num_globals, config.num_globals);
  EXPECT_EQ(parsed.num_locals, config.num_locals);
  EXPECT_EQ(parsed.template_name, config.template_name);
  EXPECT_EQ(parsed.plan.ToString(), config.plan.ToString());

  EXPECT_FALSE(ParseArtifact("seed=1\n", &parsed, &error));  // no plan
}

TEST(InjectorTest, StepPinnedCrashFiresExactlyOnce) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 5);
  FaultEvent crash;
  crash.kind = FaultKind::kSiteCrashAtStep;
  crash.site = 0;
  crash.step = core::ProtocolStep::kLocalCommit;
  crash.occurrence = 0;
  crash.duration = Millis(50);
  config.plan.events.push_back(crash);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_EQ(result.site_crashes, 1u);
  // The site recovers and the retransmission safety net drains everything:
  // a survivable crash must not trip any oracle.
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(InjectorTest, CoordinatorCrashPinFires) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 6);
  FaultEvent crash;
  crash.kind = FaultKind::kCoordinatorCrash;
  crash.occurrence = 0;
  config.plan.events.push_back(crash);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_EQ(result.coordinator_crashes, 1u);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(InjectorTest, MessageDropPinConsumesOneMessage) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 8);
  FaultEvent drop;
  drop.kind = FaultKind::kDropMessage;
  drop.msg_type = static_cast<int>(net::MessageType::kVoteRequest);
  drop.msg_from = kInvalidSite;
  drop.msg_to = kInvalidSite;
  drop.occurrence = 0;
  config.plan.events.push_back(drop);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_GE(result.messages_dropped, 1u);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(OracleTest, KnownBadPlanIsCaught) {
  // Site 0 crashes forever at its first local commit: the exposed
  // subtransaction can never finalize or compensate. Both the trace
  // checker (I3) and the in-doubt audit must fire.
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 1);
  config.plan = KnownBadPlan(config.num_sites);
  const CampaignRunResult result = RunOne(config);
  ASSERT_FALSE(result.ok());
  bool saw_audit = false;
  bool saw_trace = false;
  for (const std::string& violation : result.oracle.violations) {
    if (violation.rfind("audit:", 0) == 0) saw_audit = true;
    if (violation.rfind("trace:", 0) == 0) saw_trace = true;
  }
  EXPECT_TRUE(saw_audit) << result.oracle.Summary();
  EXPECT_TRUE(saw_trace) << result.oracle.Summary();
}

TEST(ShrinkTest, KnownBadPlanShrinksToTheLethalEvent) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 1);
  config.plan = KnownBadPlan(config.num_sites);
  ASSERT_GE(config.plan.events.size(), 3u);  // lethal event + noise

  const ShrinkResult shrunk = ShrinkFaultPlan(config);
  EXPECT_TRUE(shrunk.reached_fixpoint);
  ASSERT_LE(shrunk.plan.events.size(), 2u);
  ASSERT_GE(shrunk.plan.events.size(), 1u);
  // The surviving event is the permanent step-pinned crash.
  const FaultEvent& survivor = shrunk.plan.events.front();
  EXPECT_EQ(survivor.kind, FaultKind::kSiteCrashAtStep);
  EXPECT_EQ(survivor.site, 0u);
  EXPECT_EQ(survivor.step, core::ProtocolStep::kLocalCommit);
  EXPECT_LE(survivor.duration, 0);
  // The shrunk plan still fails.
  CampaignRunConfig probe = config;
  probe.plan = shrunk.plan;
  EXPECT_FALSE(RunOne(probe).ok());
}

TEST(ReplayTest, SameSeedAndPlanYieldByteIdenticalJournals) {
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 21);
    config.plan = GeneratePlan("mixed", 21, config.num_sites);
    const CampaignRunResult first = RunOne(config);
    const CampaignRunResult second = RunOne(config);
    ASSERT_FALSE(first.journal.empty());
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.journal, second.journal);
    EXPECT_EQ(first.faults_triggered, second.faults_triggered);
    EXPECT_EQ(first.oracle.violations, second.oracle.violations);
  }
}

TEST(FaultPlanTest, CoordinatorOutageRoundTripsWithOutage) {
  FaultPlan plan = GeneratePlan("coordinator_outage", 5, 3);
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCoordinatorCrash);
  EXPECT_LT(plan.events[0].duration, 0);  // permanent

  FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.events.size(), 1u);
  EXPECT_EQ(reparsed.events[0].duration, plan.events[0].duration);
  EXPECT_EQ(reparsed.ToString(), plan.ToString());
  // A seed-era line without outage_us still parses (duration 0).
  ASSERT_TRUE(
      FaultPlan::Parse("coordinator_crash occurrence=1\n", &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed.events[0].duration, 0);
}

TEST(OracleTest, PermanentCoordinatorOutageDrainsViaTermination) {
  // The liveness oracle's contract: a permanent coordinator outage may
  // orphan the crashed incarnation itself, but every participant must
  // still terminate (DECISION-REQ / cooperative termination) — under both
  // protocols.
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 9);
    config.plan = GeneratePlan("coordinator_outage", 9, config.num_sites);
    const CampaignRunResult result = RunOne(config);
    EXPECT_EQ(result.faults_triggered, 1);
    EXPECT_EQ(result.coordinator_crashes, 1u);
    EXPECT_TRUE(result.ok()) << result.oracle.Summary();
  }
}

TEST(OracleTest, LivenessOracleFlagsAnUnresolvableWedge) {
  // Same permanent outage, but with the termination protocol disarmed the
  // 2PC participants stay prepared forever: the liveness oracle (a wedged
  // subtransaction whose logged decision was recoverable) and the in-doubt
  // audit must both fire. RunOne arms termination unconditionally, so build
  // a single-transfer system by hand — the coordinator force-logs COMMIT,
  // vanishes for good, and nobody ever asks for the decision.
  core::SystemOptions options;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.seed = 13;
  options.protocol.protocol = core::CommitProtocol::kTwoPhaseCommit;
  // decision_timeout stays 0: no DECISION-REQ, no cooperative termination.
  core::DistributedSystem system(options);
  const Value initial_total = system.TotalValue();
  trace::TraceRecorder recorder;
  {
    trace::ScopedTrace scope(&recorder, &system.simulator());
    const TxnId id =
        system.SubmitGlobal(workload::MakeTransfer(1, 1, 2, 2, 10));
    system.InjectCoordinatorCrash(id, /*outage=*/-1);
    system.Run();
  }
  const OracleReport report =
      RunOracles(system, recorder.events(), initial_total);
  ASSERT_FALSE(report.ok());
  bool saw_liveness = false;
  bool saw_audit = false;
  for (const std::string& violation : report.violations) {
    if (violation.rfind("liveness:", 0) == 0) saw_liveness = true;
    if (violation.rfind("audit:", 0) == 0) saw_audit = true;
  }
  EXPECT_TRUE(saw_liveness) << report.Summary();
  EXPECT_TRUE(saw_audit) << report.Summary();
}

TEST(ReplayTest, CoordinatorOutageReplaysByteIdentically) {
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 33);
    config.plan = GeneratePlan("coordinator_outage", 33, config.num_sites);
    const CampaignRunResult first = RunOne(config);
    const CampaignRunResult second = RunOne(config);
    ASSERT_FALSE(first.journal.empty());
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.journal, second.journal);
    EXPECT_EQ(first.oracle.violations, second.oracle.violations);
  }
}

TEST(FaultPlanTest, AdversarialProductionsRoundTripThroughGrammar) {
  FaultPlan plan;
  FaultEvent duplicate;
  duplicate.kind = FaultKind::kDuplicateMessage;
  duplicate.msg_type = static_cast<int>(net::MessageType::kVoteRequest);
  duplicate.msg_from = kInvalidSite;
  duplicate.msg_to = 2;
  duplicate.occurrence = 1;
  duplicate.count = 2;
  plan.events.push_back(duplicate);
  FaultEvent reorder;
  reorder.kind = FaultKind::kReorderMessages;
  reorder.msg_type = -1;
  reorder.msg_from = 0;
  reorder.msg_to = kInvalidSite;
  reorder.occurrence = 0;
  reorder.count = 6;
  reorder.duration = Millis(15);
  plan.events.push_back(reorder);
  FaultEvent oneway;
  oneway.kind = FaultKind::kOneWayPartition;
  oneway.site = 0;
  oneway.peer = 1;
  oneway.at = Millis(8);
  oneway.duration = Millis(50);
  plan.events.push_back(oneway);
  FaultEvent gray;
  gray.kind = FaultKind::kGrayFailure;
  gray.site = 2;
  gray.at = Millis(10);
  gray.duration = Millis(80);
  gray.factor = 25;
  plan.events.push_back(gray);

  const std::string text = plan.ToString();
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.events[0].count, 2);
  EXPECT_EQ(parsed.events[1].count, 6);
  EXPECT_EQ(parsed.events[1].duration, Millis(15));
  EXPECT_EQ(parsed.events[3].factor, 25);
  EXPECT_EQ(parsed.ToString(), text);
}

TEST(FaultPlanTest, AdversarialProductionsRejectBadFields) {
  FaultPlan parsed;
  std::string error;
  // duplicate needs copies >= 1.
  EXPECT_FALSE(FaultPlan::Parse(
      "duplicate type=any from=any to=any occurrence=0 copies=0\n", &parsed,
      &error));
  // reorder needs count >= 1 and a window.
  EXPECT_FALSE(FaultPlan::Parse(
      "reorder type=any from=any to=any occurrence=0 count=0 window_us=100\n",
      &parsed, &error));
  // gray factor must be >= 2 (1x is not a failure).
  EXPECT_FALSE(FaultPlan::Parse(
      "gray site=1 at_us=0 duration_us=1000 factor=1\n", &parsed, &error));
  // oneway_partition needs all four keys.
  EXPECT_FALSE(FaultPlan::Parse("oneway_partition from=0 to=1 at_us=0\n",
                                &parsed, &error));
}

TEST(InjectorTest, DuplicatePinRedeliversWithoutOracleViolations) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 11);
  FaultEvent duplicate;
  duplicate.kind = FaultKind::kDuplicateMessage;
  duplicate.msg_type = static_cast<int>(net::MessageType::kVoteRequest);
  duplicate.msg_from = kInvalidSite;
  duplicate.msg_to = kInvalidSite;
  duplicate.occurrence = 0;
  duplicate.count = 3;
  config.plan.events.push_back(duplicate);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  // Redelivery must be absorbed idempotently: no double-commit, no
  // double-compensation, conservation clean.
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(InjectorTest, OneWayPartitionAndGrayFailureArmAtTime) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 12);
  FaultEvent oneway;
  oneway.kind = FaultKind::kOneWayPartition;
  oneway.site = 0;
  oneway.peer = 1;
  oneway.at = Millis(5);
  oneway.duration = Millis(40);
  config.plan.events.push_back(oneway);
  FaultEvent gray;
  gray.kind = FaultKind::kGrayFailure;
  gray.site = 2;
  gray.at = Millis(10);
  gray.duration = Millis(60);
  gray.factor = 20;
  config.plan.events.push_back(gray);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 2);
  // Both faults heal; the retransmission safety net must drain everything.
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(ReplayTest, AdversarialTemplatesReplayByteIdentically) {
  for (const char* name : {"duplicates", "reorders", "oneway_partitions",
                           "gray", "mixed_adversarial"}) {
    for (const core::CommitProtocol protocol :
         {core::CommitProtocol::kOptimistic,
          core::CommitProtocol::kTwoPhaseCommit}) {
      CampaignRunConfig config = SmallConfig(protocol, 41);
      config.template_name = name;
      config.plan = GeneratePlan(name, 41, config.num_sites);
      ASSERT_FALSE(config.plan.empty()) << name;
      const CampaignRunResult first = RunOne(config);
      const CampaignRunResult second = RunOne(config);
      ASSERT_FALSE(first.journal.empty());
      EXPECT_EQ(first.fingerprint, second.fingerprint) << name;
      EXPECT_EQ(first.journal, second.journal) << name;
      EXPECT_EQ(first.faults_triggered, second.faults_triggered) << name;
      EXPECT_EQ(first.oracle.violations, second.oracle.violations) << name;
    }
  }
}

TEST(ReplayTest, MixedDuplicateOneWayPlanReplaysByteIdentically) {
  // Duplication and an asymmetric partition in the same run: copies of the
  // same message race a one-way severed link. The pair must replay
  // bit-exactly and the artifact grammar must round-trip the mix.
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 51);
  FaultEvent duplicate;
  duplicate.kind = FaultKind::kDuplicateMessage;
  duplicate.msg_type = -1;
  duplicate.msg_from = kInvalidSite;
  duplicate.msg_to = kInvalidSite;
  duplicate.occurrence = 2;
  duplicate.count = 2;
  config.plan.events.push_back(duplicate);
  FaultEvent oneway;
  oneway.kind = FaultKind::kOneWayPartition;
  oneway.site = 1;
  oneway.peer = 0;
  oneway.at = Millis(6);
  oneway.duration = Millis(30);
  config.plan.events.push_back(oneway);

  const CampaignRunResult first = RunOne(config);
  const CampaignRunResult second = RunOne(config);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.journal, second.journal);
  EXPECT_EQ(first.faults_triggered, 2);
  EXPECT_TRUE(first.ok()) << first.oracle.Summary();

  const std::string text = ArtifactToString(config);
  CampaignRunConfig parsed;
  std::string error;
  ASSERT_TRUE(ParseArtifact(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.plan.ToString(), config.plan.ToString());
  EXPECT_EQ(RunOne(parsed).fingerprint, first.fingerprint);
}

TEST(ShrinkTest, AdversarialNoiseEventsShrinkAwayFromLethalPlan) {
  // The known-bad plan plus one noise event of each new production: the
  // greedy shrinker must strip all of them and land on the same 1-minimal
  // lethal crash, proving the new productions are shrinkable.
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 1);
  config.plan = KnownBadPlan(config.num_sites);
  FaultEvent duplicate;
  duplicate.kind = FaultKind::kDuplicateMessage;
  duplicate.msg_type = static_cast<int>(net::MessageType::kVote);
  duplicate.msg_from = kInvalidSite;
  duplicate.msg_to = kInvalidSite;
  duplicate.occurrence = 0;
  duplicate.count = 1;
  config.plan.events.push_back(duplicate);
  FaultEvent reorder;
  reorder.kind = FaultKind::kReorderMessages;
  reorder.msg_type = -1;
  reorder.msg_from = kInvalidSite;
  reorder.msg_to = kInvalidSite;
  reorder.occurrence = 0;
  reorder.count = 4;
  reorder.duration = Millis(5);
  config.plan.events.push_back(reorder);
  FaultEvent oneway;
  oneway.kind = FaultKind::kOneWayPartition;
  oneway.site = 1;
  oneway.peer = 2;
  oneway.at = Millis(4);
  oneway.duration = Millis(10);
  config.plan.events.push_back(oneway);
  FaultEvent gray;
  gray.kind = FaultKind::kGrayFailure;
  gray.site = 2;
  gray.at = Millis(2);
  gray.duration = Millis(20);
  gray.factor = 10;
  config.plan.events.push_back(gray);
  ASSERT_FALSE(RunOne(config).ok());

  const ShrinkResult shrunk = ShrinkFaultPlan(config);
  EXPECT_TRUE(shrunk.reached_fixpoint);
  ASSERT_LE(shrunk.plan.events.size(), 2u);
  ASSERT_GE(shrunk.plan.events.size(), 1u);
  EXPECT_EQ(shrunk.plan.events.front().kind, FaultKind::kSiteCrashAtStep);
  CampaignRunConfig probe = config;
  probe.plan = shrunk.plan;
  EXPECT_FALSE(RunOne(probe).ok());
}

TEST(CampaignTest, DuplicationEnabledSweepStaysClean) {
  // The blanket at-least-once campaign mode: every message of every run is
  // delivered twice. One full template cycle under both protocols must
  // pass the whole oracle battery — the volume version of this gate runs
  // in CI (o2pc_campaign --duplicate-all).
  CampaignOptions options;
  options.runs = 28;  // one full cycle of all 14 templates x 2 protocols
  options.base_seed = 4;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.num_globals = 12;
  options.num_locals = 6;
  options.duplicate_copies = 1;
  const CampaignReport report = RunCampaign(options);
  EXPECT_EQ(report.runs_completed, 28);
  EXPECT_TRUE(report.ok());
}

TEST(CampaignTest, FormerSgStraddleHolePlanNowPasses) {
  // Regression pin for the FIXED crash-window SG straddle hole (formerly
  // DESIGN §14.3 / a ROADMAP open item). The historical failure: a site
  // crash timed just before a DECISION stretched the window in which a
  // compensation had run at some execution sites but not yet at the
  // crashed one; a transaction whose subtransactions straddled that window
  // serialized before CT_i at one site and after it at another, building a
  // regular SG cycle the R1/R3 straddle checks miss. The fix is marking
  // catch-up at restart: before the recovering site accepts any new work,
  // it merges witness-gossip snapshots from its reachable peers and
  // replays every compensation whose abort verdict the merged knowledge
  // carries — so no admission can serialize against a stale pre-CT image.
  // This is the exact {seed, plan} pair that reproduced the hole
  // (tests/data/known_sg_straddle.plan); it must now pass the full oracle
  // battery, deterministically.
  const std::string artifact =
      "protocol=o2pc\n"
      "seed=40362\n"
      "sites=4\n"
      "keys=24\n"
      "globals=24\n"
      "locals=12\n"
      "abort_prob=0.15\n"
      "template=crashes\n"
      "plan_begin\n"
      "crash site=0 step=before_decision occurrence=1 outage_us=72000\n"
      "plan_end\n";
  CampaignRunConfig config;
  std::string error;
  ASSERT_TRUE(ParseArtifact(artifact, &config, &error)) << error;
  const CampaignRunResult result = RunOne(config);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
  const CampaignRunResult again = RunOne(config);
  EXPECT_EQ(result.fingerprint, again.fingerprint);
}

TEST(FaultPlanTest, CrashRestartRoundTripsThroughGrammar) {
  FaultPlan plan;
  FaultEvent restart;
  restart.kind = FaultKind::kCrashRestart;
  restart.site = 1;
  restart.step = core::ProtocolStep::kBeforeDecision;
  restart.occurrence = 0;
  restart.duration = Millis(40);
  restart.recovery = Millis(5);
  restart.recrash = Millis(2);
  plan.events.push_back(restart);
  FaultEvent single;  // no double crash: recrash_us must not serialize
  single.kind = FaultKind::kCrashRestart;
  single.site = 2;
  single.step = core::ProtocolStep::kLocalCommit;
  single.occurrence = 1;
  single.duration = Millis(30);
  single.recovery = Millis(8);
  plan.events.push_back(single);

  const std::string text = plan.ToString();
  EXPECT_NE(text.find("recrash_us=2000"), std::string::npos);
  // The second line serializes no recrash (non-default-only grammar).
  EXPECT_EQ(text.find("recrash_us=-1"), std::string::npos);
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].recovery, Millis(5));
  EXPECT_EQ(parsed.events[0].recrash, Millis(2));
  EXPECT_EQ(parsed.events[1].recovery, Millis(8));
  EXPECT_EQ(parsed.events[1].recrash, -1);
  EXPECT_EQ(parsed.ToString(), text);
}

TEST(FaultPlanTest, CrashRestartRejectsBadFields) {
  FaultPlan parsed;
  std::string error;
  // Outage must be positive: a crash_restart that never restarts is a
  // plain crash.
  EXPECT_FALSE(FaultPlan::Parse(
      "crash_restart site=1 step=local_commit occurrence=0 outage_us=0 "
      "recovery_us=1000\n",
      &parsed, &error));
  // recovery_us is mandatory.
  EXPECT_FALSE(FaultPlan::Parse(
      "crash_restart site=1 step=local_commit occurrence=0 outage_us=5000\n",
      &parsed, &error));
  // A negative recrash is expressed by omission, not by value.
  EXPECT_FALSE(FaultPlan::Parse(
      "crash_restart site=1 step=local_commit occurrence=0 outage_us=5000 "
      "recovery_us=1000 recrash_us=-1\n",
      &parsed, &error));
}

TEST(InjectorTest, CrashRestartRunsRecoveryPhase) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 5);
  FaultEvent restart;
  restart.kind = FaultKind::kCrashRestart;
  restart.site = 0;
  restart.step = core::ProtocolStep::kLocalCommit;
  restart.occurrence = 0;
  restart.duration = Millis(50);
  restart.recovery = Millis(5);
  config.plan.events.push_back(restart);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.faults_triggered, 1);
  EXPECT_EQ(result.site_crashes, 1u);
  ASSERT_EQ(result.recovery_windows.size(), 1u);
  const RecoveryWindow& window = result.recovery_windows.front();
  EXPECT_EQ(window.site, 0u);
  EXPECT_GT(window.begin, window.crash_time);
  EXPECT_GE(window.end, window.begin + Millis(5));  // window floor honored
  // Crashed at its own local commit: WAL analysis must find the exposed
  // subtransaction in doubt.
  EXPECT_GE(window.in_doubt, 1);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(InjectorTest, CrashDuringRecoveryDoubleFaultStaysClean) {
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 7);
  FaultEvent restart;
  restart.kind = FaultKind::kCrashRestart;
  restart.site = 0;
  restart.step = core::ProtocolStep::kLocalCommit;
  restart.occurrence = 0;
  restart.duration = Millis(40);
  restart.recovery = Millis(10);
  restart.recrash = Millis(2);  // lands inside the 10ms recovery window
  config.plan.events.push_back(restart);

  const CampaignRunResult result = RunOne(config);
  EXPECT_EQ(result.site_crashes, 2u);  // the injected crash + the re-crash
  ASSERT_EQ(result.recovery_windows.size(), 2u);
  // First window superseded by the re-crash (began, never ended); the
  // second incarnation completes recovery.
  EXPECT_GT(result.recovery_windows[0].begin, 0);
  EXPECT_EQ(result.recovery_windows[0].end, 0);
  EXPECT_GT(result.recovery_windows[1].end, 0);
  EXPECT_TRUE(result.ok()) << result.oracle.Summary();
}

TEST(ReplayTest, CrashRestartTemplateReplaysByteIdentically) {
  for (const core::CommitProtocol protocol :
       {core::CommitProtocol::kOptimistic,
        core::CommitProtocol::kTwoPhaseCommit}) {
    CampaignRunConfig config = SmallConfig(protocol, 61);
    config.template_name = "crash_restarts";
    config.plan = GeneratePlan("crash_restarts", 61, config.num_sites);
    ASSERT_FALSE(config.plan.empty());
    const CampaignRunResult first = RunOne(config);
    const CampaignRunResult second = RunOne(config);
    ASSERT_FALSE(first.journal.empty());
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.journal, second.journal);
    EXPECT_EQ(first.oracle.violations, second.oracle.violations);
  }
}

TEST(ShrinkTest, CrashRestartNoiseShrinksAwayFromLethalPlan) {
  // A healable crash_restart riding along with the lethal permanent crash
  // is noise: the shrinker must strip it and land on the 1-minimal lethal
  // event, proving the new production is shrinkable.
  CampaignRunConfig config = SmallConfig(core::CommitProtocol::kOptimistic, 1);
  config.plan = KnownBadPlan(config.num_sites);
  FaultEvent restart;
  restart.kind = FaultKind::kCrashRestart;
  restart.site = 1;
  restart.step = core::ProtocolStep::kBeforeVote;
  restart.occurrence = 0;
  restart.duration = Millis(20);
  restart.recovery = Millis(3);
  config.plan.events.push_back(restart);
  ASSERT_FALSE(RunOne(config).ok());

  const ShrinkResult shrunk = ShrinkFaultPlan(config);
  EXPECT_TRUE(shrunk.reached_fixpoint);
  ASSERT_LE(shrunk.plan.events.size(), 2u);
  ASSERT_GE(shrunk.plan.events.size(), 1u);
  EXPECT_EQ(shrunk.plan.events.front().kind, FaultKind::kSiteCrashAtStep);
  CampaignRunConfig probe = config;
  probe.plan = shrunk.plan;
  EXPECT_FALSE(RunOne(probe).ok());
}

TEST(CampaignTest, HealthySweepPassesAllOracles) {
  CampaignOptions options;
  options.runs = 16;  // one full template cycle under both protocols
  options.base_seed = 3;
  options.num_sites = 3;
  options.keys_per_site = 16;
  options.num_globals = 12;
  options.num_locals = 6;
  const CampaignReport report = RunCampaign(options);
  EXPECT_EQ(report.runs_completed, 16);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.total_faults_triggered, 0u);
}

}  // namespace
}  // namespace o2pc::campaign
